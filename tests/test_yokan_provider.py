"""Integration tests: Yokan provider/client over RPC, virtual replication."""

import pytest

from repro import Cluster
from repro.core.component import ProviderIdError
from repro.margo import RpcFailedError
from repro.storage import LocalStore, ParallelFileSystem
from repro.yokan import (
    DatabaseHandle,
    VirtualYokanProvider,
    YokanClient,
    YokanError,
    YokanProvider,
)


@pytest.fixture()
def rig():
    cluster = Cluster(seed=3)
    server = cluster.add_margo("server", node="n0")
    client_margo = cluster.add_margo("client", node="n1")
    provider = YokanProvider(server, "db0", provider_id=1)
    handle = YokanClient(client_margo).make_handle(server.address, 1)
    return cluster, server, client_margo, provider, handle


def run(cluster, margo, gen):
    return cluster.run_ult(margo, gen)


def test_put_get_roundtrip(rig):
    cluster, _, cm, _, db = rig

    def driver():
        yield from db.put("key", "value")
        return (yield from db.get("key"))

    assert run(cluster, cm, driver()) == b"value"


def test_get_missing_key_raises_remote_error(rig):
    cluster, _, cm, _, db = rig

    def driver():
        yield from db.get("ghost")

    with pytest.raises(RpcFailedError, match="no such key"):
        run(cluster, cm, driver())


def test_exists_erase_count(rig):
    cluster, _, cm, _, db = rig

    def driver():
        yield from db.put("a", "1")
        yield from db.put("b", "2")
        existed = yield from db.exists("a")
        count_before = yield from db.count()
        yield from db.erase("a")
        exists_after = yield from db.exists("a")
        count_after = yield from db.count()
        return existed, count_before, exists_after, count_after

    assert run(cluster, cm, driver()) == (True, 2, False, 1)


def test_multi_ops_and_list_keys(rig):
    cluster, _, cm, _, db = rig

    def driver():
        yield from db.put_multi([(f"k{i}", f"v{i}") for i in range(5)])
        keys = yield from db.list_keys(prefix="k", max_keys=3)
        values = yield from db.get_multi(["k0", "k4"])
        return keys, values

    keys, values = run(cluster, cm, driver())
    assert keys == [b"k0", b"k1", b"k2"]
    assert values == [b"v0", b"v4"]


def test_large_value_uses_bulk_path(rig):
    cluster, server, cm, _, db = rig
    big = b"x" * (1 << 20)
    bytes_before = cluster.network.bytes_sent

    def driver():
        yield from db.put("big", big)
        return (yield from db.get("big"))

    result = run(cluster, cm, driver())
    assert result == big
    # Bulk moved the megabyte twice (put pull + get push); RPC payloads
    # stayed small, so total bytes is ~2 MiB, not 4.
    moved = cluster.network.bytes_sent - bytes_before
    assert (2 << 20) <= moved < (2 << 20) + 20_000


def test_provider_id_bounds():
    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0")
    with pytest.raises(ProviderIdError):
        YokanProvider(server, "bad", provider_id=65535)
    with pytest.raises(ProviderIdError):
        YokanProvider(server, "bad", provider_id=-1)


def test_two_providers_same_process(rig):
    cluster, server, cm, _, db1 = rig
    YokanProvider(server, "db2", provider_id=2)
    db2 = YokanClient(cm).make_handle(server.address, 2)

    def driver():
        yield from db1.put("k", "in-1")
        yield from db2.put("k", "in-2")
        a = yield from db1.get("k")
        b = yield from db2.get("k")
        return a, b

    assert run(cluster, cm, driver()) == (b"in-1", b"in-2")


def test_provider_destroy_deregisters(rig):
    cluster, server, cm, provider, db = rig
    provider.destroy()
    assert provider.destroyed

    def driver():
        yield from db.put("k", "v")

    from repro.margo import NoSuchRpcError

    with pytest.raises(NoSuchRpcError):
        run(cluster, cm, driver())


def test_persistent_provider_flush_to_local_store():
    cluster = Cluster(seed=3)
    node = cluster.node("n0")
    store = LocalStore(node)
    server = cluster.add_margo("server", node=node)
    cm = cluster.add_margo("client", node="n1")
    YokanProvider(
        server, "pdb", provider_id=1, config={"database": {"type": "persistent"}}
    )
    db = YokanClient(cm).make_handle(server.address, 1)

    def driver():
        yield from db.put("k", "v")
        yield from db.flush()

    run(cluster, cm, driver())
    assert store.exists("yokan/pdb.db")


def test_persistent_provider_without_store_raises():
    cluster = Cluster(seed=3)
    server = cluster.add_margo("server", node="n0")
    with pytest.raises(YokanError, match="LocalStore"):
        YokanProvider(
            server, "pdb", provider_id=1, config={"database": {"type": "persistent"}}
        )


def test_checkpoint_restore_via_pfs():
    cluster = Cluster(seed=3)
    pfs = ParallelFileSystem()
    s1 = cluster.add_margo("s1", node="n0")
    s2 = cluster.add_margo("s2", node="n1")
    cm = cluster.add_margo("client", node="n2")
    p1 = YokanProvider(s1, "db", provider_id=1)
    db1 = YokanClient(cm).make_handle(s1.address, 1)

    def phase1():
        yield from db1.put_multi([(f"k{i}", f"v{i}") for i in range(10)])
        yield from p1.checkpoint(pfs, "ckpt/db")

    run(cluster, cm, phase1())
    assert pfs.exists("ckpt/db")

    # Restore into a fresh provider on another node (node replacement).
    p2 = YokanProvider(s2, "db-restored", provider_id=1)
    db2 = YokanClient(cm).make_handle(s2.address, 1)

    def phase2():
        yield from p2.restore(pfs, "ckpt/db")
        return (yield from db2.get("k7"))

    assert run(cluster, cm, phase2()) == b"v7"


def test_get_config_reports_statistics(rig):
    cluster, _, cm, provider, db = rig

    def driver():
        yield from db.put("k", "value")

    run(cluster, cm, driver())
    doc = provider.get_config()
    assert doc["database"]["type"] == "map"
    assert doc["statistics"]["count"] == 1
    assert doc["statistics"]["size_bytes"] == 6


# ----------------------------------------------------------------------
# virtual databases (paper section 7, Observation 10)
# ----------------------------------------------------------------------
@pytest.fixture()
def virtual_rig():
    cluster = Cluster(seed=4)
    backends = []
    targets = []
    for i in range(3):
        margo = cluster.add_margo(f"replica{i}", node=f"n{i}")
        provider = YokanProvider(margo, f"rdb{i}", provider_id=1)
        backends.append(provider)
        targets.append({"address": margo.address, "provider_id": 1})
    front_margo = cluster.add_margo("front", node="nf")
    virtual = VirtualYokanProvider(
        front_margo, "vdb", provider_id=9,
        config={"targets": targets, "rpc_timeout": 0.5},
    )
    client_margo = cluster.add_margo("client", node="nc")
    handle = YokanClient(client_margo).make_handle(front_margo.address, 9)
    return cluster, backends, virtual, client_margo, handle


def test_virtual_put_replicates_to_all(virtual_rig):
    cluster, backends, _, cm, db = virtual_rig

    def driver():
        yield from db.put("k", "v")
        return (yield from db.get("k"))

    assert run(cluster, cm, driver()) == b"v"
    for provider in backends:
        assert provider.backend.get(b"k") == b"v"


def test_virtual_transparent_to_client(virtual_rig):
    """The client uses a plain DatabaseHandle -- it cannot tell the
    provider is virtual (the transparency requirement of Obs. 10)."""
    _, _, _, _, db = virtual_rig
    assert isinstance(db, DatabaseHandle)


def test_virtual_read_fails_over_dead_replica(virtual_rig):
    cluster, backends, _, cm, db = virtual_rig

    def write():
        yield from db.put("k", "v")

    run(cluster, cm, write())
    # Kill the first replica; reads must fail over to the second.
    cluster.faults.kill_process(backends[0].margo.process)

    def read():
        return (yield from db.get("k"))

    assert run(cluster, cm, read()) == b"v"


def test_virtual_write_with_dead_replica_still_succeeds(virtual_rig):
    cluster, backends, _, cm, db = virtual_rig
    cluster.faults.kill_process(backends[1].margo.process)

    def driver():
        yield from db.put("k", "v")
        return (yield from db.get("k"))

    assert run(cluster, cm, driver()) == b"v"
    assert backends[0].backend.get(b"k") == b"v"
    assert backends[2].backend.get(b"k") == b"v"


def test_virtual_requires_targets():
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("front", node="n0")
    with pytest.raises(YokanError, match="at least one target"):
        VirtualYokanProvider(margo, "vdb", provider_id=1, config={})


def test_virtual_resync_repairs_replaced_replica(virtual_rig):
    cluster, backends, virtual, cm, db = virtual_rig

    def write():
        yield from db.put_multi([(f"k{i}", f"v{i}") for i in range(5)])

    run(cluster, cm, write())
    # Simulate a replaced replica: wipe replica 2's backend.
    backends[2].backend.clear()
    assert backends[2].backend.count() == 0

    def repair():
        return (yield from virtual.resync(source_index=0))

    moved = run(cluster, virtual.margo, repair())
    assert moved == 5
    assert backends[2].backend.count() == 5


# ----------------------------------------------------------------------
# batch RPC aliases (multi_put / multi_get, C Yokan naming)
# ----------------------------------------------------------------------
def test_multi_put_multi_get_aliases(rig):
    cluster, _, cm, provider, db = rig

    def driver():
        yield from db.multi_put([(f"k{i}", f"v{i}") for i in range(8)])
        return (yield from db.multi_get([f"k{i}" for i in range(8)]))

    values = run(cluster, cm, driver())
    assert values == [f"v{i}".encode() for i in range(8)]
    assert provider.backend.count() == 8


def test_multi_put_alias_on_virtual_provider(virtual_rig):
    cluster, backends, _, cm, db = virtual_rig

    def driver():
        yield from db.multi_put([(b"a", b"1"), (b"b", b"2")])
        return (yield from db.multi_get([b"a", b"b"]))

    assert run(cluster, cm, driver()) == [b"1", b"2"]
    for provider in backends:
        assert provider.backend.count() == 2
