"""mochi-flow protocol rules (MCH070-MCH073) over the flow fixtures."""

from repro.analysis.flow import run_flow

from .flow_util import fixture_path, line_of, parse_fixture


def flow_findings(*packages, **kwargs):
    findings, stats, covered = run_flow(parse_fixture(*packages), **kwargs)
    return findings, stats, covered


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule_id == rule_id]


def lines_near(findings, path, func_start, func_end):
    return [f for f in findings if f.path == path and func_start <= f.line <= func_end]


# ----------------------------------------------------------------------
# MCH070: respond exactly once
# ----------------------------------------------------------------------
def test_respond_positives_and_negatives():
    findings, stats, covered = flow_findings("respond")
    path = fixture_path("respond", "handlers.py")
    msgs = {(f.line, f.message) for f in by_rule(findings, "MCH070")}

    double_line = line_of(path, 'yield from ctx.respond("second")')
    assert any(l == double_line and "already" in m for l, m in msgs)

    stall_line = line_of(path, "yield Park(ctx.event)")
    assert any(l == stall_line and "on some path" in m for l, m in msgs)

    undriven_line = line_of(path, 'ctx.respond("lost")')
    assert any(l == undriven_line and "never driven" in m for l, m in msgs)

    value_line = line_of(path, 'return "dropped"')
    assert any(l == value_line and "returns a value" in m for l, m in msgs)

    raise_line = line_of(path, 'raise RuntimeError("late failure")')
    assert any(l == raise_line and "raises after responding" in m for l, m in msgs)

    # Delegation divergence needs the effect layer: the park lives in
    # wait_for_signal, reported at the delegation site.
    delegate_line = line_of(path, "yield from wait_for_signal(ctx)")
    assert any(l == delegate_line and "stalls" in m for l, m in msgs)

    # Negatives: the early-reply-then-park handler and the implicit
    # handler must be clean.
    ok_start = line_of(path, "def _on_ok_early_reply")
    assert not [f for f in by_rule(findings, "MCH070") if f.line >= ok_start]

    assert stats["flow_handlers_analyzed"] >= 7
    assert stats["flow_suspend_points"] >= 1


def test_respond_covered_sites_returned():
    """The parks MCH070 analyzed are handed back so MCH012 stands down."""
    _findings, _stats, covered = flow_findings("respond")
    path = fixture_path("respond", "handlers.py")
    ok_park = line_of(path, "yield from ctx.respond(ctx.args)") + 1
    assert (path, ok_park) in covered


def test_mch012_stands_down_at_flow_covered_sites():
    """End to end through the engine: with --flow, the one-file MCH012
    heuristic must not double-report the park that MCH070 proved is
    preceded by a response on every path -- while MCH070's own findings
    (where the protocol really is broken) remain."""
    from repro.analysis.engine import run_lint

    path = fixture_path("respond", "handlers.py")
    result = run_lint([fixture_path("respond")], flow=True)
    ok_park = line_of(path, "yield from ctx.respond(ctx.args)") + 1
    mch012 = [f for f in result.findings if f.rule_id == "MCH012"]
    assert not [f for f in mch012 if f.line == ok_park]
    stall_line = line_of(path, "yield Park(ctx.event)")
    assert any(
        f.rule_id == "MCH070" and f.line == stall_line for f in result.findings
    )


# ----------------------------------------------------------------------
# MCH071: lock release balance
# ----------------------------------------------------------------------
def test_lock_release_balance():
    findings, _stats, _covered = flow_findings("lock")
    path = fixture_path("lock", "locks.py")
    found = by_rule(findings, "MCH071")

    early_return = line_of(path, "return None")
    assert any(f.line == early_return and "holding mu" in f.message for f in found)

    escape = line_of(path, 'raise RuntimeError("closed while locked")')
    assert any(f.line == escape and "self._mu" in f.message for f in found)

    # Negatives: try/finally and straight-line functions stay clean.
    ok_start = line_of(path, "def update_ok")
    assert not [f for f in found if f.line >= ok_start]


# ----------------------------------------------------------------------
# MCH072: resource leak on exception path
# ----------------------------------------------------------------------
def test_resource_exception_path_leaks():
    findings, _stats, _covered = flow_findings("resource")
    path = fixture_path("resource", "elastic.py")
    found = by_rule(findings, "MCH072")

    acquire_line = line_of(path, "xs = margo.add_xstream(spec)")
    assert any(
        f.line == acquire_line and "xstream 'xs'" in f.message for f in found
    )
    # Only grow_bad leaks: grow_ok transfers ownership immediately and
    # grow_guarded joins on the exception path before re-raising.
    assert len(found) == 1


# ----------------------------------------------------------------------
# MCH073: use-after-release / use-after-migrate
# ----------------------------------------------------------------------
def test_typestate_use_after_release_and_migrate():
    findings, _stats, _covered = flow_findings("typestate")
    path = fixture_path("typestate", "handles.py")
    found = by_rule(findings, "MCH073")

    use_line = line_of(path, 'handle.put("k", "v")')
    assert any(f.line == use_line and "destroy()" in f.message for f in found)

    arg_line = line_of(path, "auditor.record(handle)")
    assert any(f.line == arg_line and "passes" in f.message for f in found)

    migrate_use = line_of(path, 'yield from provider.put("k", "v")')
    assert any(
        f.line == migrate_use and "migrated away" in f.message for f in found
    )

    # Negatives: the rebound handle and the teardown-only epilogue.
    rebound_start = line_of(path, "def retire_rebound_ok")
    rebound_end = line_of(path, "def handoff_bad") - 1
    assert not lines_near(found, path, rebound_start, rebound_end)
    ok_start = line_of(path, "def handoff_ok")
    assert not [f for f in found if f.line >= ok_start]


# ----------------------------------------------------------------------
# MCH074: span leaked on an exception path
# ----------------------------------------------------------------------
def test_span_leak_positive_and_negatives():
    findings, _stats, _covered = flow_findings("span")
    path = fixture_path("span", "handlers.py")
    found = by_rule(findings, "MCH074")

    # Exactly one leak: migrate_bad's start line, naming the variable
    # and the escaping statement's line.
    assert len(found) == 1
    leak = found[0]
    assert leak.path == path
    assert leak.line == line_of(path, "span = tracer.start_span")
    assert "'span'" in leak.message
    assert "finally" in leak.message

    # Negatives: try/finally, end-before-risky, and escape-to-callee
    # functions are all clean.
    guarded_start = line_of(path, "def migrate_guarded")
    assert not [f for f in found if f.line >= guarded_start]


def test_span_rule_registered_under_observability():
    from repro.analysis.registry import GROUP_OBSERVABILITY, rule_catalog

    infos = {info.id: info for info in rule_catalog()}
    assert "MCH074" in infos
    assert infos["MCH074"].group == GROUP_OBSERVABILITY
    from repro.analysis.flow import FLOW_RULE_IDS

    assert "MCH074" in FLOW_RULE_IDS


# ----------------------------------------------------------------------
# cross-cutting behavior
# ----------------------------------------------------------------------
def test_select_ignore_filters_apply():
    findings, _stats, _covered = flow_findings(
        "respond", "lock", ignore=["MCH070"]
    )
    assert not by_rule(findings, "MCH070")
    assert by_rule(findings, "MCH071")

    findings, _stats, _covered = flow_findings(
        "respond", "lock", select=["MCH070"]
    )
    assert by_rule(findings, "MCH070")
    assert not by_rule(findings, "MCH071")


def test_findings_are_sorted_and_tagged():
    findings, _stats, _covered = flow_findings(
        "respond", "lock", "resource", "typestate"
    )
    keys = [(f.path, f.line, f.rule_id, f.message) for f in findings]
    assert keys == sorted(keys)
    assert all(f.source == "flow" for f in findings)


def test_run_flow_is_deterministic():
    first, _s1, _c1 = flow_findings("respond", "lock", "resource", "typestate")
    second, _s2, _c2 = flow_findings("respond", "lock", "resource", "typestate")
    assert [f.__dict__ for f in first] == [f.__dict__ for f in second]
