"""Tests for SSG observers and Colza's 2PC-consistent view updates."""

import pytest

from repro import Cluster
from repro.colza import ColzaClient, ColzaError, ColzaProvider
from repro.ssg import SSGError, SSGObserver, SwimConfig, create_group

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


def make_group(n, seed=91):
    cluster = Cluster(seed=seed)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(n)]
    groups = create_group("svc", margos, cluster.randomness, swim=SWIM)
    return cluster, margos, groups


# ----------------------------------------------------------------------
# SSGObserver
# ----------------------------------------------------------------------
def test_observer_fetches_view_without_membership():
    cluster, margos, groups = make_group(4)
    cluster.run(until=2.0)
    app = cluster.add_margo("app", node="na")
    observer = SSGObserver(app, "svc", [margos[0].address], rpc_timeout=0.5)

    def driver():
        view = yield from observer.refresh()
        return view

    view = cluster.run_ult(app, driver())
    assert view.size == 4
    assert observer.view_hash == groups[0].view_hash
    # The observer itself never joined.
    assert app.address not in view.members


def test_observer_tracks_membership_changes():
    cluster, margos, groups = make_group(4)
    cluster.run(until=2.0)
    app = cluster.add_margo("app", node="na")
    observer = SSGObserver(app, "svc", [margos[1].address], rpc_timeout=0.5)

    def refresh():
        view = yield from observer.refresh()
        return view

    assert cluster.run_ult(app, refresh()).size == 4
    cluster.faults.kill_process(margos[0].process)
    cluster.run(until=cluster.now + 30.0)
    view = cluster.run_ult(app, refresh())
    assert view.size == 3
    assert margos[0].address not in view.members
    assert observer.refreshes == 2


def test_observer_fails_over_dead_bootstrap():
    cluster, margos, groups = make_group(3)
    cluster.run(until=2.0)
    app = cluster.add_margo("app", node="na")
    observer = SSGObserver(
        app, "svc", [margos[0].address, margos[1].address], rpc_timeout=0.3
    )
    cluster.faults.kill_process(margos[0].process)

    def refresh():
        return (yield from observer.refresh())

    assert cluster.run_ult(app, refresh()).size >= 2  # served by margos[1]


def test_observer_errors():
    cluster = Cluster(seed=92)
    app = cluster.add_margo("app", node="na")
    with pytest.raises(SSGError):
        SSGObserver(app, "svc", [])
    observer = SSGObserver(app, "svc", ["na+ofi://ghost/x"], rpc_timeout=0.2)
    with pytest.raises(SSGError, match="no view yet"):
        observer.view

    def refresh():
        yield from observer.refresh()

    with pytest.raises(SSGError, match="no reachable member"):
        cluster.run_ult(app, refresh())


# ----------------------------------------------------------------------
# Colza 2PC view updates
# ----------------------------------------------------------------------
def colza_rig(n=4, seed=93):
    cluster, margos, groups = make_group(n, seed=seed)
    providers = [
        ColzaProvider(margo, f"colza{i}", provider_id=1, group=group)
        for i, (margo, group) in enumerate(zip(margos, groups))
    ]
    app = cluster.add_margo("app", node="na")
    pipeline = ColzaClient(app).make_pipeline_handle(
        [m.address for m in margos], provider_id=1
    )
    return cluster, margos, providers, app, pipeline


def test_2pc_view_commit_and_use():
    cluster, margos, providers, app, pipeline = colza_rig()
    new_members = [m.address for m in margos[:2]]  # shrink to 2

    def driver():
        ok = yield from pipeline.update_view(new_members)
        # Staging under the committed view works against those members.
        yield from pipeline.stage(1, [b"x" * 512] * 4)
        result = yield from pipeline.execute(1)
        return ok, result

    ok, result = cluster.run_ult(app, driver())
    assert ok is True
    assert result["members"] == 2
    assert providers[0].committed_view == sorted(new_members)
    assert providers[1].committed_view == sorted(new_members)


def test_2pc_view_is_immune_to_ssg_churn():
    """The committed view overrides the eventually consistent SSG view:
    killing a *non-member* of the committed view does not invalidate
    client hashes (no stale rejections)."""
    cluster, margos, providers, app, pipeline = colza_rig()
    new_members = [m.address for m in margos[:2]]

    def commit():
        yield from pipeline.update_view(new_members)

    cluster.run_ult(app, commit())
    # Kill a member outside the committed view; SSG views churn.
    cluster.faults.kill_process(margos[3].process)
    cluster.run(until=cluster.now + 30.0)
    rejections_before = sum(p.stale_rejections for p in providers[:2])

    def work():
        yield from pipeline.stage(2, [b"y" * 256] * 2)
        return (yield from pipeline.execute(2))

    result = cluster.run_ult(app, work())
    assert result["members"] == 2
    assert sum(p.stale_rejections for p in providers[:2]) == rejections_before


def test_2pc_view_aborts_when_member_not_in_proposal():
    cluster, margos, providers, app, pipeline = colza_rig()

    # Craft a conflict: provider 0 has a pending transaction already.
    providers[0]._pending_view = ("other-tx", [margos[0].address])

    def driver():
        yield from pipeline.update_view([m.address for m in margos[:2]])

    with pytest.raises(ColzaError, match="aborted"):
        cluster.run_ult(app, driver())
    # Nothing committed anywhere.
    assert providers[1].committed_view is None


def test_2pc_view_validation():
    cluster, margos, providers, app, pipeline = colza_rig()

    def driver():
        yield from pipeline.update_view([])

    with pytest.raises(ColzaError, match="at least one member"):
        cluster.run_ult(app, driver())


def test_2pc_commit_unknown_tx_rejected():
    cluster, margos, providers, app, pipeline = colza_rig()
    from repro.margo import RpcFailedError

    def driver():
        yield from app.forward(
            margos[0].address, "colza_commit_view", {"txid": "ghost"},
            provider_id=1, timeout=1.0,
        )

    with pytest.raises(RpcFailedError, match="unknown view transaction"):
        cluster.run_ult(app, driver())
