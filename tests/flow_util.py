"""Shared helpers for the mochi-flow (CFG/typestate) test modules."""

from __future__ import annotations

import ast
import os

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "flow")


def fixture_path(*names: str) -> str:
    return os.path.join(FIXTURES, *names)


def parse_fixture(*packages: str) -> list[tuple[str, ast.Module, str]]:
    """``(path, tree, source)`` triples for fixture packages, sorted."""
    parsed = []
    for pkg in packages:
        root = fixture_path(pkg)
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                parsed.append((path, ast.parse(source, filename=path), source))
    return parsed


def line_of(path: str, needle: str) -> int:
    """1-based line of the first occurrence of ``needle`` in ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if needle in line:
                return lineno
    raise AssertionError(f"{needle!r} not found in {path}")


def func_cfg(source: str, name: str, **kwargs):
    """Build the CFG of one function defined in ``source``."""
    from repro.analysis.flow.cfg import build_cfg

    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == name:
                return build_cfg(node, **kwargs)
    raise AssertionError(f"no function {name!r} in source")
