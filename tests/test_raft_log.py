"""Unit + property tests for the Raft log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raft import CompactedError, LogEntry, RaftLog


def filled_log(terms):
    log = RaftLog()
    for term in terms:
        log.append_new(term, f"cmd-{term}")
    return log


def test_empty_log():
    log = RaftLog()
    assert log.last_index == 0
    assert log.last_term == 0
    assert log.term_at(0) == 0
    assert len(log) == 0
    assert not log.has_index(1)


def test_append_and_lookup():
    log = filled_log([1, 1, 2])
    assert log.last_index == 3
    assert log.last_term == 2
    assert log.term_at(2) == 1
    assert log.entry_at(3).command == "cmd-2"
    with pytest.raises(IndexError):
        log.entry_at(4)


def test_match_and_append_success():
    log = filled_log([1, 1])
    new = [LogEntry(2, 3, "x"), LogEntry(2, 4, "y")]
    assert log.match_and_append(2, 1, new)
    assert log.last_index == 4


def test_match_and_append_rejects_gap():
    log = filled_log([1])
    assert not log.match_and_append(5, 1, [LogEntry(1, 6, "x")])


def test_match_and_append_rejects_term_mismatch():
    log = filled_log([1, 1])
    assert not log.match_and_append(2, 9, [LogEntry(2, 3, "x")])


def test_match_and_append_truncates_conflicts():
    log = filled_log([1, 1, 1])
    # Replace index 2..3 with term-2 entries.
    assert log.match_and_append(1, 1, [LogEntry(2, 2, "a"), LogEntry(2, 3, "b")])
    assert log.term_at(2) == 2
    assert log.entry_at(3).command == "b"
    assert log.last_index == 3


def test_match_and_append_idempotent_duplicates():
    log = filled_log([1, 1])
    dup = [LogEntry(1, 1, "cmd-1"), LogEntry(1, 2, "cmd-1")]
    assert log.match_and_append(0, 0, dup)
    assert log.last_index == 2


def test_compaction():
    log = filled_log([1, 2, 3, 4])
    log.compact_to(2)
    assert log.snapshot_index == 2
    assert log.snapshot_term == 2
    assert log.first_index == 3
    assert log.last_index == 4
    assert log.term_at(2) == 2  # boundary still answerable
    with pytest.raises(CompactedError):
        log.entry_at(1)
    with pytest.raises(CompactedError):
        log.entries_from(1)
    # Compaction is monotone.
    log.compact_to(1)
    assert log.snapshot_index == 2


def test_entries_from_with_limit():
    log = filled_log([1, 1, 1, 1])
    assert [e.index for e in log.entries_from(2)] == [2, 3, 4]
    assert [e.index for e in log.entries_from(2, limit=2)] == [2, 3]


def test_reset_to_snapshot():
    log = filled_log([1, 2])
    log.reset_to_snapshot(10, 5)
    assert log.last_index == 10
    assert log.last_term == 5
    assert len(log) == 0


def test_up_to_date_rule():
    log = filled_log([1, 2])  # last (index=2, term=2)
    assert log.is_up_to_date(2, 2)
    assert log.is_up_to_date(5, 2)
    assert log.is_up_to_date(1, 3)  # higher term wins
    assert not log.is_up_to_date(1, 2)  # same term, shorter
    assert not log.is_up_to_date(99, 1)  # lower term loses


def test_match_after_compaction_boundary():
    log = filled_log([1, 1, 2])
    log.compact_to(2)
    # prev at the snapshot boundary works.
    assert log.match_and_append(2, 1, [LogEntry(2, 3, "cmd-2")])
    # wrong term at boundary fails.
    assert not log.match_and_append(2, 9, [LogEntry(3, 3, "x")])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30))
def test_terms_are_monotone_under_append(terms):
    """Raft invariant: appended terms never decrease (leaders only append
    in their own term, which only grows)."""
    log = RaftLog()
    for term in sorted(terms):
        log.append_new(term, None)
    collected = [log.term_at(i) for i in range(1, log.last_index + 1)]
    assert collected == sorted(collected)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=20),
)
def test_compaction_preserves_suffix(n, cut):
    log = RaftLog()
    for i in range(1, n + 1):
        log.append_new(1, f"c{i}")
    cut = min(cut, n)
    log.compact_to(cut)
    for i in range(cut + 1, n + 1):
        assert log.entry_at(i).command == f"c{i}"
    assert log.last_index == n
