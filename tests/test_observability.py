"""Tests for the observability plane: metrics registry, tracer, exporters.

The acceptance scenario from the issue lives here: a nested RPC
(a -> b "relay" -> c "leaf") with tracing enabled must produce a single
trace whose spans form the correct parent/child tree, exported as valid
Chrome trace-event JSON, byte-identical across two runs with the same
seed.
"""

import json

import pytest

from repro import Cluster
from repro.bedrock import BedrockClient, boot_process
from repro.margo import MargoConfig
from repro.margo.errors import ConfigError
from repro.observability import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    ObservabilitySpec,
    Tracer,
    build_trace_tree,
    chrome_trace,
    collect_spans,
    dumps_chrome_trace,
    dumps_metrics,
)
from repro.tools import trace_report

TRACED = {"observability": {"tracing": True}}


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_counter_is_monotonic():
    registry = MetricsRegistry()
    c = registry.counter("reqs", "requests served")
    c.inc()
    c.inc(2.5)
    assert c.value == pytest.approx(3.5)
    with pytest.raises(MetricError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = MetricsRegistry().gauge("inflight")
    g.inc()
    g.inc()
    g.dec()
    assert g.value == 1.0
    g.set(7)
    assert g.value == 7.0


def test_histogram_buckets_and_summary():
    h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 0.5, 5.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(6.05)
    assert h.min == 0.05 and h.max == 5.0
    doc = h.to_json()
    assert doc["buckets"] == {"le:0.1": 1, "le:1": 2, "le:+inf": 1}


def test_histogram_default_buckets_sorted():
    assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


def test_labelled_family_one_series_per_label_set():
    registry = MetricsRegistry()
    fam = registry.counter("pings", "pings", label_names=("group",))
    fam.labels(group="g1").inc()
    fam.labels(group="g1").inc()
    fam.labels(group="g2").inc(5)
    assert fam.labels(group="g1").value == 2.0
    assert fam.labels(group="g2").value == 5.0
    assert [s.labels_key for s in fam.series] == ["group=g1", "group=g2"]
    with pytest.raises(MetricError, match="takes labels"):
        fam.labels(grp="oops")


def test_registration_is_idempotent_but_kind_checked():
    registry = MetricsRegistry()
    a = registry.counter("x", "first")
    b = registry.counter("x", "second registration ignored")
    assert a is b
    with pytest.raises(MetricError, match="already registered as a counter"):
        registry.gauge("x")
    registry.counter("y", label_names=("a",))
    with pytest.raises(MetricError, match="already registered with labels"):
        registry.counter("y", label_names=("b",))


def test_disabled_registry_counts_but_exports_nothing():
    registry = MetricsRegistry(enabled=False)
    c = registry.counter("still_works")
    c.inc(3)
    assert c.value == 3.0  # live counters keep backing properties
    assert registry.snapshot() == {}
    assert json.loads(registry.dumps()) == {}


def test_snapshot_shape_and_determinism():
    registry = MetricsRegistry()
    registry.counter("b_metric", "help b").inc()
    registry.gauge("a_metric").set(2)
    snap = registry.snapshot()
    assert list(snap) == ["a_metric", "b_metric"]  # sorted
    assert snap["b_metric"]["kind"] == "counter"
    assert snap["b_metric"]["help"] == "help b"
    assert snap["b_metric"]["series"][""] == {"value": 1.0}
    assert registry.dumps() == registry.dumps()


# ----------------------------------------------------------------------
# runtime integration: counters replace the ad-hoc ones
# ----------------------------------------------------------------------
def test_margo_runtime_counters_live_in_registry():
    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        for _ in range(3):
            yield from client.forward(server.address, "echo", "x")

    cluster.run_ult(client, driver())
    assert client.rpcs_sent == 3
    assert server.rpcs_handled == 3
    snap = client.metrics.snapshot()
    assert snap["margo_rpcs_sent"]["series"][""]["value"] == 3.0
    cluster_doc = cluster.metrics_snapshot()
    assert set(cluster_doc) == {"server", "client"}
    assert cluster_doc["server"]["margo_rpcs_handled"]["series"][""]["value"] == 3.0


# ----------------------------------------------------------------------
# satellite: a faulty monitor must not take the data path down
# ----------------------------------------------------------------------
def test_faulty_monitor_contained_and_counted():
    class ExplodingMonitor:
        def on_forward_start(self, **kwargs):
            # The raise is the point: the runtime must contain it.
            raise RuntimeError("monitor bug")  # mochi-lint: disable=MCH013 -- faulty-hook fixture

        def on_ult_start(self, **kwargs):
            raise ValueError("another monitor bug")  # mochi-lint: disable=MCH013 -- faulty-hook fixture

    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0", monitors=(ExplodingMonitor(),))
    client = cluster.add_margo("client", node="n1", monitors=(ExplodingMonitor(),))
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", "payload"))

    # The RPC succeeds despite both monitors raising on the fast path...
    assert cluster.run_ult(client, driver()) == "payload"
    # ...and the failures are visible in the error counter.
    assert client.monitor_errors >= 1
    assert server.monitor_errors >= 1


def test_faulty_monitor_does_not_starve_healthy_monitors():
    fired = []

    class Exploding:
        def on_respond(self, **kwargs):
            raise RuntimeError("boom")

    class Healthy:
        def on_respond(self, **kwargs):
            fired.append("respond")

    cluster = Cluster(seed=1)
    server = cluster.add_margo(
        "server", node="n0", monitors=(Exploding(), Healthy())
    )
    client = cluster.add_margo("client", node="n1")
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", 1))

    cluster.run_ult(client, driver())
    assert fired == ["respond"]


# ----------------------------------------------------------------------
# tracing: the acceptance scenario
# ----------------------------------------------------------------------
def nested_rpc_run(seed=1):
    """a --relay--> b --leaf--> c, all three traced."""
    cluster = Cluster(seed=seed)
    a = cluster.add_margo("a", node="n0", config=TRACED)
    b = cluster.add_margo("b", node="n1", config=TRACED)
    c = cluster.add_margo("c", node="n2", config=TRACED)
    c.register("leaf", lambda ctx: 1, provider_id=7)

    def relay(ctx):
        return (yield from b.forward(c.address, "leaf", provider_id=7))

    b.register("relay", relay, provider_id=3)

    def driver():
        return (yield from a.forward(b.address, "relay", provider_id=3))

    assert cluster.run_ult(a, driver()) == 1
    return cluster


def test_nested_rpc_single_trace_with_correct_tree():
    cluster = nested_rpc_run()
    spans = collect_spans(*cluster.tracers())
    trace_ids = {s.trace_id for s in spans}
    assert trace_ids == {"a:1"}  # ONE causal trace, rooted at a's call

    by_id = {s.span_id: s for s in spans}
    # Root forward span on the client.
    root = by_id["a:1"]
    assert root.category == "forward" and root.parent_span_id == ""
    assert root.process == "a" and root.name == "relay"
    # Server-side phases of the root request hang off it.
    assert by_id["a:1/w"].category == "wire"
    assert by_id["a:1/w"].parent_span_id == "a:1"
    assert by_id["a:1/q"].category == "queue"
    assert by_id["a:1/h"].category == "handler"
    assert by_id["a:1/h"].process == "b"
    # The nested forward is parented to the handler that issued it.
    nested = by_id["b:1"]
    assert nested.name == "leaf"
    assert nested.trace_id == "a:1"
    assert nested.parent_span_id == "a:1/h"
    assert by_id["b:1/h"].process == "c"
    # Tree structure: one root; nested forward under the relay handler.
    (tree_root,) = build_trace_tree(spans, "a:1")
    assert tree_root["span"]["span_id"] == "a:1"
    handler = next(
        n for n in tree_root["children"] if n["span"]["span_id"] == "a:1/h"
    )
    assert any(n["span"]["span_id"] == "b:1" for n in handler["children"])
    # Timing sanity: children fit inside their parents.
    assert root.start <= by_id["a:1/h"].start <= by_id["a:1/h"].end <= root.end
    assert by_id["a:1/h"].start <= nested.start <= nested.end <= by_id["a:1/h"].end


def test_nested_rpc_chrome_trace_is_valid_and_deterministic():
    first = nested_rpc_run(seed=1).dumps_chrome_trace()
    second = nested_rpc_run(seed=1).dumps_chrome_trace()
    assert first == second  # byte-identical across runs: acceptance criterion

    doc = json.loads(first)
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    assert len(events) >= 9  # 2x (forward, wire, queue, handler, respond) - root respond overlap
    for event in events:
        assert event["ph"] == "X"
        assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
        assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
        assert event["tid"] == "a:1"
        assert event["pid"] in {"a", "b", "c"}
        assert "span_id" in event["args"]
        assert "parent_span_id" in event["args"]


def test_wire_span_pairs_across_different_tracers():
    # Client and server have *separate* tracer instances; the wire span
    # only exists once their edge halves are merged at export time.
    cluster = nested_rpc_run()
    a_tracer = cluster.margos["a"].tracer
    b_tracer = cluster.margos["b"].tracer
    solo_a = collect_spans(a_tracer)
    assert not any(s.category == "wire" for s in solo_a)  # one-sided: skipped
    paired = collect_spans(a_tracer, b_tracer)
    wire = [s for s in paired if s.span_id == "a:1/w"]
    assert len(wire) == 1
    assert wire[0].attributes == {"src": "a", "dst": "b"}
    assert wire[0].end >= wire[0].start


def test_tracing_off_by_default():
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("m", node="n0")
    assert margo.tracer is None
    assert cluster.tracers() == []
    assert cluster.chrome_trace() == {"traceEvents": [], "displayTimeUnit": "ms"}


def test_max_spans_drops_and_counts():
    cluster = Cluster(seed=1)
    server = cluster.add_margo(
        "server", node="n0", config={"observability": {"tracing": True, "max_spans": 2}}
    )
    client = cluster.add_margo("client", node="n1", config=TRACED)
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        for _ in range(5):
            yield from client.forward(server.address, "echo", "x")

    cluster.run_ult(client, driver())
    assert len(server.tracer.spans) == 2
    assert server.tracer.dropped_spans > 0
    assert server.tracer.to_json()["dropped_spans"] == server.tracer.dropped_spans


def test_bulk_span_attaches_to_enclosing_trace():
    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0", config=TRACED)
    client = cluster.add_margo("client", node="n1", config=TRACED)

    def pull(ctx):
        yield from server.bulk_transfer(ctx.source, 1 << 20)
        return "done"

    server.register("pull", pull)

    def driver():
        return (yield from client.forward(server.address, "pull"))

    cluster.run_ult(client, driver())
    bulk = [s for s in server.tracer.spans if s.category == "bulk"]
    assert len(bulk) == 1
    assert bulk[0].trace_id == "client:1"  # inside the RPC's trace
    assert bulk[0].parent_span_id == "client:1/h"
    assert bulk[0].attributes["size"] == 1 << 20


def test_record_span_roots_own_trace_outside_rpc():
    tracer = Tracer()
    span = tracer.record_span("compaction", "maintenance", "p0", 1.0, 2.5)
    assert span.trace_id == span.span_id
    assert span.parent_span_id == ""
    assert span.duration == pytest.approx(1.5)
    assert tracer.trace_ids() == [span.trace_id]


def test_trace_report_renders_tree():
    cluster = nested_rpc_run()
    text = trace_report(*cluster.tracers())
    assert "trace a:1" in text
    assert "relay" in text and "leaf" in text
    assert "handler" in text and "wire" in text
    # The nested forward is indented under the relay handler.
    lines = text.splitlines()
    (relay_handler_line,) = [
        l for l in lines if "(a:1/h)" in l
    ]
    (nested_line,) = [l for l in lines if "(b:1)" in l]
    indent = lambda l: len(l) - len(l.lstrip())
    assert indent(nested_line) > indent(relay_handler_line)
    # Unknown trace id and the empty case degrade gracefully.
    assert "no trace" in trace_report(*cluster.tracers(), trace_id="nope")
    assert "no spans" in trace_report(Tracer())


# ----------------------------------------------------------------------
# configuration surface
# ----------------------------------------------------------------------
def test_observability_spec_parses_and_validates():
    spec = ObservabilitySpec.from_json({"tracing": True, "max_spans": 10})
    assert spec.tracing and spec.metrics and spec.max_spans == 10
    assert ObservabilitySpec.from_json(None) == ObservabilitySpec()
    with pytest.raises(ValueError, match="unknown observability keys"):
        ObservabilitySpec.from_json({"traicng": True})
    with pytest.raises(ValueError, match="must be positive"):
        ObservabilitySpec.from_json({"max_spans": 0})
    with pytest.raises(ValueError, match="must be an object"):
        ObservabilitySpec.from_json([1])


def test_margo_config_round_trips_observability():
    config = MargoConfig.from_json(
        {"observability": {"tracing": True, "metrics": False, "max_spans": 5}}
    )
    assert config.observability == ObservabilitySpec(
        tracing=True, metrics=False, max_spans=5
    )
    again = MargoConfig.from_json(config.to_json())
    assert again.observability == config.observability
    with pytest.raises(ConfigError, match="unknown observability keys"):
        MargoConfig.from_json({"observability": {"bogus": 1}})


def test_margo_get_config_reflects_observability():
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("m", node="n0", config=TRACED)
    doc = margo.get_config()
    assert doc["observability"] == {"tracing": True, "metrics": True}


def test_metrics_spec_disables_snapshot_but_not_counters():
    cluster = Cluster(seed=1)
    server = cluster.add_margo(
        "server", node="n0", config={"observability": {"metrics": False}}
    )
    client = cluster.add_margo("client", node="n1")
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", 1))

    cluster.run_ult(client, driver())
    assert server.rpcs_handled == 1  # live property still works
    assert server.metrics.snapshot() == {}
    assert cluster.metrics_snapshot()["server"] == {}


# ----------------------------------------------------------------------
# bedrock query surface
# ----------------------------------------------------------------------
def test_bedrock_serves_metrics_and_traces():
    cluster = Cluster(seed=41)
    margo, bedrock = boot_process(
        cluster,
        "server",
        "n0",
        {
            "margo": {"observability": {"tracing": True}},
            "libraries": {"yokan": "libyokan.so"},
            "providers": [
                {
                    "name": "db",
                    "type": "yokan",
                    "provider_id": 1,
                    "config": {"database": {"type": "map"}},
                }
            ],
        },
    )
    client_margo = cluster.add_margo("client", node="nc")
    handle = BedrockClient(client_margo).make_service_handle(margo.address)

    def driver():
        metrics = yield from handle.get_metrics()
        traces = yield from handle.get_traces()
        return metrics, traces

    metrics, traces = cluster.run_ult(client_margo, driver())
    # The metrics document is the remote registry snapshot...
    assert metrics["bedrock_providers_started"]["series"][""]["value"] == 1.0
    # The snapshot is taken *inside* the get_metrics handler, so that
    # very RPC shows up as an in-flight handler ULT.
    assert metrics["margo_inflight_incoming"]["series"][""]["value"] == 1.0
    assert "margo_rpcs_handled" in metrics
    # ...and the trace document is Chrome trace-event shaped, already
    # containing the server-side spans of the get_metrics call itself.
    assert traces["displayTimeUnit"] == "ms"
    assert any(
        e["name"] == "bedrock_get_metrics" and e["cat"] == "handler"
        for e in traces["traceEvents"]
    )


def test_bedrock_get_traces_without_tracer_is_empty():
    cluster = Cluster(seed=41)
    margo, _ = boot_process(cluster, "server", "n0", {})
    client_margo = cluster.add_margo("client", node="nc")
    handle = BedrockClient(client_margo).make_service_handle(margo.address)

    def driver():
        return (yield from handle.get_traces())

    traces = cluster.run_ult(client_margo, driver())
    assert traces == {"traceEvents": [], "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# exporters: metrics documents
# ----------------------------------------------------------------------
def test_dumps_metrics_is_sorted_and_stable():
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    r1.counter("z").inc()
    r2.counter("a").inc(2)
    text = dumps_metrics({"p2": r2, "p1": r1})
    doc = json.loads(text)
    assert list(doc) == ["p1", "p2"]
    assert text == dumps_metrics({"p1": r1, "p2": r2})


def test_chrome_trace_merges_multiple_tracers():
    cluster = nested_rpc_run()
    merged = chrome_trace(*cluster.tracers())
    solo = chrome_trace(cluster.margos["a"].tracer)
    assert len(merged["traceEvents"]) > len(solo["traceEvents"])
    assert dumps_chrome_trace(*cluster.tracers()) == cluster.dumps_chrome_trace()
