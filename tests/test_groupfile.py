"""Tests for SSG group files and the HEPnOS scan-equivalence property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.ssg import (
    SSGError,
    SwimConfig,
    create_group,
    observer_from_group_file,
    read_group_file,
    write_group_file,
)
from repro.storage import ParallelFileSystem

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


def make_group(n=3, seed=95):
    cluster = Cluster(seed=seed)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(n)]
    groups = create_group("svc", margos, cluster.randomness, swim=SWIM)
    cluster.run(until=2.0)
    return cluster, margos, groups


def test_group_file_roundtrip():
    cluster, margos, groups = make_group()
    pfs = ParallelFileSystem()
    write_group_file(pfs, "svc.ssg", groups[0])
    doc = read_group_file(pfs, "svc.ssg")
    assert doc["group_name"] == "svc"
    assert doc["members"] == sorted(m.address for m in margos)
    assert doc["hash"] == groups[0].view_hash


def test_observer_bootstraps_from_group_file():
    cluster, margos, groups = make_group()
    pfs = ParallelFileSystem()
    write_group_file(pfs, "svc.ssg", groups[0])
    app = cluster.add_margo("app", node="na")
    observer = observer_from_group_file(app, pfs, "svc.ssg", rpc_timeout=0.5)

    def refresh():
        return (yield from observer.refresh())

    view = cluster.run_ult(app, refresh())
    assert view.size == 3


def test_observer_from_stale_group_file_still_works():
    """A group file written before churn still bootstraps, as long as
    one listed member is alive (the observer fails over)."""
    cluster, margos, groups = make_group(n=4, seed=96)
    pfs = ParallelFileSystem()
    write_group_file(pfs, "svc.ssg", groups[0])
    # After the file was written, the first two members die.
    cluster.faults.kill_process(margos[0].process)
    cluster.faults.kill_process(margos[1].process)
    cluster.run(until=cluster.now + 30.0)
    app = cluster.add_margo("app", node="na")
    observer = observer_from_group_file(app, pfs, "svc.ssg", rpc_timeout=0.3)

    def refresh():
        return (yield from observer.refresh())

    view = cluster.run_ult(app, refresh())
    assert view.size == 2
    assert margos[0].address not in view.members


def test_group_file_validation():
    pfs = ParallelFileSystem()
    with pytest.raises(SSGError, match="unreadable"):
        read_group_file(pfs, "missing.ssg")
    pfs.write("bad.ssg", b"not json")
    with pytest.raises(SSGError, match="unreadable"):
        read_group_file(pfs, "bad.ssg")
    pfs.write("v0.ssg", b'{"version": 0}')
    with pytest.raises(SSGError, match="version"):
        read_group_file(pfs, "v0.ssg")
    pfs.write("empty.ssg",
              b'{"version": 1, "group_name": "g", "provider_id": 1, "members": []}')
    with pytest.raises(SSGError, match="no members"):
        read_group_file(pfs, "empty.ssg")


# ----------------------------------------------------------------------
# HEPnOS: paged iteration must agree with the parallel bulk scan
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # run
            st.integers(min_value=0, max_value=2),   # subrun
            st.integers(min_value=0, max_value=30),  # event
        ),
        min_size=1,
        max_size=40,
        unique=True,
    ),
    st.integers(min_value=1, max_value=16),  # page size
)
def test_hepnos_iterate_matches_list(events, page_size):
    from repro.hepnos import EventKey, HEPnOSService

    cluster = Cluster(seed=97)
    service = HEPnOSService.deploy(cluster, ["n0", "n1"], databases_per_process=2)
    app = cluster.add_margo("app", node="na")
    client = service.client(app)

    def driver():
        items = [
            (EventKey("ds", run, subrun, event), "raw", b"x")
            for run, subrun, event in events
        ]
        yield from client.store_batch(items)
        listed = yield from client.list_events("ds")
        iterated = yield from client.iterate_events("ds", page_size=page_size)
        return listed, iterated

    listed, iterated = cluster.run_ult(app, driver())
    assert listed == iterated
    assert len(listed) == len(events)
