"""Tests for SSG: views, SWIM state machine, and live group behaviour."""

import pytest

from repro import Cluster
from repro.ssg import (
    GroupView,
    MemberStatus,
    SSGError,
    SSGGroup,
    SwimConfig,
    SwimState,
    Update,
    create_group,
    join_group,
    view_hash_of,
)

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


# ----------------------------------------------------------------------
# GroupView
# ----------------------------------------------------------------------
def test_view_hash_is_order_independent():
    assert view_hash_of(["b", "a"]) == view_hash_of(["a", "b"])
    assert view_hash_of(["a"]) != view_hash_of(["a", "b"])


def test_view_basics():
    view = GroupView.of("g", ["b", "a", "c"], epoch=3)
    assert view.members == ("a", "b", "c")
    assert view.size == 3
    assert "a" in view
    assert view.index_of("b") == 1
    assert len(view.hash) == 16


# ----------------------------------------------------------------------
# SWIM state machine (no network)
# ----------------------------------------------------------------------
def make_state(self_addr="self", members=("m1", "m2")):
    state = SwimState(self_addr, SWIM)
    for m in members:
        state.local_join(m)
    return state


def test_swim_join_and_view():
    state = make_state()
    assert state.view_members() == ["m1", "m2", "self"]
    assert state.alive_members() == ["m1", "m2", "self"]


def test_swim_suspect_then_confirm():
    state = make_state()
    state.local_suspect("m1", now=10.0)
    assert state.status_of("m1") == MemberStatus.SUSPECT
    assert "m1" in state.view_members()  # suspects stay in view
    assert state.suspects_older_than(8.0) == []  # not overdue yet
    assert state.suspects_older_than(12.0) == ["m1"]
    state.local_confirm_dead("m1")
    assert state.status_of("m1") == MemberStatus.DEAD
    assert "m1" not in state.view_members()


def test_swim_alive_refutes_suspect_with_higher_incarnation():
    state = make_state()
    state.local_suspect("m1", now=1.0)
    # Same incarnation: does NOT refute.
    assert not state.apply(Update("alive", "m1", 0), now=2.0)
    assert state.status_of("m1") == MemberStatus.SUSPECT
    # Higher incarnation: refutes.
    assert state.apply(Update("alive", "m1", 1), now=2.0)
    assert state.status_of("m1") == MemberStatus.ALIVE


def test_swim_dead_overrides_everything():
    state = make_state()
    state.apply(Update("dead", "m1", 0), now=1.0)
    assert state.status_of("m1") == MemberStatus.DEAD
    # Stale alive at same incarnation cannot resurrect.
    assert not state.apply(Update("alive", "m1", 0), now=2.0)
    # Higher incarnation can (the member really is back).
    assert state.apply(Update("alive", "m1", 5), now=3.0)
    assert state.status_of("m1") == MemberStatus.ALIVE


def test_swim_self_refutation_bumps_incarnation():
    state = make_state()
    assert state.incarnation == 0
    state.apply(Update("suspect", "self", 0), now=1.0)
    assert state.incarnation == 1
    # The refutation is queued for dissemination.
    wire = state.collect_piggyback()
    assert {"kind": "alive", "address": "self", "incarnation": 1} in wire


def test_swim_piggyback_budget_decays():
    state = make_state(members=())
    state.local_join("m1")
    drained = 0
    while state.collect_piggyback():
        drained += 1
        assert drained < 50  # budget must be finite
    assert drained >= 1


def test_swim_snapshot_roundtrip():
    state = make_state()
    state.local_suspect("m2", now=1.0)
    rows = state.snapshot()
    other = SwimState("other", SWIM)
    other.load_snapshot(rows)
    assert set(other.view_members()) == {"m1", "m2", "other", "self"}
    assert other.status_of("m2") == MemberStatus.SUSPECT


def test_swim_config_validation():
    with pytest.raises(ValueError):
        SwimConfig(period=0.1, ping_timeout=0.2)
    with pytest.raises(ValueError):
        SwimConfig(suspicion_timeout=0)
    with pytest.raises(ValueError):
        SwimConfig(ping_req_k=-1)


def test_swim_unknown_update_kind():
    state = make_state()
    with pytest.raises(ValueError):
        state.apply(Update("zombie", "m1", 0), now=0.0)


# ----------------------------------------------------------------------
# live groups
# ----------------------------------------------------------------------
def make_cluster(n, seed=11):
    cluster = Cluster(seed=seed)
    margos = [cluster.add_margo(f"p{i}", node=f"n{i}") for i in range(n)]
    return cluster, margos


def test_group_creation_consistent_views():
    cluster, margos = make_cluster(4)
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    cluster.run(until=3.0)
    hashes = {g.view_hash for g in groups}
    assert len(hashes) == 1
    assert groups[0].view.size == 4


def test_group_detects_dead_member():
    cluster, margos = make_cluster(5)
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    deaths = []
    for g in groups[1:]:
        g.on_member_died.append(lambda addr, g=g: deaths.append((g.margo.address, addr)))
    cluster.run(until=2.0)
    victim = margos[0]
    cluster.faults.kill_process(victim.process)
    cluster.run(until=30.0)
    survivors = groups[1:]
    for g in survivors:
        assert victim.address not in g.view.members, g.margo.address
        assert g.view.size == 4
    assert {d[1] for d in deaths} == {victim.address}
    # Views converge to the same hash.
    assert len({g.view_hash for g in survivors}) == 1


def test_group_view_change_callbacks_fire():
    cluster, margos = make_cluster(3)
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    changes = []
    groups[1].on_view_change.append(lambda view: changes.append(view.size))
    cluster.run(until=2.0)
    cluster.faults.kill_process(margos[0].process)
    cluster.run(until=30.0)
    assert changes  # at least the death was observed
    assert changes[-1] == 2


def test_late_join_spreads_to_all():
    cluster, margos = make_cluster(3)
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    cluster.run(until=2.0)
    newcomer = cluster.add_margo("late", node="nl")

    def driver():
        group = yield from join_group(
            "g", newcomer, [margos[0].address], cluster.randomness, swim=SWIM
        )
        return group

    new_group = cluster.run_ult(newcomer, driver())
    cluster.run(until=cluster.now + 20.0)
    for g in groups:
        assert newcomer.address in g.view.members
    assert new_group.view.size == 4
    assert len({g.view_hash for g in groups + [new_group]}) == 1


def test_voluntary_leave_shrinks_views():
    cluster, margos = make_cluster(4)
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    cluster.run(until=2.0)

    def driver():
        yield from groups[3].leave()

    cluster.run_ult(margos[3], driver())
    cluster.run(until=cluster.now + 20.0)
    for g in groups[:3]:
        assert margos[3].address not in g.view.members
    assert not groups[3].is_member


def test_join_via_unreachable_raises():
    cluster, margos = make_cluster(2)
    newcomer = cluster.add_margo("late", node="nl")

    def driver():
        group = SSGGroup(newcomer, "nogroup", swim=SWIM)
        yield from group.join_via(["na+ofi://ghost/host"])

    with pytest.raises(SSGError):
        cluster.run_ult(newcomer, driver())


def test_no_false_positives_without_faults():
    cluster, margos = make_cluster(6, seed=13)
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    cluster.run(until=60.0)
    for g in groups:
        assert g.false_suspicions == 0
        assert g.view.size == 6


def test_detection_despite_message_loss():
    cluster, margos = make_cluster(5, seed=17)
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    cluster.run(until=2.0)
    cluster.faults.set_message_loss(0.10)
    cluster.faults.kill_process(margos[2].process)
    cluster.run(until=60.0)
    for g in groups[:2] + groups[3:]:
        assert margos[2].address not in g.view.members


def test_group_double_start_rejected():
    cluster, margos = make_cluster(2)
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    with pytest.raises(SSGError):
        groups[0].start(cluster.randomness.stream("again"))
