"""MargoConfig parse-time rejection paths (duplicates, dangling refs)."""

import pytest

from repro.margo import MargoConfig
from repro.margo.errors import ConfigError


def doc(pools, xstreams=None, **extra):
    body = {
        "argobots": {
            "pools": [{"name": p} for p in pools],
        }
    }
    if xstreams is not None:
        body["argobots"]["xstreams"] = xstreams
    body.update(extra)
    return body


def test_duplicate_pool_names_rejected_with_names():
    with pytest.raises(ConfigError, match=r"duplicate pool names.*\['p'\]"):
        MargoConfig.from_json(doc(["p", "p", "q"],
                                  xstreams=[{"name": "x", "scheduler": {"pools": ["p", "q"]}}]))


def test_duplicate_xstream_names_rejected_with_names():
    with pytest.raises(ConfigError, match=r"duplicate xstream names.*\['x'\]"):
        MargoConfig.from_json(
            doc(
                ["p"],
                xstreams=[
                    {"name": "x", "scheduler": {"pools": ["p"]}},
                    {"name": "x", "scheduler": {"pools": ["p"]}},
                ],
            )
        )


def test_xstream_dangling_pool_ref_names_both_sides():
    with pytest.raises(ConfigError, match=r"'x' references unknown pools \['ghost'\]"):
        MargoConfig.from_json(
            doc(["p"], xstreams=[{"name": "x", "scheduler": {"pools": ["p", "ghost"]}}])
        )


def test_unserved_pool_rejected():
    with pytest.raises(ConfigError, match=r"not served by any xstream.*orphan"):
        MargoConfig.from_json(
            doc(["p", "orphan"], xstreams=[{"name": "x", "scheduler": {"pools": ["p"]}}])
        )


def test_dangling_progress_and_rpc_pool():
    with pytest.raises(ConfigError, match="progress_pool 'nope'"):
        MargoConfig.from_json(doc(["p"], progress_pool="nope"))
    with pytest.raises(ConfigError, match="rpc_pool 'nope'"):
        MargoConfig.from_json(doc(["p"], rpc_pool="nope"))


def test_xstream_requires_at_least_one_pool():
    with pytest.raises(ConfigError, match="at least one pool"):
        MargoConfig.from_json(doc(["p"], xstreams=[{"name": "x"}]))


def test_unknown_keys_rejected_at_every_level():
    with pytest.raises(ConfigError, match="unknown margo config keys"):
        MargoConfig.from_json({"bogus": 1})
    with pytest.raises(ConfigError, match="unknown pool spec keys"):
        MargoConfig.from_json({"argobots": {"pools": [{"name": "p", "size": 4}]}})
    with pytest.raises(ConfigError, match="unknown xstream spec keys"):
        MargoConfig.from_json(
            {
                "argobots": {
                    "pools": [{"name": "p"}],
                    "xstreams": [
                        {"name": "x", "scheduler": {"pools": ["p"]}, "prio": 1}
                    ],
                }
            }
        )


def test_invalid_json_text_rejected():
    with pytest.raises(ConfigError, match="invalid JSON"):
        MargoConfig.from_json("{not json")


def test_valid_config_roundtrips():
    config = MargoConfig.from_json(
        doc(
            ["p", "q"],
            xstreams=[{"name": "x", "scheduler": {"pools": ["p", "q"]}}],
            progress_pool="q",
            rpc_pool="p",
        )
    )
    assert [p.name for p in config.pools] == ["p", "q"]
    assert MargoConfig.from_json(config.to_json()).to_json() == config.to_json()
