"""mochi-race lock-order graph: MCH040/MCH041 without a deadlock firing."""

import pytest

from repro import Cluster
from repro.analysis.race import hooks
from repro.analysis.race.lockgraph import LockOrderGraph
from repro.margo.ult import UltEvent, UltMutex, UltSleep


@pytest.fixture()
def race():
    hooks.disable()
    hooks.reset()
    hooks.enable()
    yield hooks
    hooks.disable()
    hooks.reset()


def make_rig():
    cluster = Cluster(seed=13)
    margo = cluster.add_margo("m", node="n0")
    return cluster, margo


def rule_ids(race):
    return [f.rule_id for f in race.findings]


# ----------------------------------------------------------------------
# the graph itself
# ----------------------------------------------------------------------
class _FakeLock:
    def __init__(self, name):
        self.name = name


class _FakeUlt:
    def __init__(self, name):
        self.name = name


def test_graph_reports_two_lock_cycle_once():
    graph = LockOrderGraph()
    a, b = _FakeLock("A"), _FakeLock("B")
    u1, u2 = _FakeUlt("u1"), _FakeUlt("u2")
    assert graph.note_acquire(u1, a, "u1") is None
    assert graph.note_acquire(u1, b, "u1") is None  # edge A -> B
    graph.note_release(u1, b)
    graph.note_release(u1, a)
    assert graph.note_acquire(u2, b, "u2") is None
    cycle = graph.note_acquire(u2, a, "u2")  # edge B -> A closes the cycle
    assert cycle is not None
    assert cycle[0] == cycle[-1]  # rendered as a closed walk
    assert set(cycle) == {"A", "B"}
    # The same cycle is never reported twice.
    graph.note_release(u2, a)
    graph.note_release(u2, b)
    assert graph.note_acquire(u2, b, "u2") is None
    assert graph.note_acquire(u2, a, "u2") is None


def test_graph_consistent_order_is_clean():
    graph = LockOrderGraph()
    a, b = _FakeLock("A"), _FakeLock("B")
    for i in range(3):
        ult = _FakeUlt(f"u{i}")
        assert graph.note_acquire(ult, a, ult.name) is None
        assert graph.note_acquire(ult, b, ult.name) is None
        graph.note_release(ult, b)
        graph.note_release(ult, a)


def test_graph_three_lock_cycle():
    graph = LockOrderGraph()
    locks = {n: _FakeLock(n) for n in "ABC"}
    for holder, then in (("A", "B"), ("B", "C")):
        ult = _FakeUlt(f"u-{holder}{then}")
        graph.note_acquire(ult, locks[holder], ult.name)
        assert graph.note_acquire(ult, locks[then], ult.name) is None
        graph.note_release(ult, locks[then])
        graph.note_release(ult, locks[holder])
    closer = _FakeUlt("closer")
    graph.note_acquire(closer, locks["C"], "closer")
    cycle = graph.note_acquire(closer, locks["A"], "closer")
    assert cycle is not None and set(cycle) == {"A", "B", "C"}


# ----------------------------------------------------------------------
# MCH040 end to end: the deadlock never fires, the cycle is still found
# ----------------------------------------------------------------------
def test_lock_order_cycle_reported_without_deadlock(race):
    cluster, margo = make_rig()
    a = UltMutex(cluster.kernel, name="A")
    b = UltMutex(cluster.kernel, name="B")

    def forward():
        yield from a.acquire()
        yield from b.acquire()
        b.release()
        a.release()

    def backward():
        # Runs strictly after forward() (explicit delay): no deadlock
        # ever fires, but the acquisition order B -> A closes the cycle.
        yield UltSleep(0.5)
        yield from b.acquire()
        yield from a.acquire()
        a.release()
        b.release()

    ults = [
        cluster.spawn(margo, forward(), name="fwd"),
        cluster.spawn(margo, backward(), name="bwd"),
    ]
    cluster.wait_ults(ults)  # completes: the deadlock did NOT fire
    assert rule_ids(race) == ["MCH040"]
    message = race.findings[0].message
    assert "A -> B" in message or "B -> A" in message
    assert race.findings[0].path == "race:lock-order"


def test_consistent_lock_order_clean(race):
    cluster, margo = make_rig()
    a = UltMutex(cluster.kernel, name="A")
    b = UltMutex(cluster.kernel, name="B")

    def worker(tag):
        yield UltSleep(0.01 * tag)
        yield from a.acquire()
        yield from b.acquire()
        b.release()
        a.release()

    ults = [cluster.spawn(margo, worker(i), name=f"w{i}") for i in range(3)]
    cluster.wait_ults(ults)
    assert race.findings == []


# ----------------------------------------------------------------------
# MCH041: unbounded wait while holding
# ----------------------------------------------------------------------
def test_wait_while_holding_flagged(race):
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="guard")
    event = UltEvent(cluster.kernel, name="signal")

    def waiter():
        yield from mutex.acquire()
        yield from event.wait()  # mochi-lint: disable=MCH011 -- wait-while-holding under test
        mutex.release()

    def signaler():
        yield UltSleep(0.2)
        event.set()

    ults = [
        cluster.spawn(margo, waiter(), name="waiter"),
        cluster.spawn(margo, signaler(), name="signaler"),
    ]
    cluster.wait_ults(ults)
    assert "MCH041" in rule_ids(race)
    finding = next(f for f in race.findings if f.rule_id == "MCH041")
    assert "guard" in finding.message and "signal" in finding.message


def test_wait_with_timeout_not_flagged(race):
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="guard")
    event = UltEvent(cluster.kernel, name="signal")

    def waiter():
        yield from mutex.acquire()
        yield from event.wait(timeout=0.5)  # mochi-lint: disable=MCH011 -- bounded-wait fixture
        mutex.release()

    def signaler():
        yield UltSleep(0.2)
        event.set()

    ults = [
        cluster.spawn(margo, waiter(), name="waiter"),
        cluster.spawn(margo, signaler(), name="signaler"),
    ]
    cluster.wait_ults(ults)
    assert "MCH041" not in rule_ids(race)


def test_contended_acquire_not_flagged_as_wait_while_holding(race):
    # Nested contended acquire parks on the mutex's internal gate event;
    # that is lock-order territory (MCH040), not MCH041.
    cluster, margo = make_rig()
    a = UltMutex(cluster.kernel, name="A")
    b = UltMutex(cluster.kernel, name="B")

    def holder():
        yield from b.acquire()
        yield UltSleep(0.2)  # mochi-lint: disable=MCH011 -- contention fixture
        b.release()

    def nester():
        yield UltSleep(0.05)
        yield from a.acquire()
        yield from b.acquire()  # contended: parks while holding A
        b.release()
        a.release()

    ults = [
        cluster.spawn(margo, holder(), name="holder"),
        cluster.spawn(margo, nester(), name="nester"),
    ]
    cluster.wait_ults(ults)
    assert "MCH041" not in rule_ids(race)
