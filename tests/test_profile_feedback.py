"""The monitor -> decide -> reconfigure loop, end to end.

Acceptance scenario: a deliberately hot provider runs with profiling
enabled; the :class:`ReconfigurationController` detects the imbalance
from *measured* windows (no hand-fed loads), triggers ``plan_rebalance``,
the migration executes, and the post-migration measurements show
``load_imbalance`` strictly improved -- fully deterministically."""

import json

import pytest

from repro import Cluster
from repro.core import (
    DynamicService,
    ProcessSpec,
    ReconfigurationController,
    ServiceSpec,
)
from repro.margo.errors import MargoError, RpcError
from repro.margo.ult import UltSleep
from repro.pufferscale import Objective
from repro.ssg import SwimConfig
from repro.yokan import YokanClient

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)
OBSERVABILITY = {
    "profiling": True,
    "profile_window": 0.2,
    "load_imbalance_threshold": 1.5,
}


def kv_process(name, node, dbs):
    providers = [{"name": f"remi-{name}", "type": "remi", "provider_id": 0}]
    for d in range(dbs):
        providers.append(
            {
                "name": f"db-{name}-{d}",
                "type": "yokan",
                "provider_id": d + 1,
                "config": {"database": {"type": "persistent"}},
            }
        )
    return ProcessSpec(
        name=name,
        node=node,
        config={
            "margo": {"observability": dict(OBSERVABILITY)},
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": providers,
        },
    )


def hot_service(cluster, fill=True):
    """kv0 holds both databases (and all the load); kv1 holds none."""
    spec = ServiceSpec(
        name="kvsvc",
        processes=[kv_process("kv0", "n0", 2), kv_process("kv1", "n1", 0)],
        group="kvsvc-g",
        swim=SWIM,
    )
    service = DynamicService.deploy(cluster, spec)
    yokan = YokanClient(service.control)

    if fill:

        def fill_dbs():
            for provider_id in (1, 2):
                db = yokan.make_handle(service.processes["kv0"].address, provider_id)
                yield from db.put_multi([(f"k{i}", "x" * 200) for i in range(40)])

        service.run_control(fill_dbs())
    return service, yokan


def hammer(service, yokan, stop, record_name, pause):
    """Continuously GET against ``record_name`` wherever it currently
    lives -- re-resolving the address each iteration, so the workload
    follows the provider across migrations."""
    while not stop["flag"]:
        target = None
        for process in service.processes.values():
            if process.alive and record_name in process.bedrock.records:
                record = process.bedrock.records[record_name]
                target = (process.address, record.provider_id)
                break
        if target is None:  # mid-migration: provider between processes
            yield UltSleep(pause)
            continue
        db = yokan.make_handle(*target)
        try:
            yield from db.get("k3")
        except (MargoError, RpcError):
            pass  # handler raced a migration; the next resolve recovers
        yield UltSleep(pause)


def run_feedback_scenario(seed=61, cycles=10):
    cluster = Cluster(seed=seed)
    service, yokan = hot_service(cluster)
    stop = {"flag": False}
    for record_name, pause in (("db-kv0-0", 0.002), ("db-kv0-1", 0.004)):
        cluster.spawn(service.control, hammer(service, yokan, stop, record_name, pause))
    controller = ReconfigurationController(
        service,
        objective=Objective(alpha=1.0, beta=0.0, gamma=0.0),
        period=0.5,
        smoothing=2,
    )
    cluster.spawn(service.control, controller.run(cycles=cycles))
    cluster.run(until=0.5 * cycles + 1.0)
    stop["flag"] = True
    cluster.run(until=cluster.now + 0.5)
    return service, controller


# ----------------------------------------------------------------------
# the acceptance scenario
# ----------------------------------------------------------------------
def test_feedback_loop_detects_and_fixes_hot_provider():
    service, controller = run_feedback_scenario()
    decisions = list(controller.decisions)
    assert len(decisions) == 10

    # The controller detected the imbalance from measured windows and
    # triggered exactly one rebalance.
    triggered = [d for d in decisions if d["triggered"]]
    assert len(triggered) == 1
    trigger = triggered[0]
    assert trigger["load_imbalance"] > 1.5
    assert trigger["moves"]  # plan_rebalance produced real migrations
    assert all(m["source"] == "kv0" and m["destination"] == "kv1"
               for m in trigger["moves"])
    # Every decision is attributed to the profile windows that fed it.
    assert trigger["windows"]["kv0"] is not None

    # The migration actually executed: kv1 now hosts a database.
    moved = [
        r for r in service.processes["kv1"].bedrock.records.values()
        if r.type_name == "yokan"
    ]
    assert moved

    # Post-migration measurements show strictly improved load imbalance,
    # and the loop converged (no further triggers).
    after = [d for d in decisions if d["cycle"] > trigger["cycle"]]
    assert after
    assert all(d["load_imbalance"] < trigger["load_imbalance"] for d in after)
    assert all(not d["triggered"] for d in after)
    # Post-migration load is genuinely measured on both nodes.
    assert after[-1]["loads"]["kv1"] > 0


def test_feedback_decision_trace_byte_identical():
    """Same seed, same scenario -> byte-identical decision trace."""

    def run():
        _service, controller = run_feedback_scenario(seed=61, cycles=6)
        return json.dumps(list(controller.decisions), sort_keys=True)

    assert run() == run()


# ----------------------------------------------------------------------
# controller unit behavior
# ----------------------------------------------------------------------
def test_controller_idle_guard():
    """With no measured load, the controller never triggers (a freshly
    deployed idle service must not be 'rebalanced')."""
    cluster = Cluster(seed=62)
    service, _yokan = hot_service(cluster, fill=False)
    controller = ReconfigurationController(service, period=0.5, smoothing=2)
    # Thresholds defaulted from the processes' ObservabilitySpec.
    assert controller.load_imbalance_threshold == 1.5
    assert controller.busy_threshold == 0.9
    cluster.spawn(service.control, controller.run(cycles=3))
    cluster.run(until=2.5)
    assert len(controller.decisions) == 3
    assert all(not d["triggered"] for d in controller.decisions)
    assert controller.rebalances == 0


def test_controller_decisions_ring_is_bounded():
    cluster = Cluster(seed=63)
    service, _yokan = hot_service(cluster)
    controller = ReconfigurationController(
        service, period=0.5, smoothing=2, max_decisions=2
    )
    cluster.spawn(service.control, controller.run(cycles=5))
    cluster.run(until=4.0)
    assert len(controller.decisions) == 2  # ring bound, not 5
    assert [d["cycle"] for d in controller.decisions] == [3, 4]


def test_measured_placement_uses_estimates():
    cluster = Cluster(seed=64)
    service, _yokan = hot_service(cluster)
    estimates = {
        "kv0": {"yokan:1": {"load": 10.0}, "yokan:2": {"load": 2.0}},
        "kv1": {},
    }
    placement = service.measured_placement(estimates)
    assert placement.load_of("kv0") == 12.0
    assert placement.load_of("kv1") == 0.0
    # Unmeasured providers fall back to zero load, not synthetic counts.
    placement_empty = service.measured_placement({})
    assert placement_empty.load_of("kv0") == 0.0


def test_controller_validation():
    cluster = Cluster(seed=65)
    service, _yokan = hot_service(cluster)
    with pytest.raises(ValueError, match="period"):
        ReconfigurationController(service, period=0.0)
