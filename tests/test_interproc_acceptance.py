"""Acceptance: the whole-program layer over src/repro itself.

These tests pin the ISSUE's acceptance criteria: the RPC contract pass
finds every register_rpc/_forward pair in yokan/warabi/hepnos/remi with
zero false orphans, the run is deterministic and fast, the partition
allowlist is justified line-by-line, and the shipped baseline covers
every current finding.
"""

import ast
import os
import time

import pytest

from repro.analysis.baseline import filter_new, load_baseline
from repro.analysis.interproc import run_interproc
from repro.analysis.interproc.callgraph import build_project
from repro.analysis.interproc.contracts import build_contracts
from repro.analysis.interproc.partition import parse_allowlist

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_CONTRACT_IDS = {"MCH050", "MCH051", "MCH052", "MCH053"}


@pytest.fixture(scope="module")
def repro_parsed():
    parsed = []
    root = os.path.join(REPO, "src", "repro")
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, REPO)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            parsed.append((rel, ast.parse(source, filename=rel), source))
    return parsed


@pytest.fixture(scope="module")
def repro_index(repro_parsed, monkeypatch_module_chdir):
    return build_project([(p, t) for p, t, _ in repro_parsed])


@pytest.fixture(scope="module")
def monkeypatch_module_chdir():
    # Module names derive from on-disk __init__.py markers, so relative
    # paths must resolve from the repo root.
    old = os.getcwd()
    os.chdir(REPO)
    yield
    os.chdir(old)


def test_src_repro_passes_contract_rules(repro_parsed, monkeypatch_module_chdir):
    findings, _stats = run_interproc(repro_parsed)
    contract = [f for f in findings if f.rule_id in _CONTRACT_IDS]
    assert contract == [], "\n".join(f.format() for f in contract)


def test_every_core_component_pair_is_collected(repro_index):
    contracts = build_contracts(repro_index)
    registered = {
        component: contracts.registered_ops(component)
        for component in ("yokan", "warabi", "remi")
    }
    assert registered["yokan"] >= {
        "put", "get", "erase", "exists", "count", "list_keys",
        "put_multi", "get_multi", "multi_put", "multi_get", "flush",
        "fetch_image", "erase_matching",
    }
    assert registered["warabi"] >= {
        "create", "write", "read", "size", "erase", "list",
    }
    assert registered["remi"] >= {"recv_file", "recv_chunk", "finalize"}

    # Zero false orphans: every statically-named forward against these
    # components matches a registration.  (hepnos has no RPC surface of
    # its own -- it rides the yokan client, covered above.)
    for component, ops in registered.items():
        assert contracts.forwarded_ops(component) <= ops
    assert not any(
        "repro/hepnos/" in f.path for f in contracts.forwards
    )


def test_interproc_is_deterministic_and_fast(repro_parsed, monkeypatch_module_chdir):
    start = time.perf_counter()  # mochi-lint: disable=MCH001 -- measuring real analysis wall-time, not simulated time
    first, first_stats = run_interproc(repro_parsed)
    second, second_stats = run_interproc(repro_parsed)
    elapsed = time.perf_counter() - start  # mochi-lint: disable=MCH001 -- measuring real analysis wall-time, not simulated time
    assert [f.to_json() for f in first] == [f.to_json() for f in second]
    assert first_stats == second_stats
    assert elapsed < 30.0


def test_partition_allowlist_is_justified_line_by_line(
    repro_parsed, monkeypatch_module_chdir
):
    with open(os.path.join(REPO, "partition-allowlist.txt")) as handle:
        text = handle.read()
    # parse_allowlist raises on any entry without a justification.
    entries = parse_allowlist(text)
    assert all(e.justification for e in entries)

    # And the pass agrees: no unjustified entries, no stale entries, no
    # unexempted cross-component writes in the tree today.
    findings, _ = run_interproc(
        repro_parsed, select=["MCH060"], allowlist_text=text
    )
    assert findings == []


def test_shipped_baseline_covers_current_findings(
    repro_parsed, monkeypatch_module_chdir
):
    findings, _ = run_interproc(repro_parsed)
    baseline = load_baseline(os.path.join(REPO, "lint-baseline.json"))
    new = filter_new(findings, baseline)
    assert new == [], "\n".join(f.format() for f in new)
    # The one recorded gap (warabi's _next_id was dropped by migration)
    # has been fixed at the source -- migrate() now persists the counter
    # in the warabi/<name>/meta sidecar -- so the baseline ships empty
    # and the whole-program pass is clean without exemptions.
    assert baseline == set()
    assert findings == []
