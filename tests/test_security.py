"""Tests for the composable security components (paper section 9)."""

import pytest

from repro import Cluster
from repro.margo import RpcFailedError
from repro.security import (
    AuthClient,
    AuthProvider,
    GuardError,
    GuardProvider,
    TokenError,
    sign_token,
    verify_token,
)
from repro.yokan import YokanClient, YokanProvider

USERS = {
    "alice": {"password": "wonder", "scopes": {"yokan": ["*"]}},
    "bob": {"password": "builder", "scopes": {"yokan": ["get", "exists"]}},
}


# ----------------------------------------------------------------------
# tokens
# ----------------------------------------------------------------------
def test_token_roundtrip():
    token = sign_token("s3cret", "alice", {"yokan": ["*"]}, expires_at=100.0, token_id="t1")
    payload = verify_token("s3cret", token, now=50.0)
    assert payload.principal == "alice"
    assert payload.allows("yokan", "put")
    assert not payload.allows("warabi", "read")


def test_token_scope_semantics():
    token = sign_token("s", "bob", {"yokan": ["get"]}, expires_at=10.0, token_id="t")
    payload = verify_token("s", token, now=0.0)
    assert payload.allows("yokan", "get")
    assert not payload.allows("yokan", "put")


def test_token_expiry():
    token = sign_token("s", "a", {}, expires_at=5.0, token_id="t")
    verify_token("s", token, now=4.9)
    with pytest.raises(TokenError, match="expired"):
        verify_token("s", token, now=5.1)


def test_token_tampering_detected():
    token = sign_token("s", "a", {"yokan": ["get"]}, expires_at=10.0, token_id="t")
    encoded, signature = token.rsplit(".", 1)
    import base64
    import json

    body = json.loads(base64.urlsafe_b64decode(encoded))
    body["scopes"] = {"yokan": ["*"]}  # privilege escalation attempt
    forged = base64.urlsafe_b64encode(json.dumps(body, sort_keys=True).encode()).decode()
    with pytest.raises(TokenError, match="signature"):
        verify_token("s", f"{forged}.{signature}", now=0.0)
    with pytest.raises(TokenError, match="signature"):
        verify_token("wrong-secret", token, now=0.0)
    with pytest.raises(TokenError, match="malformed"):
        verify_token("s", "garbage", now=0.0)


# ----------------------------------------------------------------------
# AuthProvider
# ----------------------------------------------------------------------
@pytest.fixture()
def auth_rig():
    cluster = Cluster(seed=73)
    server = cluster.add_margo("authsrv", node="n0")
    provider = AuthProvider(
        server, "auth0", provider_id=1,
        config={"secret": "hmac-secret", "users": USERS, "token_ttl": 30.0},
    )
    app = cluster.add_margo("app", node="na")
    handle = AuthClient(app).make_handle(server.address, 1)
    return cluster, app, provider, handle


def test_login_and_validate(auth_rig):
    cluster, app, _, auth = auth_rig

    def driver():
        token = yield from auth.login("alice", "wonder")
        payload = yield from auth.validate(token)
        return token, payload

    token, payload = cluster.run_ult(app, driver())
    assert payload["principal"] == "alice"
    assert payload["scopes"] == {"yokan": ["*"]}
    assert payload["expires_at"] > 0


def test_bad_credentials_rejected(auth_rig):
    cluster, app, _, auth = auth_rig

    def driver():
        yield from auth.login("alice", "wrong")

    with pytest.raises(RpcFailedError, match="authentication failed"):
        cluster.run_ult(app, driver())


def test_revocation(auth_rig):
    cluster, app, provider, auth = auth_rig

    def driver():
        token = yield from auth.login("alice", "wonder")
        yield from auth.revoke(token)
        yield from auth.validate(token)

    with pytest.raises(RpcFailedError, match="revoked"):
        cluster.run_ult(app, driver())


def test_token_expires_in_simulated_time(auth_rig):
    cluster, app, provider, auth = auth_rig
    tokens = {}

    def get_token():
        tokens["t"] = yield from auth.login("alice", "wonder")

    cluster.run_ult(app, get_token())
    cluster.run(until=cluster.now + 31.0)  # past the 30 s TTL

    def validate():
        yield from auth.validate(tokens["t"])

    with pytest.raises(RpcFailedError, match="expired"):
        cluster.run_ult(app, validate())


def test_auth_config_hides_secret(auth_rig):
    _, _, provider, _ = auth_rig
    doc = provider.get_config()
    assert "secret" not in doc
    assert doc["users"] == ["alice", "bob"]


# ----------------------------------------------------------------------
# GuardProvider: transparent security for Yokan
# ----------------------------------------------------------------------
YOKAN_OPS = ["put", "get", "erase", "exists", "count"]


@pytest.fixture()
def guarded_rig():
    cluster = Cluster(seed=74)
    backend_margo = cluster.add_margo("backend", node="n0")
    YokanProvider(backend_margo, "db", provider_id=1)
    edge_margo = cluster.add_margo("edge", node="n1")
    auth = AuthProvider(
        edge_margo, "auth0", provider_id=5,
        config={"secret": "hmac-secret", "users": USERS, "token_ttl": 1000.0},
    )
    guard = GuardProvider(
        edge_margo, "guard0", provider_id=1,
        protected={"type": "yokan", "address": backend_margo.address, "provider_id": 1},
        operations=YOKAN_OPS,
        auth=auth,
    )
    app = cluster.add_margo("app", node="na")
    auth_handle = AuthClient(app).make_handle(edge_margo.address, 5)
    db = YokanClient(app).make_handle(edge_margo.address, 1)  # ordinary handle!
    return cluster, app, guard, auth_handle, db


def test_guarded_access_with_token(guarded_rig):
    cluster, app, guard, auth, db = guarded_rig

    def driver():
        db.auth_token = yield from auth.login("alice", "wonder")
        yield from db.put("k", "v")
        return (yield from db.get("k"))

    assert cluster.run_ult(app, driver()) == b"v"
    assert guard.allowed == 2
    assert guard.denied == 0


def test_guard_rejects_missing_token(guarded_rig):
    cluster, app, guard, _, db = guarded_rig

    def driver():
        yield from db.put("k", "v")  # no token set

    with pytest.raises(RpcFailedError, match="requires a capability token"):
        cluster.run_ult(app, driver())
    assert guard.denied == 1


def test_guard_enforces_scopes(guarded_rig):
    cluster, app, guard, auth, db = guarded_rig

    def driver():
        db.auth_token = yield from auth.login("bob", "builder")  # read-only
        exists = yield from db.exists("k")  # allowed
        yield from db.put("k", "v")  # denied: bob lacks yokan:put

    with pytest.raises(RpcFailedError, match="lacks scope"):
        cluster.run_ult(app, driver())
    assert guard.allowed == 1
    assert guard.denied == 1


def test_guard_rejects_forged_token(guarded_rig):
    cluster, app, guard, _, db = guarded_rig
    db.auth_token = sign_token(
        "attacker-secret", "mallory", {"yokan": ["*"]}, expires_at=1e9, token_id="x"
    )

    def driver():
        yield from db.get("k")

    with pytest.raises(RpcFailedError, match="token rejected"):
        cluster.run_ult(app, driver())


def test_guard_backend_never_sees_tokens(guarded_rig):
    """Transparency in both directions: the protected Yokan provider
    receives plain operations; the client uses the plain handle API."""
    cluster, app, guard, auth, db = guarded_rig

    def driver():
        db.auth_token = yield from auth.login("alice", "wonder")
        yield from db.put("clean", "args")
        count = yield from db.count()
        return count

    assert cluster.run_ult(app, driver()) == 1


def test_guard_encryption_costs_time():
    def run(encrypt):
        cluster = Cluster(seed=75)
        backend_margo = cluster.add_margo("backend", node="n0")
        YokanProvider(backend_margo, "db", provider_id=1)
        edge = cluster.add_margo("edge", node="n1")
        guard = GuardProvider(
            edge, "guard0", provider_id=1,
            protected={"type": "yokan", "address": backend_margo.address,
                       "provider_id": 1},
            operations=["put", "get"],
            auth="mesh-secret",
            encrypt=encrypt,
        )
        app = cluster.add_margo("app", node="na")
        db = YokanClient(app).make_handle(edge.address, 1)
        db.auth_token = sign_token(
            "mesh-secret", "svc", {"yokan": ["*"]}, expires_at=1e9, token_id="m"
        )

        def driver():
            for i in range(50):
                yield from db.put(f"k{i}", "x" * 2000)

        cluster.run_ult(app, driver())
        return cluster.now

    plain = run(False)
    encrypted = run(True)
    assert encrypted > plain  # encryption costs simulated time
    assert encrypted < plain * 2  # ...but not catastrophically


def test_guard_validation():
    cluster = Cluster(seed=76)
    margo = cluster.add_margo("edge", node="n0")
    with pytest.raises(GuardError, match="missing"):
        GuardProvider(margo, "g", 1, protected={"type": "yokan"},
                      operations=["get"], auth="s")
    with pytest.raises(GuardError, match="at least one operation"):
        GuardProvider(
            margo, "g", 1,
            protected={"type": "yokan", "address": "a", "provider_id": 1},
            operations=[], auth="s",
        )
    with pytest.raises(GuardError, match="auth must be"):
        GuardProvider(
            margo, "g", 1,
            protected={"type": "yokan", "address": "a", "provider_id": 1},
            operations=["get"], auth=12345,
        )
