"""mochi-race schedule explorer: MCH032 order-dependence detection."""

import json

from repro import Cluster
from repro.analysis.race import hooks
from repro.analysis.race.explore import explore, state_digest
from repro.margo.ult import UltMutex, UltSleep


def racy_scenario():
    """Last writer wins on one cell: the classic order-dependent outcome."""
    cluster = Cluster(seed=5)
    margo = cluster.add_margo("m", node="n0")
    cell = {}

    def writer(tag):
        yield UltSleep(0.01)
        hooks.note_write(cell, "winner", f"writer-{tag}")
        cell["winner"] = tag

    ults = [cluster.spawn(margo, writer(i), name=f"w{i}") for i in range(3)]
    cluster.wait_ults(ults)
    return dict(cell)


def clean_scenario():
    """Mutex-ordered counter: every schedule reaches the same total."""
    cluster = Cluster(seed=5)
    margo = cluster.add_margo("m", node="n0")
    mutex = UltMutex(cluster.kernel, name="guard")
    cell = {"total": 0}

    def adder(amount):
        yield UltSleep(0.01)
        yield from mutex.acquire()
        hooks.note_write(cell, "total", f"adder-{amount}")
        cell["total"] += amount
        mutex.release()

    ults = [cluster.spawn(margo, adder(i), name=f"a{i}") for i in range(1, 4)]
    cluster.wait_ults(ults)
    return dict(cell)


def test_state_digest_canonical():
    assert state_digest({"a": 1, "b": 2}) == state_digest({"b": 2, "a": 1})
    assert state_digest({"a": 1}) != state_digest({"a": 2})


def test_explorer_pins_order_dependence():
    report = explore(racy_scenario, "racy", seeds=(1, 2, 3, 4))
    # The HB engine alone sees the unordered writes...
    assert any(f.rule_id == "MCH030" for f in report.findings)
    # ...and the explorer proves the order matters: some perturbed seed
    # must make a different writer win (3 writers, 4 seeds).
    assert report.diverging
    mch032 = [f for f in report.findings if f.rule_id == "MCH032"]
    assert mch032
    assert "first diverging scheduling event" in mch032[0].message
    assert all(f.path == "race:racy" for f in mch032)
    assert not report.clean


def test_explorer_clean_scenario_has_identical_digests():
    report = explore(clean_scenario, "clean", seeds=tuple(range(1, 9)))
    assert report.clean
    assert len(report.runs) == 8
    assert {run.digest for run in report.runs} == {report.baseline.digest}


def test_same_seed_byte_identical_report():
    first = explore(racy_scenario, "racy", seeds=(1, 2, 3))
    second = explore(racy_scenario, "racy", seeds=(1, 2, 3))

    def serialize(report):
        return json.dumps(
            {
                "baseline": [report.baseline.digest, report.baseline.trace],
                "runs": [[r.seed, r.digest, r.trace] for r in report.runs],
                "findings": [f.to_json() for f in report.findings],
            },
            sort_keys=True,
        ).encode()

    assert serialize(first) == serialize(second)


def test_explorer_restores_hook_state():
    hooks.disable()
    hooks.reset()
    explore(clean_scenario, "clean", seeds=(1,))
    assert not hooks.ENABLED
    assert hooks.PERTURB is None and hooks.TRACE is None

    hooks.enable()
    try:
        explore(clean_scenario, "clean", seeds=(1,))
        assert hooks.ENABLED
    finally:
        hooks.disable()
        hooks.reset()
