"""Failure-injection tests: partitions, message loss, dead destinations,
and recovery paths across components."""

import pytest

from repro import Cluster
from repro.bedrock import BedrockClient, boot_process
from repro.colza import ColzaClient, ColzaError, ColzaProvider
from repro.margo import RpcError, RpcFailedError, RpcTimeoutError
from repro.raft import CounterStateMachine, RaftClient, RaftConfig, RaftNode
from repro.remi import RemiClient, RemiError
from repro.ssg import SwimConfig, create_group
from repro.storage import LocalStore
from repro.yokan import YokanClient, YokanProvider

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)
RC = RaftConfig(
    heartbeat_interval=0.05,
    election_timeout_min=0.15,
    election_timeout_max=0.3,
    rpc_timeout=0.06,
)


# ----------------------------------------------------------------------
# network partitions
# ----------------------------------------------------------------------
def test_rpc_times_out_across_partition_and_recovers():
    cluster = Cluster(seed=201)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")
    server.register("echo", lambda ctx: ctx.args)
    cluster.faults.partition("n0", "n1")

    def blocked():
        yield from client.forward(server.address, "echo", 1, timeout=0.5)

    with pytest.raises(RpcTimeoutError):
        cluster.run_ult(client, blocked())

    cluster.faults.heal("n0", "n1")

    def works():
        return (yield from client.forward(server.address, "echo", 2, timeout=0.5))

    assert cluster.run_ult(client, works()) == 2


def test_swim_split_brain_heals():
    """Partition a group 3|3: each side declares the other dead.  After
    healing, refutations (incarnation bumps) resurrect everyone and the
    views reconverge to the full membership."""
    cluster = Cluster(seed=202)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(6)]
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    cluster.run(until=2.0)
    # Partition nodes {0,1,2} from {3,4,5}.
    for a in range(3):
        for b in range(3, 6):
            cluster.faults.partition(f"n{a}", f"n{b}")
    cluster.run(until=cluster.now + 30.0)
    # Split brain: each side sees only itself.
    assert groups[0].view.size == 3
    assert groups[3].view.size == 3
    assert groups[0].view_hash != groups[3].view_hash
    # Heal and reconverge.
    cluster.network.heal_all()
    deadline = cluster.now + 120.0
    while cluster.now < deadline:
        cluster.run(until=cluster.now + 1.0)
        if all(g.view.size == 6 for g in groups) and len(
            {g.view_hash for g in groups}
        ) == 1:
            break
    assert all(g.view.size == 6 for g in groups)
    assert len({g.view_hash for g in groups}) == 1


def test_raft_commits_under_sustained_message_loss():
    cluster = Cluster(seed=203)
    margos = [cluster.add_margo(f"r{i}", node=f"n{i}") for i in range(3)]
    peers = [m.address for m in margos]
    nodes = [
        RaftNode(
            margo, f"raft{i}", provider_id=1,
            state_machine=CounterStateMachine(),
            peers=peers, rng=cluster.randomness.stream(f"raft:{i}"), config=RC,
        )
        for i, margo in enumerate(margos)
    ]
    cluster.run(until=2.0)
    cluster.faults.set_message_loss(0.15)
    app = cluster.add_margo("app", node="napp")
    handle = RaftClient(app).make_group_handle(peers, provider_id=1)

    def driver():
        total = 0
        for _ in range(20):
            total = yield from handle.submit(1)
        return total

    assert cluster.run_ult(app, driver()) == 20


# ----------------------------------------------------------------------
# dead destinations
# ----------------------------------------------------------------------
def test_remi_migration_to_dead_destination_fails_cleanly():
    cluster = Cluster(seed=204)
    src_node = cluster.node("src")
    dst_node = cluster.node("dst")
    src_store = LocalStore(src_node)
    LocalStore(dst_node)
    src = cluster.add_margo("src-proc", node=src_node)
    dst = cluster.add_margo("dst-proc", node=dst_node)
    from repro.remi import RemiProvider

    RemiProvider(dst, "remi", provider_id=0)
    src_store.write("data/file", b"x" * 1000)
    handle = RemiClient(src).make_handle(dst.address, 0)
    handle.timeout = 0.5
    cluster.faults.kill_process(dst.process)

    def driver():
        yield from handle.migrate_files(["data/file"])

    with pytest.raises(RpcError):
        cluster.run_ult(src, driver())
    # Source data untouched.
    assert src_store.read("data/file") == b"x" * 1000


def test_bedrock_migrate_provider_survives_dead_destination():
    cluster = Cluster(seed=205)
    src_margo, src_bedrock = boot_process(
        cluster, "src", "ns",
        {
            "libraries": {"yokan": "libyokan.so"},
            "providers": [{"name": "db", "type": "yokan", "provider_id": 1,
                           "config": {"database": {"type": "persistent"}}}],
        },
    )
    dst_margo, _ = boot_process(
        cluster, "dst", "nd",
        {"libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
         "providers": [{"name": "remi0", "type": "remi", "provider_id": 0}]},
    )
    cm = cluster.add_margo("client", node="nc")
    handle = BedrockClient(cm).make_service_handle(src_margo.address)
    handle.timeout = 3.0
    db = YokanClient(cm).make_handle(src_margo.address, 1)

    def fill():
        yield from db.put("k", "precious")

    cluster.run_ult(cm, fill())
    cluster.faults.kill_process(dst_margo.process)

    def migrate():
        yield from handle.migrate_provider("db", dst_margo.address,
                                           remi_provider_id=0)

    with pytest.raises((RpcFailedError, RpcTimeoutError)):
        cluster.run_ult(cm, migrate())
    # The source provider was NOT stopped: data still served.
    assert "db" in src_bedrock.records

    def read():
        return (yield from db.get("k"))

    assert cluster.run_ult(cm, read()) == b"precious"


def test_bedrock_migrate_needs_remi_at_destination():
    cluster = Cluster(seed=206)
    src_margo, src_bedrock = boot_process(
        cluster, "src", "ns",
        {
            "libraries": {"yokan": "libyokan.so"},
            "providers": [{"name": "db", "type": "yokan", "provider_id": 1,
                           "config": {"database": {"type": "persistent"}}}],
        },
    )
    dst_margo, _ = boot_process(
        cluster, "dst", "nd", {"libraries": {"yokan": "libyokan.so"}}
    )  # no REMI provider
    cm = cluster.add_margo("client", node="nc")
    handle = BedrockClient(cm).make_service_handle(src_margo.address)

    def migrate():
        yield from handle.migrate_provider("db", dst_margo.address,
                                           remi_provider_id=0)

    with pytest.raises(RpcFailedError):
        cluster.run_ult(cm, migrate())
    assert "db" in src_bedrock.records


def test_virtual_database_all_replicas_dead():
    cluster = Cluster(seed=207)
    from repro.yokan import VirtualYokanProvider, YokanError

    targets = []
    replica_margos = []
    for i in range(2):
        margo = cluster.add_margo(f"rep{i}", node=f"n{i}")
        YokanProvider(margo, f"rdb{i}", provider_id=1)
        targets.append({"address": margo.address, "provider_id": 1})
        replica_margos.append(margo)
    front = cluster.add_margo("front", node="nf")
    VirtualYokanProvider(
        front, "vdb", provider_id=9,
        config={"targets": targets, "rpc_timeout": 0.3},
    )
    app = cluster.add_margo("app", node="na")
    db = YokanClient(app).make_handle(front.address, 9)

    def write():
        yield from db.put("k", "v")

    cluster.run_ult(app, write())
    for margo in replica_margos:
        cluster.faults.kill_process(margo.process)

    def read():
        yield from db.get("k")

    with pytest.raises(RpcFailedError, match="no live replica"):
        cluster.run_ult(app, read())


def test_colza_refresh_fails_when_everyone_is_dead():
    cluster = Cluster(seed=208)
    margos = [cluster.add_margo(f"c{i}", node=f"n{i}") for i in range(2)]
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    for i, (margo, group) in enumerate(zip(margos, groups)):
        ColzaProvider(margo, f"colza{i}", provider_id=1, group=group)
    app = cluster.add_margo("app", node="na")
    pipeline = ColzaClient(app).make_pipeline_handle(
        [m.address for m in margos], provider_id=1
    )
    for margo in margos:
        cluster.faults.kill_process(margo.process)

    def driver():
        yield from pipeline.refresh()

    with pytest.raises(ColzaError, match="no live pipeline member"):
        cluster.run_ult(app, driver())


def test_node_death_destroys_persistent_data_but_pfs_survives():
    """The transient-vs-permanent failure distinction (paper section 2.3)
    end to end: node death wipes local data; PFS checkpoints survive."""
    from repro.storage import ParallelFileSystem

    cluster = Cluster(seed=209)
    pfs = ParallelFileSystem()
    node = cluster.node("n0")
    store = LocalStore(node)
    server = cluster.add_margo("server", node=node)
    provider = YokanProvider(
        server, "db", provider_id=1, config={"database": {"type": "persistent"}}
    )
    app = cluster.add_margo("app", node="na")
    db = YokanClient(app).make_handle(server.address, 1)

    def phase1():
        yield from db.put("k", "v")
        yield from db.flush()
        yield from provider.checkpoint(pfs, "ckpt/db")

    cluster.run_ult(app, phase1())
    assert store.exists("yokan/db.db")

    cluster.faults.kill_node(node)
    assert store.wiped  # permanent failure: local data gone
    assert pfs.exists("ckpt/db")  # checkpoint survives

    # Restore on a fresh node.
    replacement = cluster.add_margo("server2", node="n1")
    restored = YokanProvider(replacement, "db2", provider_id=1)
    db2 = YokanClient(app).make_handle(replacement.address, 1)

    def phase2():
        yield from restored.restore(pfs, "ckpt/db")
        return (yield from db2.get("k"))

    assert cluster.run_ult(app, phase2()) == b"v"


def test_late_response_after_timeout_is_dropped():
    """A response arriving after the client timed out must not corrupt a
    later RPC (sequence-number matching)."""
    cluster = Cluster(seed=210)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")
    from repro.margo import Compute

    def slow(ctx):
        yield Compute(1.0)  # longer than the client timeout
        return "late"

    server.register("slow", slow)
    server.register("fast", lambda ctx: "fast")

    def driver():
        try:
            yield from client.forward(server.address, "slow", timeout=0.1)
            raise AssertionError("should have timed out")
        except RpcTimeoutError:
            pass
        # Let the late response arrive while we issue a new RPC.
        result = yield from client.forward(server.address, "fast", timeout=5.0)
        return result

    assert cluster.run_ult(client, driver()) == "fast"
