"""Tests for the Warabi (blob) and Poesie (interpreter) components."""

import pytest

from repro import Cluster
from repro.margo import RpcFailedError
from repro.poesie import (
    MiniInterpreter,
    PoesieClient,
    PoesieProvider,
    ScriptBudgetError,
    ScriptError,
)
from repro.storage import LocalStore, ParallelFileSystem
from repro.warabi import WarabiClient, WarabiError, WarabiProvider


# ----------------------------------------------------------------------
# Warabi
# ----------------------------------------------------------------------
@pytest.fixture()
def warabi_rig():
    cluster = Cluster(seed=5)
    server = cluster.add_margo("server", node="n0")
    cm = cluster.add_margo("client", node="n1")
    provider = WarabiProvider(server, "blobs", provider_id=1)
    handle = WarabiClient(cm).make_handle(server.address, 1)
    return cluster, server, cm, provider, handle


def test_blob_create_write_read(warabi_rig):
    cluster, _, cm, _, target = warabi_rig

    def driver():
        blob_id = yield from target.create()
        yield from target.write(blob_id, b"hello world")
        data = yield from target.read(blob_id)
        size = yield from target.size(blob_id)
        return blob_id, data, size

    blob_id, data, size = cluster.run_ult(cm, driver())
    assert blob_id == 0
    assert data == b"hello world"
    assert size == 11


def test_blob_partial_read_write(warabi_rig):
    cluster, _, cm, _, target = warabi_rig

    def driver():
        blob_id = yield from target.create(size=10)
        yield from target.write(blob_id, b"XY", offset=4)
        middle = yield from target.read(blob_id, offset=3, size=4)
        return middle

    assert cluster.run_ult(cm, driver()) == b"\x00XY\x00"


def test_blob_write_extends(warabi_rig):
    cluster, _, cm, _, target = warabi_rig

    def driver():
        blob_id = yield from target.create(size=2)
        yield from target.write(blob_id, b"abcd", offset=2)
        return (yield from target.size(blob_id))

    assert cluster.run_ult(cm, driver()) == 6


def test_blob_read_out_of_range(warabi_rig):
    cluster, _, cm, _, target = warabi_rig

    def driver():
        blob_id = yield from target.create(size=4)
        yield from target.read(blob_id, offset=2, size=10)

    with pytest.raises(RpcFailedError, match="out of range"):
        cluster.run_ult(cm, driver())


def test_blob_erase_and_list(warabi_rig):
    cluster, _, cm, _, target = warabi_rig

    def driver():
        a = yield from target.create()
        b = yield from target.create()
        yield from target.erase(a)
        listing = yield from target.list()
        return listing, b

    listing, b = cluster.run_ult(cm, driver())
    assert listing == [b]


def test_blob_missing_raises(warabi_rig):
    cluster, _, cm, _, target = warabi_rig

    def driver():
        yield from target.read(99)

    with pytest.raises(RpcFailedError, match="no such blob"):
        cluster.run_ult(cm, driver())


def test_blob_large_write_uses_bulk(warabi_rig):
    cluster, _, cm, _, target = warabi_rig
    big = bytes(range(256)) * 4096  # 1 MiB

    def driver():
        blob_id = yield from target.create()
        yield from target.write(blob_id, big)
        return (yield from target.read(blob_id))

    assert cluster.run_ult(cm, driver()) == big


def test_warabi_persistent_target_writes_store():
    cluster = Cluster(seed=5)
    node = cluster.node("n0")
    store = LocalStore(node)
    server = cluster.add_margo("server", node=node)
    cm = cluster.add_margo("client", node="n1")
    provider = WarabiProvider(
        server, "blobs", provider_id=1, config={"target": {"type": "persistent"}}
    )
    target = WarabiClient(cm).make_handle(server.address, 1)

    def driver():
        blob_id = yield from target.create()
        yield from target.write(blob_id, b"persisted")
        return blob_id

    blob_id = cluster.run_ult(cm, driver())
    assert store.read(f"warabi/blobs/{blob_id}") == b"persisted"
    # The id-counter sidecar travels with the blob files (it is what a
    # REMI migration ships so the destination never re-issues an id).
    assert provider.local_files() == [
        f"warabi/blobs/{blob_id}",
        "warabi/blobs/meta",
    ]


def test_warabi_persistent_requires_store():
    cluster = Cluster(seed=5)
    server = cluster.add_margo("server", node="n0")
    with pytest.raises(WarabiError, match="LocalStore"):
        WarabiProvider(
            server, "blobs", provider_id=1, config={"target": {"type": "persistent"}}
        )


def test_warabi_unknown_target_type():
    cluster = Cluster(seed=5)
    server = cluster.add_margo("server", node="n0")
    with pytest.raises(WarabiError, match="unknown target type"):
        WarabiProvider(server, "blobs", provider_id=1, config={"target": {"type": "tape"}})


def test_warabi_checkpoint_restore(warabi_rig):
    cluster, server, cm, provider, target = warabi_rig
    pfs = ParallelFileSystem()

    def phase1():
        blob_id = yield from target.create()
        yield from target.write(blob_id, b"data-0")
        blob_id = yield from target.create()
        yield from target.write(blob_id, b"data-1")
        yield from provider.checkpoint(pfs, "ckpt/blobs")

    cluster.run_ult(cm, phase1())

    other = cluster.add_margo("other", node="n2")
    restored = WarabiProvider(other, "blobs2", provider_id=1)
    target2 = WarabiClient(cm).make_handle(other.address, 1)

    def phase2():
        yield from restored.restore(pfs, "ckpt/blobs")
        data = yield from target2.read(1)
        new_id = yield from target2.create()
        return data, new_id

    data, new_id = cluster.run_ult(cm, phase2())
    assert data == b"data-1"
    assert new_id == 2  # id allocation resumes past restored blobs


# ----------------------------------------------------------------------
# MiniInterpreter
# ----------------------------------------------------------------------
def test_interpreter_arithmetic_and_vars():
    interp = MiniInterpreter()
    assert interp.execute("x = 2\ny = x ** 3 + 1\ny") == 9
    assert interp.env["x"] == 2


def test_interpreter_control_flow():
    interp = MiniInterpreter()
    code = """
total = 0
for i in range(10):
    if i % 2 == 0:
        total += i
return total
"""
    assert interp.execute(code) == 20


def test_interpreter_while_and_return():
    interp = MiniInterpreter()
    assert interp.execute("n = 1\nwhile n < 100:\n    n = n * 2\nreturn n") == 128


def test_interpreter_containers_and_builtins():
    interp = MiniInterpreter()
    assert interp.execute("d = {'a': [1, 2, 3]}\nreturn sum(d['a']) + len(d)") == 7
    assert interp.execute("xs = sorted([3, 1, 2])\nreturn xs[0:2]") == [1, 2]


def test_interpreter_tuple_unpack_and_ifexp():
    interp = MiniInterpreter()
    assert interp.execute("a, b = (1, 2)\nreturn a if a > b else b") == 2


def test_interpreter_env_injection_and_persistence():
    interp = MiniInterpreter()
    interp.execute("y = x * 2", env={"x": 21})
    assert interp.execute("y") == 42


def test_interpreter_sandbox():
    interp = MiniInterpreter()
    with pytest.raises(ScriptError, match="attribute access"):
        interp.execute("().__class__")
    with pytest.raises(ScriptError, match="non-builtin"):
        interp.execute("open('/etc/passwd')")
    with pytest.raises(ScriptError, match="unsupported statement"):
        interp.execute("import os")
    with pytest.raises(ScriptError, match="undefined variable"):
        interp.execute("nope + 1")
    with pytest.raises(ScriptError, match="syntax error"):
        interp.execute("def f(:")


def test_interpreter_budget():
    interp = MiniInterpreter(max_steps=1000)
    with pytest.raises(ScriptBudgetError):
        interp.execute("while True:\n    pass")


# ----------------------------------------------------------------------
# Poesie over RPC
# ----------------------------------------------------------------------
@pytest.fixture()
def poesie_rig():
    cluster = Cluster(seed=6)
    server = cluster.add_margo("server", node="n0")
    cm = cluster.add_margo("client", node="n1")
    PoesieProvider(server, "scripts", provider_id=1)
    handle = PoesieClient(cm).make_handle(server.address, 1)
    return cluster, cm, handle


def test_poesie_execute_remote(poesie_rig):
    cluster, cm, interp = poesie_rig

    def driver():
        result = yield from interp.execute("return 6 * 7")
        return result

    assert cluster.run_ult(cm, driver()) == 42


def test_poesie_sessions_isolated(poesie_rig):
    cluster, cm, interp = poesie_rig

    def driver():
        yield from interp.execute("x = 1", session="s1")
        yield from interp.execute("x = 2", session="s2")
        a = yield from interp.get_var("x", session="s1")
        b = yield from interp.get_var("x", session="s2")
        yield from interp.reset(session="s1")
        return a, b

    assert cluster.run_ult(cm, driver()) == (1, 2)


def test_poesie_error_propagates(poesie_rig):
    cluster, cm, interp = poesie_rig

    def driver():
        yield from interp.execute("import os")

    with pytest.raises(RpcFailedError, match="unsupported statement"):
        cluster.run_ult(cm, driver())


def test_poesie_get_missing_var(poesie_rig):
    cluster, cm, interp = poesie_rig

    def driver():
        yield from interp.get_var("ghost")

    with pytest.raises(RpcFailedError, match="undefined"):
        cluster.run_ult(cm, driver())


# ----------------------------------------------------------------------
# Virtual (replicated) Warabi targets
# ----------------------------------------------------------------------
@pytest.fixture()
def virtual_warabi_rig():
    from repro.warabi import VirtualWarabiProvider

    cluster = Cluster(seed=77)
    backends = []
    targets = []
    for i in range(3):
        margo = cluster.add_margo(f"rep{i}", node=f"n{i}")
        backends.append(WarabiProvider(margo, f"blobs{i}", provider_id=1))
        targets.append({"address": margo.address, "provider_id": 1})
    front = cluster.add_margo("front", node="nf")
    virtual = VirtualWarabiProvider(
        front, "vblobs", provider_id=9,
        config={"targets": targets, "rpc_timeout": 0.5},
    )
    app = cluster.add_margo("app", node="na")
    handle = WarabiClient(app).make_handle(front.address, 9)
    return cluster, backends, virtual, app, handle


def test_virtual_warabi_replicates_writes(virtual_warabi_rig):
    cluster, backends, _, app, target = virtual_warabi_rig

    def driver():
        blob_id = yield from target.create()
        yield from target.write(blob_id, b"replicated-bytes")
        return blob_id, (yield from target.read(blob_id))

    blob_id, data = cluster.run_ult(app, driver())
    assert data == b"replicated-bytes"
    for backend in backends:
        assert bytes(backend._blobs[0]) == b"replicated-bytes"


def test_virtual_warabi_read_fails_over(virtual_warabi_rig):
    cluster, backends, _, app, target = virtual_warabi_rig

    def write():
        blob_id = yield from target.create()
        yield from target.write(blob_id, b"safe")
        return blob_id

    blob_id = cluster.run_ult(app, write())
    cluster.faults.kill_process(backends[0].margo.process)

    def read():
        return (yield from target.read(blob_id))

    assert cluster.run_ult(app, read()) == b"safe"


def test_virtual_warabi_erase_and_list(virtual_warabi_rig):
    cluster, backends, _, app, target = virtual_warabi_rig

    def driver():
        a = yield from target.create()
        b = yield from target.create()
        yield from target.erase(a)
        return (yield from target.list()), b

    listing, b = cluster.run_ult(app, driver())
    assert listing == [b]


def test_virtual_warabi_large_blob_bulk(virtual_warabi_rig):
    cluster, backends, _, app, target = virtual_warabi_rig
    big = bytes(range(256)) * 1024  # 256 KiB

    def driver():
        blob_id = yield from target.create()
        yield from target.write(blob_id, big)
        return (yield from target.read(blob_id))

    assert cluster.run_ult(app, driver()) == big


def test_virtual_warabi_requires_targets():
    from repro.warabi import VirtualWarabiProvider

    cluster = Cluster(seed=77)
    margo = cluster.add_margo("front", node="n0")
    with pytest.raises(WarabiError, match="at least one real target"):
        VirtualWarabiProvider(margo, "v", provider_id=1, config={})
