"""mochi-race over the example services: the CI acceptance gate.

The paper's dynamic features (reconfiguration, migration, elasticity)
are only trustworthy if the services they move stay schedule-invariant.
These tests assert exactly that: every example-service scenario is
race-clean under the happens-before engine AND produces identical
final-state digests across >= 8 perturbed ready-queue schedules.
"""

import pytest

from repro.analysis.race import hooks
from repro.analysis.race.explore import explore
from repro.analysis.race.scenarios import (
    SCENARIOS,
    raft_scenario,
    remi_scenario,
    run_race_suite,
    warabi_scenario,
    yokan_scenario,
)


@pytest.fixture(autouse=True)
def clean_hooks():
    hooks.disable()
    hooks.reset()
    yield
    hooks.disable()
    hooks.reset()


def test_scenarios_produce_facts_without_detection():
    # Scenarios are ordinary workloads; they run with the detector off.
    assert set(yokan_scenario()) == {f"t{i}:{j}" for i in range(2) for j in (0, 1, 2)}
    assert len(warabi_scenario()) == 3
    assert set(remi_scenario()) == {f"data/{i:04d}" for i in range(4)}
    facts = raft_scenario()
    assert facts["num_leaders"] == 1
    assert facts["terms_converged"] and facts["all_running"]


@pytest.mark.parametrize("name,scenario", SCENARIOS, ids=[n for n, _ in SCENARIOS])
def test_service_race_clean_across_eight_seeds(name, scenario):
    report = explore(scenario, name, seeds=tuple(range(1, 9)))
    assert len(report.runs) == 8
    digests = {run.digest for run in report.runs}
    assert digests == {report.baseline.digest}, (
        f"{name}: final state diverged under perturbation"
    )
    assert report.clean, [f.format() for f in report.findings]


def test_run_race_suite_emits_summary_lines():
    lines = []
    findings, reports = run_race_suite(seeds=2, emit=lines.append)
    assert findings == []
    assert len(reports) == len(SCENARIOS)
    assert len(lines) == len(SCENARIOS)
    for (name, _), line in zip(SCENARIOS, lines):
        assert name in line and "0 diverging" in line


def test_race_report_tool_clean():
    from repro.tools import race_report

    text = race_report(seeds=2)
    assert "mochi-race: clean" in text
    for name, _ in SCENARIOS:
        assert name in text
