"""The repro-lint command line: exit codes, formats, and the acceptance
criterion that the repository itself lints clean."""

import json
import os
import textwrap

from repro.analysis.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CLEAN = """
def worker(kernel):
    yield Sleep(kernel.now + 1.0)
    return kernel.now
"""

DIRTY = """
import time

def worker():
    yield Sleep(1.0)
    return time.time()
"""


def write(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return str(path)


def test_clean_file_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    assert main([path]) == 0
    assert "clean" in capsys.readouterr().out


def test_findings_exit_one_with_locations(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert f"{path}:6: MCH001" in out
    assert "1 finding(s)" in out


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "repro-lint:" in capsys.readouterr().err


def test_json_format(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main(["--format", "json", path]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc[0]["rule_id"] == "MCH001"
    assert doc[0]["path"] == path
    assert doc[0]["line"] == 6
    assert doc[0]["source"] == "static"


def test_select_and_ignore(tmp_path):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main(["--select", "MCH002", path]) == 0
    assert main(["--ignore", "MCH001", path]) == 0
    assert main(["--select", "MCH001", path]) == 1


def test_directory_walk_includes_configs(tmp_path, capsys):
    write(tmp_path, "dirty.py", DIRTY)
    (tmp_path / "bad.json").write_text(
        json.dumps({"argobots": {}, "progress_pool": "ghost"})
    )
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "MCH001" in out
    assert "MCH020" in out
    assert "2 finding(s)" in out


def test_list_rules_covers_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "MCH001", "MCH002", "MCH003",
        "MCH010", "MCH011", "MCH012", "MCH013",
        "MCH020", "MCH021", "MCH022", "MCH023",
        "MCH090", "MCH091",
    ):
        assert rule_id in out
    # The runtime-checked rules advertise their dynamic half.
    assert out.count("also runtime-checked") == 2


def test_module_entry_point_matches_cli():
    from repro.analysis import __main__  # noqa: F401 - importable

    from repro.analysis.cli import main as cli_main

    assert cli_main is main


def test_repository_lints_clean(capsys):
    """The ISSUE acceptance criterion: zero unsuppressed findings over
    src/repro, examples/, and benchmarks/."""
    targets = [
        os.path.join(REPO_ROOT, "src", "repro"),
        os.path.join(REPO_ROOT, "examples"),
        os.path.join(REPO_ROOT, "benchmarks"),
    ]
    assert main(targets) == 0, capsys.readouterr().out
