"""The repro-lint command line: exit codes, formats, and the acceptance
criterion that the repository itself lints clean."""

import json
import os
import textwrap

from repro.analysis.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CLEAN = """
def worker(kernel):
    yield Sleep(kernel.now + 1.0)
    return kernel.now
"""

DIRTY = """
import time

def worker():
    yield Sleep(1.0)
    return time.time()
"""


def write(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return str(path)


def test_clean_file_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    assert main([path]) == 0
    assert "clean" in capsys.readouterr().out


def test_findings_exit_one_with_locations(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert f"{path}:6: MCH001" in out
    assert "1 finding(s)" in out


def test_sarif_format(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main(["--format", "sarif", path]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "mochi-lint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == ["MCH001"]
    # Rule categories come straight from the registry's group field.
    assert run["tool"]["driver"]["rules"][0]["properties"]["category"] == "determinism"
    result = run["results"][0]
    assert result["ruleId"] == "MCH001"
    assert result["level"] == "error"
    region = result["locations"][0]["physicalLocation"]
    assert region["region"]["startLine"] == 6
    # Pseudo-paths (runtime findings) must still be valid artifact URIs.
    from repro.analysis.registry import make_finding
    from repro.analysis.sarif import to_sarif

    race = to_sarif([make_finding("MCH030", "race:db", 0, "msg", source="runtime")])
    location = race["runs"][0]["results"][0]["locations"][0]["physicalLocation"]
    assert ":" not in location["artifactLocation"]["uri"]
    assert location["region"]["startLine"] == 1


def test_sarif_format_clean_is_empty_run(tmp_path, capsys):
    path = write(tmp_path, "clean.py", CLEAN)
    assert main(["--format", "sarif", path]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["results"] == []


def test_race_cli_runs_suite(capsys):
    assert main(["--race", "--race-seeds", "1"]) == 0
    out = capsys.readouterr().out
    assert "yokan-kv" in out and "raft-election" in out
    assert "clean (race suite)" in out


def test_missing_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    assert "repro-lint:" in capsys.readouterr().err


def test_json_format(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main(["--format", "json", path]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc[0]["rule_id"] == "MCH001"
    assert doc[0]["path"] == path
    assert doc[0]["line"] == 6
    assert doc[0]["source"] == "static"


def test_select_and_ignore(tmp_path):
    path = write(tmp_path, "dirty.py", DIRTY)
    assert main(["--select", "MCH002", path]) == 0
    assert main(["--ignore", "MCH001", path]) == 0
    assert main(["--select", "MCH001", path]) == 1


def test_directory_walk_includes_configs(tmp_path, capsys):
    write(tmp_path, "dirty.py", DIRTY)
    (tmp_path / "bad.json").write_text(
        json.dumps({"argobots": {}, "progress_pool": "ghost"})
    )
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "MCH001" in out
    assert "MCH020" in out
    assert "2 finding(s)" in out


def test_list_rules_covers_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "MCH001", "MCH002", "MCH003", "MCH004",
        "MCH010", "MCH011", "MCH012", "MCH013",
        "MCH020", "MCH021", "MCH022", "MCH023",
        "MCH030", "MCH031", "MCH032", "MCH040", "MCH041",
        "MCH090", "MCH091",
    ):
        assert rule_id in out
    # MCH004 carries its own category block between the determinism and
    # scheduling runs of the id space.
    assert "[observability]" in out
    # The runtime-checked rules advertise their dynamic half: MCH011,
    # MCH012, MCH070, and the five mochi-race concurrency rules.
    assert out.count("also runtime-checked") == 8


def test_module_entry_point_matches_cli():
    from repro.analysis import __main__  # noqa: F401 - importable

    from repro.analysis.cli import main as cli_main

    assert cli_main is main


def test_repository_lints_clean(capsys):
    """The ISSUE acceptance criterion: zero unsuppressed findings over
    src/repro, examples/, and benchmarks/."""
    targets = [
        os.path.join(REPO_ROOT, "src", "repro"),
        os.path.join(REPO_ROOT, "examples"),
        os.path.join(REPO_ROOT, "benchmarks"),
    ]
    assert main(targets) == 0, capsys.readouterr().out
