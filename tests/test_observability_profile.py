"""mochi-profile: windowed store, RPC latency decomposition, Bedrock
introspection RPCs, and determinism of the rollups."""

import json

import pytest

from repro import Cluster
from repro.analysis.race import hooks as race_hooks
from repro.bedrock.boot import boot_process
from repro.bedrock.client import BedrockClient
from repro.margo.errors import RpcFailedError
from repro.margo.ult import Compute, UltSleep
from repro.observability import (
    ObservabilitySpec,
    PhaseAggregate,
    ProfileStore,
    chrome_trace_profile,
    dumps_chrome_trace_profile,
    quantile_from_buckets,
)
from repro.observability.profile.estimator import LoadEstimator
from repro.yokan import YokanClient

PROFILED = {"observability": {"profiling": True, "profile_window": 0.05}}


# ----------------------------------------------------------------------
# quantile estimation / aggregates
# ----------------------------------------------------------------------
def test_quantile_empty_is_zero():
    buckets = PhaseAggregate.BUCKETS
    assert quantile_from_buckets(0.5, buckets, [0] * (len(buckets) + 1), 0, 0) == 0.0


def test_quantile_clamped_to_observed_range():
    agg = PhaseAggregate()
    for value in (2e-4, 3e-4, 4e-4):
        agg.observe(value)
    doc = agg.to_json()
    assert doc["count"] == 3
    assert doc["min"] == pytest.approx(2e-4)
    assert doc["max"] == pytest.approx(4e-4)
    for q in ("p50", "p95", "p99"):
        assert doc["min"] <= doc[q] <= doc["max"]
    assert doc["p50"] <= doc["p95"] <= doc["p99"]


def test_quantile_overflow_bucket_reports_max():
    agg = PhaseAggregate()
    agg.observe(50.0)  # beyond the largest bucket bound
    doc = agg.to_json()
    assert doc["p99"] == 50.0


# ----------------------------------------------------------------------
# the windowed store
# ----------------------------------------------------------------------
def test_store_ring_is_bounded():
    store = ProfileStore(window=1.0, history=4)
    store.open_window(0)
    for _ in range(10):
        store.close_current({}, {})
    assert len(store.windows) == 4
    assert [w["index"] for w in store.windows] == [6, 7, 8, 9]
    assert store.current.index == 10


def test_store_window_boundaries_deterministic():
    store = ProfileStore(window=0.25, history=8)
    assert store.window_index(0.0) == 0
    assert store.window_index(0.24) == 0
    assert store.window_index(0.25) == 1
    window = store.open_window(3)
    assert (window.start, window.end) == (0.75, 1.0)


def test_store_query_validation():
    store = ProfileStore(window=1.0, history=4)
    with pytest.raises(RuntimeError, match="no open window"):
        store.close_current({}, {})
    store.open_window(0)
    store.close_current({}, {})
    with pytest.raises(ValueError, match="'last'"):
        store.closed_windows(last=-1)
    assert store.closed_windows(last=0) == []
    with pytest.raises(ValueError):
        ProfileStore(window=0.0, history=4)
    with pytest.raises(ValueError):
        ProfileStore(window=1.0, history=0)


# ----------------------------------------------------------------------
# ObservabilitySpec surface
# ----------------------------------------------------------------------
def test_spec_profiling_validation():
    with pytest.raises(ValueError, match="profile_window"):
        ObservabilitySpec.from_json({"profiling": True, "profile_window": 0})
    with pytest.raises(ValueError, match="load_imbalance_threshold"):
        ObservabilitySpec.from_json({"load_imbalance_threshold": 0.5})
    with pytest.raises(ValueError, match="busy_threshold"):
        ObservabilitySpec.from_json({"busy_threshold": 1.5})
    with pytest.raises(ValueError, match="unknown observability keys"):
        ObservabilitySpec.from_json({"profilng": True})


def test_spec_roundtrip_keeps_profiling_keys():
    spec = ObservabilitySpec.from_json(
        {"profiling": True, "profile_window": 0.5, "busy_threshold": 0.8}
    )
    doc = spec.to_json()
    assert doc["profiling"] is True
    assert doc["profile_window"] == 0.5
    assert doc["busy_threshold"] == 0.8
    assert ObservabilitySpec.from_json(doc) == spec
    # Non-profiled spec reflects without any profiling keys (round-trip
    # compatibility with pre-profiling configuration documents).
    assert "profiling" not in ObservabilitySpec().to_json()


# ----------------------------------------------------------------------
# live decomposition (two profiled processes)
# ----------------------------------------------------------------------
def _echo_handler(ctx):
    yield Compute(1e-6)
    return {"ok": True}


def _run_profiled_pair(seed=7):
    """20 echo RPCs between two profiled processes; returns (a, b)."""
    cluster = Cluster(seed=seed)
    a = cluster.add_margo("a", "node0", config=PROFILED)
    b = cluster.add_margo("b", "node1", config=PROFILED)
    b.register("echo_ping", _echo_handler, provider_id=3)

    def client():
        for _ in range(20):
            yield from a.forward(b.address, "echo_ping", {"x": 1}, provider_id=3)
            yield UltSleep(0.01)

    cluster.run_ult(a, client())
    cluster.kernel.run(until=0.5)
    return cluster, a, b


def test_decomposition_records_all_phases():
    _cluster, a, b = _run_profiled_pair()
    client_rpc = {}
    server_rpc = {}
    for window in a.profiler.store.windows:
        client_rpc.update(window["rpc"].get("echo_ping/3", {}))
    for window in b.profiler.store.windows:
        server_rpc.update(window["rpc"].get("echo_ping/3", {}))
    assert {"client_queue", "respond", "total"} <= set(client_rpc)
    assert {"network", "server_queue", "handler"} <= set(server_rpc)
    # The handler phase includes the modeled compute, so it dominates.
    assert server_rpc["handler"]["min"] >= 1e-6


def test_provider_rates_measured_on_server():
    _cluster, _a, b = _run_profiled_pair()
    entries = [
        w["providers"]["echo:3"]
        for w in b.profiler.store.windows
        if "echo:3" in w["providers"]
    ]
    assert entries
    assert sum(e["requests"] for e in entries) == 20
    assert all(e["rate"] > 0 for e in entries)
    assert all(e["bytes_in"] > 0 and e["bytes_out"] > 0 for e in entries)


def test_waterfalls_are_complete_and_contiguous():
    _cluster, a, _b = _run_profiled_pair()
    assert len(a.profiler.waterfalls) == 20
    for waterfall in a.profiler.waterfalls:
        phases = waterfall["phases"]
        assert [p["phase"] for p in phases] == [
            "client_queue", "network", "server_queue", "handler", "respond",
        ]
        assert phases[0]["start"] == waterfall["start"]
        assert phases[-1]["end"] == waterfall["end"]
        for prev, nxt in zip(phases, phases[1:]):
            assert prev["end"] == nxt["start"]  # no gaps, no overlaps
            assert prev["end"] >= prev["start"]


def test_pool_scheduling_latency_observed():
    _cluster, a, _b = _run_profiled_pair()
    samples = [
        window["rpc"]["pool/__primary__"]["sched"]
        for window in a.profiler.store.windows
        if "pool/__primary__" in window["rpc"]
    ]
    assert samples and sum(s["count"] for s in samples) > 0


def test_xstream_utilization_sampled():
    _cluster, a, _b = _run_profiled_pair()
    busy_windows = [
        w for w in a.profiler.store.windows
        if w["xstreams"]["__primary__"]["busy"] > 0
    ]
    assert busy_windows
    for window in a.profiler.store.windows:
        sample = window["xstreams"]["__primary__"]
        assert 0.0 <= sample["utilization"] <= 1.0
        assert sample["busy"] + sample["idle"] == pytest.approx(0.05)


def test_phase_histogram_metrics_registered():
    _cluster, a, _b = _run_profiled_pair()
    snapshot = a.metrics.snapshot()
    assert "margo_rpc_phase_seconds" in snapshot
    assert "margo_pool_sched_latency_seconds" in snapshot


def test_profiling_off_is_zero_cost():
    cluster = Cluster(seed=7)
    a = cluster.add_margo("a", "node0")
    assert a.profiler is None
    for pool in a.pools.values():
        assert pool._profiler is None
    assert a.monitors == []


def test_profiler_stops_on_shutdown():
    cluster, a, _b = _run_profiled_pair()
    a.shutdown()
    assert not a.profiler._running
    for pool in a.pools.values():
        assert pool._profiler is None
    # No further windows accumulate after shutdown.
    n = len(a.profiler.store.windows)
    cluster.kernel.run(until=1.0)
    assert len(a.profiler.store.windows) == n


# ----------------------------------------------------------------------
# determinism of the rollups
# ----------------------------------------------------------------------
def _profile_bytes(seed=11):
    _cluster, a, b = _run_profiled_pair(seed=seed)
    return (
        json.dumps(a.profiler.profile(), sort_keys=True)
        + json.dumps(b.profiler.profile(), sort_keys=True)
        + json.dumps(a.profiler.utilization(), sort_keys=True)
    )


def test_profile_byte_identical_across_runs():
    assert _profile_bytes() == _profile_bytes()


def test_profile_identical_under_race_record_mode():
    """Race-detector record mode observes the same schedule, so the
    profile must not change by a byte (profiling + recording compose
    without perturbing the simulation)."""
    plain = _profile_bytes()
    race_hooks.disable()
    race_hooks.reset()
    race_hooks.enable()
    try:
        recorded = _profile_bytes()
    finally:
        race_hooks.disable()
        race_hooks.reset()
    assert recorded == plain


# ----------------------------------------------------------------------
# Bedrock introspection RPCs
# ----------------------------------------------------------------------
def _boot_profiled_kv(cluster, name="kv0", node="n0", profiling=True):
    observability = {"profiling": True, "profile_window": 0.05} if profiling else {}
    config = {
        "margo": {"observability": observability},
        "libraries": {"yokan": "libyokan.so"},
        "providers": [
            {
                "name": f"db-{name}",
                "type": "yokan",
                "provider_id": 1,
                "config": {"database": {"type": "persistent"}},
            }
        ],
    }
    return boot_process(cluster, name, node, config)


def _bedrock_rig(profiling=True, seed=21):
    cluster = Cluster(seed=seed)
    margo, bedrock = _boot_profiled_kv(cluster, profiling=profiling)
    ctl = cluster.add_margo("ctl", "ctl-node")
    handle = BedrockClient(ctl).make_service_handle(margo.address)
    db = YokanClient(ctl).make_handle(margo.address, 1)

    def traffic():
        yield from db.put_multi([(f"k{i}", "v" * 50) for i in range(30)])
        for i in range(30):
            yield from db.get(f"k{i % 30}")
            yield UltSleep(0.005)

    cluster.run_ult(ctl, traffic())
    cluster.kernel.run(until=0.5)
    return cluster, ctl, handle, bedrock


def test_bedrock_get_profile_rpc():
    cluster, ctl, handle, _bedrock = _bedrock_rig()

    def query():
        full = yield from handle.get_profile()
        last2 = yield from handle.get_profile(last=2)
        return full, last2

    full, last2 = cluster.run_ult(ctl, query())
    assert full["enabled"] is True
    assert full["process"] == "kv0"
    assert len(full["windows"]) > 2
    assert len(last2["windows"]) == 2
    assert last2["windows"] == full["windows"][-2:]
    measured = [w for w in full["windows"] if "yokan:1" in w["providers"]]
    assert measured and all(w["providers"]["yokan:1"]["rate"] > 0 for w in measured)


def test_bedrock_get_utilization_rpc():
    cluster, ctl, handle, _bedrock = _bedrock_rig()

    def query():
        return (yield from handle.get_utilization())

    doc = cluster.run_ult(ctl, query())
    assert doc["enabled"] is True
    assert doc["window"] == 0.05
    assert "__primary__" in doc["xstreams"]
    assert 0.0 <= doc["xstreams"]["__primary__"]["utilization"] <= 1.0


def test_bedrock_profile_disabled_degrades_gracefully():
    cluster, ctl, handle, _bedrock = _bedrock_rig(profiling=False)

    def query():
        profile = yield from handle.get_profile()
        utilization = yield from handle.get_utilization()
        return profile, utilization

    profile, utilization = cluster.run_ult(ctl, query())
    assert profile == {"enabled": False, "process": "kv0", "windows": []}
    assert utilization["enabled"] is False


def test_malformed_introspection_contained():
    """A malformed query degrades to an error response + counter tick;
    the Bedrock server stays fully operational afterwards."""
    cluster, ctl, handle, bedrock = _bedrock_rig()
    assert bedrock._introspection_errors.value == 0

    def bad_get_profile():
        yield from ctl.forward(
            handle.address, "bedrock_get_profile", {"bogus": 1}, provider_id=0
        )

    with pytest.raises(RpcFailedError, match="get_profile"):
        cluster.run_ult(ctl, bad_get_profile())
    assert bedrock._introspection_errors.value == 1

    def bad_query():
        yield from handle.query("definitely not jx9 $$$")

    with pytest.raises(RpcFailedError, match="query"):
        cluster.run_ult(ctl, bad_query())
    assert bedrock._introspection_errors.value == 2

    # Still alive: a well-formed introspection RPC succeeds afterwards.
    def good():
        return (yield from handle.get_metrics())

    snapshot = cluster.run_ult(ctl, good())
    assert snapshot["bedrock_introspection_errors"]["series"][""]["value"] == 2


def test_get_profile_json_identical_across_bedrock_runs():
    def run():
        cluster, ctl, handle, _bedrock = _bedrock_rig(seed=33)

        def query():
            return (yield from handle.get_profile())

        return json.dumps(cluster.run_ult(ctl, query()), sort_keys=True)

    assert run() == run()


# ----------------------------------------------------------------------
# exporters / load estimator
# ----------------------------------------------------------------------
def test_chrome_trace_profile_export():
    _cluster, a, b = _run_profiled_pair()
    doc = chrome_trace_profile(a.profiler, b.profiler)
    cats = {e["cat"] for e in doc["traceEvents"]}
    assert {"rpc", "rpc_phase", "profile"} <= cats
    phase_names = {
        e["name"] for e in doc["traceEvents"] if e["cat"] == "rpc_phase"
    }
    assert phase_names == {
        "client_queue", "network", "server_queue", "handler", "respond",
    }
    # Deterministic rendering.
    assert dumps_chrome_trace_profile(a.profiler) == dumps_chrome_trace_profile(
        a.profiler
    )


def test_load_estimator_reduces_windows():
    _cluster, _a, b = _run_profiled_pair()
    estimator = LoadEstimator(smoothing=100)  # all windows
    estimates = estimator.estimate(b.profiler.profile())
    assert "echo:3" in estimates
    assert estimates["echo:3"]["load"] > 0
    assert estimator.shard_load(estimates, "echo:3") == estimates["echo:3"]["load"]
    assert estimator.shard_load(estimates, "missing:9", default=1.5) == 1.5
    merged = LoadEstimator.merge([estimates, {"echo:3": {"load": 1.0}}])
    assert merged["echo:3"]["load"] == pytest.approx(estimates["echo:3"]["load"] + 1.0)
    with pytest.raises(ValueError):
        LoadEstimator(smoothing=0)
    assert estimator.estimate({"windows": []}) == {}
