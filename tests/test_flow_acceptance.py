"""Acceptance: the repository's own sources are mochi-flow clean, and
the --flow layer is wired end to end (CLI flag, registry group, stats,
determinism)."""

import json
import os
import subprocess
import sys

from repro.analysis.engine import run_lint
from repro.analysis.registry import GROUP_FLOW, rule_catalog

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_src_repro_is_flow_clean():
    result = run_lint([os.path.join(REPO, "src", "repro")], flow=True)
    flow = [f for f in result.findings if f.rule_id.startswith("MCH07")]
    assert flow == [], [f.format() for f in flow]
    # The analysis actually ran: CFGs were built, handlers analyzed.
    assert result.stats["flow_cfgs_built"] > 0
    assert result.stats["flow_handlers_analyzed"] > 0
    assert result.stats["flow_cfg_nodes"] > result.stats["flow_cfgs_built"]
    assert result.stats["flow_exit_paths"] > 0


def test_flow_rules_registered_in_catalog():
    infos = {info.id: info for info in rule_catalog()}
    for rule_id in ("MCH070", "MCH071", "MCH072", "MCH073"):
        assert rule_id in infos
        assert infos[rule_id].group == GROUP_FLOW
    # MCH070 has a runtime half (sanitize.py), same split as MCH011/012.
    assert infos["MCH070"].runtime_checked


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
        timeout=120,
    )


def test_cli_flow_runs_are_byte_identical():
    # Over the fixture tree (which has real findings) so the comparison
    # is meaningful; --no-cache so both runs do the full analysis.
    args = (
        "--flow",
        "--no-cache",
        "--format",
        "json",
        "--stats",
        os.path.join("tests", "fixtures", "flow", "lock"),
        os.path.join("tests", "fixtures", "flow", "typestate"),
    )
    first = run_cli(*args)
    second = run_cli(*args)
    assert first.returncode == 1, first.stdout + first.stderr  # findings exist
    assert first.stdout == second.stdout
    findings = json.loads(first.stdout)
    assert {f["rule_id"] for f in findings} >= {"MCH071", "MCH073"}
    assert "flow_cfgs_built=" in first.stderr


def test_cli_flow_clean_over_warabi():
    proc = run_cli(
        "--flow", "--no-cache", "--format", "json",
        os.path.join("src", "repro", "warabi"),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout) == []


def test_cli_list_rules_shows_flow_group():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    assert "flow-protocols" in proc.stdout
    for rule_id in ("MCH070", "MCH071", "MCH072", "MCH073"):
        assert rule_id in proc.stdout
