"""Edge-case tests for the P1 bucketed timer-wheel kernel backend.

The wheel (calendar queue with an overflow far-list and lazy span
resize) must be *observationally identical* to the ``SIM_KERNEL=heap``
fallback: bit-identical ``(deadline, seq)`` FIFO order under every
workload shape, including the shapes that exercise wheel-only machinery
-- horizon crossings, far-list migration, span resize, bucket free-list
reuse, and mass cancellation in both the buckets and the far-list.
"""

import random

import pytest

from repro.sim import SimKernel, SimulationError, Sleep
from repro.sim import kernel as kernel_mod


# ----------------------------------------------------------------------
# cross-backend golden equality
# ----------------------------------------------------------------------
def _mixed_workload(backend, seed=1234):
    """A seeded storm of near, far, same-deadline, and cancelled timers."""
    rng = random.Random(seed)
    kernel = SimKernel(backend)
    log = []

    def note(tag):
        log.append((kernel.now, tag))

    span = kernel_mod._WHEEL_SPAN
    cancelled = []
    for i in range(400):
        kind = rng.randrange(4)
        if kind == 0:
            # Inside the initial horizon.
            kernel.schedule(rng.uniform(0, span * 0.9), note, f"near{i}")
        elif kind == 1:
            # Far beyond the horizon: lands on the far-list.
            kernel.schedule(span * rng.uniform(2, 50), note, f"far{i}")
        elif kind == 2:
            # Same-deadline batch: FIFO by seq inside one bucket.
            kernel.schedule(span * 0.5, note, f"batch{i}")
        else:
            cancelled.append(kernel.schedule(span * rng.uniform(0, 40), note, f"dead{i}"))
    for timer in cancelled:
        timer.cancel()

    def sleeper():
        for n in range(5):
            yield Sleep(span * 7)
            note(f"sleep{n}")

    kernel.spawn(sleeper(), name="sleeper")
    kernel.run()
    return log


def test_cross_backend_golden_equality():
    """The same seeded workload produces the same trace on both backends."""
    wheel = _mixed_workload("wheel")
    heap = _mixed_workload("heap")
    assert wheel == heap
    assert len(wheel) > 250  # the workload actually fired things


@pytest.mark.parametrize("seed", [7, 99, 2024])
def test_cross_backend_equality_other_seeds(seed):
    assert _mixed_workload("wheel", seed) == _mixed_workload("heap", seed)


# ----------------------------------------------------------------------
# far-future overflow and migration
# ----------------------------------------------------------------------
def test_far_future_timers_overflow_then_migrate():
    """Entries past the horizon sit on the far-list, then migrate into
    buckets as the wheel advances -- firing in exact deadline order."""
    kernel = SimKernel("wheel")
    span = kernel_mod._WHEEL_SPAN
    fired = []
    deadlines = [span * m for m in (40, 3, 11, 27, 5)]
    for deadline in deadlines:
        kernel.schedule_at(deadline, fired.append, deadline)
    assert len(kernel._far) == len(deadlines)  # all past the initial horizon
    kernel.run()
    assert fired == sorted(deadlines)
    assert kernel._far == []


def test_far_list_same_deadline_keeps_schedule_order():
    """Two far entries on one deadline fire in scheduling order after
    migration (the far-list sort is stable)."""
    kernel = SimKernel("wheel")
    span = kernel_mod._WHEEL_SPAN
    fired = []
    for i in range(20):
        kernel.schedule_at(span * 10, fired.append, i)
    kernel.run()
    assert fired == list(range(20))


def test_lazy_span_resize_on_sparse_far_list():
    """Migrations that move almost nothing double the span: a workload
    with widely spread deadlines must widen the wheel instead of
    thrashing one-entry migrations."""
    kernel = SimKernel("wheel")
    span0 = kernel_mod._WHEEL_SPAN
    # Deadlines spread geometrically far apart: each migration window
    # captures only one of them.
    for m in (1, 10, 100, 1000, 10_000):
        kernel.schedule_at(span0 * m, lambda: None)
    kernel.run()
    assert kernel._span > span0


def test_mass_cancel_in_far_list_compacts():
    """Cancelled far-list entries are swept by compaction, same as
    bucket entries."""
    kernel = SimKernel("wheel")
    span = kernel_mod._WHEEL_SPAN
    timers = [kernel.schedule(span * 100 + i * span, lambda: None) for i in range(5_000)]
    assert len(kernel._far) == 5_000
    for timer in timers:
        timer.cancel()
    assert len(kernel._far) < 2 * kernel_mod._COMPACT_MIN_CANCELLED
    kernel.run()
    assert kernel.now == 0.0  # nothing ever fired


# ----------------------------------------------------------------------
# zero-delay runaway
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["wheel", "heap"])
def test_zero_delay_post_runaway_raises(backend):
    """``post`` (the no-handle fast path) hits the max_events guard from
    inside a single-deadline batch drain, exactly like ``schedule``."""
    kernel = SimKernel(backend)

    def reschedule():
        kernel.post(0.0, reschedule)

    kernel.post(0.0, reschedule)
    with pytest.raises(SimulationError, match="max_events"):
        kernel.run(max_events=1_000)


# ----------------------------------------------------------------------
# bucket slot reuse (free-list)
# ----------------------------------------------------------------------
def test_drained_buckets_are_recycled_and_reused():
    """A drained bucket's slot list returns to the free-list and is
    handed to a later deadline without corrupting either schedule."""
    kernel = SimKernel("wheel")
    fired = []
    for i in range(10):
        kernel.post(0.0001, fired.append, f"a{i}")
    kernel.run()
    assert kernel._free  # the drained bucket was recycled
    recycled = kernel._free[-1]
    assert recycled == []  # cleared before reuse
    for i in range(10):
        kernel.post(0.0002, fired.append, f"b{i}")
    assert kernel._buckets[kernel.now + 0.0002] is recycled
    kernel.run()
    assert fired == [f"a{i}" for i in range(10)] + [f"b{i}" for i in range(10)]


def test_cancel_after_fire_leaves_reused_slots_intact():
    """Cancelling a timer whose bucket already drained (and was
    recycled into a new deadline) must not disturb the new occupants."""
    kernel = SimKernel("wheel")
    fired = []
    old = [kernel.schedule(0.0001, fired.append, f"old{i}") for i in range(5)]
    kernel.run()
    new = [kernel.schedule(0.0001, fired.append, f"new{i}") for i in range(5)]
    for timer in old:
        timer.cancel()  # fired already: must not touch the reused bucket
    kernel.run()
    assert fired == [f"old{i}" for i in range(5)] + [f"new{i}" for i in range(5)]
    assert kernel._cancelled_count == 0


# ----------------------------------------------------------------------
# SIM_KERNEL environment knob
# ----------------------------------------------------------------------
def test_sim_kernel_env_selects_backend(monkeypatch):
    monkeypatch.setenv("SIM_KERNEL", "heap")
    assert SimKernel().backend == "heap"
    monkeypatch.setenv("SIM_KERNEL", "wheel")
    assert SimKernel().backend == "wheel"
    monkeypatch.setenv("SIM_KERNEL", "")
    assert SimKernel().backend == "wheel"  # empty means default


def test_explicit_backend_overrides_env(monkeypatch):
    monkeypatch.setenv("SIM_KERNEL", "heap")
    assert SimKernel("wheel").backend == "wheel"


def test_unknown_backend_rejected(monkeypatch):
    with pytest.raises(ValueError, match="unknown kernel backend"):
        SimKernel("btree")
    monkeypatch.setenv("SIM_KERNEL", "fibheap")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        SimKernel()
