"""Adaptive observer sampling: every-Nth profiler decomposition with
weighted (unbiased) rates, probabilistic trace sampling, and error
accounting for the SLO engine."""

import json

import pytest

from repro import Cluster
from repro.margo.errors import RpcFailedError
from repro.margo.ult import Compute, UltSleep
from repro.observability import ObservabilitySpec, Tracer

SAMPLED_PROFILE = {
    "observability": {
        "profiling": True,
        "profile_window": 0.05,
        "profile_sample_every": 4,
    }
}


def _echo_handler(ctx):
    yield Compute(1e-6)
    return {"ok": True}


def _run_sampled_pair(seed=7, config=SAMPLED_PROFILE, n_rpcs=20):
    cluster = Cluster(seed=seed)
    a = cluster.add_margo("a", "node0", config=config)
    b = cluster.add_margo("b", "node1", config=config)
    b.register("echo_ping", _echo_handler, provider_id=3)

    def client():
        for _ in range(n_rpcs):
            yield from a.forward(b.address, "echo_ping", {"x": 1}, provider_id=3)
            yield UltSleep(0.01)

    cluster.run_ult(a, client())
    cluster.kernel.run(until=0.5)
    return cluster, a, b


# ----------------------------------------------------------------------
# every-Nth decomposition with weighted rates
# ----------------------------------------------------------------------
def test_sampled_requests_decompose_every_nth():
    _cluster, a, b = _run_sampled_pair()
    # 20 RPCs, sample_every=4: 5 requests carry the full decomposition.
    assert len(a.profiler.waterfalls) == 5
    total_count = sum(
        w["rpc"]["echo_ping/3"]["total"]["count"]
        for w in a.profiler.store.windows
        if "echo_ping/3" in w["rpc"]
    )
    assert total_count == 5


def test_sampled_rates_stay_unbiased():
    """Weighted note_request keeps measured traffic exact: 5 sampled
    requests x weight 4 = the 20 RPCs that actually ran."""
    _cluster, _a, b = _run_sampled_pair()
    requests = sum(
        w["providers"]["echo:3"]["requests"]
        for w in b.profiler.store.windows
        if "echo:3" in w["providers"]
    )
    assert requests == 20


def test_sampling_stamp_agrees_across_processes():
    """The client stamps the shared request; the server honors it, so
    both sides decompose the *same* 5 requests."""
    _cluster, a, b = _run_sampled_pair()
    server_handler_count = sum(
        w["rpc"]["echo_ping/3"]["handler"]["count"]
        for w in b.profiler.store.windows
        if "echo_ping/3" in w["rpc"] and "handler" in w["rpc"]["echo_ping/3"]
    )
    assert server_handler_count == 5


def test_sampled_profile_byte_identical():
    def run():
        _c, a, b = _run_sampled_pair(seed=17)
        return (json.dumps(a.profiler.profile(), sort_keys=True)
                + json.dumps(b.profiler.profile(), sort_keys=True))

    assert run() == run()


# ----------------------------------------------------------------------
# error accounting (feeds the error_rate / availability SLOs)
# ----------------------------------------------------------------------
def test_failed_responses_counted_as_errors():
    cluster = Cluster(seed=9)
    config = {"observability": {"profiling": True, "profile_window": 0.05}}
    a = cluster.add_margo("a", "node0", config=config)
    b = cluster.add_margo("b", "node1", config=config)
    calls = {"n": 0}

    def flaky(ctx):
        yield Compute(1e-6)
        calls["n"] += 1
        if calls["n"] % 5 == 0:
            raise ValueError("boom")
        return {"ok": True}

    b.register("echo_ping", flaky, provider_id=3)

    def client():
        for _ in range(20):
            try:
                yield from a.forward(b.address, "echo_ping", {}, provider_id=3)
            except RpcFailedError:
                pass
            yield UltSleep(0.01)

    cluster.run_ult(a, client())
    cluster.kernel.run(until=0.5)
    requests = errors = 0
    for window in b.profiler.store.windows:
        entry = window["providers"].get("echo:3")
        if entry:
            requests += entry["requests"]
            errors += entry["errors"]
    assert requests == 20
    assert errors == 4  # every 5th call failed


# ----------------------------------------------------------------------
# trace sampling
# ----------------------------------------------------------------------
def _run_traced_pair(rate, seed=7, n_rpcs=40):
    config = {"observability": {"tracing": True, "trace_sample_rate": rate}}
    cluster = Cluster(seed=seed)
    a = cluster.add_margo("a", "node0", config=config)
    b = cluster.add_margo("b", "node1", config=config)
    b.register("echo_ping", _echo_handler, provider_id=3)

    def client():
        for _ in range(n_rpcs):
            yield from a.forward(b.address, "echo_ping", {}, provider_id=3)

    cluster.run_ult(a, client())
    return cluster, a, b


def test_trace_sampling_drops_whole_traces():
    _cluster, a, b = _run_traced_pair(rate=0.5)
    sampled_traces = {s.trace_id for s in a.tracer.spans}
    # Roughly half the traces survive; whole traces sample together, so
    # the server's span set covers exactly the client's trace ids.
    assert 0 < len(sampled_traces) < 40
    assert {s.trace_id for s in b.tracer.spans} == sampled_traces
    assert a.tracer.sampled_out > 0


def test_trace_sampling_edges_and_determinism():
    _cluster, a, _b = _run_traced_pair(rate=0.0)
    assert a.tracer.spans == [] and a.tracer.sampled_out > 0
    _cluster, a2, _b2 = _run_traced_pair(rate=1.0)
    assert len({s.trace_id for s in a2.tracer.spans}) == 40
    assert a2.tracer.sampled_out == 0

    def run():
        _c, a3, b3 = _run_traced_pair(rate=0.5, seed=23)
        return json.dumps(
            [s.to_json() for s in a3.tracer.spans]
            + [s.to_json() for s in b3.tracer.spans],
            sort_keys=True,
        )

    assert run() == run()


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_sampling_spec_validation():
    with pytest.raises(ValueError, match="trace_sample_rate"):
        ObservabilitySpec.from_json({"tracing": True, "trace_sample_rate": 1.5})
    with pytest.raises(ValueError, match="profile_sample_every"):
        ObservabilitySpec.from_json({"profiling": True,
                                     "profile_sample_every": 0})
    with pytest.raises(ValueError):
        Tracer(sample_rate=-0.1)
    spec = ObservabilitySpec.from_json(
        {"profiling": True, "profile_sample_every": 8,
         "tracing": True, "trace_sample_rate": 0.25}
    )
    doc = spec.to_json()
    assert doc["profile_sample_every"] == 8
    assert doc["trace_sample_rate"] == 0.25
    assert ObservabilitySpec.from_json(doc) == spec
