"""Integration tests for live Raft groups: elections, replication,
failover, snapshots, membership change, and a linearizability check."""

import pytest

from repro import Cluster
from repro.raft import (
    CounterStateMachine,
    KVStateMachine,
    RaftClient,
    RaftConfig,
    RaftNode,
    RaftUnavailableError,
    Role,
)
from repro.yokan import MapBackend

RC = RaftConfig(
    heartbeat_interval=0.05,
    election_timeout_min=0.15,
    election_timeout_max=0.3,
    rpc_timeout=0.06,
    submit_timeout=5.0,
    snapshot_threshold=64,
)


def make_group(n, seed=21, sm_factory=CounterStateMachine, rc=RC):
    cluster = Cluster(seed=seed)
    margos = [cluster.add_margo(f"r{i}", node=f"n{i}") for i in range(n)]
    peers = [m.address for m in margos]
    nodes = []
    for i, margo in enumerate(margos):
        node = RaftNode(
            margo,
            f"raft{i}",
            provider_id=1,
            state_machine=sm_factory(),
            peers=peers,
            rng=cluster.randomness.stream(f"raft:{i}"),
            config=rc,
        )
        nodes.append(node)
    client_margo = cluster.add_margo("client", node="nc")
    handle = RaftClient(client_margo).make_group_handle(peers, provider_id=1)
    return cluster, margos, nodes, client_margo, handle


def leaders(nodes):
    return [n for n in nodes if n.role == Role.LEADER and n._running]


def test_single_leader_elected():
    cluster, _, nodes, _, _ = make_group(3)
    cluster.run(until=3.0)
    assert len(leaders(nodes)) == 1
    terms = {n.current_term for n in nodes}
    assert len(terms) == 1


def test_single_node_group_commits_instantly():
    cluster, _, nodes, cm, handle = make_group(1)

    def driver():
        a = yield from handle.submit(5)
        b = yield from handle.submit(7)
        return a, b

    assert cluster.run_ult(cm, driver()) == (5, 12)


def test_submit_replicates_to_all():
    cluster, _, nodes, cm, handle = make_group(3)

    def driver():
        results = []
        for delta in [1, 2, 3]:
            value = yield from handle.submit(delta)
            results.append(value)
        return results

    assert cluster.run_ult(cm, driver()) == [1, 3, 6]
    cluster.run(until=cluster.now + 2.0)  # let followers catch up
    for node in nodes:
        assert node.sm.value == 6


def test_leader_failover_preserves_committed_data():
    cluster, margos, nodes, cm, handle = make_group(5)

    def phase1():
        for delta in range(1, 6):
            yield from handle.submit(delta)
        return None

    cluster.run_ult(cm, phase1())
    (old_leader,) = leaders(nodes)
    cluster.faults.kill_process(old_leader.margo.process)
    cluster.run(until=cluster.now + 3.0)
    survivors = [n for n in nodes if n is not old_leader]
    assert len(leaders(survivors)) == 1

    def phase2():
        return (yield from handle.submit(100))

    result = cluster.run_ult(cm, phase2())
    assert result == 115  # 1+2+3+4+5 + 100


def test_unavailable_without_majority():
    cluster, margos, nodes, cm, handle = make_group(3)
    cluster.run(until=2.0)
    cluster.faults.kill_process(margos[0].process)
    cluster.faults.kill_process(margos[1].process)
    handle.max_attempts = 8

    def driver():
        yield from handle.submit(1)

    with pytest.raises(RaftUnavailableError):
        cluster.run_ult(cm, driver())


def test_recovers_after_partition_heals():
    cluster, margos, nodes, cm, handle = make_group(3)
    cluster.run(until=2.0)
    (leader,) = leaders(nodes)
    # Partition the leader from both followers.
    for other in nodes:
        if other is not leader:
            cluster.faults.partition(leader.margo.process.node.name,
                                     other.margo.process.node.name)
    cluster.run(until=cluster.now + 3.0)
    # A new leader emerges on the majority side.
    majority_side = [n for n in nodes if n is not leader]
    assert len(leaders(majority_side)) == 1
    # Old leader steps down upon heal.
    cluster.network.heal_all()
    cluster.run(until=cluster.now + 3.0)
    assert len(leaders(nodes)) == 1


def test_lagging_follower_catches_up_via_snapshot():
    rc = RaftConfig(
        heartbeat_interval=0.05,
        election_timeout_min=0.15,
        election_timeout_max=0.3,
        rpc_timeout=0.06,
        snapshot_threshold=16,
    )
    cluster, margos, nodes, cm, handle = make_group(3, rc=rc)
    cluster.run(until=2.0)
    # Cut one follower off.
    (leader,) = leaders(nodes)
    follower = next(n for n in nodes if n is not leader)
    cluster.faults.partition(leader.margo.process.node.name,
                             follower.margo.process.node.name)
    third = next(n for n in nodes if n is not leader and n is not follower)
    cluster.faults.partition(third.margo.process.node.name,
                             follower.margo.process.node.name)

    def burst():
        for delta in range(40):  # enough to trigger compaction
            yield from handle.submit(1)

    cluster.run_ult(cm, burst())
    assert leader.snapshots_taken >= 1
    assert follower.sm.value == 0
    cluster.network.heal_all()
    cluster.run(until=cluster.now + 5.0)
    assert follower.sm.value == 40  # caught up via InstallSnapshot
    assert follower.log.snapshot_index > 0


def test_membership_change_add_node():
    cluster, margos, nodes, cm, handle = make_group(3)
    cluster.run(until=2.0)
    new_margo = cluster.add_margo("r-new", node="n-new")
    peers = [m.address for m in margos] + [new_margo.address]
    new_node = RaftNode(
        new_margo,
        "raft-new",
        provider_id=1,
        state_machine=CounterStateMachine(),
        peers=peers,
        rng=cluster.randomness.stream("raft:new"),
        config=RC,
    )

    def driver():
        yield from handle.submit(10)
        yield from handle.change_membership(peers)
        yield from handle.submit(5)

    cluster.run_ult(cm, driver())
    cluster.run(until=cluster.now + 3.0)
    assert new_node.sm.value == 15  # new member received all state
    (leader,) = leaders(nodes + [new_node])
    assert set(leader.peers) == set(peers)


def test_membership_change_remove_node():
    cluster, margos, nodes, cm, handle = make_group(3)
    cluster.run(until=2.0)
    (leader,) = leaders(nodes)
    victim = next(n for n in nodes if n is not leader)
    remaining = [a for a in leader.peers if a != victim.address]

    def driver():
        yield from handle.change_membership(remaining)
        return (yield from handle.submit(3))

    assert cluster.run_ult(cm, driver()) == 3
    cluster.run(until=cluster.now + 2.0)
    assert not victim._running  # removed node stopped participating


def test_kv_state_machine_via_raft():
    cluster, _, nodes, cm, handle = make_group(
        3, sm_factory=lambda: KVStateMachine(MapBackend())
    )

    def driver():
        yield from handle.submit({"op": "put", "key": b"k", "value": b"v1"})
        v1 = yield from handle.submit({"op": "get", "key": b"k"})
        yield from handle.submit({"op": "put", "key": b"k", "value": b"v2"})
        v2 = yield from handle.submit({"op": "get", "key": b"k"})
        erased = yield from handle.submit({"op": "erase", "key": b"k"})
        v3 = yield from handle.submit({"op": "get", "key": b"k"})
        return v1, v2, erased, v3

    assert cluster.run_ult(cm, driver()) == (b"v1", b"v2", True, None)
    cluster.run(until=cluster.now + 2.0)
    # All backends converge to the same contents.
    dumps = {bytes(n.sm.backend.dump()) for n in nodes}
    assert len(dumps) == 1


def test_logs_are_prefix_consistent():
    """Raft's Log Matching property across a failover."""
    cluster, margos, nodes, cm, handle = make_group(5, seed=23)

    def phase(k):
        def driver():
            for delta in range(k):
                yield from handle.submit(1)

        return driver

    cluster.run_ult(cm, phase(5)())
    (leader,) = leaders(nodes)
    cluster.faults.kill_process(leader.margo.process)
    cluster.run(until=cluster.now + 2.0)
    cluster.run_ult(cm, phase(5)())
    cluster.run(until=cluster.now + 2.0)
    survivors = [n for n in nodes if n is not leader]
    # Committed prefixes agree on (term, command) at every index.
    min_commit = min(n.commit_index for n in survivors)
    for index in range(1, min_commit + 1):
        records = {
            (n.log.term_at(index), str(n.log.entry_at(index).command))
            for n in survivors
            if n.log.has_index(index)
        }
        assert len(records) == 1, f"divergence at index {index}"


def test_status_rpc():
    cluster, margos, nodes, cm, handle = make_group(3)
    cluster.run(until=2.0)

    def driver():
        leader = yield from handle.find_leader()
        status = yield from handle.status_of(leader)
        return status

    status = cluster.run_ult(cm, driver())
    assert status["role"] == "leader"
    assert status["term"] >= 1


def test_config_validation():
    with pytest.raises(ValueError):
        RaftConfig(heartbeat_interval=0.5, election_timeout_min=0.3)
    with pytest.raises(ValueError):
        RaftConfig(election_timeout_min=0.6, election_timeout_max=0.6)
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("r", node="n0")
    with pytest.raises(ValueError, match="own address"):
        RaftNode(
            margo, "raft", provider_id=1,
            state_machine=CounterStateMachine(),
            peers=["na+ofi://other/addr"],
            rng=cluster.randomness.stream("x"),
        )


# ----------------------------------------------------------------------
# ReadIndex linearizable reads
# ----------------------------------------------------------------------
def test_read_index_returns_latest_committed_value():
    cluster, _, nodes, cm, handle = make_group(
        3, sm_factory=lambda: KVStateMachine(MapBackend())
    )

    def driver():
        yield from handle.submit({"op": "put", "key": b"k", "value": b"v1"})
        first = yield from handle.read({"op": "get", "key": b"k"})
        yield from handle.submit({"op": "put", "key": b"k", "value": b"v2"})
        second = yield from handle.read({"op": "get", "key": b"k"})
        count = yield from handle.read({"op": "count"})
        return first, second, count

    assert cluster.run_ult(cm, driver()) == (b"v1", b"v2", 1)


def test_read_index_appends_no_log_entries():
    cluster, _, nodes, cm, handle = make_group(
        3, sm_factory=lambda: KVStateMachine(MapBackend())
    )

    def write():
        yield from handle.submit({"op": "put", "key": b"k", "value": b"v"})

    cluster.run_ult(cm, write())
    (leader,) = leaders(nodes)
    log_before = leader.log.last_index

    def reads():
        for _ in range(10):
            yield from handle.read({"op": "get", "key": b"k"})

    cluster.run_ult(cm, reads())
    assert leader.log.last_index == log_before  # reads did not grow the log


def test_read_index_works_after_failover():
    cluster, margos, nodes, cm, handle = make_group(
        5, sm_factory=lambda: KVStateMachine(MapBackend())
    )

    def write():
        yield from handle.submit({"op": "put", "key": b"k", "value": b"precious"})

    cluster.run_ult(cm, write())
    (leader,) = leaders(nodes)
    cluster.faults.kill_process(leader.margo.process)
    cluster.run(until=cluster.now + 2.0)

    def read():
        return (yield from handle.read({"op": "get", "key": b"k"}))

    assert cluster.run_ult(cm, read()) == b"precious"


def test_read_query_rejects_mutations():
    cluster, _, nodes, cm, handle = make_group(
        3, sm_factory=lambda: KVStateMachine(MapBackend())
    )
    from repro.margo import RpcFailedError

    def driver():
        yield from handle.read({"op": "put", "key": b"k", "value": b"v"})

    with pytest.raises(RpcFailedError, match="unsupported read-only"):
        cluster.run_ult(cm, driver())


def test_submit_retry_is_deduplicated():
    """Client sessions (exactly-once): a command retried after a lost
    acknowledgement is applied once."""
    cluster, margos, nodes, cm, handle = make_group(3, seed=29)
    cluster.run(until=2.0)
    cluster.faults.set_message_loss(0.2)

    def driver():
        total = 0
        for _ in range(15):
            total = yield from handle.submit(1)
        return total

    result = cluster.run_ult(cm, driver())
    assert result == 15
    cluster.faults.set_message_loss(0.0)
    cluster.run(until=cluster.now + 2.0)
    for node in nodes:
        if node.margo.process.alive:
            assert node.sm.value == 15
