"""CFG builder golden-structure tests: the exact node/edge shapes the
protocol rules depend on (branching, loops, try/finally duplication,
suspension annotation, explicit-exit variant)."""

import textwrap

from repro.analysis.flow.cfg import CFG

from .flow_util import func_cfg


def describe(source: str, name: str, **kwargs) -> str:
    return func_cfg(textwrap.dedent(source), name, **kwargs).describe()


def test_branch_shape():
    assert describe(
        """\
        def branch(a):
            if a:
                x = 1
            else:
                x = 2
            return x
        """,
        "branch",
    ) == (
        "0 entry -> 4:next\n"
        "1 return-exit\n"
        "2 raise-exit\n"
        "3 fall-exit\n"
        "4 if@2 -> 5:true, 6:false\n"
        "5 assign@3 -> 7:next\n"
        "6 assign@5 -> 7:next\n"
        "7 return@6 -> 1:return"
    )


def test_loop_shape_with_back_edge():
    assert describe(
        """\
        def loop(items):
            total = 0
            for item in items:
                total += item
            return total
        """,
        "loop",
    ) == (
        "0 entry -> 4:next\n"
        "1 return-exit\n"
        "2 raise-exit\n"
        "3 fall-exit\n"
        "4 assign@2 -> 5:next\n"
        "5 for@3 -> 6:true, 7:false\n"
        "6 augassign@4 -> 5:loop\n"
        "7 return@5 -> 1:return"
    )


TRY_FINALLY = """\
def cleanup(mu):
    yield from mu.acquire()
    try:
        risky()
    finally:
        mu.release()
    return True
"""


def test_try_finally_duplicates_finally_per_path():
    # The normal path gets one copy of the finally body (node 8); the
    # exceptional path gets its own copy behind the finally-exc head
    # (nodes 6-7) whose tail re-routes outward with `exc-cont` -- so a
    # release in the finally cleans the typestate on *both* paths.
    assert describe(TRY_FINALLY, "cleanup") == (
        "0 entry -> 4:next\n"
        "1 return-exit\n"
        "2 raise-exit\n"
        "3 fall-exit\n"
        "4 expr@2 [suspends acquire()] -> 2:exc, 5:next\n"
        "5 expr@4 -> 6:exc, 8:next\n"
        "6 finally-exc -> 7:next\n"
        "7 expr@6 -> 2:exc, 2:exc-cont\n"
        "8 expr@6 -> 2:exc, 9:next\n"
        "9 return@7 -> 1:return"
    )


def test_explicit_exit_variant_drops_implicit_exc_edges():
    # MCH071 runs on this variant: no `exc` edges, no duplicated
    # exceptional finally copy -- only explicit control flow remains.
    assert describe(TRY_FINALLY, "cleanup", implicit_exc=False) == (
        "0 entry -> 4:next\n"
        "1 return-exit\n"
        "2 raise-exit\n"
        "3 fall-exit\n"
        "4 expr@2 [suspends acquire()] -> 5:next\n"
        "5 expr@4 -> 6:next\n"
        "6 expr@6 -> 7:next\n"
        "7 return@7 -> 1:return"
    )


def test_callee_suspension_annotates_delegate_site():
    # A `yield from helper(...)` line reported by the effect layer is
    # marked as a suspension point even though nothing in this function
    # parks directly -- "callee may suspend" splits the block.
    source = """\
    def suspends(ctx):
        setup(ctx)
        yield from helper(ctx)
        return None
    """
    plain = describe(source, "suspends")
    assert "[suspends" not in plain
    annotated = describe(
        source, "suspends", callee_suspends={3: "Park (via helper)"}
    )
    assert "5 expr@3 [suspends Park (via helper)] -> 2:exc, 6:next" in annotated


def test_while_true_has_no_false_edge():
    cfg = func_cfg(
        textwrap.dedent(
            """\
            def spin(q):
                while True:
                    step(q)
            """
        ),
        "spin",
    )
    header = next(n for n in cfg.stmt_nodes() if n.label == "while")
    assert all(kind != "false" for _dst, kind in header.succs)


def test_exit_paths_and_helpers():
    cfg = func_cfg(
        textwrap.dedent(
            """\
            def mixed(a):
                if a:
                    return 1
                raise ValueError(a)
            """
        ),
        "mixed",
    )
    ret_preds = cfg.predecessors(CFG.EXIT_RETURN)
    raise_preds = cfg.predecessors(CFG.EXIT_RAISE)
    assert [kind for _n, kind in ret_preds] == ["return"]
    assert ("raise" in {kind for _n, kind in raise_preds})
    assert cfg.edge_count() == sum(len(n.succs) for n in cfg.nodes.values())
