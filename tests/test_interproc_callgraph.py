"""Call-graph construction: edges, edge kinds, dynamic accounting."""

import ast

from interproc_util import fixture_path, parse_fixture

from repro.analysis.interproc.callgraph import build_project, module_name_for


def _edges(index, qualname):
    return [(e.callee, e.kind) for e in index.functions[qualname].edges]


def test_module_names_follow_package_layout():
    assert (
        module_name_for(fixture_path("deepblock", "service.py"))
        == "deepblock.service"
    )
    assert module_name_for(fixture_path("deepblock", "__init__.py")) == "deepblock"


def test_cross_module_call_edges_resolve():
    index = build_project(
        [(p, t) for p, t, _ in parse_fixture("deepblock")]
    )
    assert ("deepblock.helpers.level_one", "call") in _edges(
        index, "deepblock.service.deep_handler"
    )
    assert _edges(index, "deepblock.helpers.level_one") == [
        ("deepblock.helpers.level_two", "call")
    ]


def test_mutual_recursion_links_both_directions():
    index = build_project(
        [(p, t) for p, t, _ in parse_fixture("deepblock")]
    )
    assert ("deepblock.service.pong", "call") in _edges(
        index, "deepblock.service.ping"
    )
    assert ("deepblock.service.ping", "call") in _edges(
        index, "deepblock.service.pong"
    )


def test_yield_from_makes_delegate_edges():
    index = build_project(
        [(p, t) for p, t, _ in parse_fixture("lockyield")]
    )
    edges = _edges(index, "lockyield.svc.Store.locked_bad")
    assert ("lockyield.svc.Store._refresh", "delegate") in edges


def test_plain_call_to_generator_is_construction_not_edge():
    source = (
        "def gen():\n"
        "    yield 1\n"
        "\n"
        "def caller():\n"
        "    g = gen()\n"
        "    return g\n"
    )
    index = build_project([("standalone.py", ast.parse(source))])
    assert index.functions["standalone.caller"].edges == []
    assert index.stats.generator_constructions == 1


def test_getattr_calls_are_counted_not_guessed():
    index = build_project([(p, t) for p, t, _ in parse_fixture("dyn")])
    assert index.stats.dynamic_getattr_calls == 1
    assert index.functions["dyn.svc.DynProvider.trigger"].edges == []


def test_build_is_deterministic():
    parsed = [(p, t) for p, t, _ in parse_fixture("deepblock", "lockyield")]
    first = build_project(parsed)
    second = build_project(parsed)
    assert sorted(first.functions) == sorted(second.functions)
    for qualname in first.functions:
        assert [
            (e.callee, e.line, e.kind) for e in first.functions[qualname].edges
        ] == [
            (e.callee, e.line, e.kind) for e in second.functions[qualname].edges
        ]
