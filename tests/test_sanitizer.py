"""Runtime sanitizer (REPRO_SANITIZE): the dynamic half of MCH011/MCH012."""

import pytest

from repro import Cluster
from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizerError
from repro.margo.ult import UltMutex, UltSleep


@pytest.fixture()
def strict():
    sanitize.reset()
    sanitize.enable(strict=True)
    yield sanitize
    sanitize.disable()


@pytest.fixture()
def recording():
    sanitize.reset()
    sanitize.enable(strict=False)
    yield sanitize
    sanitize.disable()


def make_rig():
    cluster = Cluster(seed=13)
    margo = cluster.add_margo("m", node="n0")
    return cluster, margo


# ----------------------------------------------------------------------
# MCH011: lock held across a suspend
# ----------------------------------------------------------------------
def test_sleep_while_holding_mutex_raises(strict):
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="state")

    def bad():
        yield from mutex.acquire()
        yield UltSleep(0.1)  # mochi-lint: disable=MCH011 -- the violation under test
        mutex.release()

    with pytest.raises(SanitizerError, match="MCH011"):
        cluster.run_ult(margo, bad())
    assert strict.violations[0].rule_id == "MCH011"
    assert strict.violations[0].source == "runtime"


def test_finishing_while_holding_mutex_raises(strict):
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="state")

    def leaky():
        yield from mutex.acquire()
        return "done"  # never releases

    with pytest.raises(SanitizerError, match="MCH011"):
        cluster.run_ult(margo, leaky())


def test_release_before_suspend_is_clean(strict):
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="state")

    def good():
        yield from mutex.acquire()
        mutex.release()
        yield UltSleep(0.1)
        return "ok"

    assert cluster.run_ult(margo, good()) == "ok"
    assert strict.violations == []


def test_contended_mutex_stays_clean(strict):
    # acquire() parks *waiters*; parking while waiting (not holding) must
    # not trip the sanitizer, and the FIFO handoff must stay legal.
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="state")
    order = []

    def worker(tag):
        yield from mutex.acquire()
        order.append(tag)
        mutex.release()
        return tag

    ults = [cluster.spawn(margo, worker(i), name=f"w{i}") for i in range(3)]
    cluster.wait_ults(ults)
    assert order == [0, 1, 2]
    assert strict.violations == []


def test_strict_violation_fails_only_the_offending_ult(strict):
    # The SanitizerError must land on the guilty ULT; the xstream (and
    # therefore the whole margo instance) keeps scheduling afterwards.
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="state")

    def bad():
        yield from mutex.acquire()
        yield UltSleep(0.1)  # mochi-lint: disable=MCH011 -- the violation under test
        mutex.release()

    with pytest.raises(SanitizerError):
        cluster.run_ult(margo, bad())
    strict.reset()

    def good():
        yield UltSleep(0.1)
        return "still scheduling"

    assert cluster.run_ult(margo, good()) == "still scheduling"
    assert strict.violations == []


def test_recording_mode_collects_without_raising(recording):
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="state")

    def bad():
        yield from mutex.acquire()
        yield UltSleep(0.1)  # mochi-lint: disable=MCH011 -- the violation under test
        mutex.release()
        return "finished"

    assert cluster.run_ult(margo, bad()) == "finished"
    assert [v.rule_id for v in recording.violations] == ["MCH011"]


def test_disabled_sanitizer_is_a_no_op():
    sanitize.disable()
    cluster, margo = make_rig()
    mutex = UltMutex(cluster.kernel, name="state")

    def bad():
        yield from mutex.acquire()
        yield UltSleep(0.1)  # mochi-lint: disable=MCH011 -- the violation under test
        mutex.release()
        return "finished"

    assert cluster.run_ult(margo, bad()) == "finished"
    assert sanitize.violations == []


# ----------------------------------------------------------------------
# MCH012: dropped RPC handles
# ----------------------------------------------------------------------
class _FakeProcess:
    def __init__(self, alive=True):
        self.alive = alive
        self.name = "fake"


class _FakeMargo:
    def __init__(self, alive=True):
        self.process = _FakeProcess(alive)


class _FakeRequest:
    def __init__(self, seq, rpc_name="echo"):
        self.seq = seq
        self.rpc_name = rpc_name


class _FakeUlt:
    def __init__(self, name="handler"):
        self.name = name
        self.error = None
        self.on_finish = []

    def finish(self):
        for hook in self.on_finish:
            hook(self)


def test_handler_finishing_without_response_fails_the_ult(strict):
    # Finish-time violations attach to the ULT (there is no generator
    # left to throw into, and raising would kill the xstream instead).
    margo, ult = _FakeMargo(), _FakeUlt()
    sanitize.note_handler_dispatched(margo, _FakeRequest(7), ult)
    ult.finish()
    assert isinstance(ult.error, SanitizerError)
    assert ult.error.finding.rule_id == "MCH012"
    assert [v.rule_id for v in strict.violations] == ["MCH012"]


def test_responded_handler_is_clean(strict):
    margo, ult = _FakeMargo(), _FakeUlt()
    sanitize.note_handler_dispatched(margo, _FakeRequest(7), ult)
    sanitize.note_handler_responded(margo, 7)
    ult.finish()
    assert strict.violations == []


def test_shutdown_with_pending_handler_raises(strict):
    margo = _FakeMargo()
    sanitize.note_handler_dispatched(margo, _FakeRequest(3, "slow"), _FakeUlt())
    with pytest.raises(SanitizerError, match="MCH012"):
        sanitize.check_margo_shutdown(margo)


def test_killed_process_may_drop_handles(strict):
    # Fault injection kills processes mid-RPC; dropping their in-flight
    # handles is crash semantics, not a bug.
    margo = _FakeMargo(alive=False)
    sanitize.note_handler_dispatched(margo, _FakeRequest(3), _FakeUlt())
    sanitize.check_margo_shutdown(margo)
    assert strict.violations == []


def test_rpc_roundtrip_is_clean_end_to_end(strict):
    from repro.margo import Compute

    cluster = Cluster(seed=13)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")

    def handler(ctx):
        yield Compute(1e-6)
        return ctx.args * 2

    server.register("double", handler)

    def driver():
        reply = yield from client.forward(server.address, "double", 21)
        return reply

    assert cluster.run_ult(client, driver()) == 42
    server.shutdown()
    client.shutdown()
    assert strict.violations == []


def test_suite_scenarios_under_sanitizer(strict):
    # A representative workload (boot + KV traffic + clean shutdown)
    # must produce zero violations -- the sanitizer gates the repo's own
    # behavior, not just synthetic fixtures.
    from repro.bedrock import boot_process
    from repro.yokan import YokanClient

    cluster = Cluster(seed=29)
    margo, _bedrock = boot_process(
        cluster, "svc", "n0",
        {
            "libraries": {"yokan": "libyokan.so"},
            "providers": [{"name": "db", "type": "yokan", "provider_id": 1}],
        },
    )
    app = cluster.add_margo("app", node="na")
    db = YokanClient(app).make_handle(margo.address, 1)

    def driver():
        yield from db.put(b"k", b"v")
        value = yield from db.get(b"k")
        return value

    assert cluster.run_ult(app, driver()) == b"v"
    assert strict.violations == []


# ----------------------------------------------------------------------
# MCH070: respond exactly once (runtime half of the mochi-flow rule)
# ----------------------------------------------------------------------
def respond_rig():
    cluster = Cluster(seed=31)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")
    return cluster, server, client


def call(cluster, client, server, name, args=None):
    def driver():
        return (yield from client.forward(server.address, name, args))

    return cluster.run_ult(client, driver())


def test_early_respond_then_post_reply_work_is_clean(strict):
    from repro.margo import Compute

    cluster, server, client = respond_rig()
    post = []

    def handler(ctx):
        yield from ctx.respond(ctx.args * 2)
        yield Compute(5e-3)  # post-reply work, perfectly legal
        post.append(cluster.now)

    server.register("dbl", handler)
    assert call(cluster, client, server, "dbl", 21) == 42
    cluster.run()  # drain the handler's post-reply tail
    assert post and strict.violations == []


def test_double_respond_reported(recording):
    cluster, server, client = respond_rig()

    def handler(ctx):
        yield from ctx.respond("first")
        yield from ctx.respond("second")

    server.register("dup", handler)
    # The caller gets the *first* reply; the duplicate is dropped.
    assert call(cluster, client, server, "dup") == "first"
    cluster.run()
    assert any(
        v.rule_id == "MCH070" and "respond() twice" in v.message
        for v in recording.violations
    )


def test_raise_after_respond_reported(recording):
    cluster, server, client = respond_rig()

    def handler(ctx):
        yield from ctx.respond("ok")
        raise RuntimeError("late failure")

    server.register("late", handler)
    # The caller sees success: the error fired after the reply went out.
    assert call(cluster, client, server, "late") == "ok"
    cluster.run()
    assert any(
        v.rule_id == "MCH070" and "raised after respond()" in v.message
        for v in recording.violations
    )


def test_value_after_respond_reported(recording):
    cluster, server, client = respond_rig()

    def handler(ctx):
        yield from ctx.respond("ok")
        return "dropped"

    server.register("extra", handler)
    assert call(cluster, client, server, "extra") == "ok"
    cluster.run()
    assert any(
        v.rule_id == "MCH070" and "returned a value after respond()" in v.message
        for v in recording.violations
    )


def test_implicit_respond_path_stays_clean(strict):
    cluster, server, client = respond_rig()
    server.register("echo", lambda ctx: ctx.args)
    assert call(cluster, client, server, "echo", 7) == 7
    cluster.run()
    assert strict.violations == []
