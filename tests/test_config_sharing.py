"""Config sharing: a process's composition can be exported and re-booted
identically (paper section 5: configurations are shareable artifacts for
reproducing experiments), plus the README quickstart verbatim."""

import json

import pytest

from repro import Cluster
from repro.bedrock import boot_process
from repro.yokan import YokanClient


def test_boot_document_clones_a_process():
    cluster = Cluster(seed=85)
    original_config = {
        "margo": {
            "argobots": {
                "pools": [{"name": "fast"}, {"name": "slow"}],
                "xstreams": [
                    {"name": "es0", "scheduler": {"pools": ["fast", "slow"]}}
                ],
            },
            "rpc_pool": "fast",
            "progress_pool": "slow",
        },
        "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
        "providers": [
            {"name": "remi0", "type": "remi", "provider_id": 0, "pool": "slow"},
            {"name": "db0", "type": "yokan", "provider_id": 1, "pool": "fast",
             "config": {"database": {"type": "ordered"}},
             "dependencies": {"mover": "remi0"}},
        ],
    }
    _, bedrock = boot_process(cluster, "original", "n0", original_config)
    document = bedrock.boot_document()
    # The document is pure JSON (shareable as text).
    json.dumps(document)

    clone_margo, clone_bedrock = boot_process(cluster, "clone", "n1", document)
    assert sorted(clone_bedrock.records) == sorted(bedrock.records)
    assert set(clone_margo.pools) == {"fast", "slow"}
    clone_record = clone_bedrock.records["db0"]
    assert clone_record.pool == "fast"
    assert clone_record.dependencies == {"mover": "remi0"}
    # The clone serves traffic.
    app = cluster.add_margo("app", node="na")
    db = YokanClient(app).make_handle(clone_margo.address, 1)

    def driver():
        yield from db.put("k", "v")
        return (yield from db.get("k"))

    assert cluster.run_ult(app, driver()) == b"v"


def test_boot_document_reflects_runtime_changes():
    cluster = Cluster(seed=86)
    _, bedrock = boot_process(
        cluster, "p", "n0", {"libraries": {"yokan": "libyokan.so"}}
    )
    # Reconfigure at run time, then export.
    bedrock.margo.add_pool({"name": "late"})
    bedrock.margo.add_xstream({"name": "late-es", "scheduler": {"pools": ["late"]}})
    bedrock._validate_start(
        {"name": "latedb", "type": "yokan", "provider_id": 3, "pool": "late"}
    )
    bedrock._execute_start(
        {"name": "latedb", "type": "yokan", "provider_id": 3, "pool": "late"}
    )
    document = bedrock.boot_document()
    _, clone = boot_process(cluster, "clone", "n1", document)
    assert "latedb" in clone.records
    assert clone.records["latedb"].pool == "late"


def test_readme_quickstart_verbatim():
    """The README's quickstart code must actually work."""
    from repro import Cluster
    from repro.bedrock import boot_process
    from repro.yokan import YokanClient

    cluster = Cluster(seed=7)

    server, bedrock = boot_process(cluster, "server", "node0", {
        "margo": {"argobots": {"pools": [{"name": "p"}], "xstreams": [
            {"name": "es", "scheduler": {"pools": ["p"]}}]}},
        "libraries": {"yokan": "libyokan.so"},
        "providers": [{"name": "db", "type": "yokan", "provider_id": 1,
                       "config": {"database": {"type": "ordered"}}}],
    })
    client = cluster.add_margo("client", node="node1")
    db = YokanClient(client).make_handle(server.address, 1)

    def workload():
        yield from db.put("hello", "world")
        return (yield from db.get("hello"))

    assert cluster.run_ult(client, workload()) == b"world"

    names = bedrock.query("""
        $result = [];
        foreach ($__config__.providers as $p) { array_push($result, $p.name); }
        return $result;
    """)
    assert names == ["db"]
