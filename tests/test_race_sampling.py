"""Epoch-sampled race detection (P1, ROADMAP item 3 detector half).

``race_sample_every`` selects between two detector modes:

* exact mode (``1``): ``SimKernel.schedule``/``post`` are method-swapped
  so every timer carries its scheduler's clock -- full precision, used
  by the schedule explorer;
* epoch mode (``> 1``, the default): the kernel stays pristine and
  publications are epoch-batched; races can be missed inside a batching
  window, but never invented.

These tests pin the mode mechanics (what gets swapped when), the knob
surfaces (argument, environment, validation), and the headline
soundness claims: the deterministic seeded MCH030 fixture is still
caught at the *default* sampling period, and clean workloads stay
clean in both modes.
"""

import pytest

from repro import Cluster
from repro.analysis.race import hooks
from repro.margo.ult import UltEvent, UltSleep
from repro.sim.kernel import SimKernel


@pytest.fixture()
def race():
    hooks.disable()
    hooks.reset()
    yield hooks
    hooks.disable()
    hooks.reset()


# ----------------------------------------------------------------------
# mode mechanics
# ----------------------------------------------------------------------
def test_default_mode_is_epoch_and_leaves_kernel_pristine(race):
    plain_schedule = SimKernel.schedule
    plain_post = SimKernel.post
    race.enable()
    assert race.SAMPLE_EVERY == race.DEFAULT_SAMPLE_EVERY > 1
    # Epoch mode: the event loop pays literally zero -- no method swap.
    assert SimKernel.schedule is plain_schedule
    assert SimKernel.post is plain_post
    assert not race._SWAPPED
    assert not race.EVENT_EDGES


def test_exact_mode_swaps_kernel_methods(race):
    plain_schedule = SimKernel.schedule
    race.enable(sample_every=1)
    assert race._SWAPPED
    assert race.EVENT_EDGES
    assert SimKernel.schedule is not plain_schedule
    race.disable()
    assert SimKernel.schedule is plain_schedule  # restored


def test_reenable_switches_modes(race):
    plain_schedule = SimKernel.schedule
    race.enable()  # epoch
    race.enable(sample_every=1)  # re-enable into exact: must re-swap
    assert SimKernel.schedule is not plain_schedule
    race.enable(sample_every=16)  # and back
    assert SimKernel.schedule is plain_schedule


def test_sample_every_env_knob(race, monkeypatch):
    monkeypatch.setenv("RACE_SAMPLE_EVERY", "4")
    race.enable()
    assert race.SAMPLE_EVERY == 4


def test_sample_every_validation(race):
    with pytest.raises(ValueError, match="race_sample_every"):
        race.enable(sample_every=0)
    with pytest.raises(ValueError, match="race_sample_every"):
        race.enable(sample_every=-3)


# ----------------------------------------------------------------------
# detection at the default sampling period
# ----------------------------------------------------------------------
def _seeded_mch030_fixture():
    """The deterministic seeded fixture: two ULTs write one tracked cell
    with no ordering edge (same shape as the sanitizer suite's)."""
    cluster = Cluster(seed=29)
    margo = cluster.add_margo("m", node="n0")
    shared = {}
    hooks.track(shared, "sampled-state")

    def writer(tag):
        yield UltSleep(0.01)
        hooks.note_write(shared, "cell", f"writer-{tag}")
        shared["cell"] = tag

    ults = [cluster.spawn(margo, writer(i), name=f"w{i}") for i in range(2)]
    cluster.wait_ults(ults)
    return [(f.rule_id, f.path) for f in hooks.findings]


def test_sampled_mode_catches_seeded_mch030(race):
    race.enable()  # default epoch mode
    assert _seeded_mch030_fixture() == [("MCH030", "race:sampled-state")]


def test_exact_mode_agrees_on_seeded_mch030(race):
    race.enable(sample_every=1)
    assert _seeded_mch030_fixture() == [("MCH030", "race:sampled-state")]


@pytest.mark.parametrize("sample_every", [2, 16, 64])
def test_fixture_caught_across_sampling_periods(race, sample_every):
    race.enable(sample_every=sample_every)
    assert _seeded_mch030_fixture() == [("MCH030", "race:sampled-state")]


# ----------------------------------------------------------------------
# clean stays clean (no false positives from the approximation clock)
# ----------------------------------------------------------------------
def _event_ordered_fixture():
    cluster = Cluster(seed=31)
    margo = cluster.add_margo("m", node="n0")
    shared = {}
    hooks.track(shared, "ordered-state")
    event = UltEvent(cluster.kernel, name="handoff")

    def first():
        hooks.note_write(shared, "k", "first")
        shared["k"] = 1
        event.set()
        yield UltSleep(0.0)

    def second():
        yield from event.wait()
        hooks.note_write(shared, "k", "second")
        shared["k"] = 2

    ults = [
        cluster.spawn(margo, second(), name="second"),
        cluster.spawn(margo, first(), name="first"),
    ]
    cluster.wait_ults(ults)
    return list(hooks.findings)


@pytest.mark.parametrize("sample_every", [1, 16])
def test_event_ordered_writes_clean_in_both_modes(race, sample_every):
    race.enable(sample_every=sample_every)
    assert _event_ordered_fixture() == []


def test_clean_rpc_workload_stays_clean_in_epoch_mode(race):
    race.enable()
    cluster = Cluster(seed=7)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")

    def handler(ctx):
        yield UltSleep(1e-6)
        return ctx.args

    server.register("echo", handler)

    def driver():
        for i in range(50):
            yield from client.forward(server.address, "echo", i)

    cluster.run_ult(client, driver())
    assert hooks.findings == []
