"""Unit + property tests for Yokan backends and the record codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Network, SimKernel
from repro.storage import LocalStore
from repro.yokan import (
    MapBackend,
    NoSuchKeyError,
    OrderedBackend,
    PersistentBackend,
    UnknownBackendError,
    YokanError,
    backend_types,
    create_backend,
    decode_records,
    encode_records,
)


def make_store():
    kernel = SimKernel()
    network = Network(kernel)
    node = network.add_node("n0")
    return LocalStore(node)


BACKEND_FACTORIES = {
    "map": lambda: MapBackend(),
    "ordered": lambda: OrderedBackend(),
    "persistent": lambda: PersistentBackend({"store": make_store(), "path": "db"}),
}


@pytest.fixture(params=sorted(BACKEND_FACTORIES))
def backend(request):
    return BACKEND_FACTORIES[request.param]()


# ----------------------------------------------------------------------
# generic behaviour across all backends
# ----------------------------------------------------------------------
def test_put_get_overwrite(backend):
    backend.put(b"k", b"v1")
    assert backend.get(b"k") == b"v1"
    backend.put(b"k", b"v2")
    assert backend.get(b"k") == b"v2"
    assert backend.count() == 1


def test_erase_and_missing(backend):
    backend.put(b"k", b"v")
    backend.erase(b"k")
    assert not backend.exists(b"k")
    with pytest.raises(NoSuchKeyError):
        backend.get(b"k")
    with pytest.raises(NoSuchKeyError):
        backend.erase(b"k")


def test_size_bytes_accounting(backend):
    backend.put(b"ab", b"xyz")  # 5
    backend.put(b"cd", b"1234")  # 6
    assert backend.size_bytes() == 11
    backend.put(b"ab", b"z")  # 3: overwrite shrinks
    assert backend.size_bytes() == 9
    backend.erase(b"cd")
    assert backend.size_bytes() == 3
    backend.clear()
    assert backend.size_bytes() == 0
    assert backend.count() == 0


def test_list_keys_prefix_and_pagination(backend):
    for key in [b"a1", b"a2", b"a3", b"b1"]:
        backend.put(key, b"v")
    assert backend.list_keys(prefix=b"a") == [b"a1", b"a2", b"a3"]
    assert backend.list_keys(prefix=b"a", max_keys=2) == [b"a1", b"a2"]
    assert backend.list_keys(prefix=b"a", start_after=b"a1") == [b"a2", b"a3"]
    assert backend.list_keys(prefix=b"zz") == []
    assert backend.list_keys() == [b"a1", b"a2", b"a3", b"b1"]


def test_dump_load_roundtrip(backend):
    for i in range(20):
        backend.put(f"key{i:03d}".encode(), f"value{i}".encode())
    image = backend.dump()
    other = MapBackend()
    other.load(image)
    assert other.count() == 20
    assert other.get(b"key007") == b"value7"


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
def test_codec_roundtrip_simple():
    pairs = [(b"a", b"1"), (b"", b""), (b"k", b"x" * 1000)]
    assert decode_records(encode_records(pairs)) == pairs


def test_codec_truncation_detected():
    data = encode_records([(b"key", b"value")])
    for cut in (1, 3, 5, 8, len(data) - 1):
        with pytest.raises(YokanError):
            decode_records(data[:cut])


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.binary(max_size=64), st.binary(max_size=256)),
        max_size=30,
    )
)
def test_codec_roundtrip_property(pairs):
    assert decode_records(encode_records(pairs)) == pairs


@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(st.binary(min_size=1, max_size=32), st.binary(max_size=64), max_size=40)
)
def test_backends_agree_property(mapping):
    """Map and ordered backends expose identical contents."""
    a, b = MapBackend(), OrderedBackend()
    for key, value in mapping.items():
        a.put(key, value)
        b.put(key, value)
    assert a.count() == b.count() == len(mapping)
    assert a.list_keys() == b.list_keys() == sorted(mapping)
    assert a.dump() == b.dump()
    assert a.size_bytes() == b.size_bytes()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=16), unique=True, min_size=1, max_size=20),
    st.data(),
)
def test_ordered_list_keys_matches_sorted_model(keys, data):
    backend = OrderedBackend()
    for key in keys:
        backend.put(key, b"v")
    all_sorted = sorted(keys)
    prefix = data.draw(st.sampled_from(all_sorted))[:1]
    expected = [k for k in all_sorted if k.startswith(prefix)]
    assert backend.list_keys(prefix=prefix) == expected


# ----------------------------------------------------------------------
# factory
# ----------------------------------------------------------------------
def test_factory_known_types():
    assert {"map", "ordered", "persistent"} <= set(backend_types())
    assert isinstance(create_backend("map"), MapBackend)
    with pytest.raises(UnknownBackendError):
        create_backend("rocksdb")


# ----------------------------------------------------------------------
# persistent backend specifics
# ----------------------------------------------------------------------
def test_persistent_requires_store_and_path():
    with pytest.raises(YokanError):
        PersistentBackend({"path": "db"})
    with pytest.raises(YokanError):
        PersistentBackend({"store": make_store()})


def test_persistent_flush_and_reload():
    store = make_store()
    backend = PersistentBackend({"store": store, "path": "db"})
    backend.put(b"k", b"v")
    assert backend.dirty
    assert backend.files() == []  # nothing on disk yet
    backend.flush()
    assert not backend.dirty
    assert backend.files() == ["db"]
    # Mutate in memory, then reload from the image.
    backend.put(b"k2", b"v2")
    backend.reload()
    assert backend.exists(b"k")
    assert not backend.exists(b"k2")


def test_persistent_survives_reopen():
    """A new backend over the same file sees the flushed data (process
    crash + restart on the same node)."""
    store = make_store()
    first = PersistentBackend({"store": store, "path": "db"})
    first.put(b"k", b"v")
    first.flush()
    second = PersistentBackend({"store": store, "path": "db"})
    assert second.get(b"k") == b"v"


def test_persistent_sync_on_put():
    store = make_store()
    backend = PersistentBackend({"store": store, "path": "db", "sync_on_put": True})
    backend.put(b"k", b"v")
    assert not backend.dirty
    assert store.exists("db")


# ----------------------------------------------------------------------
# batch operations (put_multi / get_multi fast paths)
# ----------------------------------------------------------------------
def test_put_multi_matches_sequential_puts(backend):
    pairs = [(f"k{i}".encode(), (b"v" * (i + 1))) for i in range(20)]
    backend.put_multi(pairs)
    for key, value in pairs:
        assert backend.get(key) == value
    assert backend.count() == 20
    reference = BACKEND_FACTORIES["map"]()
    for key, value in pairs:
        reference.put(key, value)
    assert backend.size_bytes() == reference.size_bytes()


def test_put_multi_overwrites_and_tracks_bytes(backend):
    backend.put(b"k", b"long-old-value")
    backend.put_multi([(b"k", b"v"), (b"k2", b"vv")])
    assert backend.get(b"k") == b"v"
    assert backend.size_bytes() == len(b"k") + len(b"v") + len(b"k2") + len(b"vv")


def test_put_multi_keeps_ordered_listing():
    backend = OrderedBackend()
    backend.put(b"m", b"1")
    backend.put_multi([(b"z", b"1"), (b"a", b"1"), (b"m", b"2")])
    assert backend.list_keys() == [b"a", b"m", b"z"]


def test_get_multi_missing_key_raises(backend):
    backend.put(b"k", b"v")
    with pytest.raises(NoSuchKeyError):
        backend.get_multi([b"k", b"ghost"])


def test_get_multi_returns_values_in_key_order(backend):
    backend.put_multi([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
    assert backend.get_multi([b"c", b"a"]) == [b"3", b"1"]
