"""Effect fixpoint: MCH014 deep blocking, MCH015 lock-across-callee."""

from interproc_util import fixture_path, line_of, parse_fixture

from repro.analysis.engine import run_lint
from repro.analysis.interproc import run_interproc


def _findings(packages, select):
    findings, _stats = run_interproc(parse_fixture(*packages), select=select)
    return findings


# -- MCH014 ------------------------------------------------------------
def test_deep_blocking_found_across_modules():
    findings = _findings(["deepblock"], ["MCH014"])
    service = fixture_path("deepblock", "service.py")
    lines = {f.line for f in findings if f.path == service}
    assert line_of(service, "helpers.level_one()") in lines


def test_deep_blocking_reports_full_chain():
    findings = _findings(["deepblock"], ["MCH014"])
    deep = [f for f in findings if "deep_handler" in f.message]
    assert len(deep) == 1
    message = deep[0].message
    assert "time.sleep()" in message
    assert "helpers.level_one" in message
    assert "helpers.level_three" in message


def test_deep_blocking_through_mutual_recursion():
    findings = _findings(["deepblock"], ["MCH014"])
    spinning = [f for f in findings if "spinning_handler" in f.message]
    assert len(spinning) == 1
    assert spinning[0].line == line_of(
        fixture_path("deepblock", "service.py"), "ping(3)"
    )


def test_clean_chain_is_negative():
    findings = _findings(["deepblock"], ["MCH014"])
    assert not any("clean_handler" in f.message for f in findings)


# -- MCH010 / MCH014 non-overlap ---------------------------------------
def test_one_hop_site_reported_once_with_interproc():
    path = fixture_path("deepblock")
    service = fixture_path("deepblock", "service.py")
    site = line_of(service, "local_block()")

    plain = run_lint([path], select=["MCH010"]).findings
    assert any(
        f.rule_id == "MCH010" and f.path == service and f.line == site
        for f in plain
    )

    result = run_lint([path], select=["MCH010", "MCH014"], interproc=True)
    at_site = [
        f for f in result.findings if f.path == service and f.line == site
    ]
    assert [f.rule_id for f in at_site] == ["MCH014"]


def test_direct_blocking_stays_mch010_under_interproc():
    # A blocking primitive spelled in the ULT body itself must remain an
    # MCH010 finding even with the interprocedural layer on.
    import ast as _ast

    source = (
        "import time\n"
        "\n"
        "def handler(ctx):\n"
        "    yield Sleep(1)\n"
        "    time.sleep(1)\n"
    )
    inter, _ = run_interproc(
        [("direct.py", _ast.parse(source), source)], select=["MCH014"]
    )
    assert inter == []


# -- MCH015 ------------------------------------------------------------
def test_lock_across_callee_suspension_found():
    findings = _findings(["lockyield"], ["MCH015"])
    svc = fixture_path("lockyield", "svc.py")
    assert len(findings) == 1
    assert findings[0].path == svc
    assert findings[0].line == line_of(svc, "yield from self._refresh()")
    assert "_refresh" in findings[0].message


def test_release_before_delegate_is_negative():
    findings = _findings(["lockyield"], ["MCH015"])
    assert not any("locked_ok" in f.message for f in findings)


def test_non_suspending_callee_is_negative():
    findings = _findings(["lockyield"], ["MCH015"])
    assert not any("_drain" in f.message for f in findings)
