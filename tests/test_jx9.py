"""Tests for the Jx9 query engine, including paper Listing 4 verbatim."""

import pytest

from repro.bedrock.jx9 import Jx9Error, Jx9SyntaxError, jx9_execute

LISTING_4 = """
$result = [];
foreach ($__config__.providers as $p) {
    array_push($result, $p.name); }
return $result;
"""


def test_listing4_runs_verbatim():
    config = {
        "providers": [
            {"name": "myProviderA", "type": "A"},
            {"name": "myProviderB", "type": "B"},
        ]
    }
    result = jx9_execute(LISTING_4, {"__config__": config})
    assert result == ["myProviderA", "myProviderB"]


def test_literals_and_arithmetic():
    assert jx9_execute("return 1 + 2 * 3;") == 7
    assert jx9_execute("return (1 + 2) * 3;") == 9
    assert jx9_execute("return 10 / 4;") == 2.5
    assert jx9_execute("return 7 % 3;") == 1
    assert jx9_execute("return -5 + 1;") == -4
    assert jx9_execute("return 1.5 + 2.5;") == 4.0
    assert jx9_execute('return "a" + "b";') == "ab"
    assert jx9_execute('return "n=" + 3;') == "n=3"


def test_booleans_and_comparisons():
    assert jx9_execute("return true && false;") is False
    assert jx9_execute("return true || false;") is True
    assert jx9_execute("return !false;") is True
    assert jx9_execute("return 1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3;") is True
    assert jx9_execute("return 1 == 1 && 1 != 2;") is True
    assert jx9_execute("return null;") is None


def test_variables_and_assignment():
    assert jx9_execute("$x = 5; $y = $x * 2; return $y;") == 10
    with pytest.raises(Jx9Error, match="undefined variable"):
        jx9_execute("return $ghost;")


def test_arrays_and_objects():
    assert jx9_execute("return [1, 2, 3];") == [1, 2, 3]
    assert jx9_execute('return {"a": 1, "b": 2};') == {"a": 1, "b": 2}
    assert jx9_execute("$a = [10, 20]; return $a[1];") == 20
    assert jx9_execute('$o = {"k": "v"}; return $o["k"];') == "v"
    assert jx9_execute('$o = {"k": "v"}; return $o.k;') == "v"
    assert jx9_execute('$o = {}; $o.x = 1; return $o;') == {"x": 1}
    assert jx9_execute("$a = [0]; $a[0] = 9; return $a;") == [9]


def test_missing_member_is_null():
    assert jx9_execute('$o = {"a": 1}; return $o.missing;') is None


def test_foreach_with_key_value():
    code = """
    $keys = [];
    $vals = [];
    foreach ($obj as $k => $v) { array_push($keys, $k); array_push($vals, $v); }
    return [$keys, $vals];
    """
    keys, vals = jx9_execute(code, {"obj": {"x": 1, "y": 2}})
    assert sorted(keys) == ["x", "y"]
    assert sorted(vals) == [1, 2]


def test_foreach_over_array_gives_values():
    code = "$out = []; foreach ($xs as $x) { array_push($out, $x * 2); } return $out;"
    assert jx9_execute(code, {"xs": [1, 2, 3]}) == [2, 4, 6]


def test_if_else_and_while():
    code = """
    $n = 0;
    $total = 0;
    while ($n < 5) {
        if ($n % 2 == 0) { $total = $total + $n; }
        else { $total = $total - 1; }
        $n = $n + 1;
    }
    return $total;
    """
    assert jx9_execute(code) == 4  # 0+2+4 - 2


def test_builtins():
    assert jx9_execute("return count([1, 2, 3]);") == 3
    assert jx9_execute('return strlen("abcd");') == 4
    assert jx9_execute('return substr("hello", 1, 3);') == "ell"
    assert jx9_execute('return in_array(2, [1, 2]);') is True
    assert jx9_execute('return array_keys({"b": 1, "a": 2});') == ["a", "b"]
    assert jx9_execute('return array_values({"a": 7});') == [7]
    assert jx9_execute("return max(1, 5) + min(2, 0) + abs(-3);") == 8
    assert jx9_execute("return is_array([]) && is_object({}) && is_string(\"s\");") is True


def test_comments():
    assert jx9_execute("// line comment\n/* block\ncomment */ return 1;") == 1


def test_unknown_function_rejected():
    with pytest.raises(Jx9Error, match="unknown function"):
        jx9_execute("return system('rm -rf /');")


def test_step_budget():
    with pytest.raises(Jx9Error, match="steps"):
        jx9_execute("$i = 0; while (true) { $i = $i + 1; }", max_steps=1000)


def test_syntax_errors():
    for bad in ["$x = ;", "foreach $x as $y {}", "return [1, 2", "$", "{ return 1;",
                "@nonsense"]:
        with pytest.raises(Jx9SyntaxError):
            jx9_execute(bad)


def test_runtime_type_errors():
    with pytest.raises(Jx9Error):
        jx9_execute("return count(5);")
    with pytest.raises(Jx9Error):
        jx9_execute("$x = 1; return $x.member;")
    with pytest.raises(Jx9Error):
        jx9_execute("foreach (5 as $x) {}")
    with pytest.raises(Jx9Error):
        jx9_execute("return 1 / 0;")
    with pytest.raises(Jx9Error):
        jx9_execute("return array_push(5, 1);")


def test_parameterized_config_generation():
    """Jx9 'can also be used as input in place of JSON, allowing
    parameterized configurations' (paper section 5)."""
    template = """
    $pools = [];
    $n = 0;
    while ($n < $num_pools) {
        array_push($pools, {"name": "pool" + $n, "type": "fifo_wait"});
        $n = $n + 1;
    }
    return {"argobots": {"pools": $pools}};
    """
    doc = jx9_execute(template, {"num_pools": 3})
    assert [p["name"] for p in doc["argobots"]["pools"]] == ["pool0", "pool1", "pool2"]
