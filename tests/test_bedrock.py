"""Tests for Bedrock: boot, reconfiguration, dependencies, migration, 2PC."""

import pytest

from repro import Cluster
from repro.bedrock import (
    BedrockClient,
    BedrockConfigError,
    BedrockServer,
    ModuleError,
    TransactionError,
    boot_process,
    builtin_libraries,
    register_library,
)
from repro.margo import RpcFailedError
from repro.storage import ParallelFileSystem
from repro.yokan import YokanClient

# The paper's Listing 3, adapted to the built-in libraries.
LISTING3 = {
    "margo": {
        "argobots": {
            "pools": [{"name": "MyPoolX", "type": "fifo_wait", "access": "mpmc"}],
            "xstreams": [
                {"name": "MyES0", "scheduler": {"type": "basic", "pools": ["MyPoolX"]}}
            ],
        }
    },
    "libraries": {"yokan": "libyokan.so"},
    "providers": [
        {
            "name": "myProviderA",
            "type": "yokan",
            "provider_id": 1,
            "pool": "MyPoolX",
            "config": {"database": {"type": "map"}},
            "dependencies": {},
        }
    ],
}


@pytest.fixture()
def rig():
    cluster = Cluster(seed=41)
    margo, bedrock = boot_process(cluster, "server", "n0", LISTING3)
    client_margo = cluster.add_margo("client", node="nc")
    handle = BedrockClient(client_margo).make_service_handle(margo.address)
    return cluster, margo, bedrock, client_margo, handle


def run(cluster, margo, gen):
    return cluster.run_ult(margo, gen)


# ----------------------------------------------------------------------
# boot (Listing 3)
# ----------------------------------------------------------------------
def test_boot_from_listing3(rig):
    cluster, margo, bedrock, cm, _ = rig
    assert "myProviderA" in bedrock.records
    assert "MyPoolX" in margo.pools
    # The provider actually serves RPCs.
    db = YokanClient(cm).make_handle(margo.address, 1)

    def driver():
        yield from db.put("k", "v")
        return (yield from db.get("k"))

    assert run(cluster, cm, driver()) == b"v"


def test_boot_rejects_unknown_keys():
    cluster = Cluster(seed=1)
    with pytest.raises(BedrockConfigError):
        boot_process(cluster, "p", "n0", {"bogus": 1})


def test_boot_rejects_unknown_type():
    cluster = Cluster(seed=1)
    with pytest.raises(ModuleError):
        boot_process(
            cluster, "p", "n0",
            {"providers": [{"name": "x", "type": "never-loaded"}]},
        )


def test_boot_rejects_unknown_library():
    cluster = Cluster(seed=1)
    with pytest.raises(ModuleError, match="unknown library"):
        boot_process(cluster, "p", "n0", {"libraries": {"a": "libnope.so"}})


def test_boot_rejects_mismatched_library_type():
    cluster = Cluster(seed=1)
    with pytest.raises(BedrockConfigError, match="provides type"):
        boot_process(cluster, "p", "n0", {"libraries": {"warabi": "libyokan.so"}})


def test_local_dependency_resolution():
    cluster = Cluster(seed=1)
    _, bedrock = boot_process(
        cluster, "p", "n0",
        {
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": [
                {"name": "remi0", "type": "remi", "provider_id": 0},
                {
                    "name": "db0",
                    "type": "yokan",
                    "provider_id": 1,
                    "dependencies": {"mover": "remi0"},
                },
            ],
        },
    )
    assert bedrock.dependents["remi0"] == {"local:db0"}


def test_boot_rejects_missing_local_dependency():
    cluster = Cluster(seed=1)
    from repro.bedrock import DependencyError

    with pytest.raises(DependencyError):
        boot_process(
            cluster, "p", "n0",
            {
                "libraries": {"yokan": "libyokan.so"},
                "providers": [
                    {"name": "db0", "type": "yokan", "provider_id": 1,
                     "dependencies": {"mover": "ghost"}},
                ],
            },
        )


# ----------------------------------------------------------------------
# remote API (Listing 5)
# ----------------------------------------------------------------------
def test_listing5_sequence(rig):
    """addPool; removePool; loadModule; startProvider -- remotely."""
    cluster, margo, bedrock, cm, handle = rig

    def driver():
        yield from handle.add_pool({"name": "TempPool"})
        yield from handle.remove_pool("TempPool")
        yield from handle.add_pool({"name": "BPool"})
        yield from handle.add_xstream(
            {"name": "BES", "scheduler": {"type": "basic", "pools": ["BPool"]}}
        )
        yield from handle.load_module("warabi", "libwarabi.so")
        result = yield from handle.start_provider(
            "myProviderB", "warabi", provider_id=2, pool="BPool"
        )
        providers = yield from handle.list_providers()
        return result, providers

    result, providers = run(cluster, cm, driver())
    assert result["name"] == "myProviderB"
    assert providers == ["myProviderA", "myProviderB"]
    assert "BPool" in margo.pools


def test_stop_provider_remote(rig):
    cluster, margo, bedrock, cm, handle = rig

    def driver():
        yield from handle.stop_provider("myProviderA")
        return (yield from handle.list_providers())

    assert run(cluster, cm, driver()) == []
    assert "myProviderA" not in bedrock.records


def test_stop_depended_on_provider_rejected():
    cluster = Cluster(seed=1)
    margo, bedrock = boot_process(
        cluster, "p", "n0",
        {
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": [
                {"name": "remi0", "type": "remi", "provider_id": 0},
                {"name": "db0", "type": "yokan", "provider_id": 1,
                 "dependencies": {"mover": "remi0"}},
            ],
        },
    )
    cm = cluster.add_margo("client", node="nc")
    handle = BedrockClient(cm).make_service_handle(margo.address)

    def driver():
        yield from handle.stop_provider("remi0")

    with pytest.raises(RpcFailedError, match="depended on"):
        run(cluster, cm, driver())

    # After stopping the dependent, the dependency can go.
    def driver2():
        yield from handle.stop_provider("db0")
        yield from handle.stop_provider("remi0")

    run(cluster, cm, driver2())


def test_duplicate_provider_rejected(rig):
    cluster, _, _, cm, handle = rig

    def driver():
        yield from handle.start_provider("myProviderA", "yokan", provider_id=7)

    with pytest.raises(RpcFailedError, match="already exists"):
        run(cluster, cm, driver())


def test_type_id_conflict_rejected(rig):
    cluster, _, _, cm, handle = rig

    def driver():
        yield from handle.start_provider("another", "yokan", provider_id=1)

    with pytest.raises(RpcFailedError, match="already in use"):
        run(cluster, cm, driver())


def test_remove_pool_used_by_provider_rejected(rig):
    cluster, _, _, cm, handle = rig

    def driver():
        yield from handle.remove_pool("MyPoolX")

    with pytest.raises(RpcFailedError, match="used by providers"):
        run(cluster, cm, driver())


def test_get_config_and_jx9_query(rig):
    cluster, margo, _, cm, handle = rig

    def driver():
        config = yield from handle.get_config()
        names = yield from handle.query(
            "$result = [];\n"
            "foreach ($__config__.providers as $p) {\n"
            "    array_push($result, $p.name); }\n"
            "return $result;"
        )
        return config, names

    config, names = run(cluster, cm, driver())
    assert names == ["myProviderA"]
    assert config["libraries"]["yokan"] == "libyokan.so"
    assert any(p["name"] == "myProviderA" for p in config["providers"])
    pool_names = [p["name"] for p in config["margo"]["argobots"]["pools"]]
    assert "MyPoolX" in pool_names


def test_remote_dependency_and_pin(rig):
    """A provider on process B depends on a provider on process A; A's
    Bedrock learns about the remote dependent and protects it."""
    cluster, margo_a, bedrock_a, cm, handle_a = rig
    margo_b, bedrock_b = boot_process(
        cluster, "server-b", "nb",
        {"libraries": {"yokan": "libyokan.so", "yokan-virtual": "libyokan-virtual.so"}},
    )
    handle_b = BedrockClient(cm).make_service_handle(margo_b.address)

    def driver():
        yield from handle_b.start_provider(
            "vdb",
            "yokan-virtual",
            provider_id=9,
            config={"targets": [{"address": margo_a.address, "provider_id": 1}]},
            dependencies={
                "backend": {
                    "type": "yokan",
                    "address": margo_a.address,
                    "provider_id": 1,
                }
            },
        )

    run(cluster, cm, driver())
    assert bedrock_a.dependents["myProviderA"] == {
        f"remote:{margo_b.address}:vdb"
    }

    # A's provider now refuses to stop.
    def try_stop():
        yield from handle_a.stop_provider("myProviderA")

    with pytest.raises(RpcFailedError, match="depended on"):
        run(cluster, cm, try_stop())

    # Stopping the dependent unpins, then the stop succeeds.
    def unwind():
        yield from handle_b.stop_provider("vdb")
        yield from handle_a.stop_provider("myProviderA")

    run(cluster, cm, unwind())


# ----------------------------------------------------------------------
# checkpoint / restore via Bedrock
# ----------------------------------------------------------------------
def test_checkpoint_restore_via_bedrock():
    cluster = Cluster(seed=42)
    pfs = ParallelFileSystem()
    margo, bedrock = boot_process(cluster, "p", "n0", LISTING3, pfs=pfs)
    cm = cluster.add_margo("client", node="nc")
    handle = BedrockClient(cm).make_service_handle(margo.address)
    db = YokanClient(cm).make_handle(margo.address, 1)

    def driver():
        yield from db.put("k", "precious")
        ckpt = yield from handle.checkpoint_provider("myProviderA", "ckpt/a")
        yield from db.put("k", "clobbered")
        yield from handle.restore_provider("myProviderA", "ckpt/a")
        return ckpt, (yield from db.get("k"))

    ckpt, value = run(cluster, cm, driver())
    assert value == b"precious"
    assert ckpt["bytes"] > 0
    assert pfs.exists("ckpt/a")


def test_checkpoint_without_pfs_rejected(rig):
    cluster, _, _, cm, handle = rig

    def driver():
        yield from handle.checkpoint_provider("myProviderA", "x")

    with pytest.raises(RpcFailedError, match="no PFS"):
        run(cluster, cm, driver())


# ----------------------------------------------------------------------
# provider migration via Bedrock (paper section 6)
# ----------------------------------------------------------------------
def test_migrate_provider_between_processes():
    cluster = Cluster(seed=43)
    src_config = {
        "libraries": {"yokan": "libyokan.so"},
        "providers": [
            {"name": "db", "type": "yokan", "provider_id": 1,
             "config": {"database": {"type": "persistent"}}},
        ],
    }
    dst_config = {
        "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
        "providers": [{"name": "remi0", "type": "remi", "provider_id": 0}],
    }
    src_margo, src_bedrock = boot_process(cluster, "src", "ns", src_config)
    dst_margo, dst_bedrock = boot_process(cluster, "dst", "nd", dst_config)
    cm = cluster.add_margo("client", node="nc")
    src_handle = BedrockClient(cm).make_service_handle(src_margo.address)
    db_src = YokanClient(cm).make_handle(src_margo.address, 1)
    db_dst = YokanClient(cm).make_handle(dst_margo.address, 1)

    def driver():
        yield from db_src.put_multi([(f"k{i}", f"v{i}") for i in range(10)])
        report = yield from src_handle.migrate_provider(
            "db", dst_margo.address, remi_provider_id=0
        )
        value = yield from db_dst.get("k3")
        return report, value

    report, value = run(cluster, cm, driver())
    assert value == b"v3"
    assert report["moved_files"] == 1
    assert "db" not in src_bedrock.records
    assert "db" in dst_bedrock.records


def test_warabi_migrate_preserves_id_counter():
    """Delete-then-migrate regression: the id counter is authoritative
    state, not ``max(surviving ids) + 1``.  After erasing the
    highest-id blob and migrating, the destination must hand out a
    *fresh* id, not re-issue the erased one to collide with any handle
    a client still holds."""
    from repro.warabi import WarabiClient

    cluster = Cluster(seed=47)
    src_config = {
        "libraries": {"warabi": "libwarabi.so"},
        "providers": [
            {"name": "blobs", "type": "warabi", "provider_id": 1,
             "config": {"target": {"type": "persistent"}}},
        ],
    }
    dst_config = {
        "libraries": {"warabi": "libwarabi.so", "remi": "libremi.so"},
        "providers": [{"name": "remi0", "type": "remi", "provider_id": 0}],
    }
    src_margo, src_bedrock = boot_process(cluster, "src", "ns", src_config)
    dst_margo, dst_bedrock = boot_process(cluster, "dst", "nd", dst_config)
    cm = cluster.add_margo("client", node="nc")
    src_handle = BedrockClient(cm).make_service_handle(src_margo.address)
    blobs_src = WarabiClient(cm).make_handle(src_margo.address, 1)
    blobs_dst = WarabiClient(cm).make_handle(dst_margo.address, 1)

    def driver():
        ids = []
        for _ in range(3):
            bid = yield from blobs_src.create(size=4)
            ids.append(bid)
        yield from blobs_src.write(ids[0], b"aaaa")
        yield from blobs_src.erase(ids[2])
        yield from src_handle.migrate_provider(
            "blobs", dst_margo.address, remi_provider_id=0
        )
        survivors = yield from blobs_dst.list()
        fresh = yield from blobs_dst.create(size=1)
        data = yield from blobs_dst.read(ids[0])
        return ids, survivors, fresh, data

    ids, survivors, fresh, data = run(cluster, cm, driver())
    assert ids == [0, 1, 2]
    assert survivors == [0, 1]  # blob data survived the migration
    assert data == b"aaaa"
    assert fresh == 3  # counter carried over; id 2 is never re-issued
    assert "blobs" not in src_bedrock.records
    assert "blobs" in dst_bedrock.records


# ----------------------------------------------------------------------
# 2PC: the paper's c1/c2 conflict scenario
# ----------------------------------------------------------------------
def c1_c2_rig():
    """Two processes: n2 hosts p2; c1 wants to create p1 on n1 depending
    on p2; c2 wants to destroy p2."""
    cluster = Cluster(seed=44)
    margo1, bedrock1 = boot_process(
        cluster, "n1-proc", "n1",
        {"libraries": {"yokan": "libyokan.so", "yokan-virtual": "libyokan-virtual.so"}},
    )
    margo2, bedrock2 = boot_process(
        cluster, "n2-proc", "n2",
        {
            "libraries": {"yokan": "libyokan.so"},
            "providers": [{"name": "p2", "type": "yokan", "provider_id": 1}],
        },
    )
    c1 = cluster.add_margo("c1", node="nc1")
    c2 = cluster.add_margo("c2", node="nc2")
    group1 = BedrockClient(c1).make_service_group_handle([margo1.address, margo2.address])
    group2 = BedrockClient(c2).make_service_group_handle([margo1.address, margo2.address])
    start_op = {
        "name": "p1",
        "type": "yokan-virtual",
        "provider_id": 5,
        "config": {"targets": [{"address": margo2.address, "provider_id": 1}]},
        "dependencies": {
            "backend": {
                "type": "yokan",
                "address": margo2.address,
                "provider_id": 1,
                "provider_name": "p2",
            }
        },
    }
    return cluster, margo1, margo2, bedrock1, bedrock2, c1, c2, group1, group2, start_op


def test_2pc_create_with_pin_succeeds_then_destroy_fails():
    cluster, margo1, margo2, b1, b2, c1, c2, group1, group2, start_op = c1_c2_rig()

    def create():
        yield from group1.start_provider_tx(margo1.address, start_op)

    cluster.run_ult(c1, create())
    assert "p1" in b1.records
    assert b2.dependents["p2"] == {f"remote:{margo1.address}:p1"}

    def destroy():
        yield from group2.stop_provider_tx(margo2.address, "p2")

    with pytest.raises(TransactionError):
        cluster.run_ult(c2, destroy())
    assert "p2" in b2.records  # still alive


def test_2pc_destroy_first_then_create_fails():
    cluster, margo1, margo2, b1, b2, c1, c2, group1, group2, start_op = c1_c2_rig()

    def destroy():
        yield from group2.stop_provider_tx(margo2.address, "p2")

    cluster.run_ult(c2, destroy())
    assert "p2" not in b2.records

    def create():
        yield from group1.start_provider_tx(margo1.address, start_op)

    with pytest.raises(TransactionError, match="does not exist"):
        cluster.run_ult(c1, create())
    assert "p1" not in b1.records


def test_2pc_concurrent_conflict_exactly_one_wins():
    """The paper's exact guarantee: launched concurrently, either c1's
    create or c2's destroy succeeds -- never both, never neither-with-
    corruption."""
    cluster, margo1, margo2, b1, b2, c1, c2, group1, group2, start_op = c1_c2_rig()
    outcomes = {}

    def create():
        try:
            yield from group1.start_provider_tx(margo1.address, start_op)
            outcomes["create"] = True
        except TransactionError:
            outcomes["create"] = False

    def destroy():
        try:
            yield from group2.stop_provider_tx(margo2.address, "p2")
            outcomes["destroy"] = True
        except TransactionError:
            outcomes["destroy"] = False

    cluster.spawn(c1, create())
    cluster.spawn(c2, destroy())
    cluster.run()
    assert sorted(outcomes) == ["create", "destroy"]
    assert outcomes["create"] != outcomes["destroy"], outcomes
    if outcomes["create"]:
        # p1 exists and depends on a live p2.
        assert "p1" in b1.records and "p2" in b2.records
    else:
        # p2 destroyed; p1 never created.
        assert "p1" not in b1.records and "p2" not in b2.records


def test_2pc_locks_released_after_abort():
    cluster, margo1, margo2, b1, b2, c1, c2, group1, group2, start_op = c1_c2_rig()

    def destroy_then_retry_create():
        yield from group2.stop_provider_tx(margo2.address, "p2")

    cluster.run_ult(c2, destroy_then_retry_create())

    def create_fails():
        try:
            yield from group1.start_provider_tx(margo1.address, start_op)
            return True
        except TransactionError:
            return False

    assert cluster.run_ult(c1, create_fails()) is False
    # Locks were released: a valid transaction on the same entities works.
    def recreate_p2():
        yield from group2.execute_transaction(
            {margo2.address: [{"action": "start_provider", "name": "p2",
                               "type": "yokan", "provider_id": 1}]}
        )

    cluster.run_ult(c2, recreate_p2())
    assert "p2" in b2.records
    assert b2._locks == {}
