"""Unit tests for the simulated network, topology, and fault injection."""

import pytest

from repro.sim import (
    AddressError,
    FaultInjector,
    LinkModel,
    Network,
    NetworkConfig,
    RandomSource,
    SimKernel,
    Transport,
)


@pytest.fixture()
def net():
    kernel = SimKernel()
    network = Network(kernel)
    return kernel, network


def make_pair(network):
    n1 = network.add_node("n1")
    n2 = network.add_node("n2")
    p1 = network.add_process("p1", n1)
    p2 = network.add_process("p2", n2)
    return p1, p2


def test_link_model_time():
    link = LinkModel(latency=1e-6, bandwidth=1e9)
    assert link.time(0) == pytest.approx(1e-6)
    assert link.time(10**9) == pytest.approx(1.000001)
    with pytest.raises(ValueError):
        link.time(-1)


def test_transport_selection(net):
    _, network = net
    n1 = network.add_node("n1")
    n2 = network.add_node("n2")
    a = network.add_process("a", n1)
    b = network.add_process("b", n1)
    c = network.add_process("c", n2)
    assert network.transport_between(a, a) == Transport.SELF
    assert network.transport_between(a, b) == Transport.SM
    assert network.transport_between(a, c) == Transport.FABRIC


def test_bulk_uses_rdma_across_nodes(net):
    _, network = net
    p1, p2 = make_pair(network)
    rpc_time = network.transfer_time(p1, p2, 1 << 20, bulk=False)
    bulk_time = network.transfer_time(p1, p2, 1 << 20, bulk=True)
    assert bulk_time < rpc_time  # rdma bandwidth > fabric bandwidth


def test_duplicate_node_and_process_names_rejected(net):
    _, network = net
    network.add_node("n1")
    with pytest.raises(ValueError):
        network.add_node("n1")
    network.add_process("p1", "n1")
    with pytest.raises(ValueError):
        network.add_process("p1", "n1")


def test_lookup_unknown_address(net):
    _, network = net
    with pytest.raises(AddressError):
        network.lookup("na+ofi://nowhere/none")


def test_message_delivery_and_cost(net):
    kernel, network = net
    p1, p2 = make_pair(network)
    received = []
    p2.on_message = received.append
    network.send(p1, p2.address, {"x": 1}, size=1000)
    kernel.run()
    assert received == [{"x": 1}]
    expected = network.config.fabric.time(1000) + network.config.send_overhead
    assert kernel.now == pytest.approx(expected)


def test_send_to_unknown_address_returns_false(net):
    _, network = net
    p1, _ = make_pair(network)
    assert network.send(p1, "na+ofi://x/y", "m", 10) is False
    assert network.messages_dropped == 1


def test_partition_blocks_delivery(net):
    kernel, network = net
    p1, p2 = make_pair(network)
    received = []
    p2.on_message = received.append
    network.partition("n1", "n2")
    network.send(p1, p2.address, "m", 10)
    kernel.run()
    assert received == []
    network.heal("n1", "n2")
    network.send(p1, p2.address, "m", 10)
    kernel.run()
    assert received == ["m"]


def test_partition_does_not_block_same_node(net):
    kernel, network = net
    n1 = network.add_node("n1")
    a = network.add_process("a", n1)
    b = network.add_process("b", n1)
    received = []
    b.on_message = received.append
    network.partition("n1", "n1")  # nonsensical but must not break intra-node
    network.send(a, b.address, "m", 10)
    kernel.run()
    assert received == ["m"]


def test_message_loss_probability(net):
    kernel, network = net
    p1, p2 = make_pair(network)
    received = []
    p2.on_message = received.append
    network.loss_probability = 0.5
    for _ in range(200):
        network.send(p1, p2.address, "m", 10)
    kernel.run()
    assert 40 < len(received) < 160  # ~100 expected


def test_loss_never_applies_to_self_send(net):
    kernel, network = net
    n1 = network.add_node("n1")
    a = network.add_process("a", n1)
    a.on_message = lambda m: received.append(m)
    received = []
    network.loss_probability = 1.0
    for _ in range(10):
        network.send(a, a.address, "m", 10)
    kernel.run()
    assert len(received) == 10


def test_dead_receiver_drops_message(net):
    kernel, network = net
    p1, p2 = make_pair(network)
    received = []
    p2.on_message = received.append
    injector = FaultInjector(kernel, network)
    network.send(p1, p2.address, "m", 10)
    injector.kill_process(p2)  # dies before delivery
    kernel.run()
    assert received == []


def test_kill_process_fires_callbacks(net):
    kernel, network = net
    p1, _ = make_pair(network)
    calls = []
    p1.on_killed.append(lambda: calls.append("died"))
    injector = FaultInjector(kernel, network)
    injector.kill_process(p1)
    injector.kill_process(p1)  # idempotent
    assert calls == ["died"]
    assert not p1.alive
    assert injector.history[0].kind == "process"


def test_kill_node_kills_processes_and_wipes_storage(net):
    kernel, network = net
    n1 = network.add_node("n1")
    a = network.add_process("a", n1)
    b = network.add_process("b", n1)

    class FakeStore:
        wiped = False

        def wipe(self):
            self.wiped = True

    store = FakeStore()
    n1.attach("disk", store)
    injector = FaultInjector(kernel, network)
    injector.kill_node(n1)
    assert not n1.alive and not a.alive and not b.alive
    assert store.wiped


def test_scheduled_faults(net):
    kernel, network = net
    p1, p2 = make_pair(network)
    injector = FaultInjector(kernel, network)
    injector.kill_process_at(5.0, p1)
    kernel.run()
    assert not p1.alive
    assert kernel.now == pytest.approx(5.0)


def test_random_source_streams_are_stable_and_independent():
    a = RandomSource(42)
    b = RandomSource(42)
    # Same name -> same sequence.
    assert [a.stream("x").random() for _ in range(3)] == [
        b.stream("x").random() for _ in range(3)
    ]
    # Consuming another stream does not perturb an existing one.
    c = RandomSource(42)
    c.stream("y").random()
    assert c.stream("x").random() == RandomSource(42).stream("x").random()
    # Different seeds differ.
    assert RandomSource(1).stream("x").random() != RandomSource(2).stream("x").random()


def test_random_source_fork():
    root = RandomSource(7)
    child1 = root.fork("p1")
    child2 = root.fork("p2")
    assert child1.seed != child2.seed
    assert root.fork("p1").seed == child1.seed
