"""Migration coverage: MCH061 positives and negatives."""

from interproc_util import fixture_path, line_of, parse_fixture

from repro.analysis.interproc import run_interproc


def _mch061(*packages):
    findings, _ = run_interproc(parse_fixture(*packages), select=["MCH061"])
    return findings


def test_unmigrated_runtime_state_flagged():
    findings = _mch061("migratebad")
    providers = fixture_path("migratebad", "providers.py")
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == providers
    assert finding.line == line_of(providers, "self._hits += 1")
    assert "BadProvider" in finding.message
    assert "_hits" in finding.message


def test_state_read_in_migrate_closure_is_covered():
    # GoodProvider._log is only read inside _snapshot_log, a helper the
    # migrate() path calls -- transitive closure must cover it.
    findings = _mch061("migratebad")
    assert not any("GoodProvider" in f.message for f in findings)


def test_base_class_without_bases_is_skipped():
    findings = _mch061("migratebad")
    assert not any("'Base'" in f.message for f in findings)
