"""Tests for Pufferscale: model, planner heuristics, executor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.margo.ult import UltSleep
from repro.pufferscale import (
    Move,
    Objective,
    Placement,
    PlanExecutor,
    Shard,
    plan_rebalance,
)


def shard(i, size=100, load=1.0):
    return Shard(shard_id=f"s{i}", size_bytes=size, load=load)


def skewed_placement():
    """Everything piled on n0; n1 and n2 empty."""
    return Placement.from_dict(
        {
            "n0": [shard(i, size=100, load=1.0) for i in range(6)],
            "n1": [],
            "n2": [],
        }
    )


# ----------------------------------------------------------------------
# model
# ----------------------------------------------------------------------
def test_shard_validation():
    with pytest.raises(ValueError):
        Shard("s", -1, 0.0)
    with pytest.raises(ValueError):
        Shard("s", 1, -0.5)


def test_placement_add_remove_move():
    p = Placement(["a", "b"])
    s = shard(0)
    p.add("a", s)
    assert p.node_of("s0") == "a"
    with pytest.raises(ValueError):
        p.add("b", s)  # duplicate placement
    p.move(Move(shard=s, source="a", destination="b"))
    assert p.node_of("s0") == "b"
    assert p.shards_on("a") == []
    p.remove("b", "s0")
    assert p.node_of("s0") is None


def test_placement_node_management():
    p = Placement(["a"])
    p.add_node("b")
    with pytest.raises(ValueError):
        p.add_node("b")
    p.add("b", shard(0))
    with pytest.raises(ValueError):
        p.drop_node("b")  # still holds shards
    p.remove("b", "s0")
    p.drop_node("b")
    assert p.nodes == ["a"]


def test_imbalance_metrics():
    p = skewed_placement()
    assert p.load_imbalance() == pytest.approx(3.0)  # 6 / (6/3)
    assert p.data_imbalance() == pytest.approx(3.0)
    balanced = Placement.from_dict(
        {"a": [shard(0)], "b": [shard(1)], "c": [shard(2)]}
    )
    assert balanced.load_imbalance() == pytest.approx(1.0)


def test_metrics_with_moves_bottleneck():
    p = skewed_placement()
    moves = [
        Move(shard=shard(0), source="n0", destination="n1"),
        Move(shard=shard(1), source="n0", destination="n2"),
    ]
    metrics = p.metrics_with_moves(moves, bandwidth=100.0)
    assert metrics.migration_bytes == 200
    # n0 sends 200 bytes -> bottleneck 200/100 = 2s.
    assert metrics.estimated_migration_time == pytest.approx(2.0)


def test_empty_placement_rejected():
    with pytest.raises(ValueError):
        Placement([])


# ----------------------------------------------------------------------
# planner
# ----------------------------------------------------------------------
def test_objective_validation():
    with pytest.raises(ValueError):
        Objective(alpha=-1)
    with pytest.raises(ValueError):
        Objective(alpha=0, beta=0, gamma=0)


def test_rebalance_flattens_skew():
    plan = plan_rebalance(skewed_placement(), ["n0", "n1", "n2"], Objective(gamma=0.0))
    assert plan.after.load_imbalance == pytest.approx(1.0)
    assert plan.after.data_imbalance == pytest.approx(1.0)
    assert plan.before.load_imbalance == pytest.approx(3.0)
    # Perfect balance of 6 identical shards over 3 nodes = 2 each.
    for node in plan.final_placement.nodes:
        assert len(plan.final_placement.shards_on(node)) == 2


def test_gamma_tradeoff_reduces_movement():
    """Higher gamma (migration-cost weight) => fewer bytes moved at the
    price of worse balance -- the Pufferscale compromise."""
    cheap = plan_rebalance(skewed_placement(), ["n0", "n1", "n2"],
                           Objective(alpha=1, beta=1, gamma=0.0))
    costly = plan_rebalance(skewed_placement(), ["n0", "n1", "n2"],
                            Objective(alpha=1, beta=1, gamma=1e9))
    assert costly.total_bytes <= cheap.total_bytes
    assert costly.after.load_imbalance >= cheap.after.load_imbalance


def test_scale_in_evacuates_removed_nodes():
    p = Placement.from_dict(
        {
            "n0": [shard(0), shard(1)],
            "n1": [shard(2), shard(3)],
            "n2": [shard(4), shard(5)],
        }
    )
    plan = plan_rebalance(p, ["n0", "n1"])  # remove n2
    assert "n2" not in plan.final_placement.nodes
    moved_ids = {m.shard.shard_id for m in plan.moves}
    assert {"s4", "s5"} <= moved_ids
    assert plan.final_placement.node_of("s4") in ("n0", "n1")


def test_scale_out_uses_new_node():
    p = Placement.from_dict({"n0": [shard(i) for i in range(4)]})
    plan = plan_rebalance(p, ["n0", "n1"], Objective(gamma=0.0))
    assert len(plan.final_placement.shards_on("n1")) == 2


def test_heterogeneous_loads_balanced():
    p = Placement.from_dict(
        {
            "n0": [Shard("hot", 100, 10.0), Shard("warm", 100, 5.0),
                   Shard("cold1", 100, 1.0), Shard("cold2", 100, 1.0)],
            "n1": [],
        }
    )
    plan = plan_rebalance(p, ["n0", "n1"], Objective(alpha=1.0, beta=0.0, gamma=0.0))
    loads = {
        n: sum(s.load for s in plan.final_placement.shards_on(n))
        for n in plan.final_placement.nodes
    }
    # 17 total load: best split is 10 / 7 or 9 / 8.
    assert max(loads.values()) <= 10.0


def test_plan_target_nodes_validation():
    with pytest.raises(ValueError):
        plan_rebalance(skewed_placement(), [])


def test_planner_deterministic():
    a = plan_rebalance(skewed_placement(), ["n0", "n1", "n2"])
    b = plan_rebalance(skewed_placement(), ["n0", "n1", "n2"])
    assert [(m.shard.shard_id, m.source, m.destination) for m in a.moves] == [
        (m.shard.shard_id, m.source, m.destination) for m in b.moves
    ]


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=1000),
                  st.floats(min_value=0.0, max_value=10.0)),
        min_size=1,
        max_size=15,
    ),
    st.integers(min_value=1, max_value=4),
)
def test_rebalance_never_loses_shards_property(shard_specs, n_nodes):
    nodes = [f"n{i}" for i in range(n_nodes)]
    placement = Placement(nodes)
    for i, (size, load) in enumerate(shard_specs):
        placement.add(nodes[0], Shard(f"s{i}", size, load))
    target = nodes + ["extra"]
    plan = plan_rebalance(placement, target)
    final_ids = {s.shard_id for s in plan.final_placement.all_shards()}
    assert final_ids == {f"s{i}" for i in range(len(shard_specs))}
    # The plan is never worse than doing nothing on the same node set.
    baseline = placement.copy()
    baseline.add_node("extra")
    assert plan.after.load_imbalance <= baseline.load_imbalance() + 1e-9


# ----------------------------------------------------------------------
# executor
# ----------------------------------------------------------------------
def test_executor_runs_moves_with_injected_migrator():
    cluster = Cluster(seed=31)
    margo = cluster.add_margo("ctl", node="n0")
    migrated = []

    def fake_migrate(s, src, dst):
        yield UltSleep(0.01)
        migrated.append((s.shard_id, src, dst))

    plan = plan_rebalance(skewed_placement(), ["n0", "n1", "n2"], Objective(gamma=0.0))
    executor = PlanExecutor(margo, fake_migrate, max_parallel=2)

    def driver():
        report = yield from executor.execute(plan)
        return report

    report = cluster.run_ult(margo, driver())
    assert report.moves_executed == len(plan.moves)
    assert len(migrated) == len(plan.moves)
    assert report.bytes_moved == plan.total_bytes
    assert report.duration > 0


def test_executor_waves_do_not_reuse_nodes():
    cluster = Cluster(seed=31)
    margo = cluster.add_margo("ctl", node="n0")
    active: dict[str, int] = {}
    overlaps = []

    def fake_migrate(s, src, dst):
        for endpoint in (src, dst):
            active[endpoint] = active.get(endpoint, 0) + 1
            if active[endpoint] > 1:
                overlaps.append(endpoint)
        yield UltSleep(0.01)
        for endpoint in (src, dst):
            active[endpoint] -= 1

    plan = plan_rebalance(skewed_placement(), ["n0", "n1", "n2"], Objective(gamma=0.0))
    executor = PlanExecutor(margo, fake_migrate, max_parallel=8)

    def driver():
        yield from executor.execute(plan)

    cluster.run_ult(margo, driver())
    assert overlaps == []


def test_executor_validation():
    cluster = Cluster(seed=31)
    margo = cluster.add_margo("ctl", node="n0")
    with pytest.raises(ValueError):
        PlanExecutor(margo, lambda s, a, b: None, max_parallel=0)
