"""The MCH02x configuration cross-validator and its boot_process reuse."""

import glob
import json
import os

import pytest

from repro import Cluster
from repro.analysis.config_check import (
    check_boot_config,
    validate_bedrock_doc,
    validate_config_doc,
    validate_config_file,
    validate_margo_doc,
)
from repro.bedrock import boot_process
from repro.bedrock.errors import (
    BedrockConfigError,
    DependencyError,
    ProviderConflictError,
)
from repro.bedrock.module import ModuleError
from repro.margo.errors import ConfigError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def ids(findings):
    return [f.rule_id for f in findings]


def margo_doc(pools=("p0",), xstreams=None, **extra):
    if xstreams is None:
        xstreams = [
            {"name": "es0", "scheduler": {"type": "basic", "pools": list(pools)}}
        ]
    doc = {
        "argobots": {
            "pools": [{"name": p} for p in pools],
            "xstreams": xstreams,
        }
    }
    doc.update(extra)
    return doc


# ----------------------------------------------------------------------
# Margo documents
# ----------------------------------------------------------------------
def test_valid_margo_doc_is_clean():
    assert validate_margo_doc(margo_doc()) == []


def test_empty_doc_uses_defaults_and_is_clean():
    assert validate_margo_doc({}) == []
    assert validate_margo_doc(None) == []


def test_duplicate_pool_name():
    doc = {"argobots": {"pools": [{"name": "p"}, {"name": "p"}]}}
    findings = validate_margo_doc(doc)
    assert "MCH021" in ids(findings)


def test_duplicate_xstream_name():
    doc = margo_doc(
        pools=("p0",),
        xstreams=[
            {"name": "es", "scheduler": {"pools": ["p0"]}},
            {"name": "es", "scheduler": {"pools": ["p0"]}},
        ],
    )
    assert "MCH021" in ids(validate_margo_doc(doc))


def test_xstream_referencing_undefined_pool():
    doc = margo_doc(
        pools=("p0",),
        xstreams=[{"name": "es0", "scheduler": {"pools": ["ghost"]}}],
    )
    findings = validate_margo_doc(doc)
    assert "MCH020" in ids(findings)
    assert any("ghost" in f.message for f in findings)


def test_unserved_pool_is_dangling():
    doc = margo_doc(
        pools=("p0", "orphan"),
        xstreams=[{"name": "es0", "scheduler": {"pools": ["p0"]}}],
    )
    findings = validate_margo_doc(doc)
    assert ids(findings) == ["MCH020"]
    assert "never" in findings[0].message or "orphan" in findings[0].message


def test_dangling_progress_and_rpc_pool():
    findings = validate_margo_doc(margo_doc(progress_pool="nope"))
    assert ids(findings) == ["MCH020"]
    findings = validate_margo_doc(margo_doc(rpc_pool="nope"))
    assert ids(findings) == ["MCH020"]


def test_malformed_margo_doc():
    assert ids(validate_margo_doc([1, 2])) == ["MCH023"]
    assert ids(validate_margo_doc("{not json")) == ["MCH023"]
    # Structural errors are delegated to MargoConfig.from_json.
    assert ids(validate_margo_doc({"bogus_key": 1})) == ["MCH023"]


# ----------------------------------------------------------------------
# Bedrock documents
# ----------------------------------------------------------------------
def bedrock_doc(providers, libraries=None):
    return {
        "margo": margo_doc(pools=("p0",)),
        "libraries": libraries
        if libraries is not None
        else {"yokan": "libyokan.so", "remi": "libremi.so"},
        "providers": providers,
    }


def test_valid_bedrock_doc_is_clean():
    doc = bedrock_doc(
        [
            {"name": "mover", "type": "remi", "provider_id": 0},
            {
                "name": "db",
                "type": "yokan",
                "provider_id": 1,
                "pool": "p0",
                "dependencies": {"mover": "mover"},
            },
        ]
    )
    assert validate_bedrock_doc(doc) == []


def test_unknown_top_level_key():
    findings = validate_bedrock_doc({"margo": {}, "oops": 1})
    assert ids(findings) == ["MCH023"]


def test_unknown_library():
    findings = validate_bedrock_doc(bedrock_doc([], libraries={"a": "libnope.so"}))
    assert ids(findings) == ["MCH022"]
    assert "unknown library" in findings[0].message


def test_library_type_mismatch():
    findings = validate_bedrock_doc(
        bedrock_doc([], libraries={"warabi": "libyokan.so"})
    )
    assert ids(findings) == ["MCH023"]
    assert "provides type" in findings[0].message


def test_duplicate_provider_name_and_id():
    findings = validate_bedrock_doc(
        bedrock_doc(
            [
                {"name": "db", "type": "yokan", "provider_id": 1},
                {"name": "db", "type": "yokan", "provider_id": 1},
            ]
        )
    )
    assert ids(findings) == ["MCH021", "MCH021"]  # name clash + (type,id) clash


def test_provider_dangling_pool():
    findings = validate_bedrock_doc(
        bedrock_doc([{"name": "db", "type": "yokan", "pool": "ghost"}])
    )
    assert ids(findings) == ["MCH020"]


def test_dependency_on_unknown_provider():
    findings = validate_bedrock_doc(
        bedrock_doc(
            [{"name": "db", "type": "yokan", "dependencies": {"mover": "ghost"}}]
        )
    )
    assert ids(findings) == ["MCH022"]
    assert "unknown local" in findings[0].message


def test_dependency_declared_later_is_boot_order_error():
    findings = validate_bedrock_doc(
        bedrock_doc(
            [
                {"name": "db", "type": "yokan", "dependencies": {"mover": "mover"}},
                {"name": "mover", "type": "remi"},
            ]
        )
    )
    assert ids(findings) == ["MCH022"]
    assert "declared later" in findings[0].message


def test_dependency_cycle_detected():
    findings = validate_bedrock_doc(
        bedrock_doc(
            [
                {"name": "a", "type": "yokan", "provider_id": 1,
                 "dependencies": {"peer": "b"}},
                {"name": "b", "type": "yokan", "provider_id": 2,
                 "dependencies": {"peer": "a"}},
            ]
        )
    )
    assert any("cycle" in f.message for f in findings)


def test_remote_dependency_shape():
    findings = validate_bedrock_doc(
        bedrock_doc(
            [{"name": "db", "type": "yokan",
              "dependencies": {"peer": {"type": "yokan"}}}]
        )
    )
    assert ids(findings) == ["MCH022"]
    assert "missing" in findings[0].message


# ----------------------------------------------------------------------
# Files and shape dispatch
# ----------------------------------------------------------------------
def test_validate_config_doc_dispatches_by_shape():
    assert validate_config_doc(margo_doc()) == []
    assert validate_config_doc(bedrock_doc([])) == []
    assert "MCH020" in ids(validate_config_doc({"margo": margo_doc(rpc_pool="x")}))


def test_validate_config_file_and_skip_non_configs(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(margo_doc(progress_pool="nope")))
    assert ids(validate_config_file(str(bad))) == ["MCH020"]

    results = tmp_path / "results.json"
    results.write_text(json.dumps({"bench": "E1", "rate": 100.0}))
    assert validate_config_file(str(results), only_configs=True) == []

    invalid = tmp_path / "invalid.json"
    invalid.write_text("{broken")
    assert ids(validate_config_file(str(invalid))) == ["MCH023"]


def test_example_configs_are_clean():
    paths = sorted(
        glob.glob(os.path.join(REPO_ROOT, "examples", "**", "*.json"), recursive=True)
    )
    assert paths, "examples/configs/*.json must exist"
    for path in paths:
        assert validate_config_file(path) == [], path


# ----------------------------------------------------------------------
# check_boot_config: same exception types as the runtime boot path
# ----------------------------------------------------------------------
def test_boot_check_passes_valid_doc():
    check_boot_config(bedrock_doc([{"name": "db", "type": "yokan"}]))
    check_boot_config(None)


@pytest.mark.parametrize(
    "doc, exc",
    [
        ({"margo": {}, "oops": 1}, BedrockConfigError),
        ({"libraries": {"a": "libnope.so"}}, ModuleError),
        ({"libraries": {"warabi": "libyokan.so"}}, BedrockConfigError),
        (
            bedrock_doc(
                [
                    {"name": "db", "type": "yokan", "provider_id": 1},
                    {"name": "db", "type": "yokan", "provider_id": 1},
                ]
            ),
            ProviderConflictError,
        ),
        (
            bedrock_doc(
                [{"name": "db", "type": "yokan",
                  "dependencies": {"mover": "ghost"}}]
            ),
            DependencyError,
        ),
        ({"margo": {"argobots": {"pools": [{"name": "p"}, {"name": "p"}]}}},
         ConfigError),
    ],
)
def test_boot_check_raises_runtime_exception_types(doc, exc):
    with pytest.raises(exc) as excinfo:
        check_boot_config(doc)
    # The full finding list rides on the exception for diagnostics.
    assert excinfo.value.findings


def test_boot_process_fails_before_creating_any_process():
    cluster = Cluster(seed=5)
    with pytest.raises(DependencyError):
        boot_process(
            cluster, "svc", "n0",
            bedrock_doc(
                [{"name": "db", "type": "yokan",
                  "dependencies": {"mover": "ghost"}}]
            ),
        )
    assert cluster.network.processes == {}


def test_boot_process_validate_false_skips_static_pass():
    # With validation off the same document reaches the runtime path,
    # which raises its own (identical) exception type -- but only after
    # the process exists.
    cluster = Cluster(seed=5)
    with pytest.raises(DependencyError):
        boot_process(
            cluster, "svc", "n0",
            bedrock_doc(
                [{"name": "db", "type": "yokan",
                  "dependencies": {"mover": "ghost"}}]
            ),
            validate=False,
        )
    assert any(p.name == "svc" for p in cluster.network.processes.values())
