"""Chaos soak tests: everything at once, under randomized faults.

Each scenario runs a full service for a long simulated horizon with a
deterministic-but-randomized fault schedule, then checks end-state
invariants.  These are the tests that catch cross-component races the
unit suites cannot.
"""

import pytest

from repro import Cluster
from repro.core import DynamicService, ProcessSpec, ResilienceManager, ServiceSpec
from repro.margo.ult import UltSleep
from repro.raft import KVStateMachine, RaftClient, RaftConfig, RaftNode, Role
from repro.ssg import SwimConfig, create_group
from repro.storage import ParallelFileSystem
from repro.yokan import MapBackend, YokanClient

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)
RC = RaftConfig(
    heartbeat_interval=0.05,
    election_timeout_min=0.15,
    election_timeout_max=0.3,
    rpc_timeout=0.06,
)


def kv_process(name, node):
    return ProcessSpec(
        name=name,
        node=node,
        config={
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": [
                {"name": f"remi-{name}", "type": "remi", "provider_id": 0},
                {"name": f"db-{name}", "type": "yokan", "provider_id": 1,
                 "config": {"database": {"type": "persistent"}}},
            ],
        },
    )


@pytest.mark.parametrize("seed", [301, 302])
def test_chaos_raft_random_crashes_and_partitions(seed):
    """5-node Raft group; kill a random non-majority subset, partition
    and heal at random times, drive writes throughout.  Invariants:
    every acknowledged write survives; surviving state machines agree."""
    cluster = Cluster(seed=seed)
    rng = cluster.randomness.stream("chaos")
    margos = [cluster.add_margo(f"r{i}", node=f"n{i}") for i in range(5)]
    peers = [m.address for m in margos]
    nodes = [
        RaftNode(
            margo, f"raft{i}", provider_id=1,
            state_machine=KVStateMachine(MapBackend()),
            peers=peers, rng=cluster.randomness.stream(f"raft:{i}"), config=RC,
        )
        for i, margo in enumerate(margos)
    ]
    app = cluster.add_margo("app", node="napp")
    handle = RaftClient(app).make_group_handle(peers, provider_id=1)

    acked: list[int] = []

    def submitter():
        sequence = 0
        while cluster.now < 25.0:
            try:
                yield from handle.submit(
                    {"op": "put", "key": f"k{sequence:05d}".encode(),
                     "value": b"v"}, rpc_timeout=0.5,
                )
                acked.append(sequence)
                sequence += 1
            except Exception:
                pass
            yield UltSleep(0.05)

    cluster.spawn(app, submitter())

    # Fault schedule: two crash events (max 2 dead = minority of 5) and
    # two partition/heal cycles, at random times.
    victims = rng.sample(range(5), 2)
    for i, victim in enumerate(victims):
        cluster.faults.kill_process_at(5.0 + 7.0 * i, margos[victim].process)
    a, b = rng.sample(range(5), 2)
    cluster.faults.partition_at(8.0, f"n{a}", f"n{b}")
    cluster.faults.heal_at(12.0, f"n{a}", f"n{b}")
    cluster.faults.partition_at(15.0, f"n{(a+1)%5}", f"n{(b+2)%5}")
    cluster.faults.heal_at(18.0, f"n{(a+1)%5}", f"n{(b+2)%5}")

    cluster.run(until=32.0)

    survivors = [n for n in nodes if n.margo.process.alive]
    assert len(survivors) == 3
    # Progress was made despite the chaos.
    assert len(acked) > 50
    # Let replication settle, then check invariants.
    cluster.run(until=cluster.now + 3.0)
    for sequence in acked:
        key = f"k{sequence:05d}".encode()
        present = sum(1 for n in survivors if n.sm.backend.exists(key))
        assert present >= 2, f"acked write {key} missing from a majority"
    committed_prefix = min(n.commit_index for n in survivors)
    for index in range(max(1, committed_prefix - 100), committed_prefix + 1):
        records = {
            str(n.log.entry_at(index).command)
            for n in survivors
            if n.log.has_index(index)
        }
        assert len(records) <= 1, f"log divergence at {index}"


def test_chaos_service_with_resilience_manager_survives_crash_storm():
    """A 4-process service with the resilience manager; three staggered
    process crashes (each recovered onto a spare).  At the end, all data
    written before each crash's last checkpoint is present, and the
    group view matches the live processes."""
    cluster = Cluster(seed=303)
    pfs = ParallelFileSystem()
    spec = ServiceSpec(
        name="kv",
        processes=[kv_process(f"kv{i}", f"n{i}") for i in range(4)],
        group="kv-g",
        swim=SWIM,
    )
    service = DynamicService.deploy(cluster, spec, pfs=pfs)
    spares = [f"spare{i}" for i in range(4)]
    manager = ResilienceManager(
        service, checkpoint_interval=1.5,
        allocate_node=lambda: spares.pop(0) if spares else None,
    )
    manager.start()

    app = service.control
    yokan = YokanClient(app)

    def writer(proc_name, count):
        db = yokan.make_handle(service.processes[proc_name].address, 1)

        def run():
            for i in range(count):
                try:
                    yield from db.put(f"{proc_name}-k{i}", f"v{i}")
                except Exception:
                    return
                yield UltSleep(0.02)

        return run()

    for i in range(4):
        cluster.spawn(app, writer(f"kv{i}", 200))

    cluster.faults.kill_process_at(4.0, service.processes["kv1"].margo.process)
    cluster.faults.kill_process_at(9.0, service.processes["kv2"].margo.process)
    cluster.run(until=60.0)
    manager.stop()

    assert len(manager.recoveries) == 2
    recovered_names = {r.failed_process for r in manager.recoveries}
    assert recovered_names == {"kv1", "kv2"}
    # All service processes are live and the group converged.
    live = [p for p in service.processes.values() if p.alive]
    assert len(live) == 4
    assert service.view().size == 4
    # Each recovered provider holds a full checkpoint's worth of data.
    for recovery in manager.recoveries:
        replacement = service.processes[recovery.replacement_process]
        restored = [
            r for r in replacement.bedrock.records.values()
            if r.type_name == "yokan"
        ]
        assert restored, recovery
        assert restored[0].instance.backend.count() > 0


def test_chaos_swim_group_under_loss_and_churn():
    """A 10-member group with 5% message loss, joins, leaves, and
    crashes: views must converge to the true membership at the end,
    with zero false positives among stable members."""
    cluster = Cluster(seed=304)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(10)]
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    cluster.run(until=2.0)
    cluster.faults.set_message_loss(0.05)

    # Churn: kill two, one leaves voluntarily.
    cluster.faults.kill_process_at(4.0, margos[7].process)
    cluster.faults.kill_process_at(10.0, margos[8].process)

    def leaver():
        yield UltSleep(7.0)
        yield from groups[9].leave()

    cluster.spawn(margos[9], leaver())

    cluster.run(until=90.0)
    cluster.faults.set_message_loss(0.0)
    cluster.run(until=120.0)

    stable = groups[:7]
    expected = {m.address for m in margos[:7]}
    for group in stable:
        assert set(group.view.members) == expected, group.margo.address
    assert len({g.view_hash for g in stable}) == 1
