"""Partition safety: MCH060 cross-component mutations + allowlist."""

import pytest

from interproc_util import fixture_path, line_of, parse_fixture

from repro.analysis.interproc import run_interproc
from repro.analysis.interproc.partition import (
    AllowlistError,
    component_of,
    parse_allowlist,
)


def _mch060(allowlist_text=None):
    findings, _ = run_interproc(
        parse_fixture("parta", "partb"),
        select=["MCH060"],
        allowlist_text=allowlist_text,
    )
    return findings


def test_component_of_granularity():
    assert component_of("repro.yokan.provider") == "repro.yokan"
    assert component_of("repro.yokan") == "repro.yokan"
    assert component_of("repro") == "repro"
    assert component_of("parta.writer") == "parta"


def test_cross_component_writes_flagged():
    findings = _mch060()
    writer = fixture_path("parta", "writer.py")
    assert all(f.path == writer for f in findings)
    lines = {f.line for f in findings}
    assert lines == {
        line_of(writer, "state.COUNTER = 99"),
        line_of(writer, 'REGISTRY["key"]'),
        line_of(writer, "ITEMS.append(1)"),
        line_of(writer, "Model.cache = {}"),
    }
    assert any("partb.state:COUNTER" in f.message for f in findings)
    assert any("partb.models.Model:cache" in f.message for f in findings)


def test_same_component_writes_are_negative():
    findings = _mch060()
    local = fixture_path("partb", "local.py")
    assert not any(f.path == local for f in findings)


def test_allowlist_exempts_justified_targets():
    findings = _mch060(
        "partb.state:COUNTER -- intentional global epoch counter\n"
    )
    assert not any("partb.state:COUNTER" in f.message for f in findings)
    assert len(findings) == 3  # the other three writes still fire


def test_stale_allowlist_entry_flagged():
    findings = _mch060(
        "partb.state:GONE -- this target no longer exists\n"
    )
    stale = [f for f in findings if "matches no cross-component" in f.message]
    assert len(stale) == 1
    assert stale[0].path == "partition-allowlist.txt"


def test_unjustified_allowlist_entry_is_error():
    findings = _mch060("partb.state:COUNTER\n")
    assert len(findings) == 1
    assert "justification" in findings[0].message


def test_parse_allowlist():
    entries = parse_allowlist(
        "# comment\n"
        "\n"
        "mod.a:x -- because replicated at startup\n"
        "pkg.mod.Cls:y -- rebuilt by each partition\n"
    )
    assert [(e.target, e.line) for e in entries] == [
        ("mod.a:x", 3),
        ("pkg.mod.Cls:y", 4),
    ]
    with pytest.raises(AllowlistError):
        parse_allowlist("mod.a:x\n")
    with pytest.raises(AllowlistError):
        parse_allowlist("not-a-target -- justified but malformed\n")
