"""Unit tests for ULTs, pools, and execution streams."""

import pytest

from repro.margo.errors import ConfigError
from repro.margo.pool import Pool
from repro.margo.ult import (
    Compute,
    Park,
    ULT,
    UltEvent,
    UltMutex,
    UltSleep,
    UltState,
    UltYield,
    TIMED_OUT,
)
from repro.margo.xstream import XStream
from repro.sim import SimKernel


def make_rig(n_pools=1, n_xstreams=1):
    kernel = SimKernel()
    pools = [Pool(f"pool{i}") for i in range(n_pools)]
    xstreams = []
    for i in range(n_xstreams):
        xs = XStream(kernel, f"es{i}", list(pools))
        xs.start()
        xstreams.append(xs)
    return kernel, pools, xstreams


def run_ults(kernel, pool, *gens):
    ults = [ULT(g, name=f"u{i}") for i, g in enumerate(gens)]
    for ult in ults:
        pool.push(ult)
    kernel.run()
    for ult in ults:
        if ult.error:
            raise ult.error
    return [u.result for u in ults]


def test_pool_validation():
    with pytest.raises(ConfigError):
        Pool("")
    with pytest.raises(ConfigError):
        Pool("p", kind="bogus")
    with pytest.raises(ConfigError):
        Pool("p", access="bogus")
    with pytest.raises(ConfigError):
        Pool.from_json({"name": "p", "extra": 1})
    pool = Pool.from_json({"name": "p", "type": "fifo", "access": "mpmc"})
    assert pool.to_json() == {"name": "p", "type": "fifo", "access": "mpmc"}


def test_ult_requires_generator():
    with pytest.raises(TypeError):
        ULT(lambda: None)  # type: ignore[arg-type]


def test_ult_compute_advances_time_and_busies_stream():
    kernel, (pool,), (xs,) = make_rig()

    def work():
        yield Compute(1.0)
        return kernel.now

    (result,) = run_ults(kernel, pool, work())
    assert result >= 1.0
    assert xs.busy_time == pytest.approx(1.0)


def test_two_ults_one_stream_serialize_compute():
    kernel, (pool,), _ = make_rig(n_xstreams=1)
    finish_times = []

    def work(i):
        yield Compute(1.0)
        finish_times.append((i, kernel.now))

    run_ults(kernel, pool, work(0), work(1))
    # Single stream: second ULT cannot start computing until first yields.
    assert finish_times[1][1] >= 2.0


def test_two_ults_two_streams_run_in_parallel():
    kernel, (pool,), _ = make_rig(n_xstreams=2)
    finish_times = []

    def work(i):
        yield Compute(1.0)
        finish_times.append((i, kernel.now))

    run_ults(kernel, pool, work(0), work(1))
    assert max(t for _, t in finish_times) < 1.5  # ran concurrently


def test_ult_yield_interleaves():
    kernel, (pool,), _ = make_rig(n_xstreams=1)
    trace = []

    def work(tag):
        for _ in range(3):
            trace.append(tag)
            yield UltYield()

    run_ults(kernel, pool, work("a"), work("b"))
    assert trace == ["a", "b", "a", "b", "a", "b"]


def test_ult_sleep_releases_stream():
    kernel, (pool,), (xs,) = make_rig()
    trace = []

    def sleeper():
        yield UltSleep(10.0)
        trace.append(("sleeper", kernel.now))

    def worker():
        yield Compute(1.0)
        trace.append(("worker", kernel.now))

    run_ults(kernel, pool, sleeper(), worker())
    # worker completed during sleeper's sleep -> sleep released the stream
    assert trace[0][0] == "worker"
    assert trace[0][1] < 2.0


def test_park_and_set_event():
    kernel, (pool,), _ = make_rig()
    evt = UltEvent(kernel)

    def waiter():
        value = yield Park(evt, None)
        return value

    def setter():
        yield Compute(1.0)
        evt.set("payload")

    results = run_ults(kernel, pool, waiter(), setter())
    assert results[0] == "payload"


def test_park_timeout():
    kernel, (pool,), _ = make_rig()
    evt = UltEvent(kernel)

    def waiter():
        value = yield Park(evt, 2.0)
        return value

    (result, ) = run_ults(kernel, pool, waiter())
    assert result is TIMED_OUT


def test_park_on_set_event_resumes():
    kernel, (pool,), _ = make_rig()
    evt = UltEvent(kernel)
    evt.set(7)

    def waiter():
        value = yield Park(evt, None)
        return value

    (result,) = run_ults(kernel, pool, waiter())
    assert result == 7


def test_stale_timeout_does_not_disturb_later_parks():
    kernel, (pool,), _ = make_rig()
    evt1 = UltEvent(kernel)
    evt2 = UltEvent(kernel)
    kernel.schedule(0.5, lambda: evt1.set("first"))
    kernel.schedule(5.0, lambda: evt2.set("second"))

    def waiter():
        a = yield Park(evt1, 10.0)  # resolves at 0.5; timeout at 10 must not misfire
        b = yield Park(evt2, None)  # parked when the stale timer fires
        return (a, b)

    (result,) = run_ults(kernel, pool, waiter())
    assert result == ("first", "second")


def test_ult_error_recorded():
    kernel, (pool,), _ = make_rig()

    def bad():
        yield Compute(0.1)
        raise RuntimeError("nope")

    ult = ULT(bad())
    pool.push(ult)
    kernel.run()
    assert ult.state == UltState.DONE
    assert isinstance(ult.error, RuntimeError)


def test_unsupported_ult_command_becomes_error():
    kernel, (pool,), _ = make_rig()

    def bad():
        yield "garbage"

    ult = ULT(bad())
    pool.push(ult)
    kernel.run()
    assert isinstance(ult.error, TypeError)


def test_on_finish_callbacks_fire():
    kernel, (pool,), _ = make_rig()
    seen = []

    def work():
        yield Compute(0.1)
        return 5

    ult = ULT(work())
    ult.on_finish.append(lambda u: seen.append(u.result))
    pool.push(ult)
    kernel.run()
    assert seen == [5]


def test_mutex_mutual_exclusion_and_fifo():
    kernel, (pool,), _ = make_rig(n_xstreams=2)
    mutex = UltMutex(kernel)
    trace = []

    def critical(tag):
        yield from mutex.acquire()
        trace.append(f"{tag}-in")
        yield Compute(1.0)
        trace.append(f"{tag}-out")
        mutex.release()

    run_ults(kernel, pool, critical("a"), critical("b"), critical("c"))
    # No interleaving inside the critical section.
    for i in range(0, len(trace), 2):
        assert trace[i].split("-")[0] == trace[i + 1].split("-")[0]


def test_mutex_release_unlocked_raises():
    kernel = SimKernel()
    with pytest.raises(RuntimeError):
        UltMutex(kernel).release()


def test_xstream_priority_order_of_pools():
    kernel = SimKernel()
    high = Pool("high")
    low = Pool("low")
    xs = XStream(kernel, "es", [high, low])
    xs.start()
    trace = []

    def work(tag):
        trace.append(tag)
        yield Compute(0.1)

    low.push(ULT(work("low1")))
    low.push(ULT(work("low2")))
    high.push(ULT(work("high1")))
    kernel.run()
    # "basic" scheduler drains higher-priority pools first at each pick.
    assert trace[0] == "low1" or trace[0] == "high1"
    assert "high1" in trace[:2]


def test_xstream_requires_pool():
    kernel = SimKernel()
    with pytest.raises(ConfigError):
        XStream(kernel, "es", [])


def test_xstream_cannot_remove_last_pool():
    kernel = SimKernel()
    pool = Pool("p")
    xs = XStream(kernel, "es", [pool])
    with pytest.raises(ConfigError):
        xs.remove_pool(pool)


def test_xstream_stop_detaches_pools():
    kernel = SimKernel()
    pool = Pool("p")
    xs = XStream(kernel, "es", [pool])
    xs.start()
    xs.stop()
    assert pool.xstreams == ()
    kernel.run()


def test_pool_counters():
    kernel, (pool,), _ = make_rig()

    def work():
        yield Compute(0.1)

    run_ults(kernel, pool, work(), work())
    assert pool.total_pushed == 2
    assert pool.total_popped == 2
    assert pool.size == 0
