"""mochi-xray -> ReconfigurationController, end to end.

Acceptance scenario (ISSUE 10): a service runs with a deliberately
under-provisioned pool; the controller reads the xray plane's what-if
ranking over Bedrock ``get_attribution``, applies the top-ranked
``add_xstream`` action, and on the next cycle records the *realized*
p99 improvement next to the prediction.  The realized improvement must
be at least ``REALIZATION_FACTOR`` of the predicted one -- the factor
documented in DESIGN.md section 12 (the prediction is conservative for
queueing bottlenecks, so the realized win is usually larger).
"""

import json

import pytest

from repro import Cluster
from repro.core import (
    DynamicService,
    ProcessSpec,
    ReconfigurationController,
    ServiceSpec,
)
from repro.margo.ult import Compute, UltSleep

#: Documented lower bound on realized/predicted improvement (DESIGN.md
#: section 12): the what-if model ignores second-order queue draining,
#: so realized improvements land at or above roughly half the
#: prediction; below this the prediction would be misleading.
REALIZATION_FACTOR = 0.25

OBS = {
    "tracing": False,
    "profiling": True,
    "profile_window": 0.05,
    "xray": True,
}

SRV_MARGO = {
    "argobots": {
        "pools": [{"name": "__primary__"}, {"name": "hot"}],
        "xstreams": [
            {"name": "__primary__", "scheduler": {"pools": ["__primary__"]}},
            {"name": "hot_es", "scheduler": {"pools": ["hot"]}},
        ],
    },
    "observability": dict(OBS),
}


def deploy(cluster):
    spec = ServiceSpec(
        name="xsvc",
        processes=[ProcessSpec(name="srv", node="n0", config={"margo": SRV_MARGO})],
    )
    service = DynamicService.deploy(cluster, spec)
    margo = service.processes["srv"].margo

    def handler(ctx):
        yield Compute(30e-6)
        return ctx.args

    margo.register("work", handler, pool="hot")
    return service, margo


def burst_load(cluster, client, address, stop):
    """Bursts of 10 concurrent RPCs every 1 ms: within a burst the
    single hot_es xstream serializes the handlers, so tail requests
    queue -- the injected sched bottleneck."""

    def request(tag):
        yield from client.forward(address, "work", tag)

    def driver():
        while not stop["flag"]:
            for i in range(10):
                cluster.spawn(client, request(i))
            yield UltSleep(1e-3)

    return driver


def run_scenario(seed=23, cycles=6):
    cluster = Cluster(seed=seed)
    service, margo = deploy(cluster)
    client = cluster.add_margo("cli", node="n0", config={"observability": dict(OBS)})
    stop = {"flag": False}
    cluster.spawn(client, burst_load(cluster, client, margo.address, stop)())
    controller = ReconfigurationController(
        service,
        period=0.1,
        smoothing=2,
        apply_xray_actions=True,
        xray_min_improvement=0.05,
    )
    cluster.spawn(service.control, controller.run(cycles=cycles))
    cluster.run(until=0.1 * cycles + 0.05)
    stop["flag"] = True
    cluster.run(until=cluster.now + 0.01)
    return cluster, service, controller


def test_controller_applies_top_action_and_records_realized():
    cluster, service, controller = run_scenario()
    decisions = list(controller.decisions)
    xray_docs = [d["xray"] for d in decisions if d.get("xray")]
    assert xray_docs, "controller never saw an xray window"

    # The ranking blames the under-provisioned pool.
    tops = [doc["top_action"] for doc in xray_docs if doc["top_action"]]
    assert tops
    first = tops[0]
    assert first["action"] == "add_xstream"
    assert first["target"] == "hot"
    assert first["process"] == "srv"
    assert first["predicted_improvement"] >= 0.05

    # Exactly one application (a pending prediction blocks re-applying
    # until it resolves, and the resolved bottleneck stops ranking #1).
    applied = [d for d in decisions if d.get("xray", {}) and "applied" in d["xray"]]
    assert controller.xray_actions_applied >= 1
    assert applied
    doc = applied[0]["xray"]
    assert doc["applied"]["pool"] == "hot"
    # The xstream really exists on the server now.
    assert doc["applied"]["name"] in service.processes["srv"].margo.xstreams

    # Predicted-vs-realized delta recorded on the SAME decision.
    assert "realized_p99" in doc
    assert doc["realized_p99"] > 0
    predicted = doc["top_action"]["predicted_improvement"]
    realized = doc["realized_improvement"]
    assert realized >= REALIZATION_FACTOR * predicted, (
        f"realized {realized:.3f} below documented factor "
        f"{REALIZATION_FACTOR} of predicted {predicted:.3f}"
    )


def test_controller_without_apply_only_recommends():
    cluster = Cluster(seed=23)
    service, margo = deploy(cluster)
    client = cluster.add_margo("cli", node="n0", config={"observability": dict(OBS)})
    stop = {"flag": False}
    cluster.spawn(client, burst_load(cluster, client, margo.address, stop)())
    controller = ReconfigurationController(service, period=0.1, smoothing=2)
    cluster.spawn(service.control, controller.run(cycles=3))
    cluster.run(until=0.4)
    stop["flag"] = True
    cluster.run(until=cluster.now + 0.01)
    docs = [d["xray"] for d in controller.decisions if d.get("xray")]
    assert docs
    assert any(doc["top_action"] for doc in docs)
    assert controller.xray_actions_applied == 0
    assert all("applied" not in doc for doc in docs)
    # Only the one baked-in xstream serves the hot pool.
    assert sorted(service.processes["srv"].margo.xstreams) == [
        "__primary__",
        "hot_es",
    ]


def test_decision_trace_with_xray_is_deterministic():
    _c1, _s1, first = run_scenario(seed=29, cycles=4)
    _c2, _s2, second = run_scenario(seed=29, cycles=4)
    a = json.dumps(list(first.decisions), sort_keys=True)
    b = json.dumps(list(second.decisions), sort_keys=True)
    assert a == b


def test_no_xray_processes_leaves_decisions_unchanged():
    cluster = Cluster(seed=5)
    spec = ServiceSpec(
        name="plain",
        processes=[
            ProcessSpec(
                name="p0",
                node="n0",
                config={
                    "margo": {
                        "observability": {"profiling": True, "profile_window": 0.1}
                    }
                },
            )
        ],
    )
    service = DynamicService.deploy(cluster, spec)
    controller = ReconfigurationController(service, period=0.1, smoothing=1)
    cluster.spawn(service.control, controller.run(cycles=2))
    cluster.run(until=0.5)
    assert all(d["xray"] is None for d in controller.decisions)
