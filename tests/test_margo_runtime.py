"""Integration tests for the Margo runtime: RPC paths, config, reconfiguration."""

import pytest

from repro import Cluster
from repro.margo import (
    Compute,
    ConfigError,
    DuplicateNameError,
    FinalizedError,
    MargoConfig,
    NoSuchPoolError,
    NoSuchRpcError,
    PoolInUseError,
    RpcFailedError,
    RpcTimeoutError,
)
from repro.mercury import NULL_PROVIDER


@pytest.fixture()
def cluster():
    return Cluster(seed=1)


def two_procs(cluster, server_config=None):
    server = cluster.add_margo("server", node="n0", config=server_config)
    client = cluster.add_margo("client", node="n1")
    return server, client


# ----------------------------------------------------------------------
# basic RPC
# ----------------------------------------------------------------------
def test_echo_rpc(cluster):
    server, client = two_procs(cluster)
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", {"k": "v"}))

    assert cluster.run_ult(client, driver()) == {"k": "v"}


def test_rpc_to_self(cluster):
    server = cluster.add_margo("solo", node="n0")
    server.register("double", lambda ctx: ctx.args * 2)

    def driver():
        return (yield from server.forward(server.address, "double", 21))

    assert cluster.run_ult(server, driver()) == 42


def test_generator_handler_with_compute(cluster):
    server, client = two_procs(cluster)

    def handler(ctx):
        yield Compute(1e-3)
        return ctx.args + 1

    server.register("inc", handler)

    def driver():
        return (yield from client.forward(server.address, "inc", 1))

    assert cluster.run_ult(client, driver()) == 2
    assert cluster.now > 1e-3


def test_provider_id_dispatch(cluster):
    server, client = two_procs(cluster)
    server.register("get", lambda ctx: "from-1", provider_id=1)
    server.register("get", lambda ctx: "from-2", provider_id=2)

    def driver():
        a = yield from client.forward(server.address, "get", provider_id=1)
        b = yield from client.forward(server.address, "get", provider_id=2)
        return (a, b)

    assert cluster.run_ult(client, driver()) == ("from-1", "from-2")


def test_no_such_rpc(cluster):
    server, client = two_procs(cluster)
    server.register("real", lambda ctx: 1, provider_id=1)

    def driver():
        yield from client.forward(server.address, "real", provider_id=9)

    with pytest.raises(NoSuchRpcError):
        cluster.run_ult(client, driver())


def test_handler_exception_becomes_rpc_failed(cluster):
    server, client = two_procs(cluster)

    def bad(ctx):
        raise ValueError("intentional")

    server.register("bad", bad)

    def driver():
        yield from client.forward(server.address, "bad")

    with pytest.raises(RpcFailedError, match="intentional"):
        cluster.run_ult(client, driver())


def test_rpc_timeout_on_dead_server(cluster):
    server, client = two_procs(cluster)
    server.register("echo", lambda ctx: ctx.args)
    cluster.faults.kill_process(server.process)

    def driver():
        yield from client.forward(server.address, "echo", 1, timeout=0.5)

    with pytest.raises(RpcTimeoutError):
        cluster.run_ult(client, driver())
    assert cluster.now >= 0.5


def test_rpc_to_unknown_address_fails_fast_without_timeout(cluster):
    _, client = two_procs(cluster)

    def driver():
        yield from client.forward("na+ofi://nowhere/x", "echo", 1)

    with pytest.raises(Exception, match="unknown destination"):
        cluster.run_ult(client, driver())


def test_duplicate_registration_rejected(cluster):
    server, _ = two_procs(cluster)
    server.register("echo", lambda ctx: 1, provider_id=3)
    with pytest.raises(DuplicateNameError):
        server.register("echo", lambda ctx: 2, provider_id=3)
    server.deregister("echo", provider_id=3)
    server.register("echo", lambda ctx: 2, provider_id=3)  # ok after deregister


def test_deregister_unknown_raises(cluster):
    server, _ = two_procs(cluster)
    with pytest.raises(NoSuchRpcError):
        server.deregister("ghost")


def test_nested_rpc(cluster):
    a = cluster.add_margo("a", node="n0")
    b = cluster.add_margo("b", node="n1")
    c = cluster.add_margo("c", node="n2")
    c.register("leaf", lambda ctx: ctx.args * 10)

    def relay(ctx):
        result = yield from b.forward(c.address, "leaf", ctx.args)
        return result + 1

    b.register("relay", relay)

    def driver():
        return (yield from a.forward(b.address, "relay", 4))

    assert cluster.run_ult(a, driver()) == 41


def test_concurrent_rpcs_interleave(cluster):
    server, client = two_procs(cluster)

    def slow(ctx):
        yield Compute(1.0)
        return ctx.args

    server.register("slow", slow)
    results = []

    def one(i):
        value = yield from client.forward(server.address, "slow", i)
        results.append((value, cluster.now))

    for i in range(3):
        cluster.spawn(client, one(i))
    cluster.run()
    assert sorted(r for r, _ in results) == [0, 1, 2]
    # Single default xstream on server: handlers serialize, so the last
    # finishes around 3s, the first around 1s.
    finish_times = sorted(t for _, t in results)
    assert finish_times[0] < 1.5
    assert finish_times[-1] > 2.5


def test_bulk_transfer_cost_and_rdma(cluster):
    server, client = two_procs(cluster)
    size = 1 << 24  # 16 MiB

    def driver():
        duration = yield from client.bulk_transfer(server.address, size)
        return duration

    duration = cluster.run_ult(client, driver())
    expected = cluster.network.transfer_time(
        client.process, server.process, size, bulk=True
    )
    assert duration == pytest.approx(expected)


def test_bulk_transfer_to_dead_peer_raises(cluster):
    server, client = two_procs(cluster)
    cluster.faults.kill_process(server.process)

    def driver():
        yield from client.bulk_transfer(server.address, 100)

    with pytest.raises(Exception, match="dead"):
        cluster.run_ult(client, driver())


# ----------------------------------------------------------------------
# configuration (Listing 2)
# ----------------------------------------------------------------------
LISTING2 = {
    "argobots": {
        "pools": [
            {"name": "MyPoolX", "type": "fifo_wait", "access": "mpmc"},
            {"name": "MyPoolZ", "type": "fifo_wait", "access": "mpmc"},
        ],
        "xstreams": [
            {"name": "MyES0", "scheduler": {"type": "basic", "pools": ["MyPoolX"]}},
            {"name": "MyES1", "scheduler": {"type": "basic", "pools": ["MyPoolZ"]}},
        ],
    },
    "progress_pool": "MyPoolZ",
    "rpc_pool": "MyPoolX",
}


def test_listing2_config_accepted(cluster):
    server = cluster.add_margo("server", node="n0", config=LISTING2)
    assert set(server.pools) == {"MyPoolX", "MyPoolZ"}
    assert set(server.xstreams) == {"MyES0", "MyES1"}
    doc = server.get_config()
    names = {p["name"] for p in doc["argobots"]["pools"]}
    assert names == {"MyPoolX", "MyPoolZ"}


def test_config_validation_errors():
    with pytest.raises(ConfigError):
        MargoConfig.from_json({"argobots": {"pools": [{"name": "a"}, {"name": "a"}]}})
    with pytest.raises(ConfigError):
        MargoConfig.from_json(
            {"argobots": {"pools": [{"name": "a"}],
                          "xstreams": [{"name": "x", "scheduler": {"pools": ["ghost"]}}]}}
        )
    with pytest.raises(ConfigError):
        MargoConfig.from_json({"bogus_key": 1})
    with pytest.raises(ConfigError):
        MargoConfig.from_json("not json at all {")
    # Unserved pool.
    with pytest.raises(ConfigError):
        MargoConfig.from_json(
            {"argobots": {"pools": [{"name": "a"}, {"name": "b"}],
                          "xstreams": [{"name": "x", "scheduler": {"pools": ["a"]}}]}}
        )


def test_config_json_string_roundtrip(cluster):
    import json

    server = cluster.add_margo("server", node="n0", config=json.dumps(LISTING2))
    assert "MyPoolX" in server.pools


# ----------------------------------------------------------------------
# online reconfiguration (paper section 5)
# ----------------------------------------------------------------------
def test_add_and_find_pool(cluster):
    server, _ = two_procs(cluster)
    server.add_pool({"name": "extra"})
    assert server.find_pool("extra").name == "extra"
    with pytest.raises(DuplicateNameError):
        server.add_pool({"name": "extra"})


def test_remove_unused_pool(cluster):
    server, _ = two_procs(cluster)
    server.add_pool({"name": "extra"})
    server.remove_pool("extra")
    with pytest.raises(NoSuchPoolError):
        server.find_pool("extra")


def test_remove_pool_in_use_by_xstream_rejected(cluster):
    server = cluster.add_margo("server", node="n0", config=LISTING2)
    with pytest.raises(PoolInUseError):
        server.remove_pool("MyPoolX")


def test_remove_pool_claimed_by_provider_rejected(cluster):
    server, _ = two_procs(cluster)
    server.add_pool({"name": "extra"})
    server.claim_pool("extra", "providerA")
    with pytest.raises(PoolInUseError):
        server.remove_pool("extra")
    server.release_pool("extra", "providerA")
    server.remove_pool("extra")


def test_remove_pool_with_registered_rpc_rejected(cluster):
    server, _ = two_procs(cluster)
    pool = server.add_pool({"name": "extra"})
    server.add_xstream({"name": "es-extra", "scheduler": {"pools": ["extra"]}})
    server.register("work", lambda ctx: 1, pool="extra")
    server.remove_xstream("es-extra") if False else None
    with pytest.raises(PoolInUseError):
        server.remove_pool("extra")


def test_add_xstream_serves_new_pool(cluster):
    server, client = two_procs(cluster)
    server.add_pool({"name": "fast"})
    server.add_xstream({"name": "es-fast", "scheduler": {"type": "basic", "pools": ["fast"]}})
    server.register("fastrpc", lambda ctx: "ok", pool="fast")

    def driver():
        return (yield from client.forward(server.address, "fastrpc"))

    assert cluster.run_ult(client, driver()) == "ok"


def test_remove_xstream_orphaning_used_pool_rejected(cluster):
    server, _ = two_procs(cluster)
    server.add_pool({"name": "p2"})
    server.add_xstream({"name": "es2", "scheduler": {"pools": ["p2"]}})
    server.register("r", lambda ctx: 1, pool="p2")
    with pytest.raises(PoolInUseError):
        server.remove_xstream("es2")


def test_remove_idle_xstream_and_pool(cluster):
    server, _ = two_procs(cluster)
    server.add_pool({"name": "p2"})
    server.add_xstream({"name": "es2", "scheduler": {"pools": ["p2"]}})
    server.remove_xstream("es2")
    server.remove_pool("p2")
    assert "es2" not in server.xstreams
    assert "p2" not in server.pools


def test_reconfigure_while_serving(cluster):
    """Adding pools/xstreams mid-stream must not disturb in-flight RPCs."""
    server, client = two_procs(cluster)

    def slow(ctx):
        yield Compute(1.0)
        return ctx.args

    server.register("slow", slow)
    results = []

    def caller():
        value = yield from client.forward(server.address, "slow", 7)
        results.append(value)

    cluster.spawn(client, caller())
    cluster.kernel.schedule(0.5, lambda: server.add_pool({"name": "late"}))
    cluster.kernel.schedule(
        0.6, lambda: server.add_xstream({"name": "es-late", "scheduler": {"pools": ["late"]}})
    )
    cluster.run()
    assert results == [7]
    assert "late" in server.pools


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_finalized_instance_rejects_operations(cluster):
    server, client = two_procs(cluster)
    server.shutdown()
    with pytest.raises(FinalizedError):
        server.register("x", lambda ctx: 1)
    with pytest.raises(FinalizedError):
        server.spawn_ult((x for x in []))


def test_process_death_finalizes_margo(cluster):
    server, _ = two_procs(cluster)
    cluster.faults.kill_process(server.process)
    assert server.finalized


def test_snapshot_shape(cluster):
    server, _ = two_procs(cluster)
    snap = server.snapshot()
    assert set(snap) == {"time", "inflight_outgoing", "inflight_incoming", "pools"}
    assert "__primary__" in snap["pools"]


def test_registered_rpcs_listing(cluster):
    server, _ = two_procs(cluster)
    server.register("b", lambda ctx: 1, provider_id=2)
    server.register("a", lambda ctx: 1, provider_id=1)
    assert server.registered_rpcs() == [("a", 1), ("b", 2)]


# ----------------------------------------------------------------------
# monitor fast path: hook caching, zero-cost when disabled
# ----------------------------------------------------------------------
def test_rpc_without_monitors_fires_no_hooks(cluster):
    server, client = two_procs(cluster)
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", 1))

    assert cluster.run_ult(client, driver()) == 1
    assert client._hook_fns("on_forward_start") == ()
    assert server._hook_fns("on_request_received") == ()


def test_monitor_attached_after_traffic_sees_later_rpcs(cluster):
    """The per-hook cache must be invalidated by add/remove_monitor (and
    by direct list mutation, its backstop)."""
    server, client = two_procs(cluster)
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", 1))

    cluster.run_ult(client, driver())  # warms the (empty) hook cache

    class Recorder:
        def __init__(self):
            self.starts = 0

        def on_forward_start(self, **kwargs):
            self.starts += 1

    recorder = Recorder()
    client.add_monitor(recorder)
    cluster.run_ult(client, driver())
    assert recorder.starts == 1

    client.remove_monitor(recorder)
    cluster.run_ult(client, driver())
    assert recorder.starts == 1

    # Backstop: append to .monitors directly, bypassing add_monitor.
    client.monitors.append(recorder)
    cluster.run_ult(client, driver())
    assert recorder.starts == 2

    # Backstop, same-length case: replace the element in place. The
    # cache keys on monitor identity, not list length, so the stale
    # bound method must stop firing and the new one must start.
    replacement = Recorder()
    client.monitors[0] = replacement
    cluster.run_ult(client, driver())
    assert recorder.starts == 2
    assert replacement.starts == 1


def test_monitorless_rpc_timing_unchanged_by_hook_cache(cluster):
    """Simulated completion time must be identical whether the hook
    cache is warm or cold -- no hidden cost on the disabled path."""
    server, client = two_procs(cluster)
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        yield from client.forward(server.address, "echo", 1)
        return client.kernel.now

    t_cold = cluster.run_ult(client, driver())
    cluster2 = Cluster(seed=1)
    server2, client2 = two_procs(cluster2)
    server2.register("echo", lambda ctx: ctx.args)

    def driver2():
        yield from client2.forward(server2.address, "echo", 1)
        return client2.kernel.now

    client2._hook_fns("on_forward_start")  # pre-warm
    assert cluster2.run_ult(client2, driver2()) == t_cold
