"""Fault injection x sanitizers: crash exemptions and seeded race fixtures.

Two contracts meet here:

* the classic sanitizer's MCH012 check exempts *killed* processes --
  dropping in-flight handlers is exactly what a crash does, only a
  healthy finalize with pending handlers is a bug;
* the race layer must stay deterministic under fault schedules: a seeded
  racy fixture yields the same MCH03x report every run, and a clean
  fixture is never flagged.
"""

import pytest

from repro import Cluster
from repro.analysis import sanitize
from repro.analysis.race import hooks
from repro.analysis.sanitize import SanitizerError
from repro.margo import RpcError
from repro.margo.ult import UltEvent, UltSleep
from repro.storage import LocalStore


@pytest.fixture()
def strict():
    sanitize.reset()
    sanitize.enable(strict=True)
    yield sanitize
    sanitize.disable()


@pytest.fixture()
def race():
    hooks.disable()
    hooks.reset()
    hooks.enable()
    yield hooks
    hooks.disable()
    hooks.reset()


# ----------------------------------------------------------------------
# FaultInjector mechanics
# ----------------------------------------------------------------------
def test_kill_process_is_transient_and_idempotent():
    cluster = Cluster(seed=40)
    margo = cluster.add_margo("victim", node="n0")
    store = LocalStore(cluster.node("n0"))
    store.write("survives", b"data")
    cluster.faults.kill_process(margo.process)
    cluster.faults.kill_process(margo.process)  # second kill: no-op
    assert not margo.process.alive
    assert cluster.node("n0").alive
    assert store.read("survives") == b"data"  # node-local data survives
    kills = [r for r in cluster.faults.history if r.kind == "process"]
    assert [r.target for r in kills] == ["victim"]


def test_kill_node_is_permanent():
    cluster = Cluster(seed=41)
    margo = cluster.add_margo("victim", node="n0")
    store = LocalStore(cluster.node("n0"))
    store.write("doomed", b"data")
    cluster.faults.kill_node(cluster.node("n0"))
    assert not cluster.node("n0").alive
    assert not margo.process.alive  # processes die with the node
    with pytest.raises(Exception):
        store.read("doomed")  # local data is wiped
    kinds = [r.kind for r in cluster.faults.history]
    assert kinds == ["node", "process"]


def test_scheduled_kill_fires_at_simulated_time():
    cluster = Cluster(seed=42)
    margo = cluster.add_margo("victim", node="n0")
    cluster.faults.kill_process_at(0.75, margo.process)
    cluster.run(until=1.0)
    assert not margo.process.alive
    assert cluster.faults.history[0].time == pytest.approx(0.75)


def test_message_loss_probability_validated():
    cluster = Cluster(seed=43)
    with pytest.raises(ValueError):
        cluster.faults.set_message_loss(1.5)
    cluster.faults.set_message_loss(0.25)
    assert cluster.network.loss_probability == 0.25


# ----------------------------------------------------------------------
# MCH012 killed-process exemption, end to end
# ----------------------------------------------------------------------
def _slow_server(cluster):
    server = cluster.add_margo("server", node="n0")

    def slow(ctx):
        yield UltSleep(1.0)
        return ctx.args

    server.register("slow", slow)
    return server


def test_killed_process_exempt_from_pending_handler_check(strict):
    # The server dies mid-handling (fault injection); its margo shuts
    # down via on_killed with the handler still pending.  A crash
    # dropping in-flight handles is expected -- no MCH012.
    cluster = Cluster(seed=44)
    server = _slow_server(cluster)
    client = cluster.add_margo("client", node="n1")
    cluster.faults.kill_process_at(0.2, server.process)

    def driver():
        yield from client.forward(server.address, "slow", 1, timeout=0.5)

    with pytest.raises(RpcError):
        cluster.run_ult(client, driver())
    assert server.finalized  # on_killed ran margo.shutdown()
    assert strict.violations == []


def test_healthy_finalize_with_pending_handler_still_flagged(strict):
    # Same pending-handler state, but the process is alive: MCH012.
    cluster = Cluster(seed=45)
    server = cluster.add_margo("server", node="n0")
    gate = UltEvent(cluster.kernel, name="never")

    def stuck(ctx):
        yield from gate.wait(timeout=30.0)
        return ctx.args

    server.register("stuck", stuck)
    client = cluster.add_margo("client", node="n1")

    def driver():
        yield from client.forward(server.address, "stuck", 1, timeout=0.3)

    with pytest.raises(RpcError):
        cluster.run_ult(client, driver())
    with pytest.raises(SanitizerError, match="MCH012"):
        server.shutdown()
    assert strict.violations[0].rule_id == "MCH012"


# ----------------------------------------------------------------------
# seeded race fixtures: deterministic MCH03x, clean stays clean
# ----------------------------------------------------------------------
def _racy_run():
    cluster = Cluster(seed=46)
    margo = cluster.add_margo("m", node="n0")
    shared = {}
    hooks.track(shared, "fixture-state")

    def writer(tag):
        yield UltSleep(0.01)
        hooks.note_write(shared, "cell", f"writer-{tag}")
        shared["cell"] = tag

    ults = [cluster.spawn(margo, writer(i), name=f"w{i}") for i in range(2)]
    cluster.wait_ults(ults)
    return [f.to_json() for f in hooks.findings]


def test_seeded_racy_fixture_deterministic_mch03x(race):
    from repro.margo.ult import ULT

    start = ULT._counter
    first = _racy_run()
    hooks.disable()
    hooks.reset()
    hooks.enable()
    ULT._counter = start
    second = _racy_run()
    assert first == second  # same seed -> byte-identical report
    assert [f["rule_id"] for f in first] == ["MCH030"]
    assert first[0]["path"] == "race:fixture-state"


def test_clean_fixture_not_flagged_even_under_faults(race):
    # Event-ordered accesses stay clean even when a bystander process is
    # killed mid-run: fault injection must not fabricate race findings.
    cluster = Cluster(seed=47)
    margo = cluster.add_margo("m", node="n0")
    bystander = cluster.add_margo("bystander", node="n1")
    cluster.faults.kill_process_at(0.005, bystander.process)
    shared = {}
    hooks.track(shared, "fixture-state")
    event = UltEvent(cluster.kernel, name="handoff")

    def first():
        yield UltSleep(0.01)
        hooks.note_write(shared, "cell", "first")
        shared["cell"] = 1
        event.set()

    def second():
        yield from event.wait()
        hooks.note_read(shared, "cell", "second")
        return shared["cell"]

    ults = [
        cluster.spawn(margo, second(), name="s"),
        cluster.spawn(margo, first(), name="f"),
    ]
    assert cluster.wait_ults(ults) == [1, None]
    assert hooks.findings == []
