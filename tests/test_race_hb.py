"""mochi-race happens-before engine: MCH030/MCH031 on live ULTs."""

import pytest

from repro import Cluster
from repro.analysis.race import hooks
from repro.analysis.race.hb import Ctx, HBState
from repro.margo.ult import UltEvent, UltMutex, UltSleep


@pytest.fixture()
def race():
    hooks.disable()
    hooks.reset()
    hooks.enable()
    yield hooks
    hooks.disable()
    hooks.reset()


def make_rig():
    cluster = Cluster(seed=13)
    margo = cluster.add_margo("m", node="n0")
    return cluster, margo


def rule_ids(race):
    return [f.rule_id for f in race.findings]


# ----------------------------------------------------------------------
# the Ctx / HBState primitives
# ----------------------------------------------------------------------
def test_publish_snapshots_then_advances():
    state = HBState()
    ctx = Ctx(label="a")
    state.ensure_tid(ctx)
    snap = ctx.publish()
    assert snap[ctx.tid] == 1
    assert ctx.clock[ctx.tid] == 2  # later accesses are after the snapshot


def test_root_epoch_is_constant():
    # The host driver is single-threaded; its component never advances,
    # which is what orders all pre-run root writes before the whole run.
    state = HBState()
    snap = state.root.publish()
    assert snap == {"root": 1}
    assert state.root.clock["root"] == 1


def test_tids_assigned_lazily():
    state = HBState()
    ctx = Ctx(label="idle")
    assert ctx.tid is None  # no tracked access yet: costs no clock space
    assert state.ensure_tid(ctx) == "c1"
    assert state.ensure_tid(ctx) == "c1"  # idempotent


def test_barrier_orders_root_after_run():
    state = HBState()
    ctx = Ctx(label="worker")
    state.ensure_tid(ctx)
    ctx.clock[ctx.tid] = 7
    state.ult_ctx[id(object())] = (object(), ctx)
    state.barrier_into_root()
    assert state.root.clock[ctx.tid] == 7


# ----------------------------------------------------------------------
# MCH030: unordered writes
# ----------------------------------------------------------------------
def test_unordered_writes_flagged(race):
    cluster, margo = make_rig()
    shared = {}
    race.track(shared, "shared-dict")

    def writer(tag):
        yield UltSleep(0.01)
        race.note_write(shared, "k", f"writer-{tag}")
        shared["k"] = tag

    ults = [cluster.spawn(margo, writer(i), name=f"w{i}") for i in range(2)]
    cluster.wait_ults(ults)
    assert rule_ids(race) == ["MCH030"]
    finding = race.findings[0]
    assert finding.path == "race:shared-dict"
    assert finding.source == "runtime"
    assert "writer-0" in finding.message and "writer-1" in finding.message


def test_mutex_ordered_writes_clean(race):
    cluster, margo = make_rig()
    shared = {}
    race.track(shared, "shared-dict")
    mutex = UltMutex(cluster.kernel, name="guard")

    def writer(tag):
        yield UltSleep(0.01)
        yield from mutex.acquire()
        race.note_write(shared, "k", f"writer-{tag}")
        shared["k"] = tag
        mutex.release()

    ults = [cluster.spawn(margo, writer(i), name=f"w{i}") for i in range(2)]
    cluster.wait_ults(ults)
    assert race.findings == []


def test_event_edge_orders_writes(race):
    cluster, margo = make_rig()
    shared = {}
    race.track(shared, "shared-dict")
    event = UltEvent(cluster.kernel, name="done")

    def first():
        race.note_write(shared, "k", "first")
        shared["k"] = 1
        event.set()
        yield UltSleep(0.0)

    def second():
        yield from event.wait()
        race.note_write(shared, "k", "second")
        shared["k"] = 2

    ults = [
        cluster.spawn(margo, second(), name="second"),
        cluster.spawn(margo, first(), name="first"),
    ]
    cluster.wait_ults(ults)
    assert race.findings == []


def test_disjoint_keys_clean(race):
    cluster, margo = make_rig()
    shared = {}
    race.track(shared, "shared-dict")

    def writer(tag):
        yield UltSleep(0.01)
        race.note_write(shared, f"k{tag}", f"writer-{tag}")
        shared[f"k{tag}"] = tag

    ults = [cluster.spawn(margo, writer(i), name=f"w{i}") for i in range(2)]
    cluster.wait_ults(ults)
    assert race.findings == []


# ----------------------------------------------------------------------
# MCH031: unordered read/write
# ----------------------------------------------------------------------
def test_unordered_read_write_flagged(race):
    cluster, margo = make_rig()
    shared = {"k": 0}
    race.track(shared, "shared-dict")

    def writer():
        yield UltSleep(0.01)
        race.note_write(shared, "k", "writer")
        shared["k"] = 1

    def reader():
        yield UltSleep(0.01)
        race.note_read(shared, "k", "reader")
        return shared["k"]

    ults = [
        cluster.spawn(margo, reader(), name="r"),
        cluster.spawn(margo, writer(), name="w"),
    ]
    cluster.wait_ults(ults)
    assert "MCH031" in rule_ids(race)


def test_root_then_ult_is_ordered(race):
    # A host-side (root) write before the run happens-before everything
    # the run's ULTs do -- the constant root epoch encodes exactly that.
    cluster, margo = make_rig()
    shared = {}
    race.track(shared, "shared-dict")
    race.note_write(shared, "k", "host-setup")
    shared["k"] = 0

    def reader():
        yield UltSleep(0.01)
        race.note_read(shared, "k", "reader")
        return shared["k"]

    cluster.run_ult(margo, reader())
    assert race.findings == []


def test_run_end_barrier_orders_root_read(race):
    # After kernel.run returns, the host reads the final state: ordered.
    cluster, margo = make_rig()
    shared = {}
    race.track(shared, "shared-dict")

    def writer():
        yield UltSleep(0.01)
        race.note_write(shared, "k", "writer")
        shared["k"] = 1

    cluster.run_ult(margo, writer())
    race.note_read(shared, "k", "host-check")
    assert race.findings == []


def test_same_seed_reports_identically(race):
    def run_once():
        hooks.disable()
        hooks.reset()
        hooks.enable()
        cluster, margo = make_rig()
        shared = {}
        hooks.track(shared, "shared-dict")

        def writer(tag):
            yield UltSleep(0.01)
            hooks.note_write(shared, "k", f"writer-{tag}")

        ults = [cluster.spawn(margo, writer(i), name=f"w{i}") for i in range(2)]
        cluster.wait_ults(ults)
        return [f.to_json() for f in hooks.findings]

    from repro.margo.ult import ULT

    start = ULT._counter
    first = run_once()
    ULT._counter = start
    second = run_once()
    assert first == second and first  # byte-identical report, same seed
