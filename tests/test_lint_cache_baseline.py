"""Incremental cache and baseline satellites of the mochi-deps layer."""

import json
import os

from repro.analysis.baseline import (
    baseline_key,
    filter_new,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import LintCache
from repro.analysis.engine import run_lint
from repro.analysis.findings import Finding, Severity


_BAD_SOURCE = (
    "import time\n"
    "\n"
    "def handler(ctx):\n"
    "    yield Sleep(1)\n"
    "    time.sleep(1)\n"
)


def _make_tree(tmp_path):
    target = tmp_path / "pkg"
    target.mkdir()
    (target / "svc.py").write_text(_BAD_SOURCE)
    (target / "ok.py").write_text("def fine():\n    return 1\n")
    return str(target)


def test_cache_serves_identical_findings(tmp_path):
    tree = _make_tree(tmp_path)
    cache_dir = str(tmp_path / "cache")

    cold_cache = LintCache(cache_dir)
    cold = run_lint([tree], cache=cold_cache)
    assert cold_cache.misses == 2 and cold_cache.hits == 0
    assert any(f.rule_id == "MCH010" for f in cold.findings)

    warm_cache = LintCache(cache_dir)
    warm = run_lint([tree], cache=warm_cache)
    assert warm_cache.hits == 2 and warm_cache.misses == 0
    assert [f.to_json() for f in warm.findings] == [
        f.to_json() for f in cold.findings
    ]
    assert warm.stats["cache_hit_rate"] == 1.0


def test_cache_misses_on_content_change(tmp_path):
    tree = _make_tree(tmp_path)
    cache_dir = str(tmp_path / "cache")
    run_lint([tree], cache=LintCache(cache_dir))

    with open(os.path.join(tree, "ok.py"), "a") as handle:
        handle.write("\nX = 2\n")
    cache = LintCache(cache_dir)
    run_lint([tree], cache=cache)
    assert cache.hits == 1 and cache.misses == 1


def test_cache_invalidated_by_rule_selection(tmp_path):
    tree = _make_tree(tmp_path)
    cache_dir = str(tmp_path / "cache")
    run_lint([tree], cache=LintCache(cache_dir))

    # A different --select is a different rule-set signature: cold start.
    cache = LintCache(cache_dir, select=["MCH010"])
    result = run_lint([tree], select=["MCH010"], cache=cache)
    assert cache.hits == 0 and cache.misses == 2
    assert all(f.rule_id == "MCH010" for f in result.findings)


def test_cache_store_is_pruned_and_atomic(tmp_path):
    tree = _make_tree(tmp_path)
    cache_dir = str(tmp_path / "cache")
    run_lint([tree], cache=LintCache(cache_dir))
    store = json.load(open(os.path.join(cache_dir, "cache.json")))
    assert len(store["entries"]) == 2

    os.unlink(os.path.join(tree, "ok.py"))
    run_lint([tree], cache=LintCache(cache_dir))
    store = json.load(open(os.path.join(cache_dir, "cache.json")))
    assert len(store["entries"]) == 1  # stale entry pruned
    assert not [n for n in sorted(os.listdir(cache_dir)) if n.endswith(".tmp")]


def test_changed_only_still_runs_interproc_over_full_tree(tmp_path):
    # With every file unchanged per git, per-file findings vanish but the
    # whole-program layer still sees the tree.  (Outside a git checkout
    # _git_changed_files returns None and everything is linted; both
    # behaviors keep MCH014 visible.)
    tree = _make_tree(tmp_path)
    deep = tmp_path / "pkg" / "deep.py"
    deep.write_text(
        "import time\n"
        "\n"
        "def blocker():\n"
        "    time.sleep(1)\n"
        "\n"
        "def handler(ctx):\n"
        "    yield Sleep(1)\n"
        "    blocker()\n"
    )
    result = run_lint([tree], interproc=True, changed_only=True)
    assert any(f.rule_id == "MCH014" for f in result.findings)


def test_baseline_roundtrip_and_filter(tmp_path):
    findings = [
        Finding("MCH061", Severity.WARNING, "src/a.py", 10, "drops self.x"),
        Finding("MCH060", Severity.ERROR, "src/b.py", 3, "mutates m:attr"),
    ]
    path = str(tmp_path / "baseline.json")
    assert write_baseline(path, findings) == 2
    keys = load_baseline(path)
    assert {baseline_key(f) for f in findings} == keys

    # Same finding on a shifted line stays baselined; new message is new.
    moved = Finding("MCH061", Severity.WARNING, "src/a.py", 99, "drops self.x")
    fresh = Finding("MCH061", Severity.WARNING, "src/a.py", 10, "drops self.y")
    assert filter_new([moved, fresh], keys) == [fresh]


def test_meta_findings_never_baselined(tmp_path):
    parse_error = Finding("MCH090", Severity.ERROR, "src/a.py", 1, "syntax error")
    path = str(tmp_path / "baseline.json")
    assert write_baseline(path, [parse_error]) == 0
    assert filter_new([parse_error], load_baseline(path)) == [parse_error]


def test_baseline_written_deterministically(tmp_path):
    findings = [
        Finding("MCH060", Severity.ERROR, "b.py", 2, "beta"),
        Finding("MCH060", Severity.ERROR, "a.py", 9, "alpha"),
        Finding("MCH060", Severity.ERROR, "a.py", 1, "alpha"),  # dedup
    ]
    first = str(tmp_path / "one.json")
    second = str(tmp_path / "two.json")
    write_baseline(first, findings)
    write_baseline(second, list(reversed(findings)))
    assert open(first).read() == open(second).read()
