"""RPC contract checking: MCH050-MCH053 positives and negatives."""

from interproc_util import fixture_path, line_of, parse_fixture

from repro.analysis.interproc import run_interproc
from repro.analysis.interproc.callgraph import build_project
from repro.analysis.interproc.contracts import build_contracts

_CONTRACT_IDS = {"MCH050", "MCH051", "MCH052", "MCH053"}


def _contract_findings(*packages):
    findings, stats = run_interproc(parse_fixture(*packages))
    return [f for f in findings if f.rule_id in _CONTRACT_IDS], stats


def test_matched_contract_is_clean():
    findings, stats = _contract_findings("rpcgood")
    assert findings == []
    assert stats["dead_handler_checked"] is True
    assert stats["rpc_registrations"] == 2
    assert stats["rpc_forwards"] == 2


def test_orphaned_call_flagged():
    findings, _ = _contract_findings("rpcbad")
    client = fixture_path("rpcbad", "client.py")
    orphans = [f for f in findings if f.rule_id == "MCH050"]
    assert len(orphans) == 1
    assert orphans[0].path == client
    assert orphans[0].line == line_of(client, 'self._forward("lookup"')
    assert "lookup" in orphans[0].message


def test_handler_shape_flagged():
    findings, _ = _contract_findings("rpcbad")
    shapes = [f for f in findings if f.rule_id == "MCH051"]
    messages = " | ".join(f.message for f in shapes)
    # one missing handler + two shape problems on _on_scan
    assert len(shapes) == 3
    assert "stat" in messages and "does not define" in messages
    assert "not a generator" in messages
    assert "positional parameter" in messages


def test_response_shape_flagged():
    findings, _ = _contract_findings("rpcbad")
    client = fixture_path("rpcbad", "client.py")
    responses = [f for f in findings if f.rule_id == "MCH052"]
    assert [f.line for f in responses] == [
        line_of(client, 'self._forward("get"')
    ]
    assert "None" in responses[0].message


def test_dead_handler_flagged():
    findings, _ = _contract_findings("rpcbad")
    provider = fixture_path("rpcbad", "provider.py")
    dead = [f for f in findings if f.rule_id == "MCH053"]
    assert len(dead) == 1
    assert dead[0].path == provider
    assert dead[0].line == line_of(provider, 'self.register_rpc("drop"')


def test_dynamic_registration_opens_component():
    findings, stats = _contract_findings("dyn")
    assert findings == []  # "poke" is not an orphan: "dyn" is open
    assert stats["dynamic_registrations"] == 1
    assert stats["dynamic_getattr_calls"] == 1


def test_contract_index_pairs_both_ends():
    index = build_project([(p, t) for p, t, _ in parse_fixture("rpcgood")])
    contracts = build_contracts(index)
    assert contracts.registered_ops("echo") == {"ping", "put"}
    assert contracts.forwarded_ops("echo") == {"ping", "put"}
    handlers = {r.op: r.handler.name for r in contracts.registrations}
    assert handlers == {"ping": "_on_ping", "put": "_on_put"}
