"""Cross-cutting property-based tests (hypothesis)."""

import json
import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bedrock.jx9 import jx9_execute
from repro.margo import MargoConfig
from repro.mercury import estimate_size
from repro.monitoring import RunningStats
from repro.poesie import MiniInterpreter
from repro.raft import LogEntry, RaftLog
from repro.ssg import SwimConfig, SwimState, Update

# ----------------------------------------------------------------------
# mercury: wire-size estimation
# ----------------------------------------------------------------------
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20)
    | st.binary(max_size=50),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)


@settings(max_examples=100, deadline=None)
@given(json_values)
def test_estimate_size_nonnegative_and_stable(value):
    size = estimate_size(value)
    assert size >= 0
    assert estimate_size(value) == size  # deterministic


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=1000))
def test_estimate_size_bytes_exact(data):
    assert estimate_size(data) == len(data)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=8), st.integers(), max_size=8))
def test_estimate_size_monotone_in_dict_growth(mapping):
    size = estimate_size(mapping)
    bigger = dict(mapping)
    bigger["__extra_key__"] = 12345
    assert estimate_size(bigger) > size


# ----------------------------------------------------------------------
# monitoring: RunningStats matches the statistics module
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
def test_running_stats_matches_reference(values):
    stats = RunningStats()
    for v in values:
        stats.update(v)
    assert stats.num == len(values)
    assert stats.avg == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-9)
    assert stats.min == min(values)
    assert stats.max == max(values)
    assert stats.var == pytest.approx(statistics.pvariance(values), abs=1e-4, rel=1e-6)


# ----------------------------------------------------------------------
# poesie: the mini interpreter agrees with Python on arithmetic
# ----------------------------------------------------------------------
arith_expr = st.recursive(
    st.integers(min_value=-50, max_value=50).map(str),
    lambda children: st.tuples(children, st.sampled_from(["+", "-", "*"]), children).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    ),
    max_leaves=12,
)


@settings(max_examples=80, deadline=None)
@given(arith_expr)
def test_poesie_arithmetic_matches_python(expression):
    expected = eval(expression)  # noqa: S307 - generated from a safe grammar
    assert MiniInterpreter().execute(f"return {expression}") == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=20)
)
def test_poesie_list_builtins_match_python(xs):
    interp = MiniInterpreter()
    result = interp.execute("return [sum(xs), min(xs), max(xs), len(xs)]",
                            env={"xs": list(xs)})
    assert result == [sum(xs), min(xs), max(xs), len(xs)]


# ----------------------------------------------------------------------
# jx9: JSON literals evaluate to themselves
# ----------------------------------------------------------------------
jx9_json = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=12,
    ),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=6,
        ),
        children,
        max_size=4,
    ),
    max_leaves=12,
)


@settings(max_examples=80, deadline=None)
@given(jx9_json)
def test_jx9_json_literal_roundtrip(value):
    literal = json.dumps(value)
    assert jx9_execute(f"return {literal};") == value


@settings(max_examples=40, deadline=None)
@given(jx9_json)
def test_jx9_count_matches_python_len(value):
    if isinstance(value, (list, dict, str)):
        assert jx9_execute("return count($v);", {"v": value}) == len(value)


# ----------------------------------------------------------------------
# raft log: idempotent, prefix-preserving replication
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=20),
    st.integers(min_value=0, max_value=3),
)
def test_raft_log_replay_idempotent(terms, replays):
    """Replaying the same AppendEntries any number of times leaves the
    log identical (duplicate suppression)."""
    terms = sorted(terms)
    leader = RaftLog()
    for term in terms:
        leader.append_new(term, f"c{term}")
    follower = RaftLog()
    batch = leader.entries_from(1)
    for _ in range(replays + 1):
        assert follower.match_and_append(0, 0, batch)
    assert follower.last_index == leader.last_index
    for index in range(1, leader.last_index + 1):
        assert follower.term_at(index) == leader.term_at(index)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=3), min_size=2, max_size=15),
    st.data(),
)
def test_raft_log_conflict_truncation_preserves_prefix(terms, data):
    terms = sorted(terms)
    log = RaftLog()
    for term in terms:
        log.append_new(term, f"old-{term}")
    # Overwrite a suffix with higher-term entries.
    split = data.draw(st.integers(min_value=1, max_value=len(terms)))
    new_term = terms[-1] + 1
    new_entries = [
        LogEntry(new_term, i, f"new-{i}")
        for i in range(split, len(terms) + 2)
    ]
    assert log.match_and_append(split - 1, log.term_at(split - 1), new_entries)
    # Prefix intact, suffix replaced.
    for index in range(1, split):
        assert log.entry_at(index).command == f"old-{terms[index - 1]}"
    for index in range(split, len(terms) + 2):
        assert log.term_at(index) == new_term


# ----------------------------------------------------------------------
# swim: update application is idempotent and monotone in incarnation
# ----------------------------------------------------------------------
update_strategy = st.tuples(
    st.sampled_from(["alive", "suspect", "dead"]),
    st.sampled_from(["m1", "m2", "m3"]),
    st.integers(min_value=0, max_value=4),
).map(lambda t: Update(*t))


@settings(max_examples=80, deadline=None)
@given(st.lists(update_strategy, max_size=25))
def test_swim_apply_idempotent(updates):
    config = SwimConfig()
    state = SwimState("self", config)
    for update in updates:
        state.apply(update, now=1.0)
        before = {
            a: (r.status, r.incarnation) for a, r in state._members.items()
        }
        # Re-applying the same update must not change membership state.
        state.apply(Update(update.kind, update.address, update.incarnation), now=2.0)
        after = {a: (r.status, r.incarnation) for a, r in state._members.items()}
        assert after == before


@settings(max_examples=60, deadline=None)
@given(st.lists(update_strategy, max_size=25))
def test_swim_dead_members_never_in_view(updates):
    state = SwimState("self", SwimConfig())
    for update in updates:
        state.apply(update, now=1.0)
    from repro.ssg import MemberStatus

    for address in state.view_members():
        assert state.status_of(address) != MemberStatus.DEAD
    assert "self" in state.view_members()


# ----------------------------------------------------------------------
# margo config roundtrip
# ----------------------------------------------------------------------
pool_names = st.lists(
    st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=8),
    min_size=1,
    max_size=5,
    unique=True,
)


@settings(max_examples=60, deadline=None)
@given(pool_names, st.data())
def test_margo_config_roundtrip(names, data):
    pools = [{"name": n} for n in names]
    xstreams = []
    for i, name in enumerate(names):
        served = data.draw(
            st.lists(st.sampled_from(names), min_size=1, max_size=3, unique=True)
        )
        if name not in served:
            served.append(name)  # ensure every pool is served
        xstreams.append({"name": f"es{i}", "scheduler": {"pools": served}})
    doc = {
        "argobots": {"pools": pools, "xstreams": xstreams},
        "progress_pool": names[0],
        "rpc_pool": names[-1],
    }
    config = MargoConfig.from_json(doc)
    roundtripped = MargoConfig.from_json(config.to_json())
    assert roundtripped.to_json() == config.to_json()
    assert [p.name for p in roundtripped.pools] == names
