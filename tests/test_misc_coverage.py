"""Unit tests for cross-cutting helpers and less-travelled paths."""

import pytest

from repro import Cluster
from repro.bedrock.module import BedrockModule, ModuleError, register_library
from repro.core.parallel import ParallelError, parallel
from repro.margo import Compute, ConfigError, UltSleep
from repro.margo.pool import Pool
from repro.margo.xstream import XStream
from repro.mercury import (
    BulkHandle,
    RPCRequest,
    RPCResponse,
    deserialize_cost,
    estimate_size,
    rpc_id_of,
    serialize_cost,
)


# ----------------------------------------------------------------------
# Cluster helpers
# ----------------------------------------------------------------------
def test_run_ult_propagates_errors():
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("p", node="n0")

    def bad():
        yield Compute(0.1)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        cluster.run_ult(margo, bad())


def test_wait_ults_returns_results_in_order():
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("p", node="n0")

    def work(i):
        yield UltSleep(0.1 * (3 - i))  # finish in reverse order
        return i

    ults = [margo.spawn_ult(work(i)) for i in range(3)]
    assert cluster.wait_ults(ults) == [0, 1, 2]


def test_wait_ults_raises_first_error():
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("p", node="n0")

    def good():
        yield UltSleep(0.1)
        return "ok"

    def bad():
        yield UltSleep(0.05)
        raise RuntimeError("first failure")

    ults = [margo.spawn_ult(good()), margo.spawn_ult(bad())]
    with pytest.raises(RuntimeError, match="first failure"):
        cluster.wait_ults(ults)


def test_wait_ults_with_already_finished():
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("p", node="n0")

    def quick():
        yield Compute(1e-9)
        return 42

    ult = margo.spawn_ult(quick())
    cluster.run()
    assert cluster.wait_ults([ult]) == [42]


def test_cluster_node_idempotent():
    cluster = Cluster(seed=1)
    n1 = cluster.node("x")
    n2 = cluster.node("x")
    assert n1 is n2


# ----------------------------------------------------------------------
# parallel()
# ----------------------------------------------------------------------
def test_parallel_empty_list():
    cluster = Cluster(seed=2)
    margo = cluster.add_margo("p", node="n0")

    def driver():
        results = yield from parallel(margo, [])
        return results

    assert cluster.run_ult(margo, driver()) == []


def test_parallel_collects_all_errors():
    cluster = Cluster(seed=2)
    margo = cluster.add_margo("p", node="n0")

    def fail(i):
        yield Compute(1e-9)
        raise ValueError(f"err{i}")

    def ok():
        yield Compute(1e-9)
        return "fine"

    def driver():
        yield from parallel(margo, [fail(0), ok(), fail(2)])

    with pytest.raises(ParallelError) as excinfo:
        cluster.run_ult(margo, driver())
    assert len(excinfo.value.errors) == 2
    assert "err0" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_parallel_preserves_order_despite_finish_order():
    cluster = Cluster(seed=2)
    margo = cluster.add_margo("p", node="n0")

    def work(i):
        yield UltSleep(0.1 * (5 - i))
        return i

    def driver():
        return (yield from parallel(margo, [work(i) for i in range(5)]))

    assert cluster.run_ult(margo, driver()) == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# mercury
# ----------------------------------------------------------------------
def test_rpc_id_stable_and_32bit():
    assert rpc_id_of("echo") == rpc_id_of("echo")
    assert rpc_id_of("echo") != rpc_id_of("Echo")
    assert 0 <= rpc_id_of("anything") < 2**32


def test_wire_sizes_include_headers():
    request = RPCRequest(
        seq=1, rpc_id=1, rpc_name="x", provider_id=0, args=None,
        payload_size=100, src_address="a",
    )
    assert request.wire_size == 100 + RPCRequest.HEADER_SIZE
    response = RPCResponse(
        seq=1, status="ok", value=None, payload_size=50, src_address="a"
    )
    assert response.wire_size == 50 + RPCResponse.HEADER_SIZE


def test_estimate_size_various_types():
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size(1.5) == 8
    assert estimate_size({1, 2, 3}) > 8
    assert estimate_size("héllo") > 5  # multibyte utf-8

    class Slotted:
        __slots__ = ("a", "b")

        def __init__(self):
            self.a = 1
            self.b = b"xy"

    assert estimate_size(Slotted()) > 8

    class Weird:
        __slots__ = ()

    assert estimate_size(Weird()) >= 8

    with pytest.raises(TypeError):
        estimate_size(object())


def test_bulk_handle_wire_size_excludes_data():
    bulk = BulkHandle("addr", 1 << 20, b"x" * (1 << 20))
    assert estimate_size(bulk) == BulkHandle.__wire_size__
    with pytest.raises(ValueError):
        BulkHandle("addr", -1)


def test_serialization_costs_monotone():
    assert serialize_cost(0) > 0
    assert serialize_cost(10**6) > serialize_cost(10**3)
    assert deserialize_cost(10**6) == pytest.approx(serialize_cost(10**6))


# ----------------------------------------------------------------------
# margo runtime odds and ends
# ----------------------------------------------------------------------
def test_xstream_add_pool_at_runtime_serves_work():
    from repro.sim import SimKernel
    from repro.margo.ult import ULT

    kernel = SimKernel()
    main_pool = Pool("main")
    xs = XStream(kernel, "es", [main_pool])
    xs.start()
    late_pool = Pool("late")
    xs.add_pool(late_pool)
    xs.add_pool(late_pool)  # idempotent
    done = []

    def work():
        yield Compute(0.01)
        done.append(True)

    late_pool.push(ULT(work()))
    kernel.run()
    assert done == [True]
    xs.remove_pool(late_pool)
    with pytest.raises(ConfigError):
        xs.remove_pool(late_pool)  # no longer served


def test_margo_accepts_json_string_specs():
    cluster = Cluster(seed=3)
    margo = cluster.add_margo("p", node="n0")
    margo.add_pool('{"name": "jsonpool"}')
    margo.add_xstream('{"name": "jsones", "scheduler": {"pools": ["jsonpool"]}}')
    assert "jsonpool" in margo.pools
    assert "jsones" in margo.xstreams


def test_margo_monitors_add_remove():
    cluster = Cluster(seed=3)
    margo = cluster.add_margo("p", node="n0")

    class Probe:
        calls = 0

        def on_finalize(self, **kw):
            Probe.calls += 1

    probe = Probe()
    margo.add_monitor(probe)
    margo.remove_monitor(probe)
    margo.add_monitor(probe)
    margo.shutdown()
    assert Probe.calls == 1


# ----------------------------------------------------------------------
# bedrock module registry
# ----------------------------------------------------------------------
def test_register_library_conflict():
    module_a = BedrockModule(type_name="t1", provider_factory=lambda *a: None)
    module_b = BedrockModule(type_name="t1", provider_factory=lambda *a: None)
    register_library("libtest-conflict.so", module_a)
    register_library("libtest-conflict.so", module_a)  # same module: ok
    with pytest.raises(ModuleError, match="already registered"):
        register_library("libtest-conflict.so", module_b)


def test_known_libraries_contains_builtins():
    from repro.bedrock import known_libraries

    libs = known_libraries()
    for lib in ("libyokan.so", "libwarabi.so", "libpoesie.so", "libremi.so"):
        assert lib in libs


# ----------------------------------------------------------------------
# pool / scheduler validation
# ----------------------------------------------------------------------
def test_pool_from_json_validation():
    with pytest.raises(ConfigError):
        Pool.from_json("not-a-dict")  # type: ignore[arg-type]
    with pytest.raises(ConfigError):
        Pool.from_json({})


def test_xstream_scheduler_validation():
    from repro.sim import SimKernel

    with pytest.raises(ConfigError, match="scheduler"):
        XStream(SimKernel(), "es", [Pool("p")], scheduler="quantum")
