"""mochi-lint AST rules: one positive + one negative fixture per rule."""

import textwrap

from repro.analysis import lint_source


def lint(code, **kwargs):
    return lint_source(textwrap.dedent(code), path="fixture.py", **kwargs)


def ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# MCH001 wall-clock-access
# ----------------------------------------------------------------------
def test_mch001_flags_wall_clock_calls():
    findings = lint(
        """
        import time, datetime
        def stamp():
            a = time.time()
            b = time.perf_counter()
            c = datetime.datetime.now()
            return a, b, c
        """
    )
    assert ids(findings) == ["MCH001", "MCH001", "MCH001"]
    assert findings[0].line == 4
    assert "time.time" in findings[0].message


def test_mch001_clean_on_simulated_time():
    findings = lint(
        """
        def stamp(kernel):
            now = kernel.now
            yield Sleep(0.5)
            return now
        """
    )
    assert findings == []


# ----------------------------------------------------------------------
# MCH002 unseeded-randomness
# ----------------------------------------------------------------------
def test_mch002_flags_global_random_and_entropy():
    findings = lint(
        """
        import random, uuid, secrets
        def pick(items):
            x = random.choice(items)
            r = random.Random()
            t = uuid.uuid4()
            s = secrets.token_bytes(8)
            random.seed()
            return x, r, t, s
        """
    )
    assert ids(findings) == ["MCH002"] * 5


def test_mch002_clean_on_seeded_sources():
    findings = lint(
        """
        import random
        def pick(rng, items):
            seeded = random.Random(42)
            return rng.choice(items), seeded.random()
        """
    )
    assert findings == []


# ----------------------------------------------------------------------
# MCH003 env-dependent-iteration
# ----------------------------------------------------------------------
def test_mch003_flags_unordered_iteration():
    findings = lint(
        """
        import os, glob
        def sweep(names):
            for n in set(names):
                print(n)
            for f in os.listdir("."):
                print(f)
            out = [k for k in os.environ]
            pairs = list({1, 2, 3})
            return out, pairs
        """
    )
    assert ids(findings) == ["MCH003"] * 4


def test_mch003_clean_when_sorted():
    findings = lint(
        """
        import os
        def sweep(names):
            for n in sorted(set(names)):
                print(n)
            for f in sorted(os.listdir(".")):
                print(f)
        """
    )
    assert findings == []


# ----------------------------------------------------------------------
# MCH004 unbounded-monitoring-state
# ----------------------------------------------------------------------
def test_mch004_flags_unbounded_module_growth():
    findings = lint(
        """
        EVENTS = []
        STATS = {}

        class AuditMonitor:
            def on_forward(self, **kw):
                EVENTS.append(kw)

            def on_respond(self, **kw):
                STATS[kw["rpc"]] = kw
        """,
        select=["MCH004"],
    )
    assert ids(findings) == ["MCH004", "MCH004"]
    assert "EVENTS" in findings[0].message
    assert "deque(maxlen=...)" in findings[0].message
    assert "STATS" in findings[1].message


def test_mch004_flags_unbounded_deque_and_setdefault():
    findings = lint(
        """
        from collections import deque, defaultdict
        TRACE = deque()
        INDEX = defaultdict(list)

        def on_ult_start(**kw):
            TRACE.append(kw)
            INDEX.setdefault(kw["rpc"], []).append(kw)
        """,
        select=["MCH004"],
    )
    assert ids(findings) == ["MCH004", "MCH004"]
    assert "TRACE" in findings[0].message
    assert "INDEX" in findings[1].message


def test_mch004_clean_on_ring_buffer_and_non_hooks():
    findings = lint(
        """
        from collections import deque
        RECENT = deque(maxlen=64)

        class StatsMonitor:
            def __init__(self):
                self.counts = {}

            def on_forward(self, **kw):
                RECENT.append(kw)
                self.counts["forward"] = self.counts.get("forward", 0) + 1

        def rebuild(events):
            table = {}
            for e in events:
                table[e] = 1
            return table
        """,
        select=["MCH004"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# MCH005 unobserved-failure-swallow
# ----------------------------------------------------------------------
def test_mch005_flags_swallowing_hooks_and_introspection():
    findings = lint(
        """
        class AuditMonitor:
            def on_forward_start(self, time, margo, request):
                try:
                    self.samples.append(request)
                except Exception:
                    pass

        class Server:
            def _on_get_health(self, ctx):
                try:
                    return self.plane.health_doc()
                except KeyError:
                    return {}

            def _on_query(self, ctx):
                try:
                    return self.run(ctx.args["script"])
                except Exception:
                    return None
        """,
        select=["MCH005"],
    )
    assert ids(findings) == ["MCH005", "MCH005", "MCH005"]
    assert "on_forward_start" in findings[0].message
    assert "error counter" in findings[0].message


def test_mch005_clean_on_counted_reraised_or_non_observers():
    findings = lint(
        """
        class AuditMonitor:
            def on_forward_start(self, time, margo, request):
                try:
                    self.samples.append(request)
                except Exception:
                    self.errors.inc()

            def on_respond(self, time, margo, request, response):
                try:
                    self.note(response)
                except ValueError:
                    raise

            def on_ult_start(self, time, margo, request):
                try:
                    self.observe(request)
                except Exception:
                    self.recorder.record("fault", "observer-error")

        class Server:
            def _on_put(self, ctx):
                # plain RPC handler, not an observer: out of scope
                try:
                    return self.do(ctx.args)
                except Exception:
                    return None
        """,
        select=["MCH005"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# MCH010 blocking-call-in-ult
# ----------------------------------------------------------------------
def test_mch010_flags_blocking_call_in_ult_body():
    findings = lint(
        """
        import subprocess
        def worker():
            yield Sleep(1.0)
            subprocess.run(["ls"])
        """,
        select=["MCH010"],
    )
    assert ids(findings) == ["MCH010"]
    assert "subprocess.run" in findings[0].message


def test_mch010_ignores_plain_functions():
    # Not a ULT generator: blocking here is ordinary host-side code.
    findings = lint(
        """
        import subprocess
        def build():
            return subprocess.run(["make"])
        """,
        select=["MCH010"],
    )
    assert findings == []


def test_mch010_ignores_nested_non_ult_helpers():
    # The blocking call lives in a nested plain function, not the ULT,
    # and the ULT never *calls* it -- it only returns the reference.
    findings = lint(
        """
        import subprocess
        def worker():
            def helper():
                return subprocess.run(["ls"])
            yield Sleep(1.0)
            return helper
        """,
        select=["MCH010"],
    )
    assert findings == []


def test_mch010_flags_call_to_blocking_helper():
    # One hop of call graph: the ULT calls a plain helper that blocks.
    findings = lint(
        """
        import time
        def pause():
            time.sleep(0.5)
        def worker():
            yield Sleep(1.0)
            pause()
        """,
        select=["MCH010"],
    )
    assert ids(findings) == ["MCH010"]
    assert "pause" in findings[0].message
    assert "time.sleep" in findings[0].message
    assert findings[0].line == 7


def test_mch010_flags_self_call_to_blocking_helper():
    findings = lint(
        """
        import socket
        class Peer:
            def _connect(self):
                return socket.create_connection(("host", 80))
            def handler(self):
                yield UltSleep(0.1)
                self._connect()
        """,
        select=["MCH010"],
    )
    assert ids(findings) == ["MCH010"]
    assert "_connect" in findings[0].message
    assert "socket.create_connection" in findings[0].message


def test_mch010_ignores_call_to_clean_helper():
    # The helper does host-side work but nothing blocking.
    findings = lint(
        """
        def shape(data):
            return sorted(data)
        def worker(data):
            yield Sleep(1.0)
            return shape(data)
        """,
        select=["MCH010"],
    )
    assert findings == []


def test_mch010_blocking_ult_helper_not_double_flagged():
    # A helper that is itself a ULT generator is flagged directly at its
    # own blocking call; delegating to it is not a second finding.
    findings = lint(
        """
        import time
        def inner():
            yield Sleep(1.0)
            time.sleep(0.5)
        def outer():
            yield Sleep(1.0)
            yield from inner()
        """,
        select=["MCH010"],
    )
    assert ids(findings) == ["MCH010"]
    assert findings[0].line == 5


# ----------------------------------------------------------------------
# MCH011 yield-while-holding-lock
# ----------------------------------------------------------------------
def test_mch011_flags_suspend_between_acquire_and_release():
    findings = lint(
        """
        def critical(mutex):
            yield from mutex.acquire()
            yield UltSleep(0.1)
            mutex.release()
        """,
        select=["MCH011"],
    )
    assert ids(findings) == ["MCH011"]
    assert "UltSleep" in findings[0].message


def test_mch011_flags_forward_while_holding():
    findings = lint(
        """
        def critical(mutex, margo, addr):
            yield from mutex.acquire()
            reply = yield from margo.forward(addr, "rpc", None)
            mutex.release()
            return reply
        """,
        select=["MCH011"],
    )
    assert ids(findings) == ["MCH011"]


def test_mch011_clean_when_released_before_suspend():
    findings = lint(
        """
        def critical(mutex):
            yield from mutex.acquire()
            yield Compute(1e-6)
            mutex.release()
            yield UltSleep(0.1)
        """,
        select=["MCH011"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# MCH012 handler-never-responds
# ----------------------------------------------------------------------
def test_mch012_flags_unbounded_park_in_handler():
    findings = lint(
        """
        def on_fetch(ctx, gate):
            value = yield Park(gate)
            return value
        """,
        select=["MCH012"],
    )
    assert ids(findings) == ["MCH012"]
    assert "no timeout" in findings[0].message


def test_mch012_flags_exitless_loop_in_handler():
    findings = lint(
        """
        def on_poll(ctx):
            while True:
                yield UltSleep(0.1)
        """,
        select=["MCH012"],
    )
    assert ids(findings) == ["MCH012"]


def test_mch012_clean_with_timeout_or_exit():
    findings = lint(
        """
        def on_fetch(ctx, gate):
            value = yield Park(gate, 5.0)
            while True:
                if value is not None:
                    return value
                value = yield Park(gate, timeout=1.0)
        """,
        select=["MCH012"],
    )
    assert findings == []


def test_mch012_ignores_non_handler_functions():
    # Unbounded waits are legal outside the RPC-handler naming convention
    # (e.g. daemon loops that the kernel tears down at exit).
    findings = lint(
        """
        def progress_loop(gate):
            value = yield Park(gate)
            return value
        """,
        select=["MCH012"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# MCH013 monitor-hook-misbehavior
# ----------------------------------------------------------------------
def test_mch013_flags_raising_and_forwarding_hooks():
    findings = lint(
        """
        class AuditMonitor:
            def on_forward(self, **kw):
                raise RuntimeError("boom")

            def on_respond(self, margo, addr, **kw):
                margo.forward(addr, "audit", kw)
        """,
        select=["MCH013"],
    )
    assert ids(findings) == ["MCH013", "MCH013"]


def test_mch013_clean_on_recording_hooks():
    findings = lint(
        """
        class StatsMonitor:
            def __init__(self):
                self.calls = 0

            def on_forward(self, **kw):
                self.calls += 1
        """,
        select=["MCH013"],
    )
    assert findings == []


# ----------------------------------------------------------------------
# MCH090 parse-error
# ----------------------------------------------------------------------
def test_mch090_on_syntax_error():
    findings = lint("def broken(:\n    pass\n")
    assert ids(findings) == ["MCH090"]
    assert findings[0].severity == "error"


# ----------------------------------------------------------------------
# Suppressions (incl. MCH091)
# ----------------------------------------------------------------------
def test_line_suppression_with_justification():
    findings = lint(
        """
        import time
        def stamp():
            return time.time()  # mochi-lint: disable=MCH001 -- host-side harness code
        """
    )
    assert findings == []


def test_line_suppression_only_covers_its_rule_and_line():
    findings = lint(
        """
        import time
        def stamp():
            a = time.time()  # mochi-lint: disable=MCH002 -- wrong id on purpose
            b = time.time()
            return a, b
        """
    )
    assert ids(findings) == ["MCH001", "MCH001"]


def test_file_suppression_covers_whole_file():
    findings = lint(
        """
        # mochi-lint: disable-file=MCH001 -- benchmark measuring real time
        import time
        def stamp():
            return time.time(), time.perf_counter()
        """
    )
    assert findings == []


# Assembled at runtime so this *test file* itself lints clean: a literal
# bare suppression here would (correctly) be flagged when CI lints tests/.
BARE_SUPPRESSION = "# mochi-lint: " + "disable=MCH001"
META_SUPPRESSION = "# mochi-lint: " + "disable-file=MCH091 -- trying to turn the gate off"


def test_bare_suppression_is_mch091():
    findings = lint(
        f"""
        import time
        def stamp():
            return time.time()  {BARE_SUPPRESSION}
        """
    )
    # The bare comment still suppresses nothing and is itself flagged.
    assert ids(findings) == ["MCH001", "MCH091"]


def test_meta_rules_cannot_be_suppressed():
    findings = lint(
        f"""
        {META_SUPPRESSION}
        import time
        def stamp():
            return time.time()  {BARE_SUPPRESSION}
        """
    )
    assert "MCH091" in ids(findings)


# ----------------------------------------------------------------------
# MCH006 hotpath-allocation
# ----------------------------------------------------------------------
def test_mch006_flags_allocations_in_marked_function():
    findings = lint(
        """
        class Kernel:
            # mochi-lint: hotpath
            def post(self, delay, fn):
                entry = {"fn": fn, "deadline": delay}
                wake = lambda: fn()

                def closure():
                    return fn()

                index = {k: v for k, v in entry.items()}
                return entry, wake, closure, index
        """
    )
    assert ids(findings) == ["MCH006"] * 4
    assert "hot-path" in findings[0].message
    assert "'post'" in findings[0].message


def test_mch006_marker_on_def_line_also_counts():
    findings = lint(
        """
        def push(pool, ult):  # mochi-lint: hotpath
            pool.wakes = {"ult": ult}
        """
    )
    assert ids(findings) == ["MCH006"]


def test_mch006_clean_without_marker():
    findings = lint(
        """
        def cold_config():
            return {"pools": [], "xstreams": []}
        """
    )
    assert findings == []


def test_mch006_clean_on_flat_marked_function():
    findings = lint(
        """
        # mochi-lint: hotpath
        def post(self, delay, fn, arg):
            deadline = self._now + delay
            bucket = self._buckets.get(deadline)
            if bucket is None:
                bucket = []
                self._buckets[deadline] = bucket
            bucket.append(fn)
            bucket.append(arg)
        """
    )
    assert findings == []


def test_mch006_ignores_nested_function_internals():
    # The nested def itself is the allocation; its *body* belongs to the
    # closure, not the hot path, so inner dicts are not double-flagged.
    findings = lint(
        """
        # mochi-lint: hotpath
        def step(self):
            def helper():
                return {"inner": 1}
            return helper
        """
    )
    assert ids(findings) == ["MCH006"]
