"""Tests for the dataset component (paper section 3.2's composition
example): Yokan metadata + Warabi blobs + Poesie scripting, wired by
Bedrock dependency injection."""

import pytest

from repro import Cluster
from repro.bedrock import BedrockClient, boot_process
from repro.dataset import DatasetClient, DatasetError, DatasetProvider
from repro.margo import RpcFailedError
from repro.poesie import PoesieClient, PoesieProvider
from repro.warabi import WarabiClient, WarabiProvider
from repro.yokan import YokanClient, YokanProvider


@pytest.fixture()
def rig():
    """Manual composition across three processes (no Bedrock)."""
    cluster = Cluster(seed=71)
    meta_margo = cluster.add_margo("meta", node="n0")
    data_margo = cluster.add_margo("data", node="n1")
    front_margo = cluster.add_margo("front", node="n2")
    YokanProvider(meta_margo, "metadb", provider_id=1)
    WarabiProvider(data_margo, "blobs", provider_id=1)
    PoesieProvider(front_margo, "scripts", provider_id=2)
    provider = DatasetProvider(
        front_margo,
        "datasets",
        provider_id=1,
        dependencies={
            "metadata": YokanClient(front_margo).make_handle(meta_margo.address, 1),
            "data": WarabiClient(front_margo).make_handle(data_margo.address, 1),
            "interpreter": PoesieClient(front_margo).make_handle(
                front_margo.address, 2
            ),
        },
    )
    app = cluster.add_margo("app", node="na")
    handle = DatasetClient(app).make_handle(front_margo.address, 1)
    return cluster, app, handle, provider


def test_create_write_read(rig):
    cluster, app, ds, _ = rig

    def driver():
        meta = yield from ds.create("sim-output", attributes={"owner": "nova"})
        yield from ds.write("sim-output", b"timestep-data" * 100)
        payload = yield from ds.read("sim-output")
        described = yield from ds.describe("sim-output")
        return meta, payload, described

    meta, payload, described = cluster.run_ult(app, driver())
    assert meta["attributes"] == {"owner": "nova"}
    assert payload == b"timestep-data" * 100
    assert described["size"] == 1300


def test_partial_write_and_read(rig):
    cluster, app, ds, _ = rig

    def driver():
        yield from ds.create("d")
        yield from ds.write("d", b"AAAA")
        yield from ds.write("d", b"BB", offset=2)
        part = yield from ds.read("d", offset=1, size=3)
        return part

    assert cluster.run_ult(app, driver()) == b"ABB"


def test_large_payload_uses_bulk(rig):
    cluster, app, ds, _ = rig
    big = bytes(range(256)) * 2048  # 512 KiB

    def driver():
        yield from ds.create("big")
        yield from ds.write("big", big)
        return (yield from ds.read("big"))

    assert cluster.run_ult(app, driver()) == big


def test_list_and_drop(rig):
    cluster, app, ds, _ = rig

    def driver():
        yield from ds.create("b-set")
        yield from ds.create("a-set")
        names = yield from ds.list()
        yield from ds.drop("b-set")
        after = yield from ds.list()
        return names, after

    names, after = cluster.run_ult(app, driver())
    assert names == ["a-set", "b-set"]
    assert after == ["a-set"]


def test_duplicate_create_rejected(rig):
    cluster, app, ds, _ = rig

    def driver():
        yield from ds.create("dup")
        yield from ds.create("dup")

    with pytest.raises(RpcFailedError, match="already exists"):
        cluster.run_ult(app, driver())


def test_missing_dataset_errors(rig):
    cluster, app, ds, _ = rig

    def driver():
        yield from ds.read("ghost")

    with pytest.raises(RpcFailedError):
        cluster.run_ult(app, driver())


def test_compute_runs_poesie_on_metadata(rig):
    """The M + Poesie composition: server-side script over metadata."""
    cluster, app, ds, _ = rig

    def driver():
        yield from ds.create("physics", attributes={"events": 42})
        result = yield from ds.compute(
            "physics", "return meta['attributes']['events'] * 2"
        )
        return result

    assert cluster.run_ult(app, driver()) == 84


def test_dependency_validation():
    cluster = Cluster(seed=71)
    margo = cluster.add_margo("front", node="n0")
    with pytest.raises(DatasetError, match="metadata"):
        DatasetProvider(margo, "d", provider_id=1, dependencies={})


def test_get_config_reports_composition(rig):
    _, _, _, provider = rig
    doc = provider.get_config()
    assert doc["composed_of"]["metadata"]["provider_id"] == 1
    assert doc["composed_of"]["interpreter"] is not None


def test_bedrock_boot_composes_dataset_service():
    """The whole composition from one Listing-3 document: Bedrock wires
    local providers into the dataset provider's dependencies."""
    import repro.dataset  # noqa: F401 - registers libdataset.so

    cluster = Cluster(seed=72)
    config = {
        "libraries": {
            "yokan": "libyokan.so",
            "warabi": "libwarabi.so",
            "poesie": "libpoesie.so",
            "dataset": "libdataset.so",
        },
        "providers": [
            {"name": "metadb", "type": "yokan", "provider_id": 1},
            {"name": "blobs", "type": "warabi", "provider_id": 1},
            {"name": "scripts", "type": "poesie", "provider_id": 1},
            {
                "name": "datasets",
                "type": "dataset",
                "provider_id": 1,
                "dependencies": {
                    "metadata": "metadb",
                    "data": "blobs",
                    "interpreter": "scripts",
                },
            },
        ],
    }
    margo, bedrock = boot_process(cluster, "svc", "n0", config)
    assert bedrock.dependents["metadb"] == {"local:datasets"}
    app = cluster.add_margo("app", node="na")
    ds = DatasetClient(app).make_handle(margo.address, 1)

    def driver():
        yield from ds.create("composed", attributes={"n": 3})
        yield from ds.write("composed", b"xyz")
        value = yield from ds.read("composed")
        result = yield from ds.compute("composed", "return meta['size'] + 1")
        return value, result

    value, result = cluster.run_ult(app, driver())
    assert value == b"xyz"
    assert result == 4

    # Bedrock protects the composition: metadb cannot be stopped while
    # the dataset provider depends on it.
    handle = BedrockClient(app).make_service_handle(margo.address)

    def try_stop():
        yield from handle.stop_provider("metadb")

    with pytest.raises(RpcFailedError, match="depended on"):
        cluster.run_ult(app, try_stop())
