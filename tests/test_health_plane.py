"""mochi-health plane: phi-accrual detection, the registry, the flight
recorder, and SWIM-driven detection under loss and partitions."""

import json
import math

import pytest

from repro import Cluster
from repro.analysis.race import hooks as race_hooks
from repro.observability.health import (
    FlightRecorder,
    HealthRegistry,
    PhiAccrualDetector,
)
from repro.observability.health.recorder import events_to_chrome
from repro.ssg import SwimConfig, create_group

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


# ----------------------------------------------------------------------
# phi-accrual detector
# ----------------------------------------------------------------------
def test_phi_zero_until_two_heartbeats():
    det = PhiAccrualDetector()
    assert det.phi("a", 1.0) == 0.0
    det.heartbeat("a", 0.0)
    assert det.phi("a", 10.0) == 0.0  # one beat: no interval yet
    det.heartbeat("a", 0.5)
    assert det.phi("a", 1.0) > 0.0


def test_phi_grows_with_silence_and_matches_formula():
    det = PhiAccrualDetector(threshold=8.0)
    for i in range(10):
        det.heartbeat("a", 0.5 * i)  # mean interval 0.5
    last = 4.5
    for elapsed in (0.5, 1.0, 5.0):
        expected = elapsed / (0.5 * math.log(10.0))
        assert det.phi("a", last + elapsed) == pytest.approx(expected)
    assert not det.is_suspect("a", last + 0.5)
    # phi = 8 at elapsed = 8 * 0.5 * ln10 ~ 9.2s of silence.
    assert det.is_suspect("a", last + 8 * 0.5 * math.log(10.0) + 1e-9)


def test_phi_forget_and_snapshot_sorted():
    det = PhiAccrualDetector()
    for addr in ("b", "a"):
        det.heartbeat(addr, 0.0)
        det.heartbeat(addr, 1.0)
    snap = det.snapshot(2.0)
    assert list(snap) == ["a", "b"]
    assert snap["a"]["samples"] == 1
    det.forget("a")
    assert list(det.snapshot(2.0)) == ["b"]
    with pytest.raises(ValueError):
        PhiAccrualDetector(threshold=0.0)
    with pytest.raises(ValueError):
        PhiAccrualDetector(window=1)


# ----------------------------------------------------------------------
# health registry
# ----------------------------------------------------------------------
class _Kernel:
    def __init__(self):
        self.now = 0.0


def test_registry_ladder_and_placement():
    reg = HealthRegistry(_Kernel())
    assert reg.state_of("kv0") == "healthy"  # absence of evidence
    assert reg.is_placeable("kv0")
    assert reg.observe("kv0", "degraded", "slo:kv-p99") is True
    assert reg.is_placeable("kv0")  # degraded may still receive shards
    reg.observe("kv0", "suspect", "phi")
    assert not reg.is_placeable("kv0")
    reg.observe("kv0", "dead", "swim:g")
    assert not reg.is_placeable("kv0")
    assert reg.unhealthy() == {"kv0": "dead"}
    assert reg.observe("kv0", "dead", "swim:g") is False  # no-op repeat
    with pytest.raises(ValueError, match="unknown health state"):
        reg.observe("kv0", "zombie", "x")


def test_registry_transitions_bounded_and_notified():
    reg = HealthRegistry(_Kernel(), max_transitions=3)
    seen = []
    reg.on_transition.append(seen.append)
    states = ("degraded", "suspect", "dead", "healthy", "degraded")
    for state in states:
        reg.observe("t", state, "test")
    assert len(seen) == 5
    assert len(reg.transitions) == 3  # ring keeps only the tail
    assert [t["to"] for t in reg.transitions] == ["dead", "healthy", "degraded"]
    assert reg.to_json()["states"] == {"t": "degraded"}


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
def test_recorder_ring_dump_and_chrome():
    recorder = FlightRecorder(_Kernel(), capacity=4)
    for i in range(6):
        recorder.record("fault", "process", f"p{i}", attempt=i)
    assert recorder.recorded == 6
    assert recorder.dropped == 2
    assert [e["target"] for e in recorder.events] == ["p2", "p3", "p4", "p5"]
    dump = recorder.dump("test")
    assert dump["reason"] == "test" and dump["dropped"] == 2
    assert len(dump["events"]) == 4
    chrome = events_to_chrome(dump["events"])
    assert len(chrome["traceEvents"]) == 4
    event = chrome["traceEvents"][0]
    assert event["ph"] == "i" and event["pid"] == "fault"
    with pytest.raises(ValueError, match="unknown flight-recorder category"):
        recorder.record("bogus", "x")
    with pytest.raises(ValueError):
        FlightRecorder(_Kernel(), capacity=0)


def test_recorder_dumps_are_bounded():
    recorder = FlightRecorder(_Kernel(), capacity=4, max_dumps=2)
    for i in range(5):
        recorder.dump(f"d{i}")
    assert [d["reason"] for d in recorder.dumps] == ["d3", "d4"]


# ----------------------------------------------------------------------
# SWIM-driven detection (suspect -> dead) under loss and partitions
# ----------------------------------------------------------------------
def _swim_rig(seed, loss=0.0, n=5):
    cluster = Cluster(seed=seed)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(n)]
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    health = cluster.enable_health()
    for group in groups:
        health.watch_group(group)
    cluster.run(until=2.0)
    if loss:
        cluster.faults.set_message_loss(loss)
    return cluster, margos, groups, health


def test_swim_detection_under_message_loss():
    cluster, margos, _groups, health = _swim_rig(seed=61, loss=0.1)
    cluster.faults.kill_process_at(3.0, margos[2].process)
    cluster.run(until=30.0)
    # The victim walked the observed ladder to dead...
    assert health.registry.state_of("m2") == "dead"
    kinds = [t["to"] for t in health.registry.transitions if t["target"] == "m2"]
    assert "dead" in kinds
    # ... and the incident measured both latencies against injection.
    incident = health.incidents.incidents[0]
    assert incident.target == "m2" and incident.kind == "crash"
    assert incident.suspect_latency is not None
    assert incident.detection_latency is not None
    assert 0.0 < incident.suspect_latency <= incident.detection_latency
    # Survivors were never marked dead.
    for i in (0, 1, 3, 4):
        assert health.registry.state_of(f"m{i}") != "dead"


def test_swim_detection_under_partition_without_fault():
    """A partitioned (but alive) member is observed suspect/dead by the
    group; no incident opens, because no fault was injected on it --
    the registry tracks observation, incidents track ground truth."""
    cluster, margos, _groups, health = _swim_rig(seed=62, n=4)
    for other in range(1, 4):
        cluster.faults.partition(f"n0", f"n{other}")
    cluster.run(until=20.0)
    assert health.registry.state_of("m0") in ("suspect", "dead")
    crash_incidents = [i for i in health.incidents.incidents
                       if i.kind == "crash"]
    assert crash_incidents == []
    # The partition itself was black-boxed as a fault event.
    partition_events = [e for e in health.recorder.events
                        if e["category"] == "fault" and e["name"] == "partition"]
    assert len(partition_events) == 3


def test_phi_sweep_shades_ahead_of_swim():
    """With the periodic sweep, a silent member goes degraded/suspect
    via phi before SWIM's suspicion timeout confirms it dead."""
    cluster, margos, _groups, health = _swim_rig(seed=63, n=3)
    health.start_sweep(0.25)
    cluster.run(until=4.0)
    cluster.faults.kill_process(margos[1].process)
    cluster.run(until=40.0)
    health.stop_sweep()
    phi_transitions = [
        t for t in health.registry.transitions
        if t["target"] == "m1" and t["source"] == "phi"
    ]
    swim_dead = [
        t for t in health.registry.transitions
        if t["target"] == "m1" and t["to"] == "dead"
    ]
    assert phi_transitions, "phi sweep never shaded the silent member"
    assert swim_dead, "SWIM never confirmed the death"
    assert phi_transitions[0]["time"] < swim_dead[0]["time"]


# ----------------------------------------------------------------------
# determinism (byte-identical, including race record mode)
# ----------------------------------------------------------------------
def _detection_bytes(seed=64):
    cluster, margos, _groups, health = _swim_rig(seed=seed, loss=0.05)
    health.start_sweep(0.5)
    cluster.faults.kill_process_at(3.0, margos[1].process)
    cluster.run(until=25.0)
    health.stop_sweep()
    return json.dumps(health.to_json(), sort_keys=True)


def test_detection_latency_byte_identical_across_runs():
    assert _detection_bytes() == _detection_bytes()


def test_detection_identical_under_race_record_mode():
    plain = _detection_bytes()
    race_hooks.disable()
    race_hooks.reset()
    race_hooks.enable()
    try:
        recorded = _detection_bytes()
    finally:
        race_hooks.disable()
        race_hooks.reset()
    assert recorded == plain
