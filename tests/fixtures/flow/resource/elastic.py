"""MCH072 fixtures: pool/xstream leaked on an exception path."""


def grow_bad(margo, spec):
    """Positive: validate() may raise while nothing owns the xstream."""
    xs = margo.add_xstream(spec)
    validate(spec)  # noqa: F821
    register(xs)  # noqa: F821
    return xs


def grow_ok(margo, spec):
    """Negative: the very next statement hands the xstream to its owner
    (any mention of the variable ends the leak window)."""
    xs = margo.add_xstream(spec)
    register(xs)  # noqa: F821
    validate(spec)  # noqa: F821
    return xs


def grow_guarded(margo, spec):
    """Negative: the exception path joins the xstream before re-raising."""
    xs = margo.add_xstream(spec)
    try:
        validate(spec)  # noqa: F821
    except Exception:
        xs.join()
        raise
    register(xs)  # noqa: F821
    return xs
