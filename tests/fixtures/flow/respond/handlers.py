"""MCH070 fixtures: respond-exactly-once protocol paths.

Parsed by the mochi-flow tests, never imported: ``Park``/``Compute``
stand in for the kernel command constructors the linter recognizes.
"""


def _on_double(ctx):
    """Positive: responds twice on the straight-line path."""
    yield Compute(1e-6)  # noqa: F821
    yield from ctx.respond("first")
    yield from ctx.respond("second")


def _on_stall(ctx):
    """Positive (mixed state): the exception path swallows the error
    before the respond effect lands, then parks forever unanswered."""
    try:
        yield from ctx.respond(load(ctx.args))  # noqa: F821
    except RuntimeError:
        pass
    yield Park(ctx.event)  # noqa: F821


def _on_undriven(ctx):
    """Positive: builds the response generator but never drives it."""
    yield Compute(1e-6)  # noqa: F821
    ctx.respond("lost")


def _on_value_after(ctx):
    """Positive: returns a payload after the explicit reply went out."""
    yield from ctx.respond("early")
    return "dropped"


def _on_raise_after(ctx):
    """Positive: raises after responding; the error response is lost."""
    yield from ctx.respond("early")
    raise RuntimeError("late failure")


def _on_delegate_stall(ctx):
    """Positive only with the effect layer: delegates into a helper that
    parks unboundedly before any response has been sent."""
    yield from wait_for_signal(ctx)
    yield from ctx.respond("late")


def wait_for_signal(ctx):
    yield Park(ctx.event)  # noqa: F821


def _on_ok_early_reply(ctx):
    """Negative (the path-sensitivity win over MCH012): responds first,
    then legally parks for post-reply coordination."""
    yield from ctx.respond(ctx.args)
    yield Park(ctx.event)  # noqa: F821


def _on_ok_implicit(ctx):
    """Negative: no explicit respond; the runtime replies on return."""
    yield Compute(1e-6)  # noqa: F821
    return ctx.args
