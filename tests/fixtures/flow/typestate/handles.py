"""MCH073 fixtures: use-after-release and use-after-migrate."""


def retire_bad(registry, name):
    """Positive: put() on a destroyed handle."""
    handle = registry.lookup(name)
    handle.destroy()
    handle.put("k", "v")


def retire_arg_bad(registry, name, auditor):
    """Positive: a released handle escapes as a call argument."""
    handle = registry.lookup(name)
    handle.destroy()
    auditor.record(handle)


def retire_rebound_ok(registry, name):
    """Negative: rebinding the name clears the released state."""
    handle = registry.lookup(name)
    handle.destroy()
    handle = registry.create(name)
    handle.put("k", "v")


def handoff_bad(provider, remi, dest):
    """Positive: data operations after the provider migrated away."""
    yield from provider.migrate(remi, dest)
    yield from provider.put("k", "v")


def handoff_ok(provider, remi, dest):
    """Negative: only identity/teardown calls after the migrate."""
    yield from provider.migrate(remi, dest)
    report = provider.get_config()
    provider.destroy()
    return report
