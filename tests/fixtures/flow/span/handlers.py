"""MCH074 fixtures: manual span leaked on an exception path."""


def migrate_bad(tracer, margo, name):
    """Positive: the migration RPC may raise while the span is open."""
    span = tracer.start_span(name, "migration", margo.process.name, margo.kernel.now)
    yield from margo.forward(name, "migrate", {})
    span.end(margo.kernel.now)
    return span


def migrate_guarded(tracer, margo, name):
    """Negative: finally ends the span on every path."""
    span = tracer.start_span(name, "migration", margo.process.name, margo.kernel.now)
    try:
        yield from margo.forward(name, "migrate", {})
    finally:
        span.end(margo.kernel.now)
    return None


def migrate_early_end(tracer, margo, name):
    """Negative: the span closes before anything risky runs."""
    span = tracer.start_span(name, "migration", margo.process.name, margo.kernel.now)
    span.end(margo.kernel.now)
    yield from margo.forward(name, "migrate", {})
    return None


def migrate_delegated(tracer, margo, name):
    """Negative: passing the span to a helper transfers the obligation
    (the callee owns ending it now)."""
    span = tracer.start_span(name, "migration", margo.process.name, margo.kernel.now)
    watch(span)  # noqa: F821
    yield from margo.forward(name, "migrate", {})
    return None
