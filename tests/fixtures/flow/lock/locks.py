"""MCH071 fixtures: mutex release balance on every explicit exit path."""


def update_bad(state, mu):
    """Positive: the early return leaks the mutex."""
    yield from mu.acquire()
    if state.dirty:
        return None
    mu.release()
    return state.value


def guard_bad(self):
    """Positive: the raise escapes while self._mu is still held."""
    yield from self._mu.acquire()
    if self.closed:
        raise RuntimeError("closed while locked")
    self._mu.release()
    return self.value


def update_ok(state, mu):
    """Negative: try/finally releases on every exit path."""
    yield from mu.acquire()
    try:
        if state.dirty:
            return None
        return state.value
    finally:
        mu.release()


def straight_ok(state, mu):
    """Negative: single path, acquire then release."""
    yield from mu.acquire()
    value = state.value
    mu.release()
    return value
