"""MCH050-053 negative fixture: a fully matched RPC contract."""


class EchoProvider:
    component_type = "echo"

    def __init__(self, margo):
        self.register_rpc("ping", self._on_ping)
        self.register_rpc("put", self._on_put)

    def _on_ping(self, ctx):
        yield Compute(0.1)  # noqa: F821
        return "pong"

    def _on_put(self, ctx):
        yield Compute(0.1)  # noqa: F821
