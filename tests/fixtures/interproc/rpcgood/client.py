"""Client side of the matched contract."""


class EchoHandle:
    def ping(self):
        reply = yield from self._forward("ping", {})
        return reply

    def put(self, value):
        yield from self._forward("put", {"value": value})


class EchoClient:
    component_type = "echo"
    handle_cls = EchoHandle
