"""Client side with an orphaned call and a misused response."""


class KvHandle:
    def get(self, key):
        # MCH052: binds a result _on_get never returns.
        value = yield from self._forward("get", {"key": key})
        return value

    def fetch(self, key):
        # MCH050: no provider registers "lookup".
        data = yield from self._forward("lookup", {"key": key})
        return data

    def stat(self):
        yield from self._forward("stat", {})

    def scan(self):
        yield from self._forward("scan", {})


class KvClient:
    component_type = "kv"
    handle_cls = KvHandle
