"""MCH050-053 positive fixture: one broken contract per rule."""


class KvProvider:
    component_type = "kv"

    def __init__(self, margo):
        self.register_rpc("get", self._on_get)
        # MCH053: no client in the tree ever forwards "drop".
        self.register_rpc("drop", self._on_drop)
        # MCH051: _on_stat does not exist.
        self.register_rpc("stat", self._on_stat)
        # MCH051: _on_scan is not a generator and has the wrong arity.
        self.register_rpc("scan", self._on_scan)

    def _on_get(self, ctx):
        yield Compute(0.1)  # noqa: F821
        # no return: the client binding this result gets None (MCH052).

    def _on_drop(self, ctx):
        yield Compute(0.1)  # noqa: F821

    def _on_scan(self, prefix, limit, extra):
        return [prefix, limit, extra]
