"""Shared state owned by component ``partb``."""

REGISTRY = {}
COUNTER = 0
ITEMS = []
