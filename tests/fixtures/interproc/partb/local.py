"""Negative: a component may mutate its own state freely."""

from . import state


def bump():
    state.COUNTER = state.COUNTER + 1
