"""Class-level state owned by component ``partb``."""


class Model:
    cache = None
