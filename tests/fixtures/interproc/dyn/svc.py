"""Dynamic-dispatch fixture: sites the analysis refuses to guess.

Both patterns must be *counted* (--stats), not silently dropped, and
the dynamic registration must mark the component open so forwards to
it are never reported as orphans.
"""


class DynProvider:
    component_type = "dyn"

    def __init__(self, margo, ops):
        for op in ops:
            # Dynamic registration: op comes from runtime data.
            self.register_rpc(op, getattr(self, "_h_" + op))

    def trigger(self, obj, name):
        # Dynamic call edge: counted, no edge resolved.
        return getattr(obj, name)()


class DynHandle:
    def poke(self):
        # Not an orphan: the "dyn" component registers dynamically.
        yield from self._forward("poke", {})


class DynClient:
    component_type = "dyn"
    handle_cls = DynHandle
