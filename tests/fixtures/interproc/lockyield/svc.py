"""MCH015 fixture: mutex held across a suspension inside a callee."""


class Store:
    def locked_bad(self, ctx):
        """Positive: _refresh suspends while the lock is held."""
        yield from self._lock.acquire()
        yield from self._refresh()
        self._lock.release()

    def locked_ok(self, ctx):
        """Negative: the lock is released before delegating."""
        yield from self._lock.acquire()
        self._count = 1
        self._lock.release()
        yield from self._refresh()

    def locked_pure(self, ctx):
        """Negative: the callee never suspends."""
        yield from self._lock.acquire()
        yield from self._drain()
        self._lock.release()

    def _refresh(self):
        yield Sleep(0.1)  # noqa: F821

    def _drain(self):
        for item in list(self._pending):
            yield item
