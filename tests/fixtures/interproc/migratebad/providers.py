"""MCH061 fixture: migration snapshot coverage."""


class Base:
    def migrate(self, dest):
        raise NotImplementedError


class GoodProvider(Base):
    """Negative: every runtime-mutated attribute feeds migrate()."""

    def __init__(self):
        self._items = {}
        self._log = []

    def handle_put(self, ctx):
        self._items["x"] = 1
        self._log.append("put")

    def migrate(self, dest):
        payload = dict(self._items)
        self._snapshot_log(payload)
        return payload

    def _snapshot_log(self, payload):
        payload["log"] = list(self._log)


class BadProvider(Base):
    """Positive: _hits is mutated at runtime, never migrated."""

    def __init__(self):
        self._items = {}
        self._hits = 0

    def handle_get(self, ctx):
        self._hits += 1
        return self._items.get("x")

    def migrate(self, dest):
        return dict(self._items)
