"""MCH060 positive fixture: ``parta`` reaches into ``partb``'s state.

Every write here works today (one address space) and silently diverges
the day the components run in separate processes.
"""

from partb import state
from partb.models import Model
from partb.state import ITEMS, REGISTRY


def poison():
    state.COUNTER = 99
    REGISTRY["key"] = "value"
    ITEMS.append(1)
    Model.cache = {}
