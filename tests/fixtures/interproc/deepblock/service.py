"""MCH014 fixture: deep chains, one-hop overlap with MCH010, recursion.

Parsed by the interproc tests, never imported: ``Sleep``/``Compute``
stand in for the kernel command constructors the linter recognizes.
"""

import time

from . import helpers


def deep_handler(ctx):
    """Positive: blocks three calls down, in another module."""
    yield Compute(0.1)  # noqa: F821
    helpers.level_one()
    return ctx


def clean_handler(ctx):
    """Negative: the helper chain never blocks."""
    yield Compute(0.1)  # noqa: F821
    helpers.pure()
    return ctx


def one_hop_handler(ctx):
    """Overlap site: MCH010's one-hop heuristic and MCH014 both see
    this call; with --interproc only MCH014 may report it."""
    yield Sleep(0.5)  # noqa: F821
    local_block()
    return ctx


def local_block():
    time.sleep(0.5)


def spinning_handler(ctx):
    """Positive through a call cycle: ping <-> pong, pong blocks."""
    yield Compute(0.5)  # noqa: F821
    ping(3)


def ping(n):
    if n:
        pong(n - 1)


def pong(n):
    time.sleep(0.01)
    ping(n)
