"""Helpers whose blocking is only visible interprocedurally."""

import time


def level_one():
    return level_two()


def level_two():
    return level_three()


def level_three():
    time.sleep(1.0)


def pure():
    return 42
