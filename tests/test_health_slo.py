"""mochi-health SLO engine: spec validation, burn-rate math, alerting."""

import pytest

from repro.observability import ObservabilitySpec, SLOEngine, SLOSpec


# ----------------------------------------------------------------------
# SLOSpec validation + round-trip
# ----------------------------------------------------------------------
def test_slo_spec_validation():
    with pytest.raises(ValueError, match="unknown objective"):
        SLOSpec("x", "latency_p50", "put/1", 0.1)
    with pytest.raises(ValueError, match="non-empty 'name'"):
        SLOSpec("", "latency_p99", "put/1", 0.1)
    with pytest.raises(ValueError, match="non-empty 'target'"):
        SLOSpec("x", "latency_p99", "", 0.1)
    with pytest.raises(ValueError, match="latency threshold"):
        SLOSpec("x", "latency_p99", "put/1", 0.0)
    with pytest.raises(ValueError, match="availability threshold"):
        SLOSpec("x", "availability", "yokan:1", 1.0)
    with pytest.raises(ValueError, match="error_rate threshold"):
        SLOSpec("x", "error_rate", "yokan:1", 0.0)
    with pytest.raises(ValueError, match="window must be >= 1"):
        SLOSpec("x", "latency_p99", "put/1", 0.1, window=0)
    with pytest.raises(ValueError, match="short_windows"):
        SLOSpec("x", "latency_p99", "put/1", 0.1, window=4, short_windows=5)
    with pytest.raises(ValueError, match="budget"):
        SLOSpec("x", "latency_p99", "put/1", 0.1, budget=0.0)
    with pytest.raises(ValueError, match="fast_burn >= slow_burn"):
        SLOSpec("x", "latency_p99", "put/1", 0.1, fast_burn=1.0, slow_burn=2.0)


def test_slo_spec_from_json_validation():
    with pytest.raises(ValueError, match="must be an object"):
        SLOSpec.from_json(["nope"])
    with pytest.raises(ValueError, match="unknown keys"):
        SLOSpec.from_json({"name": "x", "objective": "latency_p99",
                           "target": "put/1", "threshold": 0.1, "bogus": 1})
    with pytest.raises(ValueError, match="needs 'threshold'"):
        SLOSpec.from_json({"name": "x", "objective": "latency_p99",
                           "target": "put/1"})


def test_slo_spec_roundtrip_and_offdefault_keys():
    spec = SLOSpec("kv-p99", "latency_p99", "yokan_put/1", 0.002,
                   window=24, slow_burn=0.5)
    doc = spec.to_json()
    assert doc["window"] == 24 and doc["slow_burn"] == 0.5
    assert "budget" not in doc  # default values stay implicit
    assert SLOSpec.from_json(doc) == spec
    minimal = SLOSpec("a", "error_rate", "yokan:*", 0.01)
    assert set(minimal.to_json()) == {"name", "objective", "target", "threshold"}


def test_slo_target_matching():
    exact = SLOSpec("a", "latency_p99", "yokan_put/1", 0.1)
    assert exact.matches("yokan_put/1")
    assert not exact.matches("yokan_put/2")
    prefix = SLOSpec("b", "availability", "yokan:*", 0.99)
    assert prefix.matches("yokan:1") and prefix.matches("yokan:250")
    assert not prefix.matches("ssg:1")


# ----------------------------------------------------------------------
# window_burn math
# ----------------------------------------------------------------------
def _window(rpc=None, providers=None):
    return {"rpc": rpc or {}, "providers": providers or {}}


def test_latency_burn_bad_good_and_no_traffic():
    spec = SLOSpec("p99", "latency_p99", "put/*", 0.001, budget=0.1)
    bad = _window(rpc={"put/1": {"total": {"count": 5, "p99": 0.002}}})
    good = _window(rpc={"put/1": {"total": {"count": 5, "p99": 0.0005}}})
    idle = _window(rpc={"get/1": {"total": {"count": 5, "p99": 9.0}}})
    assert spec.window_burn(bad) == pytest.approx(10.0)  # 1 / budget
    assert spec.window_burn(good) == 0.0
    assert spec.window_burn(idle) is None  # no matching traffic
    # Worst matching series decides.
    mixed = _window(rpc={
        "put/1": {"total": {"count": 5, "p99": 0.0005}},
        "put/2": {"total": {"count": 5, "p99": 0.01}},
    })
    assert spec.window_burn(mixed) == pytest.approx(10.0)


def test_error_rate_and_availability_burn():
    err = SLOSpec("err", "error_rate", "yokan:*", 0.01)
    avail = SLOSpec("avail", "availability", "yokan:*", 0.99)
    window = _window(providers={
        "yokan:1": {"requests": 80, "errors": 2},
        "yokan:2": {"requests": 20, "errors": 0},
        "ssg:250": {"requests": 100, "errors": 100},  # not matched
    })
    # 2 errors / 100 requests = 2% rate; thresholds are 1%.
    assert err.window_burn(window) == pytest.approx(2.0)
    assert avail.window_burn(window) == pytest.approx(2.0)
    assert err.window_burn(_window()) is None


# ----------------------------------------------------------------------
# the engine (stubbed margo: pure arithmetic, no simulation needed)
# ----------------------------------------------------------------------
class _StubKernel:
    def __init__(self):
        self.now = 0.0


class _StubMargo:
    def __init__(self):
        self.kernel = _StubKernel()
        self.process = type("P", (), {"name": "p0"})()


def _engine(*specs, **kwargs):
    return SLOEngine(_StubMargo(), list(specs), **kwargs)


def test_engine_breach_on_sustained_bad_latency():
    engine = _engine(SLOSpec("p99", "latency_p99", "put/1", 0.001,
                             window=4, short_windows=2))
    bad = _window(rpc={"put/1": {"total": {"count": 1, "p99": 0.01}}})
    engine.observe_window(bad)
    assert [a["to"] for a in engine.alerts] == ["breach"]
    status = engine.status()["slos"][0]
    assert status["state"] == "breach"
    assert status["budget_remaining"] < 0
    assert engine.worst_state() == "breach"


def test_engine_pages_on_error_spike_then_recovers():
    engine = _engine(SLOSpec("err", "error_rate", "yokan:1", 0.01,
                             window=12, short_windows=2))
    spike = _window(providers={"yokan:1": {"requests": 100, "errors": 8}})
    clean = _window(providers={"yokan:1": {"requests": 100, "errors": 0}})
    engine.observe_window(spike)  # burn 8: short/mid >= 6, long 8 -> but
    # only one window so mean 8 >= 1 -> breach dominates
    assert engine.alerts[-1]["to"] == "breach"
    for _ in range(11):
        engine.observe_window(clean)
    # Budget refills as clean windows dilute the mean.
    assert engine.alerts[-1]["to"] == "ok"
    transitions = [(a["from"], a["to"]) for a in engine.alerts]
    assert transitions[0] == ("ok", "breach")
    assert transitions[-1][1] == "ok"


def test_engine_page_without_breach():
    """A sustained spike inside a long budget window pages before the
    budget is exhausted.  (The mid-window guard means paging requires
    fast_burn < window/mid: the burn must be reachable without already
    implying breach.)"""
    engine = _engine(SLOSpec("err", "error_rate", "yokan:1", 0.01,
                             window=40, short_windows=2,
                             fast_burn=3.0, slow_burn=0.5))
    clean = _window(providers={"yokan:1": {"requests": 1000, "errors": 0}})
    spike = _window(providers={"yokan:1": {"requests": 1000, "errors": 35}})
    for _ in range(30):
        engine.observe_window(clean)
    for _ in range(10):
        engine.observe_window(spike)  # burn 3.5 over short and mid windows
    status = engine.status()["slos"][0]
    assert status["state"] == "page"
    assert status["burn_long"] < 1.0  # budget not exhausted: page, not breach


def test_engine_warn_on_slow_burn():
    engine = _engine(SLOSpec("err", "error_rate", "yokan:1", 0.01,
                             window=10, slow_burn=0.5, fast_burn=6.0))
    slow = _window(providers={"yokan:1": {"requests": 1000, "errors": 6}})
    for _ in range(10):
        engine.observe_window(slow)  # burn 0.6 per window
    status = engine.status()["slos"][0]
    assert status["state"] == "warn"
    assert status["burn_long"] == pytest.approx(0.6)


def test_engine_ignores_no_traffic_windows_and_bounds_alerts():
    engine = _engine(
        SLOSpec("p99", "latency_p99", "put/1", 0.001, window=2,
                short_windows=1),
        max_alerts=3,
    )
    engine.observe_window(_window())  # nothing matching
    assert engine.status()["slos"][0]["windows_seen"] == 0
    bad = _window(rpc={"put/1": {"total": {"count": 1, "p99": 1.0}}})
    good = _window(rpc={"put/1": {"total": {"count": 1, "p99": 1e-6}}})
    for _ in range(5):
        engine.observe_window(bad)
        engine.observe_window(good)
        engine.observe_window(good)
    assert len(engine.alerts) == 3  # ring bounded


def test_engine_on_alert_callbacks_fire():
    engine = _engine(SLOSpec("p99", "latency_p99", "put/1", 0.001))
    seen = []
    engine.on_alert.append(seen.append)
    engine.observe_window(
        _window(rpc={"put/1": {"total": {"count": 1, "p99": 1.0}}})
    )
    assert len(seen) == 1 and seen[0]["slo"] == "p99"


# ----------------------------------------------------------------------
# ObservabilitySpec integration
# ----------------------------------------------------------------------
def test_observability_spec_slos_require_profiling():
    with pytest.raises(ValueError, match="profiler windows"):
        ObservabilitySpec.from_json({
            "slos": [{"name": "a", "objective": "latency_p99",
                      "target": "put/1", "threshold": 0.1}],
        })


def test_observability_spec_slos_roundtrip_and_duplicates():
    doc = {
        "profiling": True,
        "slos": [
            {"name": "a", "objective": "latency_p99",
             "target": "put/1", "threshold": 0.1},
            {"name": "b", "objective": "error_rate",
             "target": "yokan:*", "threshold": 0.01},
        ],
    }
    spec = ObservabilitySpec.from_json(doc)
    assert len(spec.slos) == 2
    assert ObservabilitySpec.from_json(spec.to_json()) == spec
    doc["slos"].append(dict(doc["slos"][0]))
    with pytest.raises(ValueError, match="duplicate SLO name"):
        ObservabilitySpec.from_json(doc)
