"""Tests for the dynamic-service layer: deploy, grow/shrink, rebalance,
elasticity manager, resilience manager."""

import pytest

from repro import Cluster
from repro.core import (
    DynamicService,
    ElasticityManager,
    ElasticityPolicy,
    ProcessSpec,
    ResilienceManager,
    ServiceError,
    ServiceSpec,
    SpecError,
)
from repro.pufferscale import Objective
from repro.ssg import SwimConfig
from repro.storage import ParallelFileSystem
from repro.yokan import YokanClient

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


def kv_process(name, node, dbs=1):
    providers = [{"name": f"remi-{name}", "type": "remi", "provider_id": 0}]
    for d in range(dbs):
        providers.append(
            {
                "name": f"db-{name}-{d}",
                "type": "yokan",
                "provider_id": d + 1,
                "config": {"database": {"type": "persistent"}},
            }
        )
    return ProcessSpec(
        name=name,
        node=node,
        config={
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": providers,
        },
    )


def deploy(cluster, n=2, pfs=None):
    spec = ServiceSpec(
        name="kvsvc",
        processes=[kv_process(f"kv{i}", f"n{i}") for i in range(n)],
        group="kvsvc-g",
        swim=SWIM,
    )
    return DynamicService.deploy(cluster, spec, pfs=pfs)


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
def test_spec_validation():
    with pytest.raises(SpecError):
        ServiceSpec(name="", processes=[kv_process("a", "n")])
    with pytest.raises(SpecError):
        ServiceSpec(name="s", processes=[])
    with pytest.raises(SpecError):
        ServiceSpec(name="s", processes=[kv_process("a", "n"), kv_process("a", "m")])
    with pytest.raises(SpecError):
        ProcessSpec(name="", node="n")
    with pytest.raises(SpecError):
        ServiceSpec.from_json({"name": "s", "bogus": 1})


def test_spec_from_json_roundtrip():
    spec = ServiceSpec.from_json(
        {
            "name": "svc",
            "processes": [{"name": "p0", "node": "n0", "config": {}}],
            "group": "g",
        }
    )
    assert spec.name == "svc"
    assert spec.processes[0].node == "n0"
    assert spec.group == "g"


# ----------------------------------------------------------------------
# deployment
# ----------------------------------------------------------------------
def test_deploy_forms_group_and_serves():
    cluster = Cluster(seed=51)
    service = deploy(cluster, n=3)
    cluster.run(until=2.0)
    assert service.view().size == 3
    assert len(service.addresses) == 3
    cm = service.control
    db = YokanClient(cm).make_handle(service.processes["kv0"].address, 1)

    def driver():
        yield from db.put("k", "v")
        return (yield from db.get("k"))

    assert cluster.run_ult(cm, driver()) == b"v"


def test_service_config_document():
    cluster = Cluster(seed=51)
    service = deploy(cluster, n=2)

    def driver():
        doc = yield from service.service_config()
        return doc

    doc = service.run_control(driver())
    assert set(doc["processes"]) == {"kv0", "kv1"}
    provider_names = [p["name"] for p in doc["processes"]["kv0"]["providers"]]
    assert "db-kv0-0" in provider_names


# ----------------------------------------------------------------------
# elasticity: grow / shrink
# ----------------------------------------------------------------------
def test_grow_adds_member_to_group():
    cluster = Cluster(seed=52)
    service = deploy(cluster, n=2)
    cluster.run(until=2.0)

    def driver():
        yield from service.grow(kv_process("kv2", "n2"))

    service.run_control(driver())
    cluster.run(until=cluster.now + 15.0)
    assert service.view().size == 3
    assert "kv2" in service.processes


def test_grow_duplicate_rejected():
    cluster = Cluster(seed=52)
    service = deploy(cluster, n=2)

    def driver():
        yield from service.grow(kv_process("kv0", "nx"))

    with pytest.raises(ServiceError, match="already in service"):
        service.run_control(driver())


def test_shrink_migrates_data_then_leaves():
    cluster = Cluster(seed=53)
    service = deploy(cluster, n=3)
    cluster.run(until=2.0)
    cm = service.control
    db = YokanClient(cm).make_handle(service.processes["kv2"].address, 1)

    def fill():
        yield from db.put_multi([(f"k{i}", f"v{i}") for i in range(20)])

    service.run_control(fill())

    def shrink():
        target = yield from service.shrink("kv2")
        return target

    target_name = service.run_control(shrink())
    assert "kv2" not in service.processes
    # The data moved to the target and is still readable there.
    target = service.processes[target_name]
    migrated = target.bedrock.records["db-kv2-0"]
    assert migrated.instance.backend.get(b"k7") == b"v7"
    # The group eventually shrinks to 2.
    cluster.run(until=cluster.now + 20.0)
    assert service.view().size == 2


def test_shrink_last_process_rejected():
    cluster = Cluster(seed=53)
    service = deploy(cluster, n=1)

    def driver():
        yield from service.shrink("kv0")

    with pytest.raises(ServiceError, match="last process"):
        service.run_control(driver())


# ----------------------------------------------------------------------
# Pufferscale-driven rebalance
# ----------------------------------------------------------------------
def test_rebalance_moves_providers():
    cluster = Cluster(seed=54)
    # kv0 has 3 databases, kv1 has zero (besides REMI).
    spec = ServiceSpec(
        name="kvsvc",
        processes=[kv_process("kv0", "n0", dbs=3), kv_process("kv1", "n1", dbs=0)],
        group="kvsvc-g",
        swim=SWIM,
    )
    service = DynamicService.deploy(cluster, spec)
    cm = service.control
    yokan = YokanClient(cm)

    def fill():
        for provider_id in (1, 2, 3):
            db = yokan.make_handle(service.processes["kv0"].address, provider_id)
            yield from db.put_multi([(f"k{i}", "x" * 100) for i in range(50)])

    service.run_control(fill())

    def rebalance():
        plan = yield from service.rebalance(Objective(alpha=0.0, beta=1.0, gamma=0.0))
        return plan

    plan = service.run_control(rebalance())
    assert plan.num_moves >= 1
    kv1_dbs = [
        r for r in service.processes["kv1"].bedrock.records.values()
        if r.type_name == "yokan"
    ]
    assert kv1_dbs  # something moved over


# ----------------------------------------------------------------------
# ElasticityManager
# ----------------------------------------------------------------------
def test_elasticity_policy_validation():
    with pytest.raises(ValueError):
        ElasticityPolicy(high_watermark=1.0, low_watermark=2.0)
    with pytest.raises(ValueError):
        ElasticityPolicy(min_processes=0)


def test_elasticity_manager_scales_out_under_load():
    cluster = Cluster(seed=55)
    service = deploy(cluster, n=1)
    free_nodes = [f"spare{i}" for i in range(3)]
    policy = ElasticityPolicy(
        high_watermark=0.5, low_watermark=0.01, decision_interval=1.0, patience=1,
        max_processes=3,
    )
    manager = ElasticityManager(
        service,
        policy,
        allocate_node=lambda: free_nodes.pop(0) if free_nodes else None,
        release_node=free_nodes.append,
        make_process_spec=lambda name, node: kv_process(name, node),
    )
    manager.start()
    # Sustained CPU-bound load on kv0 (e.g. expensive queries).
    from repro.margo import Compute

    kv0 = service.processes["kv0"].margo

    def heavy(ctx):
        yield Compute(0.005)
        return None

    kv0.register("heavy_query", heavy)
    cm = service.control

    def hammer():
        while cluster.now < 10.0:
            yield from cm.forward(kv0.address, "heavy_query")

    for _ in range(4):
        cluster.spawn(cm, hammer())
    cluster.run(until=8.0)  # while the load is still running
    assert any(e.kind == "out" for e in manager.events)
    assert len(service.processes) > 1
    # After the load stops, the idle policy scales back in.
    cluster.run(until=25.0)
    manager.stop()
    assert any(e.kind == "in" for e in manager.events)
    assert len(service.processes) == 1


def test_elasticity_manager_scales_in_when_idle():
    cluster = Cluster(seed=56)
    service = deploy(cluster, n=1)
    free_nodes = ["spare0"]
    policy = ElasticityPolicy(
        high_watermark=1000.0, low_watermark=0.5, decision_interval=1.0, patience=1
    )
    manager = ElasticityManager(
        service,
        policy,
        allocate_node=lambda: free_nodes.pop(0) if free_nodes else None,
        release_node=free_nodes.append,
        make_process_spec=lambda name, node: kv_process(name, node),
    )
    # Manually grow an elastic process, then let the idle policy retire it.
    def grow():
        spec = kv_process(f"{service.spec.name}-elastic-1", free_nodes.pop(0))
        yield from service.grow(spec)

    service.run_control(grow())
    assert len(service.processes) == 2
    manager.start()
    cluster.run(until=15.0)
    manager.stop()
    assert any(e.kind == "in" for e in manager.events)
    assert len(service.processes) == 1
    assert free_nodes == ["spare0"]  # node returned to the resource manager


# ----------------------------------------------------------------------
# ResilienceManager
# ----------------------------------------------------------------------
def test_resilience_manager_needs_pfs():
    cluster = Cluster(seed=57)
    service = deploy(cluster, n=2)
    with pytest.raises(ServiceError, match="PFS"):
        ResilienceManager(service, 1.0, allocate_node=lambda: None)


def test_resilience_recovers_from_process_death():
    cluster = Cluster(seed=58)
    pfs = ParallelFileSystem()
    service = deploy(cluster, n=3, pfs=pfs)
    spares = ["spare0"]
    manager = ResilienceManager(
        service,
        checkpoint_interval=2.0,
        allocate_node=lambda: spares.pop(0) if spares else None,
    )
    manager.start()
    cm = service.control
    victim = service.processes["kv1"]
    db = YokanClient(cm).make_handle(victim.address, 1)

    def fill():
        yield from db.put_multi([(f"k{i}", f"v{i}") for i in range(30)])

    service.run_control(fill())
    # Let at least one checkpoint happen, then kill the process.
    cluster.run(until=cluster.now + 5.0)
    assert manager.checkpoints_taken >= 1
    cluster.faults.kill_process(victim.margo.process)
    cluster.run(until=cluster.now + 40.0)
    manager.stop()
    assert len(manager.recoveries) == 1
    recovery = manager.recoveries[0]
    assert recovery.failed_process == "kv1"
    assert recovery.providers_restored >= 1
    # The restored provider serves the checkpointed data.
    replacement = service.processes[recovery.replacement_process]
    restored = replacement.bedrock.records["db-kv1-0"]
    assert restored.instance.backend.get(b"k7") == b"v7"
    # And the group converged to 3 members again.
    assert service.view().size == 3
