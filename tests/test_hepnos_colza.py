"""Tests for the HEPnOS-like event store and the Colza-like pipeline."""

import random

import pytest

from repro import Cluster
from repro.colza import ColzaClient, ColzaError, ColzaProvider
from repro.hepnos import (
    EventKey,
    HEPnOSService,
    decode_event_key,
    encode_event_key,
    event_prefix,
    nova_like_workflow,
    run_step,
)
from repro.ssg import SwimConfig, create_group

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


# ----------------------------------------------------------------------
# data model
# ----------------------------------------------------------------------
def test_event_key_encoding_roundtrip():
    key = EventKey("nova", 12, 3, 456)
    raw = encode_event_key(key, "raw")
    decoded, product = decode_event_key(raw)
    assert decoded == key
    assert product == "raw"
    no_product, product2 = decode_event_key(encode_event_key(key))
    assert no_product == key and product2 == ""


def test_event_key_order_preserved():
    keys = [
        EventKey("ds", 1, 1, 2),
        EventKey("ds", 1, 2, 1),
        EventKey("ds", 2, 0, 0),
        EventKey("ds", 1, 1, 10),
    ]
    encoded = sorted(encode_event_key(k) for k in keys)
    decoded = [decode_event_key(e)[0] for e in encoded]
    assert decoded == sorted(keys)


def test_event_key_validation():
    with pytest.raises(ValueError):
        EventKey("bad|name", 0, 0, 0)
    with pytest.raises(ValueError):
        EventKey("ds", -1, 0, 0)
    with pytest.raises(ValueError):
        encode_event_key(EventKey("ds", 0, 0, 0), "bad|product")
    with pytest.raises(ValueError):
        decode_event_key(b"onlyonepart")
    with pytest.raises(ValueError):
        event_prefix("ds", run=None, subrun=3)


def test_event_prefix_scoping():
    assert event_prefix("ds") == b"ds|"
    assert event_prefix("ds", 5) == b"ds|00000005|"
    assert event_prefix("ds", 5, 7) == b"ds|00000005|00000007|"


# ----------------------------------------------------------------------
# HEPnOS service
# ----------------------------------------------------------------------
@pytest.fixture()
def hepnos():
    cluster = Cluster(seed=61)
    service = HEPnOSService.deploy(
        cluster, nodes=["n0", "n1"], databases_per_process=2
    )
    client_margo = cluster.add_margo("app", node="napp")
    client = service.client(client_margo)
    return cluster, service, client_margo, client


def test_store_load_roundtrip(hepnos):
    cluster, _, cm, client = hepnos
    key = EventKey("nova", 1, 2, 3)

    def driver():
        yield from client.store_event(key, "raw", b"payload")
        exists = yield from client.event_exists(key, "raw")
        data = yield from client.load_event(key, "raw")
        return exists, data

    assert cluster.run_ult(cm, driver()) == (True, b"payload")


def test_events_shard_across_databases(hepnos):
    cluster, service, cm, client = hepnos

    def driver():
        items = [
            (EventKey("nova", 0, 0, i), "raw", b"x") for i in range(64)
        ]
        yield from client.store_batch(items)

    cluster.run_ult(cm, driver())
    counts = []
    for name, process in service.service.processes.items():
        for record in process.bedrock.records.values():
            if record.type_name == "yokan":
                counts.append(record.instance.backend.count())
    assert len(counts) == 4
    assert sum(counts) == 64
    assert all(c > 0 for c in counts)  # every shard got a share


def test_list_events_merges_all_shards(hepnos):
    cluster, _, cm, client = hepnos

    def driver():
        items = [(EventKey("nova", 1, 0, i), "raw", b"x") for i in range(20)]
        items += [(EventKey("nova", 2, 0, i), "raw", b"x") for i in range(5)]
        yield from client.store_batch(items)
        run1 = yield from client.list_events("nova", run=1)
        everything = yield from client.list_events("nova")
        return run1, everything

    run1, everything = cluster.run_ult(cm, driver())
    assert len(run1) == 20
    assert len(everything) == 25
    assert everything == sorted(everything)


def test_reshard_preserves_data(hepnos):
    cluster, service, cm, client = hepnos

    def fill():
        items = [(EventKey("nova", 0, 0, i), "raw", f"v{i}".encode()) for i in range(40)]
        yield from client.store_batch(items)

    cluster.run_ult(cm, fill())

    def reshard():
        count = yield from service.reshard(databases_per_process=1)
        return count

    new_count = service.service.run_control(reshard())
    assert new_count == 2
    client.refresh(service.shards)

    def verify():
        data = yield from client.load_event(EventKey("nova", 0, 0, 17), "raw")
        keys = yield from client.list_events("nova")
        return data, len(keys)

    data, total = cluster.run_ult(cm, verify())
    assert data == b"v17"
    assert total == 40


def test_workflow_steps_run(hepnos):
    cluster, _, cm, client = hepnos
    rng = random.Random(5)
    reports = []

    def driver():
        for step in nova_like_workflow(scale=1):
            report = yield from run_step(client, step, rng)
            reports.append(report)

    cluster.run_ult(cm, driver())
    assert [r.kind for r in reports] == ["ingest", "filter", "analysis"]
    assert all(r.duration > 0 for r in reports)
    assert all(r.operations > 0 for r in reports)


def test_workflow_step_validation():
    from repro.hepnos import WorkflowStep

    with pytest.raises(ValueError):
        WorkflowStep("x", "explode", 1, 1)
    with pytest.raises(ValueError):
        WorkflowStep("x", "ingest", -1, 1)


def test_client_requires_shards():
    cluster = Cluster(seed=1)
    margo = cluster.add_margo("app", node="n")
    from repro.hepnos import HEPnOSClient

    with pytest.raises(ValueError):
        HEPnOSClient(margo, [])


# ----------------------------------------------------------------------
# Colza
# ----------------------------------------------------------------------
def make_colza(n=3, seed=62):
    cluster = Cluster(seed=seed)
    margos = [cluster.add_margo(f"c{i}", node=f"n{i}") for i in range(n)]
    groups = create_group("colza-g", margos, cluster.randomness, swim=SWIM)
    providers = [
        ColzaProvider(margo, f"colza{i}", provider_id=1, group=group)
        for i, (margo, group) in enumerate(zip(margos, groups))
    ]
    app = cluster.add_margo("app", node="napp")
    pipeline = ColzaClient(app).make_pipeline_handle(
        [m.address for m in margos], provider_id=1
    )
    return cluster, margos, groups, providers, app, pipeline


def test_stage_and_execute():
    cluster, margos, _, providers, app, pipeline = make_colza()
    chunks = [bytes([i]) * 1000 for i in range(6)]

    def driver():
        yield from pipeline.stage(iteration=1, chunks=chunks)
        result = yield from pipeline.execute(iteration=1)
        return result

    result = cluster.run_ult(app, driver())
    assert result["chunks"] == 6
    assert result["bytes"] == 6000
    assert result["members"] == 3


def test_stale_view_detected_and_recovered():
    """The paper's protocol: a member dies; the client's stamped hash no
    longer matches; providers reject; the client refreshes and retries."""
    cluster, margos, groups, providers, app, pipeline = make_colza(n=4)
    cluster.run(until=2.0)
    old_hash = pipeline.view_hash
    # Kill one member; wait until survivors converge on the new view.
    cluster.faults.kill_process(margos[3].process)
    cluster.run(until=40.0)
    assert groups[0].view.size == 3

    def driver():
        yield from pipeline.stage(iteration=2, chunks=[b"z" * 100] * 4)
        result = yield from pipeline.execute(iteration=2)
        return result

    result = cluster.run_ult(app, driver())
    assert result["members"] == 3
    assert pipeline.view_hash != old_hash
    assert pipeline.view_refreshes >= 1
    # At least one provider rejected a stale RPC.
    assert sum(p.stale_rejections for p in providers[:3]) >= 1


def test_execute_empty_iteration():
    cluster, _, _, _, app, pipeline = make_colza()

    def driver():
        result = yield from pipeline.execute(iteration=99)
        return result

    result = cluster.run_ult(app, driver())
    assert result["chunks"] == 0
    assert result["bytes"] == 0


def test_pipeline_requires_members():
    cluster = Cluster(seed=1)
    app = cluster.add_margo("app", node="n")
    with pytest.raises(ColzaError):
        ColzaClient(app).make_pipeline_handle([], provider_id=1)
