"""Regression tests for the hot-path kernel optimizations (P0).

These pin the *semantics* that the perf work must not change:

* WaitEvent timeout and wake both resume the task on a fresh
  event-loop turn (symmetric scheduling, deterministic ordering);
* ``SimKernel.run`` reports every pending task failure, not just the
  first;
* cancelled-timer heap compaction is invisible: bit-identical event
  order with and without it, and mass cancellation does not grow the
  queue without bound.
"""

import pytest

from repro.sim import SimKernel, SimulationError, Sleep, Task, WaitEvent
from repro.sim import kernel as kernel_mod


@pytest.fixture(params=["wheel", "heap"])
def backend(request):
    """Every fastpath fixture runs under both event-queue backends; the
    wheel and the heap must be observationally identical."""
    return request.param


# ----------------------------------------------------------------------
# WaitEvent timeout/wake symmetry (satellite a)
# ----------------------------------------------------------------------
def test_wait_event_timeout_resumes_on_fresh_turn(backend):
    """A timed-out waiter resumes *after* other callbacks at the same
    deadline, exactly like an event wake would -- not synchronously
    inside the timeout timer's fire."""
    kernel = SimKernel(backend)
    evt = kernel.event()
    order = []

    def waiter():
        yield WaitEvent(evt, timeout=1.0)
        order.append("resumed")

    kernel.spawn(waiter())
    kernel.run(until=0.0)  # let the wait register its timeout timer
    # This timer lands at the same deadline but with a *later* seq than
    # the timeout timer.  If the timeout resumed synchronously the task
    # would run first; the symmetric fix defers it to a fresh turn.
    kernel.schedule(1.0, lambda: order.append("tick"))
    kernel.run()
    assert order == ["tick", "resumed"]


def test_wait_event_wake_resumes_on_fresh_turn(backend):
    """Mirror of the timeout case: an event wake also defers."""
    kernel = SimKernel(backend)
    evt = kernel.event()
    order = []

    def waiter():
        value = yield WaitEvent(evt, timeout=10.0)
        order.append(("resumed", value))

    kernel.spawn(waiter())
    kernel.run(until=0.0)

    def setter():
        evt.set("go")
        order.append(("set",))

    kernel.schedule(1.0, setter)
    kernel.schedule(1.0, lambda: order.append(("tick",)))
    kernel.run()
    assert order == [("set",), ("tick",), ("resumed", "go")]


def test_wait_event_timeout_removes_waiter(backend):
    """After a timeout the waiter is deregistered: a later set() must
    not step the task a second time."""
    kernel = SimKernel(backend)
    evt = kernel.event()
    resumes = []

    def waiter():
        value = yield WaitEvent(evt, timeout=1.0)
        resumes.append(value)
        yield Sleep(5.0)

    kernel.spawn(waiter(), daemon=True)
    kernel.schedule(2.0, lambda: evt.set("late"))
    kernel.run()
    assert resumes == [kernel_mod.TIMED_OUT]
    assert evt._waiters == []


# ----------------------------------------------------------------------
# All pending task failures are reported (satellite b)
# ----------------------------------------------------------------------
def test_run_reports_all_pending_task_failures(backend):
    kernel = SimKernel(backend)

    def boom(msg):
        raise ValueError(msg)
        yield  # pragma: no cover - makes this a generator

    t1 = Task(kernel, boom("first"), "t1", False)
    t2 = Task(kernel, boom("second"), "t2", False)
    # Step both outside run() so two failures are pending at once.
    t1._step()
    t2._step()
    with pytest.raises(ValueError, match="first") as info:
        kernel.run()
    error = info.value
    assert any("second" in note for note in error.__notes__)
    assert [t.name for t in error.pending_task_failures] == ["t2"]
    # The queue was drained: a later run does not re-raise stale errors.
    kernel.run()


def test_single_task_failure_has_no_notes(backend):
    kernel = SimKernel(backend)

    def bad():
        yield Sleep(1.0)
        raise ValueError("boom")

    kernel.spawn(bad())
    with pytest.raises(ValueError, match="boom") as info:
        kernel.run()
    assert not getattr(info.value, "pending_task_failures", None)


# ----------------------------------------------------------------------
# Timer cancellation + heap compaction (satellite c)
# ----------------------------------------------------------------------
def _golden_workload(backend="wheel"):
    """A seeded mix of sleeps, waits, timers and mass cancellation."""
    kernel = SimKernel(backend)
    log = []
    evt = kernel.event()

    def sleeper(i):
        for n in range(3):
            yield Sleep(0.5 * (i + 1))
            log.append((kernel.now, f"s{i}.{n}"))

    def waiter():
        value = yield WaitEvent(evt, timeout=2.0)
        log.append((kernel.now, f"wait:{value!r}"))

    def canceller():
        timers = [
            kernel.schedule(5.0 + j, lambda: log.append((kernel.now, "never")))
            for j in range(200)
        ]
        yield Sleep(0.25)
        for timer in timers:
            timer.cancel()
        log.append((kernel.now, "cancelled"))

    for i in range(3):
        kernel.spawn(sleeper(i), name=f"s{i}")
    kernel.spawn(waiter(), name="w")
    kernel.spawn(canceller(), name="c")
    kernel.schedule(1.0, lambda: log.append((kernel.now, "tick1")))
    kernel.schedule(1.0, lambda: evt.set("go"))
    kernel.run()
    return kernel, log


GOLDEN_TRACE = [
    (0.25, "cancelled"),
    (0.5, "s0.0"),
    (1.0, "tick1"),
    (1.0, "s1.0"),
    (1.0, "s0.1"),
    (1.0, "wait:'go'"),
    (1.5, "s2.0"),
    (1.5, "s0.2"),
    (2.0, "s1.1"),
    (3.0, "s2.1"),
    (3.0, "s1.2"),
    (4.5, "s2.2"),
]


def test_golden_trace_event_order_pinned(backend):
    _, log = _golden_workload(backend)
    assert log == GOLDEN_TRACE


def test_golden_trace_identical_with_and_without_compaction(monkeypatch, backend):
    """Compaction must be bit-invisible: the same workload produces the
    same event order whether the cancelled-timer sweep runs or not."""
    monkeypatch.setattr(kernel_mod, "_COMPACT_MIN_CANCELLED", 1)
    kernel_on, log_compacting = _golden_workload(backend)
    monkeypatch.setattr(kernel_mod, "_COMPACT_MIN_CANCELLED", 10**9)
    kernel_off, log_plain = _golden_workload(backend)
    assert log_compacting == log_plain == GOLDEN_TRACE
    # The low threshold really did trigger sweeps, the high one didn't.
    assert kernel_on._seq == kernel_off._seq


def test_mass_cancelled_timers_do_not_grow_queue_unboundedly(backend):
    kernel = SimKernel(backend)
    n = 10_000
    timers = [kernel.schedule(100.0 + i, lambda: None) for i in range(n)]
    assert kernel.queued() == n
    for timer in timers:
        timer.cancel()
    # Compaction sweeps as cancellations accumulate; only a residue
    # below the sweep threshold may remain.
    assert kernel.queued() < 2 * kernel_mod._COMPACT_MIN_CANCELLED
    kernel.run()
    assert kernel.now == 0.0  # nothing ever fired


def test_max_events_catches_same_timestamp_runaway(backend):
    """A zero-delay self-rescheduling callback pins the batch loop to
    one deadline forever; the ``max_events`` guard must fire from
    *inside* that loop (regression: the check once ran only after the
    batch drained, so this workload hung instead of raising)."""
    kernel = SimKernel(backend)

    def reschedule():
        kernel.schedule(0.0, reschedule)

    kernel.schedule(0.0, reschedule)
    with pytest.raises(SimulationError, match="max_events"):
        kernel.run(max_events=1_000)


def test_cancel_after_fire_does_not_count_toward_compaction(backend):
    """Cancelling an already-fired timer is a no-op for the compaction
    trigger: the entry has left the heap, so counting it would only
    cause needless sweeps."""
    kernel = SimKernel(backend)
    timers = [kernel.schedule(0.1, lambda: None) for _ in range(10)]
    kernel.run()
    for timer in timers:
        timer.cancel()
        assert timer.cancelled
    assert kernel._cancelled_count == 0


def test_compaction_preserves_live_timers(backend):
    kernel = SimKernel(backend)
    fired = []
    live = [kernel.schedule(1.0 + i * 0.001, lambda i=i: fired.append(i)) for i in range(50)]
    dead = [kernel.schedule(50.0, lambda: fired.append("dead")) for _ in range(500)]
    for timer in dead:
        timer.cancel()
    assert kernel.queued() < 550  # a sweep happened
    kernel.run()
    assert fired == list(range(50))
    assert live[0].deadline == 1.0
