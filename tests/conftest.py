"""Test-suite conftest: make shared test helpers importable.

``interproc_util`` lives next to the test modules; putting this
directory on ``sys.path`` keeps the helper importable regardless of
pytest's rootdir-relative import mode.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
