"""Tests for the diagnostic report tooling."""

import json
import textwrap

import pytest

from repro import Cluster
from repro.bedrock import boot_process
from repro.monitoring import StatisticsMonitor
from repro.margo.ult import Compute, UltSleep
from repro.tools import (
    cluster_report,
    config_report,
    lint_report,
    monitoring_report,
    process_report,
    profile_report,
    trace_report,
    xray_report,
)
from repro.yokan import YokanClient


@pytest.fixture()
def rig():
    cluster = Cluster(seed=81)
    monitor = StatisticsMonitor()
    margo, bedrock = boot_process(
        cluster, "svc", "n0",
        {
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": [
                {"name": "remi0", "type": "remi", "provider_id": 0},
                {"name": "db0", "type": "yokan", "provider_id": 1,
                 "dependencies": {"mover": "remi0"}},
            ],
        },
        monitors=(monitor,),
    )
    app = cluster.add_margo("app", node="na")
    db = YokanClient(app).make_handle(margo.address, 1)

    def driver():
        yield from db.put("k", "v" * 100)
        yield from db.get("k")
        yield from db.count()

    cluster.run_ult(app, driver())
    return cluster, bedrock, monitor


def test_cluster_report_contents(rig):
    cluster, _, _ = rig
    report = cluster_report(cluster)
    assert "node n0" in report
    assert "process svc [up]" in report
    assert "messages:" in report


def test_cluster_report_shows_faults(rig):
    cluster, bedrock, _ = rig
    cluster.faults.kill_process(bedrock.margo.process)
    report = cluster_report(cluster)
    assert "process svc [DEAD]" in report
    assert "fault history:" in report
    assert "process: svc" in report


def test_process_report_contents(rig):
    _, bedrock, _ = rig
    report = process_report(bedrock)
    assert "pool __primary__" in report
    assert "db0 (type=yokan id=1" in report
    assert "depends on mover: remi0" in report
    assert "depended on by: ['local:db0']" in report
    assert "libraries:" in report


def test_monitoring_report_contents(rig):
    _, _, monitor = rig
    report = monitoring_report(monitor)
    assert "yokan_put" in report
    assert "yokan_get" in report
    assert "calls=1" in report
    # Sorted by total time: header first, then entries.
    lines = report.splitlines()
    assert lines[0].startswith("top ")
    assert len(lines) >= 4


def test_monitoring_report_empty():
    report = monitoring_report(StatisticsMonitor())
    assert "top 0" in report


def test_lint_report_clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text("def f(kernel):\n    return kernel.now\n")
    assert lint_report(str(tmp_path)) == "mochi-lint: clean"


def test_lint_report_renders_findings(tmp_path):
    (tmp_path / "dirty.py").write_text(
        textwrap.dedent(
            """
            import time
            def worker():
                yield Sleep(1.0)
                time.sleep(1.0)
            """
        )
    )
    report = lint_report(str(tmp_path))
    assert "2 finding(s)" in report  # wall clock + blocking call in ULT
    assert "MCH001" in report
    assert "MCH010" in report
    assert "dirty.py:5" in report


def test_lint_report_includes_sanitizer_violations(tmp_path):
    from repro.analysis import sanitize
    from repro.margo.ult import UltMutex, UltSleep

    (tmp_path / "ok.py").write_text("x = 1\n")
    sanitize.reset()
    sanitize.enable(strict=False)
    try:
        cluster = Cluster(seed=3)
        margo = cluster.add_margo("m", node="n0")
        mutex = UltMutex(cluster.kernel, name="state")

        def bad():
            yield from mutex.acquire()
            yield UltSleep(0.1)  # mochi-lint: disable=MCH011 -- the violation under test
            mutex.release()

        cluster.run_ult(margo, bad())
        report = lint_report(str(tmp_path))
        assert "MCH011" in report
        assert "ult:" in report  # the runtime violation's context location
    finally:
        sanitize.disable()


def test_profile_report_contents():
    cluster = Cluster(seed=82)
    profiled = {"observability": {"profiling": True, "profile_window": 0.05}}
    a = cluster.add_margo("a", "n0", config=profiled)
    b = cluster.add_margo("b", "n1", config=profiled)
    plain = cluster.add_margo("plain", "n2")

    def echo(ctx):
        yield Compute(1e-6)
        return {"ok": True}

    b.register("echo_ping", echo, provider_id=3)

    def client():
        for _ in range(10):
            yield from a.forward(b.address, "echo_ping", {"x": 1}, provider_id=3)
            yield UltSleep(0.01)

    cluster.run_ult(a, client())
    cluster.kernel.run(until=0.4)

    report = profile_report(a, b, plain)
    assert "process a: window=0.05s" in report
    assert "process plain: profiling disabled" in report
    assert "% busy" in report
    assert "echo:3" in report  # server-side provider rates
    assert "latency decomposition" in report
    assert "echo_ping/3:" in report
    assert "waterfall" in report
    assert "client_queue" in report and "handler" in report


def _xray_cluster():
    cluster = Cluster(seed=88)
    obs = {
        "tracing": True,
        "profiling": True,
        "profile_window": 0.005,
        "xray": True,
    }
    srv = cluster.add_margo("srv", "n0", config={"observability": dict(obs)})
    cli = cluster.add_margo("cli", "n1", config={"observability": dict(obs)})

    def echo(ctx):
        # A slow tail every 10th request, so differential attribution
        # has a positive-excess handler segment to render.
        yield Compute(200e-6 if ctx.args["i"] % 10 == 0 else 5e-6)
        return ctx.args

    srv.register("echo", echo)

    def driver():
        for i in range(30):
            yield from cli.forward(srv.address, "echo", {"i": i})
            yield UltSleep(0.0005)  # spread requests across profiler windows

    cluster.run_ult(cli, driver())
    cluster.run(until=cluster.now + 0.005)
    return cluster, srv, cli


def test_xray_report_disabled():
    cluster = Cluster(seed=88)
    cluster.add_margo("plain", "n0")
    report = xray_report(cluster)
    assert report.startswith("mochi-xray: disabled")
    assert '"xray": true' in report


def test_xray_report_contents():
    cluster, _srv, _cli = _xray_cluster()
    report = xray_report(cluster, last=2, actions=2, paths=1)
    lines = report.splitlines()
    assert lines[0].startswith("mochi-xray: ")
    assert "closed window(s)" in lines[0]
    assert "recent path(s)" in lines[0]
    assert any(l.strip().startswith("window ") and "p99=" in l for l in lines)
    assert any("excess" in l and "us" in l for l in lines)
    assert any(l.strip().startswith("what-if") for l in lines)
    # One rendered path record: the echo RPC, client and server named.
    assert any("echo" in l for l in lines)
    # Accepts a plane directly too, and renders identically.
    assert xray_report(cluster.kernel.xray_plane, last=2, actions=2, paths=1) == report


def test_trace_report_includes_critical_path():
    cluster, srv, cli = _xray_cluster()
    report = trace_report(*cluster.tracers(), limit=2)
    critical = [l for l in report.splitlines() if "critical path:" in l]
    assert critical  # one summary per rendered trace tree
    for line in critical:
        # "critical path: K/N spans, X.XXus gated -- cat:name > ..."
        assert "spans," in line
        assert "us gated -- " in line
        assert " > " in line or "rpc:" in line


def test_config_report_on_documents_and_files(tmp_path):
    good = {
        "argobots": {
            "pools": [{"name": "p"}],
            "xstreams": [{"name": "x", "scheduler": {"pools": ["p"]}}],
        }
    }
    assert config_report(good, "good") == "good: config OK"

    bad = dict(good, progress_pool="ghost")
    report = config_report(bad, "bad")
    assert "1 problem(s)" in report
    assert "MCH020" in report

    path = tmp_path / "cfg.json"
    path.write_text(json.dumps(bad))
    assert "MCH020" in config_report(str(path))

    assert "MCH020" in config_report(json.dumps(bad), "inline")
