"""Unit tests for the storage substrate."""

import pytest

from repro.sim import FaultInjector, Network, SimKernel
from repro.storage import (
    LocalStore,
    NoSuchFileError,
    ParallelFileSystem,
    StorageCostModel,
    StorageError,
)


@pytest.fixture()
def node():
    kernel = SimKernel()
    network = Network(kernel)
    return network.add_node("n0"), kernel, network


def test_local_store_crud(node):
    n, _, _ = node
    store = LocalStore(n)
    store.write("a/b", b"hello")
    assert store.read("a/b") == b"hello"
    assert store.exists("a/b")
    assert store.size_of("a/b") == 5
    store.write("a/c", b"x" * 10)
    assert store.list("a/") == ["a/b", "a/c"]
    assert store.total_bytes == 15
    store.delete("a/b")
    assert not store.exists("a/b")


def test_local_store_missing_file(node):
    n, _, _ = node
    store = LocalStore(n)
    with pytest.raises(NoSuchFileError):
        store.read("ghost")
    with pytest.raises(NoSuchFileError):
        store.delete("ghost")


def test_local_store_type_check(node):
    n, _, _ = node
    store = LocalStore(n)
    with pytest.raises(TypeError):
        store.write("p", "not-bytes")  # type: ignore[arg-type]


def test_local_store_attached_to_node(node):
    n, _, _ = node
    store = LocalStore(n, name="nvme0")
    assert n.attachments["nvme0"] is store


def test_local_store_wiped_on_node_death(node):
    n, kernel, network = node
    store = LocalStore(n)
    store.write("data", b"precious")
    FaultInjector(kernel, network).kill_node(n)
    assert store.wiped
    with pytest.raises(StorageError):
        store.read("data")


def test_local_store_survives_process_death(node):
    n, kernel, network = node
    proc = network.add_process("p", n)
    store = LocalStore(n)
    store.write("data", b"precious")
    FaultInjector(kernel, network).kill_process(proc)
    assert store.read("data") == b"precious"  # transient failure semantics


def test_cost_model():
    cost = StorageCostModel(
        read_latency=1e-6, write_latency=2e-6, read_bandwidth=1e9, write_bandwidth=5e8
    )
    assert cost.read_time(1_000_000) == pytest.approx(1e-6 + 1e-3)
    assert cost.write_time(1_000_000) == pytest.approx(2e-6 + 2e-3)


def test_local_store_costs_exposed(node):
    n, _, _ = node
    store = LocalStore(n)
    assert store.write_cost(1 << 20) > store.read_cost(1 << 20) > 0


def test_pfs_crud_and_costs():
    pfs = ParallelFileSystem()
    pfs.write("ckpt/1", b"abc")
    assert pfs.read("ckpt/1") == b"abc"
    assert pfs.exists("ckpt/1")
    assert pfs.list("ckpt/") == ["ckpt/1"]
    assert pfs.total_bytes == 3
    assert pfs.write_cost(1 << 20) > pfs.read_cost(1 << 20) > 0
    pfs.delete("ckpt/1")
    with pytest.raises(NoSuchFileError):
        pfs.read("ckpt/1")
    with pytest.raises(NoSuchFileError):
        pfs.delete("ckpt/1")
    with pytest.raises(TypeError):
        pfs.write("p", 123)  # type: ignore[arg-type]


def test_pfs_slower_than_local(node):
    n, _, _ = node
    store = LocalStore(n)
    pfs = ParallelFileSystem()
    size = 1 << 24
    assert pfs.write_cost(size) > store.write_cost(size)
    assert pfs.read_cost(size) > store.read_cost(size)
