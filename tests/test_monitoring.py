"""Tests for the monitoring subsystem: hooks, statistics, Listing-1 JSON."""

import json

import pytest

from repro import Cluster
from repro.margo import Compute
from repro.mercury import NULL_PROVIDER, NULL_RPC, rpc_id_of
from repro.monitoring import (
    HOOK_NAMES,
    CallbackMonitor,
    Monitor,
    PeriodicSampler,
    RunningStats,
    StatisticsMonitor,
)


# ----------------------------------------------------------------------
# RunningStats
# ----------------------------------------------------------------------
def test_running_stats_basic():
    stats = RunningStats()
    for v in [1.0, 2.0, 3.0]:
        stats.update(v)
    assert stats.num == 3
    assert stats.avg == pytest.approx(2.0)
    assert stats.min == 1.0
    assert stats.max == 3.0
    assert stats.sum == pytest.approx(6.0)
    assert stats.var == pytest.approx(2.0 / 3.0)


def test_running_stats_empty_json():
    assert RunningStats().to_json() == {"num": 0}


def test_running_stats_json_fields():
    stats = RunningStats()
    stats.update(0.5)
    doc = stats.to_json()
    assert set(doc) == {"num", "avg", "min", "max", "var", "sum"}


def test_running_stats_merge_matches_sequential():
    import random

    rng = random.Random(3)
    values = [rng.random() for _ in range(100)]
    all_stats = RunningStats()
    for v in values:
        all_stats.update(v)
    a, b = RunningStats(), RunningStats()
    for v in values[:40]:
        a.update(v)
    for v in values[40:]:
        b.update(v)
    a.merge(b)
    assert a.num == all_stats.num
    assert a.avg == pytest.approx(all_stats.avg)
    assert a.var == pytest.approx(all_stats.var)
    assert a.min == all_stats.min
    assert a.max == all_stats.max


def test_running_stats_merge_empty_cases():
    a, b = RunningStats(), RunningStats()
    b.update(2.0)
    a.merge(b)
    assert a.num == 1 and a.avg == 2.0
    a.merge(RunningStats())
    assert a.num == 1


# ----------------------------------------------------------------------
# CallbackMonitor
# ----------------------------------------------------------------------
def test_callback_monitor_rejects_unknown_hooks():
    with pytest.raises(ValueError, match="unknown monitoring hooks"):
        CallbackMonitor({"on_bogus": lambda **kw: None})


def test_callback_monitor_invoked_at_lifecycle_points():
    cluster = Cluster(seed=1)
    events = []
    monitor = CallbackMonitor(
        {
            "on_forward_start": lambda **kw: events.append("forward_start"),
            "on_ult_start": lambda **kw: events.append("ult_start"),
            "on_respond": lambda **kw: events.append("respond"),
            "on_response_received": lambda **kw: events.append("response"),
        }
    )
    server = cluster.add_margo("server", node="n0", monitors=(monitor,))
    client = cluster.add_margo("client", node="n1", monitors=(monitor,))
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", 1))

    cluster.run_ult(client, driver())
    assert events == ["forward_start", "ult_start", "respond", "response"]


def test_callback_monitor_dispatches_every_hook():
    # One RPC + one bulk transfer + a shutdown exercise the complete
    # hook surface; each registered callback must fire at least once.
    cluster = Cluster(seed=1)
    fired = set()
    monitor = CallbackMonitor(
        {name: (lambda _n=name, **kw: fired.add(_n)) for name in HOOK_NAMES}
    )
    server = cluster.add_margo("server", node="n0", monitors=(monitor,))
    client = cluster.add_margo("client", node="n1", monitors=(monitor,))
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        yield from client.forward(server.address, "echo", "x")
        yield from client.bulk_transfer(server.address, 1 << 16)

    cluster.run_ult(client, driver())
    server.shutdown()
    assert fired == set(HOOK_NAMES)


# ----------------------------------------------------------------------
# StatisticsMonitor (Listing 1)
# ----------------------------------------------------------------------
def echo_workload(cluster, server, client, n=3, payload="x"):
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        for _ in range(n):
            yield from client.forward(server.address, "echo", payload)

    cluster.run_ult(client, driver())


def test_statistics_monitor_listing1_key_format():
    cluster = Cluster(seed=1)
    server_mon = StatisticsMonitor()
    server = cluster.add_margo("server", node="n0", monitors=(server_mon,))
    client = cluster.add_margo("client", node="n1")
    echo_workload(cluster, server, client)
    doc = server_mon.to_json()
    assert set(doc) == {"rpcs"}
    (key,) = doc["rpcs"].keys()
    rpc_id = rpc_id_of("echo")
    assert key == f"{NULL_RPC}:{NULL_PROVIDER}:{rpc_id}:{NULL_PROVIDER}"
    record = doc["rpcs"][key]
    assert record["name"] == "echo"
    assert record["rpc_id"] == rpc_id
    assert record["provider_id"] == NULL_PROVIDER
    assert record["parent_rpc_id"] == NULL_RPC
    assert record["parent_provider_id"] == NULL_PROVIDER


def test_statistics_monitor_target_ult_duration_stats():
    cluster = Cluster(seed=1)
    server_mon = StatisticsMonitor()
    server = cluster.add_margo("server", node="n0", monitors=(server_mon,))
    client = cluster.add_margo("client", node="n1")
    echo_workload(cluster, server, client, n=3)
    (record,) = server_mon.find_by_name("echo")
    peer_label = f"received from {client.address}"
    peer = record["target"][peer_label]
    assert peer["ult"]["duration"]["num"] == 3
    assert peer["ult"]["duration"]["avg"] > 0
    assert peer["ult"]["duration"]["max"] >= peer["ult"]["duration"]["avg"]
    assert peer["ult"]["queued"]["num"] == 3


def test_statistics_monitor_origin_forward_stats():
    cluster = Cluster(seed=1)
    client_mon = StatisticsMonitor()
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1", monitors=(client_mon,))
    echo_workload(cluster, server, client, n=5)
    (record,) = client_mon.find_by_name("echo")
    peer = record["origin"][f"sent to {server.address}"]
    assert peer["forward"]["num"] == 5
    assert peer["forward"]["avg"] > 0
    assert peer["serialize"]["num"] == 5


def test_statistics_monitor_nested_rpc_parent_context():
    cluster = Cluster(seed=1)
    b_mon = StatisticsMonitor()
    a = cluster.add_margo("a", node="n0")
    b = cluster.add_margo("b", node="n1", monitors=(b_mon,))
    c = cluster.add_margo("c", node="n2")
    c.register("leaf", lambda ctx: 1, provider_id=7)

    def relay(ctx):
        return (yield from b.forward(c.address, "leaf", provider_id=7))

    b.register("relay", relay, provider_id=3)

    def driver():
        return (yield from a.forward(b.address, "relay", provider_id=3))

    cluster.run_ult(a, driver())
    # b's origin-side record for "leaf" must carry the parent context
    # (relay, provider 3) -- paper Listing 1's parent_rpc_id semantics.
    (leaf_record,) = b_mon.find_by_name("leaf")
    assert leaf_record["parent_rpc_id"] == rpc_id_of("relay")
    assert leaf_record["parent_provider_id"] == 3
    assert leaf_record["provider_id"] == 7


def test_statistics_monitor_json_round_trip_nested_rpcs():
    # Under nested RPCs the document carries one record per calling
    # context (Listing 1's parent_rpc_id keys); the JSON text must
    # round-trip losslessly back to the in-memory document.
    cluster = Cluster(seed=1)
    b_mon = StatisticsMonitor()
    a = cluster.add_margo("a", node="n0")
    b = cluster.add_margo("b", node="n1", monitors=(b_mon,))
    c = cluster.add_margo("c", node="n2")
    c.register("leaf", lambda ctx: 1, provider_id=7)

    def relay(ctx):
        return (yield from b.forward(c.address, "leaf", provider_id=7))

    b.register("relay", relay, provider_id=3)

    def driver():
        return (yield from a.forward(b.address, "relay", provider_id=3))

    cluster.run_ult(a, driver())
    doc = b_mon.to_json()
    assert json.loads(b_mon.dumps()) == doc
    # Both contexts present: relay called from the top (parent NULL_RPC)
    # and leaf called from inside relay's handler.
    relay_key = f"{NULL_RPC}:{NULL_PROVIDER}:{rpc_id_of('relay')}:3"
    leaf_key = f"{rpc_id_of('relay')}:3:{rpc_id_of('leaf')}:7"
    assert relay_key in doc["rpcs"]
    assert leaf_key in doc["rpcs"]


def test_statistics_monitor_runtime_query_and_dump():
    cluster = Cluster(seed=1)
    dumps = []
    monitor = StatisticsMonitor(dump_callback=dumps.append)
    server = cluster.add_margo("server", node="n0", monitors=(monitor,))
    client = cluster.add_margo("client", node="n1")
    echo_workload(cluster, server, client)
    # Runtime query works before shutdown.
    assert monitor.rpc_names() == {"echo"}
    assert monitor.num_contexts == 1
    # JSON dump on finalize (paper: "outputs them as JSON when shutting
    # down the service").
    server.shutdown()
    assert len(dumps) == 1
    parsed = json.loads(dumps[0])
    assert "rpcs" in parsed
    assert monitor.finalized_at is not None


def test_statistics_monitor_bulk_stats():
    cluster = Cluster(seed=1)
    monitor = StatisticsMonitor()
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1", monitors=(monitor,))

    def driver():
        yield from client.bulk_transfer(server.address, 1 << 20)
        yield from client.bulk_transfer(server.address, 1 << 21)

    cluster.run_ult(client, driver())
    doc = monitor.to_json()
    assert doc["bulk"]["duration"]["num"] == 2
    assert doc["bulk"]["size"]["sum"] == float((1 << 20) + (1 << 21))


def test_monitoring_adds_simulated_overhead():
    def run(monitors):
        cluster = Cluster(seed=1)
        server = cluster.add_margo("server", node="n0", monitors=monitors)
        client = cluster.add_margo("client", node="n1", monitors=monitors)
        echo_workload(cluster, server, client, n=50)
        return cluster.now

    bare = run(())
    monitored = run((StatisticsMonitor(),))
    assert monitored > bare  # monitoring costs simulated time...
    assert monitored < bare * 1.2  # ...but only a small fraction


# ----------------------------------------------------------------------
# PeriodicSampler
# ----------------------------------------------------------------------
def test_sampler_records_pool_sizes_and_inflight():
    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")

    def slow(ctx):
        yield Compute(0.05)
        return None

    server.register("slow", slow)
    sampler = PeriodicSampler(server, period=0.01, max_samples=50)
    sampler.start()

    def driver():
        for _ in range(10):
            yield from client.forward(server.address, "slow")

    cluster.run_ult(client, driver())
    cluster.run()
    assert len(sampler.samples) == 50
    assert sampler.latest is not None
    stats = sampler.pool_size_stats("__primary__")
    assert stats.num == 50
    inflight = sampler.inflight_stats("incoming")
    assert inflight.max >= 1.0  # at some sample, a slow RPC was executing


def test_sampler_validation():
    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0")
    with pytest.raises(ValueError):
        PeriodicSampler(server, period=0.0)
    sampler = PeriodicSampler(server, period=1.0)
    sampler.start()
    assert sampler.running
    with pytest.raises(RuntimeError):
        sampler.start()
    sampler.stop()
    with pytest.raises(ValueError):
        sampler.inflight_stats("sideways")


def test_sampler_stops_on_finalize():
    cluster = Cluster(seed=1)
    server = cluster.add_margo("server", node="n0")
    sampler = PeriodicSampler(server, period=0.5)
    sampler.start()
    cluster.kernel.schedule(2.0, server.shutdown)
    cluster.run()
    assert len(sampler.samples) <= 6


def test_monitor_base_hooks_are_noops():
    # The base class must tolerate every hook without state.
    cluster = Cluster(seed=1)
    monitor = Monitor()
    server = cluster.add_margo("server", node="n0", monitors=(monitor,))
    client = cluster.add_margo("client", node="n1", monitors=(monitor,))
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        return (yield from client.forward(server.address, "echo", 1))

    assert cluster.run_ult(client, driver()) == 1
