"""mochi-xray: causal edges, critical paths, tail attribution, what-if.

Covers the attribution math and what-if engine on synthetic inputs, the
three known-bottleneck scenarios (the injected bottleneck must be the
top attributed segment AND the top-ranked action's target, byte-
identically across seeded runs), the recording plane's gating and
bounds, the Bedrock RPCs, the exporters, and the manual-span API.
"""

import json

import pytest

from repro import Cluster
from repro.bedrock import BedrockClient, boot_process
from repro.margo.ult import Compute
from repro.observability import ObservabilitySpec, Tracer
from repro.observability.exporters import chrome_trace_profile
from repro.observability.xray import (
    EDGES_ATTR,
    XrayPlane,
    attribute_paths,
    candidate_for,
    critical_chain,
    critical_span_ids,
    nearest_rank,
    segment_key,
    what_if,
)
from repro.observability.xray.scenarios import (
    SCENARIOS,
    scenario_lock,
    scenario_network,
    scenario_pool,
)

XRAY_OBS = {
    "tracing": True,
    "profiling": True,
    "profile_window": 0.005,
    "xray": True,
}


def _path(total, slow=0.0, trace="t0", span="s0"):
    """A synthetic path record: fixed overheads + ``slow`` extra sched."""
    segments = [
        {"process": "cli", "pool": "", "phase": "client_queue", "duration": 1e-6},
        {"process": "cli->srv", "pool": "wire", "phase": "network", "duration": 5e-6},
        {"process": "srv", "pool": "p0", "phase": "sched", "duration": 1e-6 + slow},
        {"process": "srv", "pool": "p0", "phase": "handler", "duration": total - 7e-6 - slow},
    ]
    return {
        "trace_id": trace,
        "span_id": span,
        "rpc": "work",
        "provider": 1,
        "weight": 1,
        "client": "cli",
        "server": "srv",
        "start": 0.0,
        "end": total,
        "total": total,
        "segments": segments,
    }


# ----------------------------------------------------------------------
# attribution math
# ----------------------------------------------------------------------
def test_nearest_rank_quantiles():
    values = [1.0, 2.0, 3.0, 4.0]
    assert nearest_rank(values, 0.5) == 2.0
    assert nearest_rank(values, 0.99) == 4.0
    assert nearest_rank(values, 0.25) == 1.0
    assert nearest_rank([7.0], 0.99) == 7.0


def test_attribute_paths_empty():
    doc = attribute_paths([])
    assert doc["requests"] == 0
    assert doc["segments"] == []


def test_attribution_blames_the_slow_segment():
    # 98 fast requests, 2 slow ones whose entire excess is sched wait
    # (two, so the slow cohort spans the nearest-rank p99).
    paths = [_path(20e-6, trace=f"t{i}", span=f"s{i}") for i in range(98)]
    for i in (98, 99):
        paths.append(_path(120e-6, slow=100e-6, trace=f"t{i}", span=f"s{i}"))
    doc = attribute_paths(paths)
    assert doc["requests"] == 100
    assert doc["p99"] == pytest.approx(120e-6)
    top = doc["segments"][0]
    assert (top["process"], top["pool"], top["phase"]) == ("srv", "p0", "sched")
    assert top["excess"] == pytest.approx(100e-6)
    # segment_key round-trips the grouping key.
    assert segment_key(paths[0]["segments"][2]) == ("srv", "p0", "sched")


def test_what_if_shrinks_the_dominant_segment():
    paths = [_path(20e-6, trace=f"t{i}", span=f"s{i}") for i in range(98)]
    for i in (98, 99):
        paths.append(_path(120e-6, slow=100e-6, trace=f"t{i}", span=f"s{i}"))
    attribution = attribute_paths(paths)
    ranking = what_if(paths, attribution)
    top = ranking["actions"][0]
    assert top["action"] == "add_xstream"  # sched phase -> more xstreams
    assert top["target"] == "p0"
    # Halving the slow requests' 101us sched wait: 120us -> 69.5us p99.
    assert top["predicted_p99"] == pytest.approx(69.5e-6)
    assert top["predicted_improvement"] == pytest.approx(50.5e-6 / 120e-6)


def test_candidate_action_mapping():
    paths = [_path(20e-6)]
    sched = {"process": "srv", "pool": "p0", "phase": "sched"}
    lock = {"process": "srv", "pool": "mutex:m", "phase": "lock"}
    wire = {"process": "cli->srv", "pool": "wire", "phase": "network"}
    assert candidate_for(sched, paths)["action"] == "add_xstream"
    assert candidate_for(lock, paths)["action"] == "migrate_provider"
    assert candidate_for(wire, paths)["action"] == "add_node"


# ----------------------------------------------------------------------
# known-bottleneck scenarios (satellite 4 / acceptance)
# ----------------------------------------------------------------------
_EXPECTED_ACTION = {"pool": "add_xstream", "lock": "migrate_provider", "network": "add_node"}


@pytest.mark.parametrize("name,scenario", SCENARIOS)
def test_scenario_blames_injected_bottleneck(name, scenario):
    doc = scenario(seed=7)
    assert doc["requests"] > 0
    assert doc["windows"] >= 1
    injected = doc["injected_bottleneck"]
    top = doc["top_segment"]
    assert {k: top[k] for k in ("process", "pool", "phase")} == injected
    action = doc["top_action"]
    assert action["action"] == _EXPECTED_ACTION[name]
    assert action["predicted_improvement"] > 0.05
    # The action targets the injected bottleneck's location.
    assert injected["process"].startswith(str(action["segment"]["process"]))


@pytest.mark.parametrize("name,scenario", SCENARIOS)
def test_scenario_attribution_determinism(name, scenario):
    """Byte-identical across two seeded runs (CI repeats this under
    REPRO_SANITIZE=race)."""
    first = json.dumps(scenario(seed=11), indent=2, sort_keys=True)
    second = json.dumps(scenario(seed=11), indent=2, sort_keys=True)
    assert first == second


# ----------------------------------------------------------------------
# plane + recorder mechanics
# ----------------------------------------------------------------------
def test_plane_window_close_is_idempotent():
    plane = XrayPlane(kernel=None, max_paths=2, history=4)
    plane.add_path(_path(20e-6, span="a"))
    plane.add_path(_path(20e-6, span="b"))
    plane.add_path(_path(20e-6, span="c"))  # over max_paths: counted, dropped
    doc = plane.close_window(0, 0.0, 1.0)
    assert doc["requests"] == 2
    assert doc["dropped_paths"] == 1
    assert plane.close_window(0, 0.0, 1.0) is None  # second endpoint no-ops
    assert len(plane.windows) == 1
    # recent survives window close and respects filters.
    assert len(plane.critical_paths()) == 2
    assert plane.critical_paths(last=1)[0]["span_id"] in ("b", "c")
    assert plane.attribution(last=0) == []


def test_spec_xray_requires_profiling():
    with pytest.raises(ValueError):
        ObservabilitySpec.from_json({"xray": True})
    spec = ObservabilitySpec.from_json({"profiling": True, "xray": True})
    assert spec.xray
    assert ObservabilitySpec.from_json(spec.to_json()).xray


def _echo_cluster(seed=7, obs=None, n_rpcs=40):
    cluster = Cluster(seed=seed)
    obs = dict(obs or XRAY_OBS)
    server = cluster.add_margo("srv", node="n0", config={"observability": obs})
    client = cluster.add_margo("cli", node="n1", config={"observability": obs})

    def handler(ctx):
        yield Compute(5e-6)
        return ctx.args

    server.register("echo", handler)

    def driver():
        for i in range(n_rpcs):
            yield from client.forward(server.address, "echo", i)

    cluster.run_ult(client, driver())
    cluster.run(until=cluster.now + 0.02)
    return cluster, server, client


def test_sampling_gates_recording():
    obs = dict(XRAY_OBS, profile_sample_every=4)
    cluster, _server, _client = _echo_cluster(obs=obs, n_rpcs=40)
    plane = cluster.xray_plane()
    records = plane.critical_paths()
    assert len(records) == 10  # every 4th of 40
    assert all(r["weight"] == 4 for r in records)


def test_record_segments_sum_to_total():
    cluster, _server, _client = _echo_cluster()
    records = cluster.xray_plane().critical_paths()
    assert records
    for record in records:
        phases = [s["phase"] for s in record["segments"]]
        assert phases[:3] == ["client_queue", "network", "sched"]
        assert phases[-1] == "respond"
        total = sum(s["duration"] for s in record["segments"])
        assert total == pytest.approx(record["total"], abs=1e-12)


def test_no_xray_attr_when_disabled():
    obs = {"tracing": False, "profiling": True, "profile_window": 0.005}
    cluster, _server, _client = _echo_cluster(obs=obs)
    assert cluster.xray_plane() is None


# ----------------------------------------------------------------------
# exporters (satellite 1 + critical-path highlighting)
# ----------------------------------------------------------------------
def test_chrome_trace_profile_event_args():
    cluster, _server, _client = _echo_cluster()
    doc = chrome_trace_profile(*cluster.profilers())
    rpc_events = [e for e in doc["traceEvents"] if e["cat"] == "rpc"]
    phase_events = [e for e in doc["traceEvents"] if e["cat"] == "rpc_phase"]
    assert rpc_events and phase_events
    for event in rpc_events:
        assert set(event["args"]) >= {"trace_id", "provider", "weight"}
    for event in phase_events:
        assert set(event["args"]) >= {"phase", "provider", "weight"}
        assert event["args"]["phase"] == event["name"]


def test_chrome_trace_critical_path_highlight():
    cluster, _server, _client = _echo_cluster()
    plain = cluster.chrome_trace()
    assert not any("cname" in e for e in plain["traceEvents"])
    doc = cluster.chrome_trace(highlight_critical=True)
    marked = [e for e in doc["traceEvents"] if e["args"].get("critical_path")]
    assert marked
    assert all(e["cname"] == "terrible" for e in marked)
    # Every trace has a critical chain; the marked ids are exactly it.
    from repro.observability.exporters import collect_spans

    spans = collect_spans(*cluster.tracers())
    trace_ids = {e["tid"] for e in doc["traceEvents"]}
    for tid in trace_ids:
        ids = critical_span_ids(spans, tid)
        assert ids == {
            e["args"]["span_id"]
            for e in marked
            if e["tid"] == tid
        }
        chain = critical_chain(spans, tid)
        assert [s["span_id"] for s in chain][0] == chain[0]["span_id"]
        # Root-first, each child starts within its parent's window.
        for parent, child in zip(chain, chain[1:]):
            assert child["start"] >= parent["start"]


# ----------------------------------------------------------------------
# Bedrock RPCs
# ----------------------------------------------------------------------
def test_bedrock_xray_rpcs():
    cluster = Cluster(seed=13)
    margo, _bedrock = boot_process(
        cluster, "srv", "n0", {"margo": {"observability": dict(XRAY_OBS)}}
    )
    client = cluster.add_margo("cli", node="n1", config={"observability": dict(XRAY_OBS)})

    def handler(ctx):
        yield Compute(5e-6)
        return ctx.args

    margo.register("echo", handler)

    def driver():
        for i in range(30):
            yield from client.forward(margo.address, "echo", i)

    cluster.run_ult(client, driver())
    cluster.run(until=cluster.now + 0.02)

    handle = BedrockClient(client).make_service_handle(margo.address)
    paths = cluster.run_ult(client, handle.get_critical_path())
    assert paths["enabled"]
    assert paths["paths"]
    one = paths["paths"][0]
    filtered = cluster.run_ult(
        client, handle.get_critical_path(trace_id=one["trace_id"])
    )
    assert all(r["trace_id"] == one["trace_id"] for r in filtered["paths"])
    limited = cluster.run_ult(client, handle.get_critical_path(last=3))
    assert len(limited["paths"]) <= 3

    attribution = cluster.run_ult(client, handle.get_attribution(last=2))
    assert attribution["enabled"]
    assert attribution["windows"]
    window = attribution["windows"][-1]
    assert {"attribution", "whatif", "requests", "index"} <= set(window)


def test_bedrock_xray_rpcs_disabled():
    cluster = Cluster(seed=13)
    margo, _bedrock = boot_process(cluster, "srv", "n0", {})
    client = cluster.add_margo("cli", node="n1")
    handle = BedrockClient(client).make_service_handle(margo.address)
    paths = cluster.run_ult(client, handle.get_critical_path())
    assert paths == {"enabled": False, "process": "srv", "paths": []}
    attribution = cluster.run_ult(client, handle.get_attribution())
    assert attribution == {"enabled": False, "process": "srv", "windows": []}


# ----------------------------------------------------------------------
# manual spans (MCH074's runtime counterpart)
# ----------------------------------------------------------------------
def test_start_span_records_and_drains():
    tracer = Tracer()
    span = tracer.start_span("migrate:db", "migration", "srv", 1.0, {"a": 1})
    assert tracer.open_span_count == 1
    recorded = span.end(2.0, attributes={"b": 2})
    assert tracer.open_span_count == 0
    assert recorded in tracer.spans
    assert recorded.attributes == {"a": 1, "b": 2}
    assert recorded.duration == pytest.approx(1.0)
    assert span.end(3.0) is None  # idempotent
    assert tracer.open_span_count == 0


def test_leaked_span_never_reaches_buffer():
    tracer = Tracer()
    tracer.start_span("lost", "manual", "srv", 1.0)
    assert tracer.open_span_count == 1
    assert all(s.name != "lost" for s in tracer.spans)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_json_smoke(capsys):
    from repro.observability.xray.cli import main

    assert main(["network", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["scenario"] == "network"
    assert doc["top_action"]["action"] == "add_node"


def test_cli_text_smoke(capsys):
    from repro.observability.xray.cli import main

    assert main(["pool"]) == 0
    out = capsys.readouterr().out
    assert "what-if ranking" in out
    assert "recommendation: add_xstream hot" in out
