"""mochi-health E2E: the ISSUE 6 acceptance scenario (fault -> SWIM
detection -> Raft failover -> REMI recovery, with measured detection
latency and MTTR), the Bedrock health RPCs, the controller's health
veto, and the diagnostic reports."""

import json

import pytest

from repro import Cluster
from repro.analysis.race import hooks as race_hooks
from repro.bedrock.boot import boot_process
from repro.bedrock.client import BedrockClient
from repro.core import ReconfigurationController
from repro.observability.health.scenarios import (
    run_crash_scenario,
    run_slo_scenario,
)
from repro.ssg import SwimConfig, create_group
from repro.tools import fault_report, health_report
from repro.yokan import YokanClient

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


# ----------------------------------------------------------------------
# the acceptance scenario
# ----------------------------------------------------------------------
def test_crash_scenario_measures_detection_and_mttr():
    doc = run_crash_scenario(seed=11)
    incidents = doc["incidents"]["incidents"]
    assert len(incidents) == 1
    incident = incidents[0]
    assert incident["kind"] == "crash" and incident["target"] == "kv1"
    assert incident["status"] == "closed"
    assert incident["resolution"] == "recovered"
    # Fault injection is the origin; every latency measures against it.
    assert 0.0 < incident["suspect_latency"] <= incident["detection_latency"]
    assert incident["mttr"] >= incident["detection_latency"]
    # REMI provisioned a spare.
    assert len(doc["recoveries"]) == 1
    assert doc["recoveries"][0]["failed"] == "kv1"
    assert doc["recoveries"][0]["replacement"].startswith("kv1-r")
    # The registry observed the death; the flight recorder black-boxed
    # the whole story, including the automatic pre-crash dump.
    assert doc["health"]["states"]["kv1"] == "dead"
    categories = {e["category"] for e in doc["dump"]["events"]}
    assert {"fault", "membership", "health", "recovery", "incident"} <= categories
    detection_events = [e for e in incident["events"]
                        if e["kind"] == "detection"]
    assert [e["stage"] for e in detection_events] == ["suspect", "dead"]


def test_crash_scenario_byte_identical_across_runs():
    first = json.dumps(run_crash_scenario(seed=12), sort_keys=True)
    second = json.dumps(run_crash_scenario(seed=12), sort_keys=True)
    assert first == second


def test_crash_scenario_identical_under_race_record_mode():
    plain = json.dumps(run_crash_scenario(seed=13), sort_keys=True)
    race_hooks.disable()
    race_hooks.reset()
    race_hooks.enable()
    try:
        recorded = json.dumps(run_crash_scenario(seed=13), sort_keys=True)
    finally:
        race_hooks.disable()
        race_hooks.reset()
    assert recorded == plain


def test_slo_scenario_breaches_and_dumps():
    doc = run_slo_scenario(seed=11)
    assert [a["to"] for a in doc["alerts"]] == ["breach", "breach"]
    assert doc["health"]["states"] == {"kv0": "degraded", "kv1": "degraded"}
    # Breach opened one SLO incident per process and auto-dumped.
    assert [i["kind"] for i in doc["incidents"]["incidents"]] == ["slo", "slo"]
    assert any(r.startswith("slo:") for r in doc["dumps"])


# ----------------------------------------------------------------------
# Bedrock RPC surface
# ----------------------------------------------------------------------
def _health_rig(slos=True, plane=True, seed=31):
    cluster = Cluster(seed=seed)
    observability = {"profiling": True, "profile_window": 0.1}
    if slos:
        observability["slos"] = [
            {"name": "kv-err", "objective": "error_rate",
             "target": "yokan:*", "threshold": 0.5},
        ]
    config = {
        "margo": {"observability": observability},
        "libraries": {"yokan": "libyokan.so"},
        "providers": [
            {"name": "db-kv0", "type": "yokan", "provider_id": 1,
             "config": {"database": {"type": "persistent"}}},
        ],
    }
    margo, _bedrock = boot_process(cluster, "kv0", "n0", config)
    if plane:
        health = cluster.enable_health()
        health.watch_margo(margo)
    ctl = cluster.add_margo("ctl", "ctl-node")
    handle = BedrockClient(ctl).make_service_handle(margo.address)
    db = YokanClient(ctl).make_handle(margo.address, 1)

    def traffic():
        for i in range(20):
            yield from db.put(f"k{i}", "v" * 20)

    cluster.run_ult(ctl, traffic())
    cluster.run(until=cluster.now + 0.5)
    return cluster, margo, ctl, handle


def test_get_health_and_incidents_rpcs():
    cluster, margo, ctl, handle = _health_rig()
    cluster.health.registry.observe("kv0", "degraded", "test")
    cluster.health.incidents.open("crash", "kv0", fault_kind="process")
    doc = cluster.run_ult(ctl, handle.get_health())
    assert doc["enabled"] is True and doc["process"] == "kv0"
    assert doc["states"] == {"kv0": "degraded"}
    assert doc["open_incidents"] == 1
    incidents = cluster.run_ult(ctl, handle.get_incidents())
    assert incidents["enabled"] is True
    assert [i["id"] for i in incidents["incidents"]] == ["INC-1"]
    cluster.health.incidents.open("crash", "other")
    limited = cluster.run_ult(ctl, handle.get_incidents(last=1))
    assert [i["id"] for i in limited["incidents"]] == ["INC-2"]


def test_get_slo_status_rpc():
    cluster, margo, ctl, handle = _health_rig()
    status = cluster.run_ult(ctl, handle.get_slo_status())
    assert status["enabled"] is True
    assert [s["slo"] for s in status["slos"]] == ["kv-err"]
    assert status["slos"][0]["state"] == "ok"
    assert status["slos"][0]["windows_seen"] > 0  # traffic was measured


def test_health_rpcs_disabled_paths():
    cluster, margo, ctl, handle = _health_rig(slos=False, plane=False)
    doc = cluster.run_ult(ctl, handle.get_health())
    assert doc == {"enabled": False, "process": "kv0"}
    incidents = cluster.run_ult(ctl, handle.get_incidents())
    assert incidents["enabled"] is False
    status = cluster.run_ult(ctl, handle.get_slo_status())
    assert status["enabled"] is False and status["slos"] == []


# ----------------------------------------------------------------------
# the controller's health veto
# ----------------------------------------------------------------------
def _hot_service(cluster):
    """kv0 holds two loaded databases, kv1 none: the controller will
    want to rebalance onto kv1."""
    from repro.core import DynamicService, ProcessSpec, ServiceSpec

    def kv_process(name, node, dbs):
        providers = [{"name": f"remi-{name}", "type": "remi", "provider_id": 0}]
        for d in range(dbs):
            providers.append(
                {"name": f"db-{name}-{d}", "type": "yokan",
                 "provider_id": d + 1,
                 "config": {"database": {"type": "persistent"}}})
        return ProcessSpec(
            name=name, node=node,
            config={
                "margo": {"observability": {
                    "profiling": True, "profile_window": 0.2,
                    "load_imbalance_threshold": 1.5}},
                "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
                "providers": providers,
            })

    spec = ServiceSpec(
        name="kvsvc",
        processes=[kv_process("kv0", "n0", 2), kv_process("kv1", "n1", 0)],
        group="kvsvc-g",
        swim=SWIM,
    )
    service = DynamicService.deploy(cluster, spec)
    yokan = YokanClient(service.control)

    def fill_dbs():
        for provider_id in (1, 2):
            db = yokan.make_handle(service.processes["kv0"].address, provider_id)
            yield from db.put_multi([(f"k{i}", "x" * 200) for i in range(40)])

    service.run_control(fill_dbs())
    return service, yokan


def test_controller_vetoes_suspect_targets():
    from repro.pufferscale import Objective

    cluster = Cluster(seed=33)
    service, yokan = _hot_service(cluster)
    health = cluster.enable_health()
    health.registry.observe("kv1", "suspect", "test")
    controller = ReconfigurationController(
        service, objective=Objective(alpha=1.0, beta=0.0, gamma=0.0),
        period=0.5, smoothing=2,
    )

    def fill_traffic():
        db = yokan.make_handle(service.processes["kv0"].address, 1)
        for i in range(200):
            yield from db.get(f"k{i % 40}")

    cluster.spawn(service.control, fill_traffic())
    cluster.spawn(service.control, controller.run(cycles=4))
    cluster.run(until=3.0)

    decisions = list(controller.decisions)
    assert decisions
    assert all(d["vetoed_nodes"] == ["kv1"] for d in decisions)
    # No shard was ever planned onto the suspect target.
    for decision in decisions:
        for move in decision["moves"]:
            assert move["destination"] != "kv1"
    # Decisions are black-boxed.
    recon = [e for e in health.recorder.events
             if e["category"] == "reconfiguration"]
    assert len(recon) == len(decisions)
    assert all(e["attrs"]["vetoed"] == 1 for e in recon)


# ----------------------------------------------------------------------
# diagnostic reports
# ----------------------------------------------------------------------
def _report_rig(seed=34):
    cluster = Cluster(seed=seed)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(3)]
    groups = create_group("g", margos, cluster.randomness, swim=SWIM)
    health = cluster.enable_health()
    for group in groups:
        health.watch_group(group)
    cluster.run(until=2.0)
    cluster.faults.kill_process(margos[2].process)
    cluster.run(until=15.0)
    return cluster


def test_health_report_renders_states_and_incidents():
    cluster = _report_rig()
    text = health_report(cluster, events=5)
    assert "mochi-health @" in text
    assert "m2               dead" in text
    assert "INC-1 [OPEN] crash: m2" in text
    assert "detection latency:" in text
    assert "flight recorder (last" in text


def test_fault_report_correlates_incidents():
    cluster = _report_rig()
    text = fault_report(cluster)
    assert "1 fault(s) injected" in text
    assert "process: m2" in text
    assert "incident INC-1" in text
    assert "suspected after" in text and "detected after" in text


def test_reports_without_health_plane():
    cluster = Cluster(seed=35)
    cluster.add_margo("a", "n0")
    assert "disabled" in health_report(cluster)
    assert fault_report(cluster) == "fault report: no faults injected"
    cluster.faults.kill_process(cluster.margos["a"].process)
    assert "no incident correlation" in fault_report(cluster)
