"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    TIMED_OUT,
    DeadlockError,
    SimKernel,
    SimulationError,
    Sleep,
    WaitEvent,
)


def test_time_starts_at_zero():
    assert SimKernel().now == 0.0


def test_schedule_orders_by_deadline():
    kernel = SimKernel()
    order = []
    kernel.schedule(2.0, lambda: order.append("b"))
    kernel.schedule(1.0, lambda: order.append("a"))
    kernel.schedule(3.0, lambda: order.append("c"))
    kernel.run()
    assert order == ["a", "b", "c"]
    assert kernel.now == 3.0


def test_schedule_ties_break_fifo():
    kernel = SimKernel()
    order = []
    for i in range(10):
        kernel.schedule(1.0, lambda i=i: order.append(i))
    kernel.run()
    assert order == list(range(10))


def test_timer_cancel():
    kernel = SimKernel()
    fired = []
    timer = kernel.schedule(1.0, lambda: fired.append(1))
    timer.cancel()
    kernel.run()
    assert fired == []


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        SimKernel().schedule(-1.0, lambda: None)


def test_task_sleep_advances_time():
    kernel = SimKernel()

    def main():
        yield Sleep(1.5)
        yield Sleep(2.5)
        return kernel.now

    task = kernel.spawn(main())
    kernel.run()
    assert task.finished
    assert task.result == pytest.approx(4.0)


def test_task_wait_event_gets_payload():
    kernel = SimKernel()
    evt = kernel.event("data")

    def producer():
        yield Sleep(1.0)
        evt.set("hello")

    def consumer():
        value = yield WaitEvent(evt)
        return value

    kernel.spawn(producer())
    task = kernel.spawn(consumer())
    kernel.run()
    assert task.result == "hello"


def test_wait_on_already_set_event_resumes_immediately():
    kernel = SimKernel()
    evt = kernel.event()
    evt.set(42)

    def consumer():
        value = yield WaitEvent(evt)
        return value

    task = kernel.spawn(consumer())
    kernel.run()
    assert task.result == 42
    assert kernel.now == 0.0


def test_wait_event_timeout():
    kernel = SimKernel()
    evt = kernel.event()

    def consumer():
        value = yield WaitEvent(evt, timeout=2.0)
        return value

    task = kernel.spawn(consumer())
    kernel.run()
    assert task.result is TIMED_OUT
    assert kernel.now == pytest.approx(2.0)


def test_wait_event_timeout_not_fired_when_event_set_first():
    kernel = SimKernel()
    evt = kernel.event()
    kernel.schedule(0.5, lambda: evt.set("ok"))

    def consumer():
        value = yield WaitEvent(evt, timeout=2.0)
        return value

    task = kernel.spawn(consumer())
    kernel.run()
    assert task.result == "ok"


def test_event_set_wakes_all_waiters():
    kernel = SimKernel()
    evt = kernel.event()
    results = []

    def consumer(i):
        value = yield WaitEvent(evt)
        results.append((i, value))

    for i in range(3):
        kernel.spawn(consumer(i))
    kernel.schedule(1.0, lambda: evt.set("x"))
    kernel.run()
    assert sorted(results) == [(0, "x"), (1, "x"), (2, "x")]


def test_event_clear_and_reuse():
    kernel = SimKernel()
    evt = kernel.event()
    seen = []

    def consumer():
        value = yield WaitEvent(evt)
        seen.append(value)
        evt.clear()
        value = yield WaitEvent(evt)
        seen.append(value)

    kernel.spawn(consumer())
    kernel.schedule(1.0, lambda: evt.set("first"))
    kernel.schedule(2.0, lambda: evt.set("second"))
    kernel.run()
    assert seen == ["first", "second"]


def test_task_failure_propagates_from_run():
    kernel = SimKernel()

    def bad():
        yield Sleep(1.0)
        raise ValueError("boom")

    kernel.spawn(bad())
    with pytest.raises(ValueError, match="boom"):
        kernel.run()


def test_daemon_task_failure_is_swallowed():
    kernel = SimKernel()

    def bad():
        yield Sleep(1.0)
        raise ValueError("boom")

    kernel.spawn(bad(), daemon=True)
    kernel.run()  # does not raise


def test_run_until_time():
    kernel = SimKernel()
    fired = []
    kernel.schedule(1.0, lambda: fired.append(1))
    kernel.schedule(10.0, lambda: fired.append(2))
    kernel.run(until=5.0)
    assert fired == [1]
    assert kernel.now == 5.0
    kernel.run()
    assert fired == [1, 2]


def test_run_until_tasks():
    kernel = SimKernel()

    def short():
        yield Sleep(1.0)
        return "done"

    def forever():
        while True:
            yield Sleep(1.0)

    kernel.spawn(forever(), daemon=True)
    task = kernel.spawn(short())
    kernel.run(until_tasks=[task], max_events=10_000)
    assert task.result == "done"


def test_deadlock_detection():
    kernel = SimKernel()
    evt = kernel.event()

    def stuck():
        yield WaitEvent(evt)

    task = kernel.spawn(stuck())
    with pytest.raises(DeadlockError):
        kernel.run(until_tasks=[task])


def test_unsupported_yield_raises_into_task():
    kernel = SimKernel()

    def bad():
        yield "nonsense"

    kernel.spawn(bad())
    with pytest.raises(SimulationError, match="unsupported command"):
        kernel.run()


def test_spawn_requires_generator():
    with pytest.raises(TypeError):
        SimKernel().spawn(lambda: None)  # type: ignore[arg-type]


def test_nested_yield_from():
    kernel = SimKernel()

    def inner():
        yield Sleep(1.0)
        return 10

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    task = kernel.spawn(outer())
    kernel.run()
    assert task.result == 20
    assert kernel.now == pytest.approx(2.0)
