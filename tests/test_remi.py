"""Tests for REMI: filesets, both transfer methods, provider migration."""

import pytest

from repro import Cluster
from repro.remi import (
    AUTO_RDMA_THRESHOLD,
    FileSet,
    MigrationReport,
    RemiClient,
    RemiError,
    RemiProvider,
)
from repro.storage import LocalStore
from repro.yokan import YokanClient, YokanProvider


@pytest.fixture()
def rig():
    cluster = Cluster(seed=7)
    src_node = cluster.node("src")
    dst_node = cluster.node("dst")
    src_store = LocalStore(src_node)
    dst_store = LocalStore(dst_node)
    src = cluster.add_margo("src-proc", node=src_node)
    dst = cluster.add_margo("dst-proc", node=dst_node)
    RemiProvider(dst, "remi", provider_id=0)
    handle = RemiClient(src).make_handle(dst.address, 0)
    return cluster, src, dst, src_store, dst_store, handle


def seed_files(store, count, size, prefix="data/"):
    for i in range(count):
        store.write(f"{prefix}{i:04d}", bytes([i % 256]) * size)


def test_fileset_validation(rig):
    _, _, _, src_store, _, _ = rig
    seed_files(src_store, 3, 10)
    fileset = FileSet.from_prefix(src_store, "data/")
    assert fileset.num_files == 3
    assert fileset.total_bytes == 30
    with pytest.raises(RemiError, match="missing files"):
        FileSet(src_store, ["ghost"])


@pytest.mark.parametrize("method", ["rdma", "chunks"])
def test_migrate_fileset_both_methods(rig, method):
    cluster, src, _, src_store, dst_store, handle = rig
    seed_files(src_store, 5, 1000)
    fileset = FileSet.from_prefix(src_store, "data/")

    def driver():
        report = yield from handle.migrate_fileset(fileset, method=method)
        return report

    report = cluster.run_ult(src, driver())
    assert isinstance(report, MigrationReport)
    assert report.method == method
    assert report.num_files == 5
    assert report.total_bytes == 5000
    assert report.duration > 0
    for i in range(5):
        assert dst_store.read(f"data/{i:04d}") == src_store.read(f"data/{i:04d}")


def test_chunked_splits_large_file(rig):
    cluster, src, _, src_store, dst_store, handle = rig
    big = bytes(range(256)) * 8192  # 2 MiB > default 1 MiB chunk
    src_store.write("big", big)

    def driver():
        report = yield from handle.migrate_fileset(
            FileSet(src_store, ["big"]), method="chunks", chunk_size=1 << 20
        )
        return report

    report = cluster.run_ult(src, driver())
    assert report.num_chunks == 2
    assert dst_store.read("big") == big


def test_chunk_packing_small_files():
    from repro.remi.client import MigrationHandle

    files = [(f"f{i}", b"x" * 100) for i in range(10)]
    chunks = MigrationHandle._pack(files, chunk_size=450)
    assert sum(len(c) for c in chunks) >= 10
    for chunk in chunks:
        assert sum(len(d) for _, _, _, d in chunk) <= 450
    # Reassembled contents must match.
    seen = {}
    for chunk in chunks:
        for path, offset, total, data in chunk:
            seen.setdefault(path, {})[offset] = data
    for path, data in files:
        assembled = b"".join(seen[path][o] for o in sorted(seen[path]))
        assert assembled == data


def test_chunk_packing_empty_file():
    from repro.remi.client import MigrationHandle

    chunks = MigrationHandle._pack([("empty", b""), ("full", b"ab")], chunk_size=10)
    pieces = [p for c in chunks for p in c]
    assert ("empty", 0, 0, b"") in pieces


def test_auto_method_selection(rig):
    cluster, src, _, src_store, _, handle = rig
    seed_files(src_store, 20, 100, prefix="small/")
    src_store.write("large/0", b"z" * (2 * AUTO_RDMA_THRESHOLD))

    def driver():
        small = yield from handle.migrate_fileset(
            FileSet.from_prefix(src_store, "small/"), method="auto"
        )
        large = yield from handle.migrate_fileset(
            FileSet(src_store, ["large/0"]), method="auto"
        )
        return small.method, large.method

    assert cluster.run_ult(src, driver()) == ("chunks", "rdma")


def test_rdma_faster_for_one_large_file(rig):
    """The paper's claim (Obs. 4): RDMA wins for large files."""
    cluster, src, _, src_store, _, handle = rig
    src_store.write("huge", b"q" * (64 << 20))  # 64 MiB
    fileset = FileSet(src_store, ["huge"])

    def run(method):
        def driver():
            report = yield from handle.migrate_fileset(fileset, method=method)
            return report.duration

        return cluster.run_ult(src, driver())

    rdma_time = run("rdma")
    chunk_time = run("chunks")
    assert rdma_time < chunk_time


def test_chunks_faster_for_many_small_files(rig):
    """The paper's claim (Obs. 4): packed+pipelined chunks win for many
    small files."""
    cluster, src, _, src_store, _, handle = rig
    seed_files(src_store, 400, 512, prefix="tiny/")
    fileset = FileSet.from_prefix(src_store, "tiny/")

    def run(method):
        def driver():
            report = yield from handle.migrate_fileset(fileset, method=method)
            return report.duration

        return cluster.run_ult(src, driver())

    chunk_time = run("chunks")
    rdma_time = run("rdma")
    assert chunk_time < rdma_time


def test_migration_parameter_validation(rig):
    cluster, src, _, src_store, _, handle = rig
    seed_files(src_store, 1, 10)
    fileset = FileSet.from_prefix(src_store, "data/")

    for bad_kwargs in ({"method": "warp"}, {"chunk_size": 0}, {"window": 0}):
        def driver(kw=bad_kwargs):
            yield from handle.migrate_fileset(fileset, **kw)

        with pytest.raises(RemiError):
            cluster.run_ult(src, driver())


def test_remi_provider_requires_store():
    cluster = Cluster(seed=7)
    margo = cluster.add_margo("p", node="n0")
    with pytest.raises(RemiError, match="LocalStore"):
        RemiProvider(margo, "remi", provider_id=0)


def test_yokan_provider_migration_end_to_end(rig):
    """Full component migration (paper section 6): flush, REMI-transfer,
    re-instantiate at the destination, data intact."""
    cluster, src, dst, src_store, dst_store, _ = rig
    provider = YokanProvider(
        src, "db", provider_id=1, config={"database": {"type": "persistent"}}
    )
    remi_client = RemiClient(src)
    cm = cluster.add_margo("client", node="nc")
    db_src = YokanClient(cm).make_handle(src.address, 1)

    def phase1():
        yield from db_src.put_multi([(f"k{i}", f"v{i}") for i in range(20)])
        report = yield from provider.migrate(remi_client, dst.address, 0)
        return report

    report = cluster.run_ult(src, phase1())
    assert report.num_files == 1
    # The database file now exists at the destination; instantiate a new
    # provider over it (what Bedrock does after the transfer).
    assert dst_store.exists("yokan/db.db")
    new_provider = YokanProvider(
        dst, "db", provider_id=1, config={"database": {"type": "persistent"}}
    )
    db_dst = YokanClient(cm).make_handle(dst.address, 1)

    def phase2():
        return (yield from db_dst.get("k7"))

    assert cluster.run_ult(cm, phase2()) == b"v7"


def test_memory_backend_migration_materializes_image(rig):
    cluster, src, dst, src_store, dst_store, _ = rig
    provider = YokanProvider(src, "memdb", provider_id=2)  # map backend
    remi_client = RemiClient(src)
    cm = cluster.add_margo("client", node="nc")
    db = YokanClient(cm).make_handle(src.address, 2)

    def driver():
        yield from db.put("k", "v")
        report = yield from provider.migrate(remi_client, dst.address, 0)
        return report

    report = cluster.run_ult(src, driver())
    assert report.num_files == 1
    assert dst_store.exists("yokan/memdb.migrate.db")
