"""Repo-level pytest configuration.

Puts ``src/`` on ``sys.path`` so the test and benchmark suites run even
without installing the package (useful on offline machines where
``pip install -e .`` cannot bootstrap its PEP 517 build environment;
``python setup.py develop`` also works there).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
