#!/usr/bin/env python3
"""Dynamic HEPnOS: per-step reconfiguration of the event store.

Reproduces the paper's motivating scenario (section 1): a NOvA-like
workflow whose steps have "vastly different I/O patterns", served by a
HEPnOS-like store whose sharding degree is its main tuning knob:

* **ingest** (4 parallel injectors writing 64 KiB products) wants many
  databases -- each has its own execution stream, so writes parallelize;
* **analysis** (paged ordered iteration + targeted reads) wants few
  databases -- every scan pays at least one round trip per shard.

The script sweeps static configurations and compares them against a
dynamic run that *reshards online* between steps (resharding cost
included).  Dynamic wins once the steps are long enough to amortize the
reconfiguration -- the regime the paper's introduction argues for.

Run: ``python examples/dynamic_hepnos.py``
"""

import random

from repro import Cluster
from repro.hepnos import HEPnOSService, WorkflowStep, run_step

NODES = ["n0", "n1", "n2", "n3"]
NUM_INJECTORS = 4
PREFERRED = {"ingest": 4, "filter": 4, "analysis": 1}
STATIC_CHOICES = [1, 2, 4]


def workflow_steps(scale: int) -> list[WorkflowStep]:
    return [
        # Ingest volume scales with the experiment; the filtered skim the
        # analysis iterates stays compact (few events survive the cuts).
        WorkflowStep("ingest", "ingest", 160 * scale, 64 * 1024),
        WorkflowStep("filter", "filter", 60, 1024),
        WorkflowStep(
            "analysis", "analysis", 16, 256, num_scans=150 * scale, reads_per_scan=8
        ),
    ]


def run_workflow(dynamic: bool, static_dbs: int, scale: int):
    cluster = Cluster(seed=17)
    initial = PREFERRED["ingest"] if dynamic else static_dbs
    service = HEPnOSService.deploy(cluster, NODES, databases_per_process=initial)
    apps = [cluster.add_margo(f"app{i}", node=f"napp{i}") for i in range(NUM_INJECTORS)]
    clients = [service.client(app) for app in apps]
    rng = random.Random(3)
    durations = {}
    reshard_time = 0.0

    for step in workflow_steps(scale):
        if step.kind == "analysis":
            # Retention policy between filtering and analysis: the bulky
            # raw products are dropped (standard HEP skimming), so a
            # reshard below only moves the small filtered data.
            def compact():
                count = yield from clients[0].drop_product("nova", "raw")
                return count

            cluster.run_ult(apps[0], compact())

        if dynamic:
            want = PREFERRED[step.kind]
            have = len(service.shards) // len(NODES)
            if want != have:
                before = cluster.now

                def do_reshard(want=want):
                    yield from service.reshard(databases_per_process=want)

                service.service.run_control(do_reshard())
                for client in clients:
                    client.refresh(service.shards)
                reshard_time += cluster.now - before

        started = cluster.now
        if step.kind == "ingest":
            # Parallel injectors: split the event range.
            share = step.num_events // NUM_INJECTORS
            ults = []
            for i, (app, client) in enumerate(zip(apps, clients)):
                sub = WorkflowStep(
                    step.name, step.kind, share, step.product_size,
                    dataset=step.dataset,
                )
                ults.append(
                    app.spawn_ult(
                        run_step(client, sub, random.Random(100 + i), run_number=i)
                    )
                )
            cluster.wait_ults(ults)
        else:
            cluster.run_ult(apps[0], run_step(clients[0], step, rng))
        durations[step.name] = cluster.now - started
    return durations, reshard_time


def main() -> None:
    scale = 4
    print(f"{'config':<22} {'ingest':>10} {'filter':>10} {'analysis':>10} "
          f"{'reshard':>10} {'total':>10}   (simulated seconds, scale={scale})")
    totals = {}
    for dbs in STATIC_CHOICES:
        durations, _ = run_workflow(dynamic=False, static_dbs=dbs, scale=scale)
        total = sum(durations.values())
        totals[f"static-{dbs}"] = total
        print(
            f"{'static ' + str(dbs) + ' db/proc':<22} "
            f"{durations['ingest']:>10.4f} {durations['filter']:>10.4f} "
            f"{durations['analysis']:>10.4f} {0.0:>10.4f} {total:>10.4f}"
        )

    durations, reshard_time = run_workflow(dynamic=True, static_dbs=0, scale=scale)
    total = sum(durations.values()) + reshard_time
    totals["dynamic"] = total
    print(
        f"{'dynamic (per-step)':<22} "
        f"{durations['ingest']:>10.4f} {durations['filter']:>10.4f} "
        f"{durations['analysis']:>10.4f} {reshard_time:>10.4f} {total:>10.4f}"
    )

    best_static = min(v for k, v in totals.items() if k.startswith("static"))
    speedup = best_static / totals["dynamic"]
    print(f"\nbest static total:  {best_static:.4f} s")
    print(f"dynamic total:      {totals['dynamic']:.4f} s")
    print(f"dynamic vs best static: {speedup:.2f}x "
          f"({'faster -- per-step reconfiguration pays off' if speedup > 1 else 'slower at this scale'})")


if __name__ == "__main__":
    main()
