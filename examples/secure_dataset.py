#!/usr/bin/env python3
"""Composable composition, secured: the paper's section-3.2 component "M"
behind its section-9 security vision.

Builds, from one Bedrock document, a dataset service composed of Yokan
(metadata) + Warabi (blobs) + Poesie (server-side scripting), then puts
a transparent authentication/encryption guard in front of it:

* clients keep using the ordinary dataset handle -- they just attach a
  capability token;
* the backing components never learn that security (or the composition)
  exists;
* scopes are enforced per operation: the analyst can read and run
  scripts but cannot drop datasets.

Run: ``python examples/secure_dataset.py``
"""

import repro.dataset  # noqa: F401 - registers libdataset.so with Bedrock
from repro import Cluster
from repro.bedrock import boot_process
from repro.dataset import DatasetClient
from repro.margo import RpcFailedError
from repro.security import AuthClient, AuthProvider, GuardProvider

SERVICE_CONFIG = {
    "libraries": {
        "yokan": "libyokan.so",
        "warabi": "libwarabi.so",
        "poesie": "libpoesie.so",
        "dataset": "libdataset.so",
    },
    "providers": [
        {"name": "metadb", "type": "yokan", "provider_id": 1},
        {"name": "blobs", "type": "warabi", "provider_id": 1},
        {"name": "scripts", "type": "poesie", "provider_id": 1},
        {
            "name": "datasets",
            "type": "dataset",
            "provider_id": 1,
            "dependencies": {
                "metadata": "metadb",
                "data": "blobs",
                "interpreter": "scripts",
            },
        },
    ],
}

USERS = {
    "producer": {
        "password": "prod-pw",
        "scopes": {"dataset": ["create", "write", "describe", "list"]},
    },
    "analyst": {
        "password": "ana-pw",
        "scopes": {"dataset": ["read", "describe", "list", "compute"]},
    },
}

DATASET_OPS = ["create", "write", "read", "describe", "list", "drop", "compute"]


def main() -> None:
    cluster = Cluster(seed=47)
    backend, _bedrock = boot_process(cluster, "backend", "n0", SERVICE_CONFIG)

    # The security edge: auth provider + transparent guard, own process.
    edge = cluster.add_margo("edge", node="n1")
    auth_provider = AuthProvider(
        edge, "auth0", provider_id=5,
        config={"secret": "service-mesh-secret", "users": USERS, "token_ttl": 120.0},
    )
    guard = GuardProvider(
        edge, "guard0", provider_id=1,
        protected={"type": "dataset", "address": backend.address, "provider_id": 1},
        operations=DATASET_OPS,
        auth=auth_provider,
        encrypt=True,
    )

    app = cluster.add_margo("app", node="n2")
    auth = AuthClient(app).make_handle(edge.address, 5)
    # Ordinary dataset handles -- pointed at the guard, token attached.
    producer_ds = DatasetClient(app).make_handle(edge.address, 1)
    analyst_ds = DatasetClient(app).make_handle(edge.address, 1)

    def producer_session():
        producer_ds.auth_token = yield from auth.login("producer", "prod-pw")
        yield from producer_ds.create("trajectories", attributes={"frames": 128})
        yield from producer_ds.write("trajectories", b"\x01\x02" * 50_000)
        meta = yield from producer_ds.describe("trajectories")
        return meta

    meta = cluster.run_ult(app, producer_session())
    print(f"producer stored dataset: {meta['name']} ({meta['size']} bytes, "
          f"attributes {meta['attributes']})")

    def analyst_session():
        analyst_ds.auth_token = yield from auth.login("analyst", "ana-pw")
        head = yield from analyst_ds.read("trajectories", offset=0, size=4)
        frames = yield from analyst_ds.compute(
            "trajectories", "return meta['attributes']['frames'] * 2"
        )
        return head, frames

    head, frames = cluster.run_ult(app, analyst_session())
    print(f"analyst read head {head!r} and computed 2x frames = {frames} "
          f"(Poesie ran server-side)")

    def analyst_tries_to_drop():
        yield from analyst_ds.drop("trajectories")

    try:
        cluster.run_ult(app, analyst_tries_to_drop())
    except RpcFailedError as err:
        print(f"analyst drop denied: {err}")

    def anonymous_access():
        anonymous = DatasetClient(app).make_handle(edge.address, 1)
        yield from anonymous.list()

    try:
        cluster.run_ult(app, anonymous_access())
    except RpcFailedError as err:
        print(f"anonymous access denied: {err}")

    print(f"\nguard statistics: {guard.allowed} allowed, {guard.denied} denied, "
          f"encryption on")
    print(f"simulated time: {cluster.now * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
