#!/usr/bin/env python3
"""Elasticity: grow the service, rebalance with Pufferscale, shrink it.

Walks through the full elasticity story of the paper's section 6:

1. deploy a 2-process KV service whose databases all live on process 0
   (a badly skewed placement);
2. **grow**: add a third process at run time (it joins the SSG group);
3. **rebalance**: Pufferscale plans which databases to move where, and
   Bedrock carries the moves out with REMI file migrations;
4. **shrink**: retire a process -- its data is migrated away first, it
   leaves the group, and the service keeps serving.

Run: ``python examples/elastic_rebalance.py``
"""

from repro import Cluster
from repro.core import DynamicService, ProcessSpec, ServiceSpec
from repro.pufferscale import Objective
from repro.ssg import SwimConfig
from repro.yokan import YokanClient

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


def kv_process(name: str, node: str, dbs: int) -> ProcessSpec:
    providers = [{"name": f"remi-{name}", "type": "remi", "provider_id": 0}]
    for d in range(dbs):
        providers.append(
            {
                "name": f"db-{name}-{d}",
                "type": "yokan",
                "provider_id": d + 1,
                "config": {"database": {"type": "persistent"}},
            }
        )
    return ProcessSpec(
        name=name,
        node=node,
        config={
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": providers,
        },
    )


def show_placement(service: DynamicService, label: str) -> None:
    placement = service.placement()
    print(f"\nplacement {label}:")
    for node in placement.nodes:
        shards = placement.shards_on(node)
        total = sum(s.size_bytes for s in shards) // 1024
        print(f"  {node:<10} {len(shards)} databases, {total} KiB "
              f"({', '.join(s.shard_id for s in shards) or 'empty'})")
    print(f"  data imbalance: {placement.data_imbalance():.2f} (1.0 = perfect)")


def main() -> None:
    cluster = Cluster(seed=23)
    # All 4 databases start on kv0: a deliberately skewed deployment.
    spec = ServiceSpec(
        name="kvsvc",
        processes=[kv_process("kv0", "n0", dbs=4), kv_process("kv1", "n1", dbs=0)],
        group="kvsvc-g",
        swim=SWIM,
    )
    service = DynamicService.deploy(cluster, spec)
    cluster.run(until=2.0)
    print(f"deployed: {len(service.addresses)} processes, "
          f"group view size {service.view().size}")

    # Load some data into every database on kv0.
    yokan = YokanClient(service.control)

    def fill():
        for provider_id in range(1, 5):
            db = yokan.make_handle(service.processes["kv0"].address, provider_id)
            yield from db.put_multi(
                [(f"key-{provider_id}-{i}", "x" * 512) for i in range(100)]
            )

    service.run_control(fill())
    show_placement(service, "after loading (skewed)")

    # --- grow: add a third process at run time ---------------------------
    def grow():
        yield from service.grow(kv_process("kv2", "n2", dbs=0))

    service.run_control(grow())
    cluster.run(until=cluster.now + 10.0)
    print(f"\ngrew to {len(service.addresses)} processes; "
          f"group view size {service.view().size}")

    # --- rebalance with Pufferscale ---------------------------------------
    def rebalance():
        plan = yield from service.rebalance(Objective(alpha=1.0, beta=1.0, gamma=0.0))
        return plan

    before = cluster.now
    plan = service.run_control(rebalance())
    print(f"\nPufferscale plan: {plan.num_moves} moves, "
          f"{plan.total_bytes // 1024} KiB to migrate")
    for move in plan.moves:
        print(f"  move {move.shard.shard_id}: {move.source} -> {move.destination}")
    print(f"executed in {cluster.now - before:.4f} simulated seconds")
    show_placement(service, "after rebalancing")

    # Data is still there, served from its new home.
    def verify():
        placement = service.placement()
        home = placement.node_of("db-kv0-0")
        record = service.processes[home].bedrock.records["db-kv0-0"]
        db = yokan.make_handle(
            service.processes[home].address, record.provider_id
        )
        value = yield from db.get("key-1-50")
        return home, value

    home, value = service.run_control(verify())
    print(f"\ndb-kv0-0 now lives on {home}; key-1-50 -> {value[:4]!r}... (intact)")

    # --- shrink: retire kv0 -----------------------------------------------
    def shrink():
        target = yield from service.shrink("kv0")
        return target

    target = service.run_control(shrink())
    cluster.run(until=cluster.now + 15.0)
    print(f"\nshrunk: kv0's remaining data migrated to {target}; "
          f"group view size {service.view().size}")
    show_placement(service, "after shrinking")


if __name__ == "__main__":
    main()
