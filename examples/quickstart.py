#!/usr/bin/env python3
"""Quickstart: boot a Mochi process from one JSON document, use it, inspect it.

Demonstrates the static-service workflow the paper starts from:

1. a Listing-2 Margo configuration (pools + execution streams),
2. a Listing-3 Bedrock configuration (libraries + providers),
3. key-value traffic through the Yokan client,
4. a Listing-4 Jx9 query against the live configuration,
5. Listing-1-style monitoring statistics.

Run: ``python examples/quickstart.py``
"""

import json

from repro import Cluster
from repro.bedrock import BedrockClient, boot_process
from repro.monitoring import StatisticsMonitor
from repro.yokan import YokanClient

# One JSON document describes the whole process -- no glue code.
SERVER_CONFIG = {
    "margo": {
        "argobots": {
            "pools": [
                {"name": "MyPoolX", "type": "fifo_wait", "access": "mpmc"},
                {"name": "MyPoolZ", "type": "fifo_wait", "access": "mpmc"},
            ],
            "xstreams": [
                {"name": "MyES0", "scheduler": {"type": "basic", "pools": ["MyPoolX"]}},
                {"name": "MyES1", "scheduler": {"type": "basic", "pools": ["MyPoolZ"]}},
            ],
        },
        "progress_pool": "MyPoolZ",
        "rpc_pool": "MyPoolX",
    },
    "libraries": {"yokan": "libyokan.so"},
    "providers": [
        {
            "name": "myDatabase",
            "type": "yokan",
            "provider_id": 1,
            "pool": "MyPoolX",
            "config": {"database": {"type": "ordered"}},
        }
    ],
}


def main() -> None:
    cluster = Cluster(seed=7)
    monitor = StatisticsMonitor()

    # Boot the server process from the document above.
    server_margo, _server_bedrock = boot_process(
        cluster, "server", "node0", SERVER_CONFIG, monitors=(monitor,)
    )
    client_margo = cluster.add_margo("client", node="node1")

    # --- use the service --------------------------------------------------
    db = YokanClient(client_margo).make_handle(server_margo.address, 1)

    def workload():
        yield from db.put("greeting", "hello, mochi!")
        yield from db.put_multi([(f"key{i:03d}", f"value{i}") for i in range(10)])
        value = yield from db.get("greeting")
        keys = yield from db.list_keys(prefix="key", max_keys=5)
        count = yield from db.count()
        return value, keys, count

    value, keys, count = cluster.run_ult(client_margo, workload())
    print(f"got back: {value!r}")
    print(f"first keys: {[k.decode() for k in keys]}")
    print(f"database holds {count} records")
    print(f"simulated time elapsed: {cluster.now * 1e6:.2f} us")

    # --- query the live configuration with Jx9 (paper Listing 4) ----------
    bedrock = BedrockClient(client_margo).make_service_handle(server_margo.address)

    def query():
        names = yield from bedrock.query(
            "$result = [];\n"
            "foreach ($__config__.providers as $p) {\n"
            "    array_push($result, $p.name); }\n"
            "return $result;"
        )
        return names

    print(f"providers reported by Jx9 query: {cluster.run_ult(client_margo, query())}")

    # --- inspect monitoring statistics (paper Listing 1) -------------------
    print("\nmonitoring statistics (Listing-1 schema):")
    doc = monitor.to_json()
    # Print one representative record.
    for key, record in doc["rpcs"].items():
        if record["name"] == "yokan_put":
            print(json.dumps({key: record}, indent=2, sort_keys=True))
            break


if __name__ == "__main__":
    main()
