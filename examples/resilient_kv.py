#!/usr/bin/env python3
"""Resilience: the paper's section-7 toolbox on one service.

Demonstrates all four resilience building blocks, bottom-up to top-down:

1. **checkpoint/restore** (Obs. 9): a process dies; its provider is
   restored on a spare node from the latest PFS checkpoint, losing at
   most the delta since that checkpoint;
2. **virtual resources** (Obs. 10): a transparently replicated database
   keeps serving reads through a replica failure;
3. **Mochi-RAFT** (Obs. 11): a consensus-replicated KV survives the
   *leader* being killed with zero committed-data loss;
4. **SWIM fault detection** (Obs. 12): the deaths above are detected by
   gossip, which is what triggers the top-down recovery.

Run: ``python examples/resilient_kv.py``
"""

from repro import Cluster
from repro.core import DynamicService, ProcessSpec, ResilienceManager, ServiceSpec
from repro.raft import KVStateMachine, RaftClient, RaftConfig, RaftNode
from repro.ssg import SwimConfig
from repro.storage import ParallelFileSystem
from repro.yokan import MapBackend, VirtualYokanProvider, YokanClient, YokanProvider

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)


def kv_process(name: str, node: str) -> ProcessSpec:
    return ProcessSpec(
        name=name,
        node=node,
        config={
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": [
                {"name": f"remi-{name}", "type": "remi", "provider_id": 0},
                {"name": f"db-{name}", "type": "yokan", "provider_id": 1,
                 "config": {"database": {"type": "persistent"}}},
            ],
        },
    )


def checkpoint_recovery_demo() -> None:
    print("=" * 64)
    print("1+4. checkpoint/restore + SWIM-triggered top-down recovery")
    print("=" * 64)
    cluster = Cluster(seed=29)
    pfs = ParallelFileSystem()
    spec = ServiceSpec(
        name="kv",
        processes=[kv_process(f"kv{i}", f"n{i}") for i in range(3)],
        group="kv-g",
        swim=SWIM,
    )
    service = DynamicService.deploy(cluster, spec, pfs=pfs)
    spares = ["spare0"]
    manager = ResilienceManager(
        service, checkpoint_interval=2.0,
        allocate_node=lambda: spares.pop(0) if spares else None,
    )
    manager.start()

    db = YokanClient(service.control).make_handle(service.processes["kv1"].address, 1)

    def fill():
        yield from db.put_multi([(f"k{i}", f"v{i}") for i in range(50)])

    service.run_control(fill())
    cluster.run(until=5.0)  # let a checkpoint happen
    print(f"checkpoints taken: {manager.checkpoints_taken}; killing kv1...")
    cluster.faults.kill_process(service.processes["kv1"].margo.process)
    cluster.run(until=45.0)
    manager.stop()
    recovery = manager.recoveries[0]
    print(f"SWIM detected the death; recovered as {recovery.replacement_process!r} "
          f"on a spare node in {recovery.recovery_duration:.2f}s "
          f"(includes detection)")
    replacement = service.processes[recovery.replacement_process]
    restored = replacement.bedrock.records["db-kv1"]
    print(f"restored value for k25: {restored.instance.backend.get(b'k25')!r}")
    print(f"group view back to {service.view().size} members\n")


def virtual_replication_demo() -> None:
    print("=" * 64)
    print("2. virtual resources: transparent replication (bottom-up)")
    print("=" * 64)
    cluster = Cluster(seed=31)
    replicas = []
    targets = []
    for i in range(3):
        margo = cluster.add_margo(f"rep{i}", node=f"n{i}")
        YokanProvider(margo, f"rdb{i}", provider_id=1)
        replicas.append(margo)
        targets.append({"address": margo.address, "provider_id": 1})
    front = cluster.add_margo("front", node="nf")
    VirtualYokanProvider(
        front, "vdb", provider_id=9,
        config={"targets": targets, "rpc_timeout": 0.5},
    )
    app = cluster.add_margo("app", node="na")
    # The client uses an ordinary database handle: replication invisible.
    db = YokanClient(app).make_handle(front.address, 9)

    def driver():
        yield from db.put("important", "data")
        first = yield from db.get("important")
        return first

    print(f"write+read through the virtual database: "
          f"{cluster.run_ult(app, driver())!r}")
    cluster.faults.kill_process(replicas[0].process)
    print("killed replica 0; reading again...")

    def read_again():
        return (yield from db.get("important"))

    print(f"read after replica failure: {cluster.run_ult(app, read_again())!r} "
          f"(failed over transparently)\n")


def raft_demo() -> None:
    print("=" * 64)
    print("3. Mochi-RAFT: consensus-replicated KV survives leader death")
    print("=" * 64)
    cluster = Cluster(seed=37)
    margos = [cluster.add_margo(f"r{i}", node=f"n{i}") for i in range(5)]
    peers = [m.address for m in margos]
    rc = RaftConfig(
        heartbeat_interval=0.05, election_timeout_min=0.15,
        election_timeout_max=0.3, rpc_timeout=0.06,
    )
    nodes = [
        RaftNode(
            margo, f"raft{i}", provider_id=1,
            state_machine=KVStateMachine(MapBackend()),
            peers=peers, rng=cluster.randomness.stream(f"raft:{i}"), config=rc,
        )
        for i, margo in enumerate(margos)
    ]
    app = cluster.add_margo("app", node="napp")
    group = RaftClient(app).make_group_handle(peers, provider_id=1)

    def write():
        for i in range(10):
            yield from group.submit({"op": "put", "key": f"k{i}".encode(),
                                     "value": f"v{i}".encode()})
        leader = yield from group.find_leader()
        return leader

    leader_address = cluster.run_ult(app, write())
    leader = next(n for n in nodes if n.address == leader_address)
    print(f"10 writes committed; leader is {leader.name} (term {leader.current_term})")
    cluster.faults.kill_process(leader.margo.process)
    print("killed the leader; submitting through the new one...")

    def read_after_failover():
        value = yield from group.submit({"op": "get", "key": b"k7"})
        status = yield from group.status_of(group.address)
        return value, status["term"]

    value, term = cluster.run_ult(app, read_after_failover())
    print(f"k7 after failover: {value!r} (new term {term}; no committed data lost)\n")


if __name__ == "__main__":
    checkpoint_recovery_demo()
    virtual_replication_demo()
    raft_demo()
