"""E7 -- section 6, Observation 7: tracking an elastic service's location.

Three claims measured:

1. SSG views converge after membership changes (join, leave) --
   *eventual* consistency, with a measurable convergence time;
2. the Colza view-hash protocol detects stale clients: an RPC stamped
   with an outdated hash is rejected and the client recovers by
   refreshing its view;
3. a client that keeps its view fresh never loses a staged chunk across
   the membership change.
"""

import pytest

from repro import Cluster
from repro.colza import ColzaClient, ColzaProvider
from repro.ssg import SwimConfig, create_group, join_group

from common import print_table, save_results

SWIM = SwimConfig(period=0.4, ping_timeout=0.12, suspicion_timeout=1.6)


def converged(groups, expected_size):
    live = [g for g in groups if g.is_member and g.margo.process.alive]
    return (
        all(g.view.size == expected_size for g in live)
        and len({g.view_hash for g in live}) == 1
    )


def convergence_time(cluster, groups, expected_size, timeout=120.0):
    started = cluster.now
    deadline = cluster.now + timeout
    while not converged(groups, expected_size):
        if cluster.now >= deadline:
            return None
        cluster.run(until=cluster.now + SWIM.period)
    return cluster.now - started


def run_experiment():
    cluster = Cluster(seed=107)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(6)]
    groups = create_group("svc", margos, cluster.randomness, swim=SWIM)
    providers = [
        ColzaProvider(margo, f"colza{i}", provider_id=1, group=group)
        for i, (margo, group) in enumerate(zip(margos, groups))
    ]
    cluster.run(until=2.0)
    rows = []

    # --- late join -------------------------------------------------------
    newcomer = cluster.add_margo("late", node="nlate")

    def do_join():
        group = yield from join_group(
            "svc", newcomer, [margos[0].address], cluster.randomness, swim=SWIM
        )
        return group

    new_group = cluster.run_ult(newcomer, do_join())
    groups.append(new_group)
    providers.append(ColzaProvider(newcomer, "colza-late", provider_id=1, group=new_group))
    t_join = convergence_time(cluster, groups, 7)
    rows.append({"event": "join (6->7)", "convergence_s": t_join})

    # --- crash detection ---------------------------------------------------
    cluster.faults.kill_process(margos[5].process)
    t_crash = convergence_time(cluster, groups, 6)
    rows.append({"event": "crash (7->6)", "convergence_s": t_crash})

    # --- voluntary leave ----------------------------------------------------
    def do_leave():
        yield from groups[4].leave()

    cluster.run_ult(margos[4], do_leave())
    t_leave = convergence_time(cluster, groups, 5)
    rows.append({"event": "leave (6->5)", "convergence_s": t_leave})

    # --- Colza stale-view protocol -------------------------------------------
    app = cluster.add_margo("app", node="napp")
    live_members = [
        g.margo.address for g in groups if g.is_member and g.margo.process.alive
    ]
    pipeline = ColzaClient(app).make_pipeline_handle(live_members, provider_id=1)

    def iteration_one():
        yield from pipeline.stage(1, [b"x" * 2048] * 10)
        result = yield from pipeline.execute(1)
        return result

    baseline = cluster.run_ult(app, iteration_one())

    # Membership changes *behind the client's back*: kill another member.
    cluster.faults.kill_process(margos[3].process)
    convergence_time(cluster, groups, 4)

    def iteration_two():
        yield from pipeline.stage(2, [b"y" * 2048] * 10)
        result = yield from pipeline.execute(2)
        return result

    after = cluster.run_ult(app, iteration_two())
    stale_rejections = sum(p.stale_rejections for p in providers)
    rows.append(
        {
            "event": "stale-view protocol",
            "convergence_s": None,
            "stale_rejections": stale_rejections,
            "view_refreshes": pipeline.view_refreshes,
            "chunks_before": baseline["chunks"],
            "chunks_after": after["chunks"],
        }
    )
    return rows


def test_e7_ssg_views_and_colza_protocol(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E7: SSG view convergence + Colza staleness detection", rows)
    save_results("E7_ssg_colza", {"rows": rows})

    # Every membership change converged (eventual consistency, bounded).
    for row in rows[:3]:
        assert row["convergence_s"] is not None, row["event"]
        assert row["convergence_s"] < 60.0
    # Crash detection takes longer than a voluntary announcement path
    # would suggest: it must wait out ping timeouts + suspicion.
    assert rows[1]["convergence_s"] > 0
    # The Colza protocol detected staleness and recovered: the client
    # refreshed at least once, and no chunk was lost in iteration 2.
    protocol = rows[3]
    assert protocol["stale_rejections"] >= 1
    assert protocol["view_refreshes"] >= 1
    assert protocol["chunks_after"] == 10
    assert protocol["chunks_before"] == 10
