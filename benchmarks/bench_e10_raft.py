"""E10 -- section 7, Observation 11: Mochi-RAFT availability and safety.

A Yokan backend is replicated across 5 nodes by Raft (the paper's
composable-consensus design: Yokan is unmodified).  A client submits a
steady command stream; the leader is killed mid-stream.  Measured:

* throughput before/after the failure;
* the unavailability window (last success before the kill to first
  success after);
* safety: every acknowledged write is present afterwards, and all
  surviving state machines are identical.
"""

import pytest

from repro import Cluster
from repro.margo.ult import UltSleep
from repro.raft import KVStateMachine, RaftClient, RaftConfig, RaftNode, Role
from repro.yokan import MapBackend

from common import print_table, save_results

RC = RaftConfig(
    heartbeat_interval=0.05,
    election_timeout_min=0.15,
    election_timeout_max=0.3,
    rpc_timeout=0.06,
)
KILL_AT = 4.0
RUN_FOR = 12.0
SUBMIT_GAP = 0.02


def run_experiment():
    cluster = Cluster(seed=111)
    margos = [cluster.add_margo(f"r{i}", node=f"n{i}") for i in range(5)]
    peers = [m.address for m in margos]
    nodes = [
        RaftNode(
            margo, f"raft{i}", provider_id=1,
            state_machine=KVStateMachine(MapBackend()),
            peers=peers,
            rng=cluster.randomness.stream(f"raft:{i}"),
            config=RC,
        )
        for i, margo in enumerate(margos)
    ]
    app = cluster.add_margo("app", node="napp")
    handle = RaftClient(app).make_group_handle(peers, provider_id=1)

    acked: list[tuple[float, int]] = []  # (time, sequence)

    def submitter():
        sequence = 0
        while cluster.now < RUN_FOR:
            try:
                yield from handle.submit(
                    {"op": "put", "key": f"k{sequence:06d}".encode(),
                     "value": f"v{sequence}".encode()},
                    rpc_timeout=0.5,
                )
                acked.append((cluster.now, sequence))
                sequence += 1
            except Exception:
                pass  # retry next loop iteration
            yield UltSleep(SUBMIT_GAP)

    cluster.spawn(app, submitter())
    cluster.run(until=KILL_AT)
    (leader,) = [n for n in nodes if n.role == Role.LEADER and n._running]
    cluster.faults.kill_process(leader.margo.process)
    cluster.run(until=RUN_FOR + 2.0)

    survivors = [n for n in nodes if n is not leader]
    before = [t for t, _ in acked if t <= KILL_AT]
    after = [t for t, _ in acked if t > KILL_AT]
    unavailability = after[0] - before[-1] if after and before else None

    # Safety: every acked write present in every survivor's backend.
    acked_keys = {f"k{seq:06d}".encode() for _, seq in acked}
    missing = 0
    cluster.run(until=cluster.now + 2.0)  # let followers catch up fully
    for node in survivors:
        backend = node.sm.backend
        missing += sum(1 for key in acked_keys if not backend.exists(key))
    dumps = {bytes(n.sm.backend.dump()) for n in survivors}

    rows = [
        {
            "phase": "before leader kill",
            "acked_writes": len(before),
            "throughput_per_s": len(before) / KILL_AT,
        },
        {
            "phase": "after leader kill",
            "acked_writes": len(after),
            "throughput_per_s": len(after) / (RUN_FOR - KILL_AT),
        },
    ]
    summary = {
        "unavailability_window_s": unavailability,
        "election_timeout_max_s": RC.election_timeout_max,
        "acked_total": len(acked),
        "acked_missing_after_failover": missing,
        "survivor_states_identical": len(dumps) == 1,
    }
    return rows, summary


def test_e10_raft_failover(benchmark):
    rows, summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E10: Raft-replicated Yokan under leader failure", rows)
    print_table("E10: summary", [summary])
    save_results("E10_raft", {"rows": rows, "summary": summary})

    # Availability: service resumed, and the outage is on the order of
    # the election timeout (well under 20x).
    assert summary["unavailability_window_s"] is not None
    assert summary["unavailability_window_s"] < RC.election_timeout_max * 20
    assert rows[1]["acked_writes"] > 0
    # Throughput recovers to the same order of magnitude.
    assert rows[1]["throughput_per_s"] > rows[0]["throughput_per_s"] * 0.5
    # Safety: zero acknowledged writes lost; replicas converge.
    assert summary["acked_missing_after_failover"] == 0
    assert summary["survivor_states_identical"]
