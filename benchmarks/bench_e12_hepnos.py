"""E12 -- section 1 (motivation): dynamic HEPnOS vs static configurations.

"Rather than compromising and using a static configuration of HEPnOS
that provides satisfactory overall performance, a dynamic version of
HEPnOS that reconfigures at run time for each individual step's I/O
pattern could be used."

The NOvA-like workflow (parallel ingest of 64 KiB raw products ->
filtering -> skim -> scan-heavy analysis) runs against every static
sharding configuration and against a dynamic service that reshards
online between steps (reshard time charged to the dynamic run).  The
experiment sweeps the workflow scale to expose the amortization
crossover: at small scales the reconfiguration cost dominates; as steps
lengthen, dynamic approaches and then beats the best static.
"""

import random

import pytest

from repro import Cluster
from repro.hepnos import HEPnOSService, WorkflowStep, run_step

from common import print_table, save_results

NODES = ["n0", "n1", "n2", "n3"]
NUM_INJECTORS = 4
PREFERRED = {"ingest": 4, "filter": 4, "analysis": 1}
STATIC_CHOICES = [1, 2, 4]
SCALES = [1, 4]


def workflow_steps(scale):
    return [
        WorkflowStep("ingest", "ingest", 160 * scale, 64 * 1024),
        WorkflowStep("filter", "filter", 60, 1024),
        WorkflowStep(
            "analysis", "analysis", 16, 256, num_scans=150 * scale, reads_per_scan=8
        ),
    ]


def run_workflow(dynamic, static_dbs, scale):
    cluster = Cluster(seed=117)
    initial = PREFERRED["ingest"] if dynamic else static_dbs
    service = HEPnOSService.deploy(cluster, NODES, databases_per_process=initial)
    apps = [cluster.add_margo(f"app{i}", node=f"napp{i}") for i in range(NUM_INJECTORS)]
    clients = [service.client(app) for app in apps]
    rng = random.Random(3)
    durations = {}
    reshard_time = 0.0

    for step in workflow_steps(scale):
        if step.kind == "analysis":
            def compact():
                count = yield from clients[0].drop_product("nova", "raw")
                return count

            cluster.run_ult(apps[0], compact())
        if dynamic:
            want = PREFERRED[step.kind]
            have = len(service.shards) // len(NODES)
            if want != have:
                before = cluster.now

                def do_reshard(want=want):
                    yield from service.reshard(databases_per_process=want)

                service.service.run_control(do_reshard())
                for client in clients:
                    client.refresh(service.shards)
                reshard_time += cluster.now - before
        started = cluster.now
        if step.kind == "ingest":
            share = step.num_events // NUM_INJECTORS
            ults = []
            for i, (app, client) in enumerate(zip(apps, clients)):
                sub = WorkflowStep(step.name, step.kind, share, step.product_size)
                ults.append(
                    app.spawn_ult(
                        run_step(client, sub, random.Random(100 + i), run_number=i)
                    )
                )
            cluster.wait_ults(ults)
        else:
            cluster.run_ult(apps[0], run_step(clients[0], step, rng))
        durations[step.name] = cluster.now - started
    total = sum(durations.values()) + reshard_time
    return durations, reshard_time, total


def run_experiment():
    rows = []
    for scale in SCALES:
        statics = {}
        for dbs in STATIC_CHOICES:
            durations, _, total = run_workflow(False, dbs, scale)
            statics[dbs] = total
            rows.append(
                {
                    "scale": scale,
                    "config": f"static-{dbs}",
                    "ingest_s": durations["ingest"],
                    "analysis_s": durations["analysis"],
                    "reshard_s": 0.0,
                    "total_s": total,
                }
            )
        durations, reshard_time, total = run_workflow(True, 0, scale)
        rows.append(
            {
                "scale": scale,
                "config": "dynamic",
                "ingest_s": durations["ingest"],
                "analysis_s": durations["analysis"],
                "reshard_s": reshard_time,
                "total_s": total,
            }
        )
        best = min(statics.values())
        rows[-1]["vs_best_static"] = best / total
    return rows


def test_e12_dynamic_vs_static_hepnos(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E12: per-step dynamic reconfiguration vs static configs", rows)
    save_results("E12_hepnos", {"rows": rows})

    by_scale: dict = {}
    for row in rows:
        by_scale.setdefault(row["scale"], {})[row["config"]] = row

    for scale, configs in by_scale.items():
        dynamic = configs["dynamic"]
        statics = [v for k, v in configs.items() if k.startswith("static")]
        best_static = min(s["total_s"] for s in statics)
        worst_static = max(s["total_s"] for s in statics)
        # Dynamic always beats the *worst* static (the compromise the
        # paper wants to avoid) by a clear margin...
        assert dynamic["total_s"] < worst_static * 0.9
        # ...and stays within 10% of the best static even when the
        # reconfiguration is not yet amortized.
        assert dynamic["total_s"] < best_static * 1.10
        # Each step ran at its preferred configuration's speed.
        assert dynamic["ingest_s"] == pytest.approx(
            configs["static-4"]["ingest_s"], rel=0.15
        )
        assert dynamic["analysis_s"] == pytest.approx(
            configs["static-1"]["analysis_s"], rel=0.15
        )
    # At the largest scale, dynamic beats every static configuration.
    largest = by_scale[max(SCALES)]
    best_static = min(
        v["total_s"] for k, v in largest.items() if k.startswith("static")
    )
    assert largest["dynamic"]["total_s"] <= best_static * 1.001
