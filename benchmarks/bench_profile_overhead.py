"""Continuous-profiler overhead on the P0 RPC hot path.

mochi-profile promises zero-cost-when-off: with ``profiling`` disabled
no profiler object exists, the pool hooks are one ``is not None`` check,
and no monitor is attached.  This suite measures exactly that promise,
plus the price of turning profiling on:

* ``rpc_off``  -- end-to-end RPCs/sec with profiling disabled (same
  workload as ``bench_p0_throughput``, directly comparable against the
  BENCH_P0.json trajectory);
* ``rpc_on``   -- the same workload with both endpoints profiled
  (window sampling + full latency decomposition + waterfall ring).

Results land in ``benchmarks/results/PROFILE_overhead.json`` and the
repo-root ``BENCH_PROFILE.json``.  The acceptance gate for this PR: the
*disabled* path must stay within 2% of the BENCH_P0.json trajectory
numbers (same workloads, same machine class).

Usage::

    PYTHONPATH=src python benchmarks/bench_profile_overhead.py          # full run
    PYTHONPATH=src python benchmarks/bench_profile_overhead.py --smoke  # CI smoke
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself; time.perf_counter here reads the host
# clock on purpose and never runs under the kernel.

import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from common import print_table, save_results  # noqa: E402

from repro import Cluster  # noqa: E402
from repro.margo import Compute  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
P0_TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_P0.json")
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_PROFILE.json")

OBS_OFF = {"observability": {"tracing": False, "metrics": False}}
#: Profiling on, everything else identical.  The window is sized so the
#: boundary timer actually fires many times during the run (the sampling
#: path is part of what is being priced).
OBS_PROFILED = {
    "observability": {
        "tracing": False,
        "metrics": False,
        "profiling": True,
        "profile_window": 1e-4,
    }
}

#: Same RPC workload shape as bench_p0_throughput so the off-path
#: numbers are directly comparable against the BENCH_P0.json trajectory.
#: Repeats are higher than the P0 suite because shared runners show
#: bimodal phases; best-of needs to sample the fast phase of both arms.
FULL = dict(repeats=15, n_rpcs=2500)
SMOKE = dict(repeats=1, n_rpcs=60)


def _best_of(repeats: int, fn):
    best = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            stats = fn()
        finally:
            gc.enable()
        if best is None or stats["wall_s"] < best["wall_s"]:
            best = stats
    return best


def bench_rpc(n_rpcs: int, profiled: bool) -> dict:
    """Identical to the P0 rpc workload, profiling off or on."""
    config = OBS_PROFILED if profiled else OBS_OFF
    cluster = Cluster(seed=7)
    server = cluster.add_margo("server", node="n0", config=dict(config))
    client = cluster.add_margo("client", node="n1", config=dict(config))

    def handler(ctx):
        yield Compute(1e-6)
        return ctx.args

    server.register("echo", handler)

    def driver():
        for i in range(n_rpcs):
            yield from client.forward(server.address, "echo", i)
        return None

    started = time.perf_counter()
    cluster.run_ult(client, driver())
    wall = time.perf_counter() - started
    stats = {
        "rpcs": n_rpcs,
        "wall_s": wall,
        "rpcs_per_sec": n_rpcs / wall,
        "sim_time": cluster.now,
        "profiled": profiled,
    }
    if profiled:
        stats["windows_closed"] = len(server.profiler.store.windows)
        stats["waterfalls"] = len(client.profiler.waterfalls)
    return stats


def run_suite(params: dict) -> dict:
    repeats = params["repeats"]
    n_rpcs = params["n_rpcs"]
    return {
        "rpc_off": _best_of(repeats, lambda: bench_rpc(n_rpcs, profiled=False)),
        "rpc_on": _best_of(repeats, lambda: bench_rpc(n_rpcs, profiled=True)),
        "params": dict(params),
    }


def _rows(results: dict, p0: dict | None) -> list[dict]:
    off = results["rpc_off"]["rpcs_per_sec"]
    on = results["rpc_on"]["rpcs_per_sec"]
    row = {
        "bench": "rpc",
        "rate_off": off,
        "rate_on": on,
        "unit": "rpcs_per_sec",
        "profiler_on_overhead": 1.0 - on / off,
    }
    if p0 is not None:
        p0_rate = p0.get("current", {}).get("rpc", {}).get("rpcs_per_sec")
        if p0_rate:
            row["p0_rate"] = p0_rate
            row["off_vs_p0"] = off / p0_rate
    return [row]


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    params = SMOKE if smoke else FULL

    results = run_suite(params)

    p0 = None
    if os.path.exists(P0_TRAJECTORY_PATH):
        with open(P0_TRAJECTORY_PATH) as handle:
            p0 = json.load(handle)

    rows = _rows(results, p0 if not smoke else None)
    print_table("continuous-profiler overhead" + (" (smoke)" if smoke else ""), rows)

    if smoke:
        # CI rot check only: the harness must run end to end; no wall-clock
        # assertions on shared runners.
        print("profile-overhead smoke OK")
        return 0

    save_results("PROFILE_overhead", {"results": results, "p0_trajectory": p0})
    trajectory = {
        "experiment": "PROFILE_overhead",
        "description": (
            "Wall-clock throughput of the Margo RPC path with the "
            "continuous profiler off vs on; the off numbers use the same "
            "workload as BENCH_P0.json so 'off_vs_p0' measures the "
            "disabled-path regression (the PR gate requires it within "
            "2%), and 'profiler_on_overhead' is the fractional cost of "
            "window sampling + latency decomposition + waterfalls."
        ),
        "results": results,
        "comparison": rows,
    }
    with open(TRAJECTORY_PATH, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
    print(f"trajectory written to {TRAJECTORY_PATH}")
    return 0


# Pytest entry point (smoke-sized so `pytest benchmarks/` stays fast).
def test_profile_overhead_smoke():
    results = run_suite(SMOKE)
    assert results["rpc_off"]["rpcs"] == SMOKE["n_rpcs"]
    assert results["rpc_on"]["rpcs"] == SMOKE["n_rpcs"]
    # The profiled run really profiled: windows closed, waterfalls kept.
    assert results["rpc_on"]["windows_closed"] > 0
    assert results["rpc_on"]["waterfalls"] > 0
    # Profiling is modeled observation (monitoring cost per event), so
    # the profiled run's simulated time moves -- but never backwards.
    assert results["rpc_on"]["sim_time"] >= results["rpc_off"]["sim_time"]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
