"""Continuous-profiler overhead on the P0 RPC hot path.

mochi-profile promises zero-cost-when-off: with ``profiling`` disabled
no profiler object exists, the pool hooks are one ``is not None`` check,
and no monitor is attached.  This suite measures exactly that promise,
plus the price of turning profiling on:

* ``rpc_off``  -- end-to-end RPCs/sec with profiling disabled (same
  workload as ``bench_p0_throughput``, directly comparable against the
  BENCH_P0.json trajectory);
* ``rpc_on``   -- the same workload with both endpoints profiled
  (window sampling + full latency decomposition + waterfall ring).

Results land in ``benchmarks/results/PROFILE_overhead.json`` and the
repo-root ``BENCH_PROFILE.json``.  The acceptance gate for this PR: the
*disabled* path must stay within 2% of the BENCH_P0.json trajectory
numbers (same workloads, same machine class).

Usage::

    PYTHONPATH=src python benchmarks/bench_profile_overhead.py          # full run
    PYTHONPATH=src python benchmarks/bench_profile_overhead.py --smoke  # CI smoke
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself; time.perf_counter here reads the host
# clock on purpose and never runs under the kernel.

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _harness import (  # noqa: E402
    OBS_OFF,
    REPO_ROOT,
    bench_rpc_echo,
    load_trajectory,
    paired_ratio,
    run_rounds,
)
from common import print_table, save_results  # noqa: E402

P0_TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_P0.json")
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_PROFILE.json")

#: Profiling on, everything else identical.  The window is sized so the
#: boundary timer actually fires many times during the run (the sampling
#: path is part of what is being priced).
OBS_PROFILED = {
    "observability": {
        "tracing": False,
        "metrics": False,
        "profiling": True,
        "profile_window": 1e-4,
    }
}

#: Same RPC workload shape as bench_p0_throughput so the off-path
#: numbers are directly comparable against the BENCH_P0.json trajectory.
#: Palindrome paired rounds (see benchmarks/_harness.py) run each arm
#: twice per round, so 8 rounds sample each arm 16 times.
FULL = dict(repeats=8, n_rpcs=2500)
SMOKE = dict(repeats=1, n_rpcs=60)


def run_suite(params: dict) -> dict:
    n_rpcs = params["n_rpcs"]
    results, rounds = run_rounds(params["repeats"], {
        "rpc_off": lambda: bench_rpc_echo(n_rpcs, OBS_OFF),
        "rpc_on": lambda: bench_rpc_echo(n_rpcs, OBS_PROFILED),
    })
    results["params"] = dict(params)
    results["rounds"] = rounds
    return results


def _rows(results: dict, p0: dict | None) -> list[dict]:
    on_ratio = paired_ratio(results["rounds"], "rpc_on", "rpc_off")
    row = {
        "bench": "rpc",
        "rate_off": results["rpc_off"]["rpcs_per_sec"],
        "rate_on": results["rpc_on"]["rpcs_per_sec"],
        "unit": "rpcs_per_sec",
        # Overhead = extra wall fraction, from the paired wall ratio.
        "profiler_on_overhead": 1.0 - 1.0 / on_ratio,
    }
    if p0 is not None:
        p0_rate = p0.get("current", {}).get("rpc", {}).get("rpcs_per_sec")
        if p0_rate:
            row["p0_rate"] = p0_rate
            row["off_vs_p0"] = off / p0_rate
    return [row]


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    params = SMOKE if smoke else FULL

    results = run_suite(params)

    p0 = load_trajectory(P0_TRAJECTORY_PATH)
    rows = _rows(results, p0 if not smoke else None)
    print_table("continuous-profiler overhead" + (" (smoke)" if smoke else ""), rows)

    if smoke:
        # CI rot check only: the harness must run end to end; no wall-clock
        # assertions on shared runners.
        print("profile-overhead smoke OK")
        return 0

    save_results("PROFILE_overhead", {"results": results, "p0_trajectory": p0})
    trajectory = {
        "experiment": "PROFILE_overhead",
        "description": (
            "Wall-clock throughput of the Margo RPC path with the "
            "continuous profiler off vs on; the off numbers use the same "
            "workload as BENCH_P0.json so 'off_vs_p0' measures the "
            "disabled-path regression (the PR gate requires it within "
            "2%), and 'profiler_on_overhead' is the fractional cost of "
            "window sampling + latency decomposition + waterfalls."
        ),
        "results": {k: v for k, v in results.items() if k != "rounds"},
        "comparison": rows,
    }
    with open(TRAJECTORY_PATH, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
    print(f"trajectory written to {TRAJECTORY_PATH}")
    return 0


# Pytest entry point (smoke-sized so `pytest benchmarks/` stays fast).
def test_profile_overhead_smoke():
    results = run_suite(SMOKE)
    assert results["rpc_off"]["rpcs"] == SMOKE["n_rpcs"]
    assert results["rpc_on"]["rpcs"] == SMOKE["n_rpcs"]
    # The profiled run really profiled: windows closed, waterfalls kept.
    assert results["rpc_on"]["windows_closed"] > 0
    assert results["rpc_on"]["waterfalls"] > 0
    # Profiling is modeled observation (monitoring cost per event), so
    # the profiled run's simulated time moves -- but never backwards.
    assert results["rpc_on"]["sim_time"] >= results["rpc_off"]["sim_time"]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
