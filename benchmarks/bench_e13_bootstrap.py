"""E13 -- sections 2.2/5: glue-code-free bootstrapping with Bedrock.

"Bedrock's bootstrapping mechanism is already a powerful way to set up
Mochi services without the need for glue code."

The experiment boots whole services from single JSON documents, sweeping
process count and providers-per-process, and reports bootstrap time
(simulated) plus the one-call Jx9 verification that everything came up.
Expected shape: bootstrap cost grows roughly linearly in total provider
count and stays tiny in absolute terms.
"""

import pytest

from repro import Cluster
from repro.bedrock import boot_process

from common import print_table, save_results

SWEEP = [(1, 1), (1, 8), (4, 8), (8, 16), (16, 32)]


def service_config(providers_per_process):
    pools = [{"name": "__primary__"}]
    xstreams = [{"name": "__primary__", "scheduler": {"pools": ["__primary__"]}}]
    providers = []
    for index in range(providers_per_process):
        providers.append(
            {
                "name": f"db{index}",
                "type": "yokan",
                "provider_id": index + 1,
                "config": {"database": {"type": "map"}},
            }
        )
    return {
        "margo": {"argobots": {"pools": pools, "xstreams": xstreams}},
        "libraries": {"yokan": "libyokan.so"},
        "providers": providers,
    }


def run_boot(num_processes, providers_per_process):
    cluster = Cluster(seed=119)
    config = service_config(providers_per_process)
    started = cluster.now
    bedrocks = []
    for index in range(num_processes):
        _margo, bedrock = boot_process(
            cluster, f"p{index}", f"n{index}", config
        )
        bedrocks.append(bedrock)
    cluster.run()  # drain any deferred setup work
    elapsed = cluster.now - started

    # Glue-code-free verification: one Jx9 query per process.
    names = bedrocks[0].query(
        "$result = [];\n"
        "foreach ($__config__.providers as $p) { array_push($result, $p.name); }\n"
        "return $result;"
    )
    total_providers = sum(len(b.records) for b in bedrocks)
    return {
        "processes": num_processes,
        "providers_per_process": providers_per_process,
        "total_providers": total_providers,
        "bootstrap_simulated_s": elapsed,
        "providers_verified_by_jx9": len(names),
    }


def run_experiment():
    return [run_boot(p, k) for p, k in SWEEP]


def test_e13_bootstrap_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E13: Bedrock bootstrap scaling", rows)
    save_results("E13_bootstrap", {"rows": rows})

    for (p, k), row in zip(SWEEP, rows):
        assert row["total_providers"] == p * k
        assert row["providers_verified_by_jx9"] == k
    # Bootstrap is fast in absolute terms even at 512 providers.
    assert rows[-1]["bootstrap_simulated_s"] < 1.0
