"""P1 raw-speed round: wheel-kernel speedup and off-path freedom gates.

The P1 rewrite replaced the kernel's binary heap with a bucketed timer
wheel (flat event slots, free-listed buckets, an overflow far-list with
lazy span resize) and precomputed the pool->xstream dispatch routes.
This suite prices the result and pins it in ``BENCH_P1.json``:

* ``kernel_wheel`` / ``kernel_heap`` -- events/sec of the discrete-event
  core on both backends.  The headline gate compares the wheel against
  the *pinned* ``BENCH_P0.json`` rate (the heap kernel as it was before
  this round): >= 1.5x in full runs, >= 1.4x in ``--gate`` runs (CI
  runners are slower and noisier than the machine that pinned P0).  The
  same-run ``wheel_vs_heap`` paired ratio is reported alongside; it
  understates the rewrite because the heap backend also received the
  flat-slot and free-list work.

* off-path arms -- the P1 acceptance bar says instrumented-but-off runs
  stay within 1.02x of plain runs, *measured same-run and paired* (the
  old cross-file ``off_vs_p0`` comparisons drift with machine load; see
  benchmarks/_harness.py).  Two tripwires ride in the same rounds as the
  base RPC arm:

  - ``rpc_race_cycled``: the race detector is enabled and then disabled
    before measuring.  This must be free: it trips if ``disable()``
    fails to restore the swapped kernel methods or leaves a module flag
    (``ANY_HELD``, ``EVENT_EDGES``) raised.
  - ``rpc_explicit_off``: every observability knob present in the
    config and set to false.  It trips if parsing an explicit-off
    config leaves any observer attached.

  A real leak taxes *every* sample, so it inflates both the paired
  median and the best-of-all-samples wall ratio; wall-clock noise on a
  shared runner corrupts one statistic or the other, rarely both in the
  same direction.  The wall-clock gate therefore trips only when both
  statistics exceed 1.02.  The primary leak guard is deterministic: a
  structural check that the cycled detector restored the pristine
  kernel methods and lowered every module flag (always enforced, even
  in smoke runs).

* golden equality -- a seeded mixed workload (near/far/same-deadline/
  cancelled timers plus a sleeping task) must produce a byte-identical
  fire trace on both backends.  Checked on every run, including smoke.

Gates (enforced in full and ``--gate`` runs, exit 1 on failure):

* wheel >= 1.5x pinned P0 events/sec (1.4x under ``--gate``);
* each off-path arm within 1.02x (paired median AND best-wall must not
  both exceed it), plus the structural restoration check;
* wheel and heap golden traces identical.

Results land in ``benchmarks/results/P1_speed.json`` and the repo-root
``BENCH_P1.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_p1_speed.py          # full + gates
    PYTHONPATH=src python benchmarks/bench_p1_speed.py --gate   # CI-sized gate
    PYTHONPATH=src python benchmarks/bench_p1_speed.py --smoke  # CI rot check
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself; time.perf_counter here reads the host
# clock on purpose and never runs under the kernel.

import json
import os
import random
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _harness import (  # noqa: E402
    OBS_OFF,
    REPO_ROOT,
    bench_kernel_swarm,
    bench_rpc_echo,
    load_trajectory,
    paired_ratio,
    run_rounds,
)
from common import print_table, save_results  # noqa: E402

from repro.analysis.race import hooks  # noqa: E402
from repro.sim import SimKernel, Sleep  # noqa: E402
from repro.sim import kernel as kernel_mod  # noqa: E402

P0_TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_P0.json")
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_P1.json")

#: Acceptance thresholds (ISSUE 7).  The gate-run bar is lower because
#: CI runners are slower than the machine that pinned BENCH_P0.json,
#: and the pinned denominator does not scale with the runner.
KERNEL_MIN_SPEEDUP_FULL = 1.5
KERNEL_MIN_SPEEDUP_GATE = 1.4
OFF_PATH_MAX_RATIO = 1.02

#: Same workload shapes as bench_p0_throughput so the speedup divides
#: like for like against the BENCH_P0.json trajectory.
FULL = dict(repeats=12, n_tasks=300, n_steps=50, n_rpcs=2500)
GATE = dict(repeats=6, n_tasks=300, n_steps=50, n_rpcs=2500)
SMOKE = dict(repeats=1, n_tasks=40, n_steps=10, n_rpcs=60)

#: Explicit-off observability config: every knob present and false.
OBS_EXPLICIT_OFF = {
    "observability": {"tracing": False, "metrics": False, "profiling": False}
}


# ----------------------------------------------------------------------
# golden wheel-vs-heap equality
# ----------------------------------------------------------------------
def _golden_trace(backend: str, seed: int = 1234) -> list:
    """A seeded storm of near, far, same-deadline, and cancelled timers
    plus a sleeping task -- the same shape tests/test_kernel_wheel.py
    pins, sized down for a per-run assertion."""
    rng = random.Random(seed)
    kernel = SimKernel(backend)
    span = kernel_mod._WHEEL_SPAN
    log = []

    def note(tag):
        log.append((kernel.now, tag))

    cancelled = []
    for i in range(200):
        kind = rng.randrange(4)
        if kind == 0:
            kernel.schedule(rng.uniform(0, span * 0.9), note, f"near{i}")
        elif kind == 1:
            kernel.schedule(span * rng.uniform(2, 50), note, f"far{i}")
        elif kind == 2:
            kernel.schedule(span * 0.5, note, f"batch{i}")
        else:
            cancelled.append(
                kernel.schedule(span * rng.uniform(0, 40), note, f"dead{i}")
            )
    for timer in cancelled:
        timer.cancel()

    def sleeper():
        for n in range(3):
            yield Sleep(span * 7)
            note(f"sleep{n}")

    kernel.spawn(sleeper(), name="sleeper")
    kernel.run()
    return log


def golden_traces_equal() -> bool:
    return _golden_trace("wheel") == _golden_trace("heap")


# ----------------------------------------------------------------------
# measurement arms
# ----------------------------------------------------------------------
def _rpc_race_cycled(n_rpcs: int):
    """Cycle the race detector before measuring with it off: prices the
    restored zero-cost path, not the detector."""
    hooks.enable()
    hooks.disable()
    hooks.reset()
    return bench_rpc_echo(n_rpcs, OBS_OFF)


def structural_leaks() -> list[str]:
    """Deterministic off-path leak check: cycle the detector through
    both modes and verify everything is restored.  This, not the
    wall-clock tripwire, is the primary guard -- a leaked hook would
    show up here before it shows up as noise-free overhead."""
    pristine_schedule = SimKernel.schedule
    pristine_post = SimKernel.post
    for sample_every in (1, None):  # exact mode swaps; epoch must not
        hooks.enable(sample_every=sample_every)
        hooks.disable()
        hooks.reset()
    leaks = []
    if SimKernel.schedule is not pristine_schedule:
        leaks.append("SimKernel.schedule not restored after disable()")
    if SimKernel.post is not pristine_post:
        leaks.append("SimKernel.post not restored after disable()")
    for flag in ("ENABLED", "EVENT_EDGES", "ANY_HELD", "_SWAPPED"):
        if getattr(hooks, flag):
            leaks.append(f"hooks.{flag} still raised after disable()")
    if kernel_mod._RACE is not None:
        leaks.append("kernel _RACE hook module still installed")
    return leaks


def run_suite(params: dict) -> dict:
    kernel_args = (params["n_tasks"], params["n_steps"])
    n_rpcs = params["n_rpcs"]
    results, rounds = run_rounds(params["repeats"], {
        "kernel_wheel": lambda: bench_kernel_swarm(*kernel_args, backend="wheel"),
        "kernel_heap": lambda: bench_kernel_swarm(*kernel_args, backend="heap"),
        "rpc_base": lambda: bench_rpc_echo(n_rpcs, OBS_OFF),
        "rpc_race_cycled": lambda: _rpc_race_cycled(n_rpcs),
        "rpc_explicit_off": lambda: bench_rpc_echo(n_rpcs, OBS_EXPLICIT_OFF),
    })
    results["params"] = dict(params)
    results["rounds"] = rounds
    return results


def _comparison(results: dict, p0: dict | None, min_speedup: float) -> dict:
    rounds = results["rounds"]
    wheel_rate = results["kernel_wheel"]["events_per_sec"]
    comparison = {
        "wheel_events_per_sec": wheel_rate,
        "heap_events_per_sec": results["kernel_heap"]["events_per_sec"],
        # Same-run paired wall ratio: >1 means the wheel is faster.
        "wheel_vs_heap": paired_ratio(rounds, "kernel_heap", "kernel_wheel"),
        # Two statistics per off arm: the paired-round median and the
        # best-wall ratio (min over every sample of both arms).  A real
        # leak inflates both; noise rarely inflates both.
        "off_path_ratios": {
            arm: {
                "paired_median": paired_ratio(rounds, arm, "rpc_base"),
                "best_wall": (
                    results[arm]["wall_s"] / results["rpc_base"]["wall_s"]
                ),
            }
            for arm in ("rpc_race_cycled", "rpc_explicit_off")
        },
        "kernel_min_speedup": min_speedup,
    }
    if p0 is not None:
        p0_rate = p0.get("current", {}).get("kernel", {}).get("events_per_sec")
        if p0_rate:
            comparison["p0_events_per_sec"] = p0_rate
            comparison["speedup_vs_p0"] = wheel_rate / p0_rate
    return comparison


def _kernel_rows(comparison: dict) -> list[dict]:
    return [{
        "bench": "kernel",
        "wheel_rate": comparison["wheel_events_per_sec"],
        "heap_rate": comparison["heap_events_per_sec"],
        "wheel_vs_heap": comparison["wheel_vs_heap"],
        "speedup_vs_p0": comparison.get("speedup_vs_p0"),
    }]


def _off_path_rows(comparison: dict) -> list[dict]:
    return [
        {"arm": arm, **ratios}
        for arm, ratios in comparison["off_path_ratios"].items()
    ]


def _check_gates(
    comparison: dict, traces_equal: bool, leaks: list[str]
) -> list[str]:
    failures = list(leaks)
    if not traces_equal:
        failures.append("golden wheel-vs-heap traces differ")
    speedup = comparison.get("speedup_vs_p0")
    min_speedup = comparison["kernel_min_speedup"]
    if speedup is None:
        failures.append("BENCH_P0.json pinned kernel rate missing")
    elif speedup < min_speedup:
        failures.append(
            f"kernel: wheel speedup {speedup:.2f}x < {min_speedup:.1f}x pinned P0"
        )
    for arm, ratios in comparison["off_path_ratios"].items():
        if all(r > OFF_PATH_MAX_RATIO for r in ratios.values()):
            failures.append(
                f"{arm}: off-path paired median {ratios['paired_median']:.3f} "
                f"and best-wall {ratios['best_wall']:.3f} both > "
                f"{OFF_PATH_MAX_RATIO}"
            )
    return failures


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    gate = "--gate" in argv
    params = SMOKE if smoke else GATE if gate else FULL
    min_speedup = KERNEL_MIN_SPEEDUP_GATE if gate else KERNEL_MIN_SPEEDUP_FULL

    traces_equal = golden_traces_equal()
    leaks = structural_leaks()
    results = run_suite(params)

    if smoke:
        # CI rot check: the harness must run end to end and the
        # deterministic checks must hold; no wall-clock assertions on
        # shared runners.
        for leak in leaks:
            print(f"GATE FAILED: {leak}")
        if not traces_equal:
            print("GATE FAILED: golden wheel-vs-heap traces differ")
        if leaks or not traces_equal:
            return 1
        print("p1-speed smoke OK")
        return 0

    p0 = load_trajectory(P0_TRAJECTORY_PATH)
    comparison = _comparison(results, p0, min_speedup)
    label = " (gate)" if gate else ""
    print_table("P1 kernel speed" + label, _kernel_rows(comparison))
    print_table("off-path freedom" + label, _off_path_rows(comparison))

    failures = _check_gates(comparison, traces_equal, leaks)
    for failure in failures:
        print(f"GATE FAILED: {failure}")

    if not gate:
        save_results("P1_speed", {"results": results, "comparison": comparison})
        trajectory = {
            "experiment": "P1_speed",
            "description": (
                "P1 bucketed timer-wheel kernel vs the pinned BENCH_P0.json "
                "heap baseline on the identical swarm workload, plus the "
                "same-run paired off-path freedom gates (race detector "
                "cycled off, explicit-off observability config).  "
                "'speedup_vs_p0' divides the wheel backend's best "
                "events/sec by the pinned P0 rate; 'wheel_vs_heap' is the "
                "same-run paired wall ratio (the in-repo heap fallback "
                "also carries the P1 flat-slot work, so it understates "
                "the rewrite).  Off-path arms report two statistics "
                "(median of paired per-round wall ratios from "
                "palindrome-ordered rounds, and the best-wall ratio); "
                "the gate trips when both exceed 1.02 -- a real leak "
                "taxes every sample, noise rarely inflates both.  The "
                "primary leak guard is the deterministic structural "
                "restoration check."
            ),
            "results": {k: v for k, v in results.items() if k != "rounds"},
            "comparison": comparison,
            "gates": {
                "kernel_min_speedup": min_speedup,
                "off_path_max_ratio": OFF_PATH_MAX_RATIO,
                "golden_traces_equal": traces_equal,
                "structural_leaks": leaks,
                "passed": not failures,
                "failures": failures,
            },
        }
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
        print(f"trajectory written to {TRAJECTORY_PATH}")

    if failures:
        return 1
    print("p1-speed gates OK")
    return 0


# Pytest entry point (smoke-sized so `pytest benchmarks/` stays fast).
def test_p1_speed_smoke():
    assert golden_traces_equal()
    assert structural_leaks() == []
    results = run_suite(SMOKE)
    assert results["kernel_wheel"]["events"] > 0
    assert results["kernel_wheel"]["events"] == results["kernel_heap"]["events"]
    # Backend choice must not change simulated time, only wall time.
    assert results["kernel_wheel"]["sim_time"] == results["kernel_heap"]["sim_time"]
    assert results["rpc_base"]["rpcs"] == SMOKE["n_rpcs"]
    assert results["rpc_race_cycled"]["sim_time"] == results["rpc_base"]["sim_time"]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
