"""E6 -- section 6, Observation 6: Pufferscale's objective tradeoff.

Pufferscale balances "load balance (balance of accesses to the data),
data balance (balance of their volume on each node), rebalancing time,
or a compromise between these three objectives."

The experiment rescales a skewed 24-shard placement from 4 to 6 nodes
under a sweep of the migration-cost weight gamma and reports the three
objectives for each plan.  Expected shape: gamma=0 reaches the best
balance at the highest migration volume; growing gamma trades balance
away for cheaper plans, monotonically.
"""

import pytest

from repro import Cluster
from repro.margo.ult import UltSleep
from repro.pufferscale import Objective, Placement, PlanExecutor, Shard, plan_rebalance

from common import print_table, save_results

GAMMAS = [0.0, 1.0, 10.0, 100.0, 10_000.0]


def skewed_placement():
    """24 heterogeneous shards piled on 4 of 6 target nodes."""
    placement = Placement([f"n{i}" for i in range(4)])
    sizes = [1 << 20, 4 << 20, 16 << 20, 64 << 20]
    for index in range(24):
        node = f"n{index % 2}"  # all shards on n0/n1: heavy skew
        placement.add(
            node,
            Shard(
                shard_id=f"s{index:02d}",
                size_bytes=sizes[index % 4],
                load=float(1 + index % 5),
            ),
        )
    return placement


def run_experiment():
    target = [f"n{i}" for i in range(6)]  # scale out 4 -> 6
    rows = []
    plans = {}
    for gamma in GAMMAS:
        objective = Objective(alpha=1.0, beta=1.0, gamma=gamma, bandwidth=10e9)
        plan = plan_rebalance(skewed_placement(), target, objective)
        plans[gamma] = plan
        rows.append(
            {
                "gamma": gamma,
                "moves": plan.num_moves,
                "moved_mib": plan.total_bytes // (1 << 20),
                "load_imbalance": plan.after.load_imbalance,
                "data_imbalance": plan.after.data_imbalance,
                "est_migration_s": plan.after.estimated_migration_time,
            }
        )

    # Execute the balanced plan with an injected migrator to measure the
    # actual wall (simulated) rebalancing time.
    cluster = Cluster(seed=106)
    margo = cluster.add_margo("ctl", node="ctl")

    def migrate(shard, src, dst):
        yield UltSleep(shard.size_bytes / 10e9)

    executor = PlanExecutor(margo, migrate, max_parallel=3)

    def drive():
        report = yield from executor.execute(plans[0.0])
        return report

    report = cluster.run_ult(margo, drive())
    summary = {
        "before_load_imbalance": plans[0.0].before.load_imbalance,
        "before_data_imbalance": plans[0.0].before.data_imbalance,
        "executed_moves": report.moves_executed,
        "executed_simulated_s": report.duration,
    }
    return rows, summary


def test_e6_pufferscale_tradeoff(benchmark):
    rows, summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E6: Pufferscale objective sweep (4 -> 6 nodes)", rows)
    print_table("E6: execution", [summary])
    save_results("E6_pufferscale", {"rows": rows, "summary": summary})

    # Shape: gamma=0 reaches (within greedy-path noise) the best balance
    # of the sweep, and near-perfect absolute balance.
    best_balance = min(r["load_imbalance"] + r["data_imbalance"] for r in rows)
    assert rows[0]["load_imbalance"] + rows[0]["data_imbalance"] <= best_balance + 0.1
    assert rows[0]["load_imbalance"] < 1.2
    assert rows[0]["data_imbalance"] < 1.2
    # Bytes moved decrease monotonically as gamma grows.
    moved = [r["moved_mib"] for r in rows]
    assert all(a >= b for a, b in zip(moved, moved[1:]))
    # And the balance achieved degrades (or stays equal) as gamma grows.
    balance = [r["data_imbalance"] for r in rows]
    assert balance[-1] >= balance[0]
    # Rebalancing genuinely improved the initial skew.
    assert summary["before_data_imbalance"] > rows[0]["data_imbalance"]
    assert summary["executed_moves"] == rows[0]["moves"]
