"""Benchmark-suite configuration."""

import os
import sys

# Make `from common import ...` work when pytest runs from the repo root.
sys.path.insert(0, os.path.dirname(__file__))
