"""Ablation A1 -- SWIM gossip dissemination budget.

SSG piggybacks membership updates with a retransmit budget of
``ceil(gossip_mult * log2(n+1))``.  This ablation sweeps ``gossip_mult``
and measures death-detection/convergence latency and protocol message
volume, exposing the dissemination-vs-overhead tradeoff behind the
default (3.0).
"""

import pytest

from repro import Cluster
from repro.ssg import SwimConfig, create_group

from common import print_table, save_results

GROUP_SIZE = 16
MULTS = [0.5, 1.0, 3.0, 6.0]
SETTLE = 3.0


def run_trial(gossip_mult):
    swim = SwimConfig(
        period=0.5, ping_timeout=0.15, suspicion_timeout=2.0, gossip_mult=gossip_mult
    )
    cluster = Cluster(seed=131)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(GROUP_SIZE)]
    groups = create_group("g", margos, cluster.randomness, swim=swim)
    cluster.run(until=SETTLE)
    messages_before = cluster.network.messages_sent
    victim = margos[0]
    kill_time = cluster.now
    cluster.faults.kill_process(victim.process)
    survivors = groups[1:]

    def detected():
        return all(victim.address not in g.view.members for g in survivors)

    deadline = cluster.now + 120.0
    while not detected() and cluster.now < deadline:
        cluster.run(until=cluster.now + swim.period)
    latency = cluster.now - kill_time if detected() else None
    elapsed = cluster.now - kill_time
    message_rate = (cluster.network.messages_sent - messages_before) / max(elapsed, 1e-9)
    return {
        "gossip_mult": gossip_mult,
        "detection_s": latency,
        "messages_per_s": message_rate,
        "messages_per_member_per_period": message_rate * swim.period / GROUP_SIZE,
    }


def run_experiment():
    return [run_trial(m) for m in MULTS]


def test_a1_gossip_budget(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A1: SWIM gossip retransmit budget ablation", rows)
    save_results("A1_gossip", {"rows": rows})

    # Every budget eventually converges (suspicion/confirmation still
    # spreads via regular pings).
    for row in rows:
        assert row["detection_s"] is not None, row
    # The default budget (3.0) detects at least as fast as the starved
    # one (0.5).
    by_mult = {r["gossip_mult"]: r for r in rows}
    assert by_mult[3.0]["detection_s"] <= by_mult[0.5]["detection_s"]
    # Message volume stays in the same ballpark across budgets (piggyback
    # rides on existing pings -- the whole point of SWIM dissemination).
    rates = [r["messages_per_s"] for r in rows]
    assert max(rates) < min(rates) * 2.0
