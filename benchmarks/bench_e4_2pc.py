"""E4 -- section 5, Observation 3: consistency of concurrent
reconfigurations.

The paper's exact scenario: client c1 requests the creation of provider
p1 on node n1 with a dependency on provider p2 on node n2, while client
c2 concurrently requests the destruction of p2.  Guarantee: "either
c1's or c2's request will succeed, but not both", leaving the system in
one of the two consistent states.

The experiment runs the race many times under different seeds (which
perturb message timings) and tallies outcomes; it also measures the
transaction's cost against a non-transactional start_provider.
"""

import pytest

from repro import Cluster
from repro.bedrock import BedrockClient, TransactionError, boot_process

from common import print_table, save_results

TRIALS = 30


def build_rig(seed):
    cluster = Cluster(seed=seed)
    margo1, bedrock1 = boot_process(
        cluster, "n1-proc", "n1",
        {"libraries": {"yokan": "libyokan.so", "yokan-virtual": "libyokan-virtual.so"}},
    )
    margo2, bedrock2 = boot_process(
        cluster, "n2-proc", "n2",
        {
            "libraries": {"yokan": "libyokan.so"},
            "providers": [{"name": "p2", "type": "yokan", "provider_id": 1}],
        },
    )
    c1 = cluster.add_margo("c1", node="nc1")
    c2 = cluster.add_margo("c2", node="nc2")
    group1 = BedrockClient(c1).make_service_group_handle([margo1.address, margo2.address])
    group2 = BedrockClient(c2).make_service_group_handle([margo1.address, margo2.address])
    start_op = {
        "name": "p1",
        "type": "yokan-virtual",
        "provider_id": 5,
        "config": {"targets": [{"address": margo2.address, "provider_id": 1}]},
        "dependencies": {
            "backend": {
                "type": "yokan",
                "address": margo2.address,
                "provider_id": 1,
                "provider_name": "p2",
            }
        },
    }
    return cluster, margo1, margo2, bedrock1, bedrock2, c1, c2, group1, group2, start_op


def run_trial(seed, stagger):
    (cluster, margo1, margo2, b1, b2, c1, c2,
     group1, group2, start_op) = build_rig(seed)
    outcome = {}

    def create():
        try:
            yield from group1.start_provider_tx(margo1.address, start_op)
            outcome["create"] = True
        except TransactionError:
            outcome["create"] = False

    def destroy():
        try:
            yield from group2.stop_provider_tx(margo2.address, "p2")
            outcome["destroy"] = True
        except TransactionError:
            outcome["destroy"] = False

    cluster.spawn(c1, create())
    cluster.kernel.schedule(stagger, lambda: cluster.spawn(c2, destroy()))
    cluster.run()
    consistent = (
        (outcome["create"] and not outcome["destroy"]
         and "p1" in b1.records and "p2" in b2.records)
        or (outcome["destroy"] and not outcome["create"]
            and "p1" not in b1.records and "p2" not in b2.records)
    )
    return outcome, consistent


def run_experiment():
    tallies = {"create-wins": 0, "destroy-wins": 0, "both": 0, "neither": 0}
    inconsistent = 0
    for trial in range(TRIALS):
        stagger = (trial % 10) * 2e-6  # vary interleaving
        outcome, consistent = run_trial(seed=1000 + trial, stagger=stagger)
        if outcome["create"] and outcome["destroy"]:
            tallies["both"] += 1
        elif outcome["create"]:
            tallies["create-wins"] += 1
        elif outcome["destroy"]:
            tallies["destroy-wins"] += 1
        else:
            tallies["neither"] += 1
        if not consistent:
            inconsistent += 1

    # Cost of transactional vs plain start (fresh rig, no contention).
    cluster, margo1, margo2, b1, b2, c1, c2, group1, group2, start_op = build_rig(9999)

    def timed_tx():
        started = cluster.now
        yield from group1.start_provider_tx(margo1.address, dict(start_op))
        return cluster.now - started

    tx_cost = cluster.run_ult(c1, timed_tx())

    cluster2, m1b, m2b, *_rest, g1b, _g2b, op_b = build_rig(9998)
    handle = BedrockClient(_rest[2]).make_service_handle(m1b.address)

    def timed_plain():
        started = cluster2.now
        yield from handle.start_provider(
            op_b["name"], op_b["type"], provider_id=op_b["provider_id"],
            config=op_b["config"], dependencies=op_b["dependencies"],
        )
        return cluster2.now - started

    plain_cost = cluster2.run_ult(_rest[2], timed_plain())

    rows = [{"outcome": k, "trials": v} for k, v in tallies.items()]
    summary = {
        "trials": TRIALS,
        "inconsistent_states": inconsistent,
        "tx_start_cost_us": tx_cost * 1e6,
        "plain_start_cost_us": plain_cost * 1e6,
        "tx_overhead_x": tx_cost / plain_cost,
    }
    return rows, summary


def test_e4_concurrent_reconfiguration_consistency(benchmark):
    rows, summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E4: c1-create vs c2-destroy race outcomes", rows)
    print_table("E4: summary", [summary])
    save_results("E4_2pc", {"rows": rows, "summary": summary})

    tallies = {r["outcome"]: r["trials"] for r in rows}
    # The paper's guarantee: exactly one side wins, every single time.
    assert tallies["both"] == 0
    assert tallies["neither"] == 0
    assert tallies["create-wins"] + tallies["destroy-wins"] == TRIALS
    assert summary["inconsistent_states"] == 0
    # Both interleavings actually occurred across the sweep.
    assert tallies["create-wins"] > 0 and tallies["destroy-wins"] > 0
    # The 2PC costs more than a plain start, but only by a small factor.
    assert 1.0 < summary["tx_overhead_x"] < 10.0
