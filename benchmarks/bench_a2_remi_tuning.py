"""Ablation A2 -- REMI chunk size and pipeline window.

The chunked-RPC path has two tuning knobs the paper's description
implies: the chunk size (packing granularity) and the pipeline window
(chunks in flight).  This ablation migrates a many-small-files dataset
across the grid and shows: tiny chunks drown in per-RPC overhead, huge
chunks lose pipelining overlap, and a window of 1 (no pipelining)
forfeits the concurrency the paper's design calls for.
"""

import pytest

from repro import Cluster
from repro.remi import FileSet, RemiClient, RemiProvider
from repro.storage import LocalStore

from common import print_table, save_results

NUM_FILES = 512
FILE_SIZE = 16 * 1024  # 8 MiB total
CHUNK_SIZES = [64 << 10, 256 << 10, 1 << 20, 4 << 20]
WINDOWS = [1, 2, 4, 8]


def run_trial(chunk_size, window):
    cluster = Cluster(seed=132)
    src_node = cluster.node("src")
    dst_node = cluster.node("dst")
    src_store = LocalStore(src_node)
    LocalStore(dst_node)
    src = cluster.add_margo("src-proc", node=src_node)
    dst = cluster.add_margo("dst-proc", node=dst_node)
    RemiProvider(dst, "remi", provider_id=0, config={"sync": False})
    handle = RemiClient(src).make_handle(dst.address, 0)
    for i in range(NUM_FILES):
        src_store.write(f"data/{i:05d}", b"\xcd" * FILE_SIZE)
    fileset = FileSet.from_prefix(src_store, "data/")

    def driver():
        report = yield from handle.migrate_fileset(
            fileset, method="chunks", chunk_size=chunk_size, window=window
        )
        return report

    report = cluster.run_ult(src, driver())
    return report.duration, report.num_chunks


def run_experiment():
    rows = []
    for chunk_size in CHUNK_SIZES:
        for window in WINDOWS:
            duration, num_chunks = run_trial(chunk_size, window)
            rows.append(
                {
                    "chunk_kib": chunk_size >> 10,
                    "window": window,
                    "chunks": num_chunks,
                    "duration_ms": duration * 1e3,
                    "gbps": NUM_FILES * FILE_SIZE / duration / 1e9,
                }
            )
    return rows


def test_a2_remi_tuning(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A2: REMI chunk-size x window ablation (512 x 16 KiB files)", rows)
    save_results("A2_remi_tuning", {"rows": rows})

    cell = {(r["chunk_kib"], r["window"]): r for r in rows}
    # Pipelining helps: at every chunk size with >1 chunk, window 4 beats
    # window 1.
    for chunk_kib in [64, 256, 1024]:
        assert cell[(chunk_kib, 4)]["duration_ms"] < cell[(chunk_kib, 1)]["duration_ms"]
    # The default configuration (1 MiB x 4) is within 25% of the best
    # cell of the whole grid.
    best = min(r["duration_ms"] for r in rows)
    assert cell[(1024, 4)]["duration_ms"] <= best * 1.25
