"""E11 -- section 7, Observation 12: SWIM fault detection.

Sweeps group size, protocol period, and message-loss rate; for each
configuration a member is killed and the experiment measures the
detection latency (kill -> every survivor's view excludes the victim)
and counts false positives.  Expected shapes (from the SWIM papers the
paper builds on [27, 28]):

* detection latency scales with the protocol period;
* detection latency grows only mildly with group size (gossip
  dissemination is logarithmic);
* no false positives without message loss; detection still completes
  under moderate loss.
"""

import pytest

from repro import Cluster
from repro.ssg import SwimConfig, create_group

from common import print_table, save_results

GROUP_SIZES = [8, 16, 32]
PERIODS = [0.25, 0.5, 1.0]
LOSS_RATES = [0.0, 0.10]
SETTLE = 3.0
DETECT_TIMEOUT = 200.0


def swim_config(period):
    return SwimConfig(
        period=period,
        ping_timeout=period * 0.3,
        suspicion_timeout=period * 4,
        ping_req_k=3,
    )


def run_trial(n, period, loss, seed):
    cluster = Cluster(seed=seed)
    margos = [cluster.add_margo(f"m{i}", node=f"n{i}") for i in range(n)]
    groups = create_group("g", margos, cluster.randomness, swim=swim_config(period))
    cluster.run(until=SETTLE)
    cluster.faults.set_message_loss(loss)
    victim = margos[0]
    kill_time = cluster.now
    cluster.faults.kill_process(victim.process)
    survivors = groups[1:]

    def detected():
        return all(victim.address not in g.view.members for g in survivors)

    deadline = cluster.now + DETECT_TIMEOUT
    while not detected() and cluster.now < deadline:
        cluster.run(until=cluster.now + period)
    latency = (cluster.now - kill_time) if detected() else None
    false_positives = sum(g.false_suspicions for g in survivors)
    return latency, false_positives


def run_experiment():
    rows = []
    for n in GROUP_SIZES:
        for period in PERIODS:
            for loss in LOSS_RATES:
                latency, false_positives = run_trial(
                    n, period, loss, seed=113 + n + int(period * 100)
                )
                rows.append(
                    {
                        "group_size": n,
                        "period_s": period,
                        "loss": loss,
                        "detection_s": latency,
                        "detection_periods": (
                            latency / period if latency is not None else None
                        ),
                        "false_positives": false_positives,
                    }
                )
    return rows


def test_e11_swim_detection(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E11: SWIM failure-detection latency", rows)
    save_results("E11_swim", {"rows": rows})

    # Every configuration detected the death.
    for row in rows:
        assert row["detection_s"] is not None, row
    # No false positives without message loss.
    for row in rows:
        if row["loss"] == 0.0:
            assert row["false_positives"] == 0, row

    def mean_latency(predicate):
        values = [r["detection_s"] for r in rows if predicate(r)]
        return sum(values) / len(values)

    # Latency scales with the protocol period...
    fast = mean_latency(lambda r: r["period_s"] == PERIODS[0] and r["loss"] == 0)
    slow = mean_latency(lambda r: r["period_s"] == PERIODS[-1] and r["loss"] == 0)
    assert slow > fast
    # ...but only mildly with group size (gossip is logarithmic): going
    # 8 -> 32 members must not quadruple detection time.
    small = mean_latency(lambda r: r["group_size"] == 8 and r["loss"] == 0)
    large = mean_latency(lambda r: r["group_size"] == 32 and r["loss"] == 0)
    assert large < small * 4
