"""mochi-xray overhead on the P0 RPC hot path.

The xray recorder promises to ride the profiler's sampling decision:
causal edges (pool-queue wait, mutex wait, event park, wire latency)
are collected *only* on requests the profiler already stamps, and a
sampled-out request pays the same single attribute read it pays with
the profiler alone.  This suite prices that promise with the same
workload as ``bench_p0_throughput``:

* ``rpc_off``                -- observability fully disabled;
* ``rpc_profiled_unsampled`` -- continuous profiler attached with
  ``profile_sample_every`` larger than the request count (only request
  1 is ever stamped), xray off;
* ``rpc_xray_unsampled``     -- same, xray recorder attached: the
  off-path pair.  The two arms do identical per-request work, so their
  paired ratio prices exactly the claim "xray is free when sampling
  says skip";
* ``rpc_xray_sampled``       -- ``profile_sample_every=64`` (the
  documented always-on setting) with xray: the price of always-on
  critical-path tracing;
* ``rpc_xray_full``          -- every request decomposed AND traced
  (``profile_sample_every=1``), informational: the worst case a debug
  session pays.

Gates (enforced in full and ``--gate`` runs, exit 1 on failure):

* xray-attached/detached unsampled ratio <= 1.02x (same-run paired
  comparison: the off-path claim);
* sampled xray-on overhead vs fully-off < 10%.

Each gated pair runs as its own interleaved two-arm suite (see
``_harness.run_rounds``): AB-BA rounds keep the paired runs within
~1.5s of each other, the gates compare medians of per-round ratios,
so machine drift cancels within a round instead of reading as phantom
overhead.  The full arm is informational and measured best-of outside
the rounds.

Results land in ``benchmarks/results/XRAY_overhead.json`` and the
repo-root ``BENCH_XRAY.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_xray_overhead.py          # full + gates
    PYTHONPATH=src python benchmarks/bench_xray_overhead.py --gate   # CI-sized gate
    PYTHONPATH=src python benchmarks/bench_xray_overhead.py --smoke  # CI rot check
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself; time.perf_counter here reads the host
# clock on purpose and never runs under the kernel.

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _harness import (  # noqa: E402
    OBS_OFF,
    REPO_ROOT,
    bench_rpc_echo,
    best_of,
    paired_ratio,
    run_rounds,
)
from common import print_table, save_results  # noqa: E402

TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_XRAY.json")

#: Acceptance thresholds (ISSUE 10): xray must be free when the profiler
#: skips a request, and affordable on the documented sampled setting.
XRAY_ON_MAX_RATIO = 1.02
SAMPLED_MAX_OVERHEAD = 0.10

#: Effectively never samples (only request 1 is stamped): both
#: unsampled arms run the pure skip path on every other request.
NEVER = 1 << 30

_PROFILED = {
    "tracing": False,
    "metrics": False,
    "profiling": True,
    "profile_window": 1e-2,
}
OBS_PROFILED_UNSAMPLED = {
    "observability": dict(_PROFILED, profile_sample_every=NEVER)
}
OBS_XRAY_UNSAMPLED = {
    "observability": dict(_PROFILED, profile_sample_every=NEVER, xray=True)
}
#: The documented always-on setting: decompose + trace every 64th.
OBS_XRAY_SAMPLED = {
    "observability": dict(_PROFILED, profile_sample_every=64, xray=True)
}
#: Every request traced: informational ceiling, not gated.
OBS_XRAY_FULL = {"observability": dict(_PROFILED, xray=True)}

#: Same round length as bench_health_overhead (a round must be long
#: enough that transient noise hits both arms of a pair rather than
#: land between them), but more rounds: with five arms the paired runs
#: sit further apart inside a round, so the per-round ratios are
#: noisier and the gate median needs more rounds to stabilize.
FULL = dict(repeats=24, n_rpcs=2500)
GATE = dict(repeats=20, n_rpcs=2500)
SMOKE = dict(repeats=1, n_rpcs=60)


def run_suite(params: dict) -> dict:
    """Each gate gets its own two-arm paired suite: an AB-BA round is
    ~1.5s end to end, so its paired runs see near-identical machine
    conditions.  (A single four-arm round was tried first and measurably
    fuzzed the ratios: the palindrome puts paired runs seconds apart,
    and on a shared runner that distance reads as phantom overhead.)"""
    n = params["n_rpcs"]
    repeats = params["repeats"]
    offpath_best, offpath_rounds = run_rounds(repeats, {
        "rpc_profiled_unsampled": lambda: bench_rpc_echo(n, OBS_PROFILED_UNSAMPLED),
        "rpc_xray_unsampled": lambda: bench_rpc_echo(n, OBS_XRAY_UNSAMPLED),
    })
    sampled_best, sampled_rounds = run_rounds(repeats, {
        "rpc_off": lambda: bench_rpc_echo(n, OBS_OFF),
        "rpc_xray_sampled": lambda: bench_rpc_echo(n, OBS_XRAY_SAMPLED),
    })
    results = dict(offpath_best)
    results.update(sampled_best)
    # The every-request arm is informational (no gate reads it), so it
    # stays out of the paired rounds entirely.
    results["rpc_xray_full"] = best_of(
        min(3, repeats), lambda: bench_rpc_echo(n, OBS_XRAY_FULL)
    )
    results["params"] = dict(params)
    results["rounds"] = {"offpath": offpath_rounds, "sampled": sampled_rounds}
    return results


def _comparison(results: dict) -> dict:
    rounds = results["rounds"]
    sampled_ratio = paired_ratio(rounds["sampled"], "rpc_xray_sampled", "rpc_off")
    # Informational, best-of vs best-of (the full arm is not paired).
    full_ratio = results["rpc_xray_full"]["wall_s"] / results["rpc_off"]["wall_s"]
    return {
        "rate_off": results["rpc_off"]["rpcs_per_sec"],
        "rate_xray_sampled": results["rpc_xray_sampled"]["rpcs_per_sec"],
        "rate_xray_full": results["rpc_xray_full"]["rpcs_per_sec"],
        "unit": "rpcs_per_sec",
        # Median paired walltime(xray attached) / walltime(detached),
        # both arms sampling nothing: 1.0 means the recorder is free
        # off the sampled path, gate 1.02.
        "xray_on_ratio": paired_ratio(
            rounds["offpath"], "rpc_xray_unsampled", "rpc_profiled_unsampled"
        ),
        # Overhead = extra wall fraction, from the paired wall ratio.
        "xray_sampled_overhead": 1.0 - 1.0 / sampled_ratio,
        "xray_full_overhead": 1.0 - 1.0 / full_ratio,
    }


def _check_gates(comparison: dict) -> list[str]:
    failures = []
    if comparison["xray_on_ratio"] > XRAY_ON_MAX_RATIO:
        failures.append(
            f"xray is not off-path: {comparison['xray_on_ratio']:.4f}x"
            f" > {XRAY_ON_MAX_RATIO}x vs detached, both unsampled"
        )
    if comparison["xray_sampled_overhead"] >= SAMPLED_MAX_OVERHEAD:
        failures.append(
            "sampled xray overhead "
            f"{comparison['xray_sampled_overhead']:.1%}"
            f" >= {SAMPLED_MAX_OVERHEAD:.0%}"
        )
    return failures


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    gate = "--gate" in argv
    params = SMOKE if smoke else GATE if gate else FULL

    results = run_suite(params)
    comparison = _comparison(results)
    label = " (smoke)" if smoke else " (gate)" if gate else ""
    print_table("mochi-xray overhead" + label, [dict(bench="rpc", **comparison)])

    if smoke:
        # CI rot check only: the harness must run end to end; no wall-clock
        # assertions on shared runners.
        print("xray-overhead smoke OK")
        return 0

    failures = _check_gates(comparison)
    for failure in failures:
        print(f"GATE FAILED: {failure}")

    if not gate:
        save_results("XRAY_overhead", {"results": results})
        trajectory = {
            "experiment": "XRAY_overhead",
            "description": (
                "Wall-clock throughput of the Margo RPC path with the "
                "mochi-xray recorder attached vs detached.  The off-path "
                "pair runs both arms with sampling effectively disabled "
                "(profile_sample_every=2^30), so their paired ratio "
                "prices exactly the skip path; the sampled arm uses the "
                "documented always-on profile_sample_every=64, and the "
                "full arm traces every request (informational).  Gates: "
                "'xray_on_ratio' <= 1.02 (causal edges are only "
                "collected on requests the profiler already stamps) and "
                "'xray_sampled_overhead' < 10% vs observability off "
                "(always-on critical-path tracing is affordable)."
            ),
            "results": results,
            "comparison": comparison,
            "gates": {
                "xray_on_max_ratio": XRAY_ON_MAX_RATIO,
                "sampled_max_overhead": SAMPLED_MAX_OVERHEAD,
                "passed": not failures,
                "failures": failures,
            },
        }
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
        print(f"trajectory written to {TRAJECTORY_PATH}")

    if failures:
        return 1
    print("xray-overhead gates OK")
    return 0


# Pytest entry point (smoke-sized so `pytest benchmarks/` stays fast).
def test_xray_overhead_smoke():
    results = run_suite(SMOKE)
    assert results["rpc_off"]["rpcs"] == SMOKE["n_rpcs"]
    # Sampling really gated the recorder: the unsampled and every-64th
    # arms stamp only request 1 of the 60 -> exactly one path record;
    # the fully-on arm records all 60.
    assert results["rpc_xray_unsampled"]["xray_paths"] == 1
    assert results["rpc_xray_sampled"]["xray_paths"] == 1
    assert results["rpc_xray_full"]["xray_paths"] == SMOKE["n_rpcs"]
    # The profiler-only arm must not grow a plane at all.
    assert "xray_paths" not in results["rpc_profiled_unsampled"]
    # Observation is modeled cost, so simulated time never goes backwards.
    assert (
        results["rpc_xray_full"]["sim_time"] >= results["rpc_off"]["sim_time"]
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
