"""Shared measurement harness for the perf benchmark suites.

Every BENCH_*.json number in this repo is produced by one of two
disciplines, both defined here so the four overhead suites (p0, race,
profile, health) share one methodology instead of four copies:

* :func:`best_of` -- GC-quiesced best-of-N for *absolute* rates (events/s,
  RPCs/s).  Best-of is the right statistic for "how fast can this go":
  shared runners show bimodal phases and the fast phase is the machine's
  actual capability.

* :func:`run_rounds` + :func:`paired_ratio` -- palindrome-ordered paired
  rounds for *relative* claims (on/off overheads, off-path gates).  Every
  round runs each arm twice in ABCD-DCBA order, so each arm's two
  position indices sum to the same value: drift that is linear across the
  round (frequency ramps, a background job spinning up) contributes
  equally to every arm and cancels out of the per-round ratios.  The base
  order also rotates per round so nonlinear position effects do not keep
  landing on the same arm.  Gates compare the *median* of per-round
  ratios, robust to the odd descheduled round.

  Sequential best-of blocks drift with machine load and have produced
  >5-point phantom overheads on shared runners (BENCH_RACE.json's old
  rpc ``off_vs_p0 = 1.10`` was exactly this: two measurements taken
  minutes apart under different load).  Cross-*file* comparisons against
  pinned trajectories remain informational only; every enforced gate is
  computed from arms of the same run.

The two P0 workload shapes (kernel sleep-swarm + timer fan, echo RPC)
also live here so every suite measures the identical workload.
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself; time.perf_counter here reads the host
# clock on purpose and never runs under the kernel.

import gc
import json
import os
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ----------------------------------------------------------------------
# measurement primitives
# ----------------------------------------------------------------------
def once(fn):
    """Run ``fn`` once with the GC quiesced (collection pauses land
    between measurements, not inside them)."""
    gc.collect()
    gc.disable()
    try:
        return fn()
    finally:
        gc.enable()


def best_of(repeats: int, fn):
    """Run ``fn`` ``repeats`` times; return its stats at the best wall time.

    ``fn`` must return a dict with a ``wall_s`` key.
    """
    best = None
    for _ in range(repeats):
        stats = once(fn)
        if best is None or stats["wall_s"] < best["wall_s"]:
            best = stats
    return best


def median(values: list) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def run_rounds(repeats: int, arms: dict) -> tuple[dict, list]:
    """Run every arm twice per round (palindrome order); keep each arm's
    best stats plus the summed per-round wall times.

    Interleaving is load-bearing for the gates: the comparison must see
    the same machine conditions in every arm, and sequential best-of
    blocks do not (load drift between blocks reads as phantom overhead).
    The per-round walls feed paired ratios in :func:`paired_ratio`.
    """
    best: dict = {}
    rounds: list = []
    names = list(arms)
    for index in range(repeats):
        shift = index % len(names)
        order = names[shift:] + names[:shift]
        walls = dict.fromkeys(names, 0.0)
        for name in order + order[::-1]:
            stats = once(arms[name])
            walls[name] += stats["wall_s"]
            if name not in best or stats["wall_s"] < best[name]["wall_s"]:
                best[name] = stats
        rounds.append(walls)
    return best, rounds


def paired_ratio(rounds: list, arm: str, base: str) -> float:
    """Median over rounds of (arm wall / base wall), both from the same
    round: machine drift cancels within a pair, and the median is robust
    to the odd descheduled round."""
    return median([walls[arm] / walls[base] for walls in rounds])


def load_trajectory(path: str):
    """Load a pinned BENCH_*.json trajectory, or None if absent."""
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# the shared P0 workload shapes
# ----------------------------------------------------------------------
OBS_OFF = {"observability": {"tracing": False, "metrics": False}}


def bench_kernel_swarm(n_tasks: int, n_steps: int, backend: str | None = None) -> dict:
    """The P0 kernel workload: a swarm of sleeping tasks driven by
    ``run(until_tasks=...)`` plus a same-timestamp timer fan.

    This is the shape every Margo deployment produces: many live tasks
    (xstreams, progress loops, drivers) with the kernel asked to detect
    completion of a subset, and bursts of timers landing on identical
    deadlines (the wheel's bucket-drain fast path).
    """
    from repro.sim.kernel import SimKernel, Sleep

    kernel = SimKernel(backend)

    def worker(i: int):
        for step in range(n_steps):
            yield Sleep(1e-6 * ((i + step) % 7 + 1))
        return i

    tasks = [kernel.spawn(worker(i), name=f"w{i}") for i in range(n_tasks)]
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    for burst in range(n_steps):
        for _ in range(n_tasks // 4):
            kernel.schedule(1e-6 * (burst + 1), tick)

    started = time.perf_counter()
    kernel.run(until_tasks=tasks)
    wall = time.perf_counter() - started
    events = kernel._seq  # every schedule() is exactly one queue event
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
        "sim_time": kernel.now,
    }


def bench_rpc_echo(n_rpcs: int, config: dict, health: bool = False) -> dict:
    """The P0 RPC workload: end-to-end echo RPCs through ``forward()``
    -> progress loop -> handler ULT -> response, with the chosen
    observer mix."""
    from repro import Cluster
    from repro.margo import Compute

    cluster = Cluster(seed=7)
    server = cluster.add_margo("server", node="n0", config=dict(config))
    client = cluster.add_margo("client", node="n1", config=dict(config))
    if health:
        plane = cluster.enable_health()
        plane.watch_margo(server)
        plane.watch_margo(client)

    def handler(ctx):
        yield Compute(1e-6)
        return ctx.args

    server.register("echo", handler)

    def driver():
        for i in range(n_rpcs):
            yield from client.forward(server.address, "echo", i)
        return None

    started = time.perf_counter()
    cluster.run_ult(client, driver())
    wall = time.perf_counter() - started
    stats = {
        "rpcs": n_rpcs,
        "wall_s": wall,
        "rpcs_per_sec": n_rpcs / wall,
        "sim_time": cluster.now,
        "health": health,
        "profiled": bool(config.get("observability", {}).get("profiling")),
    }
    if health:
        stats["recorder_events"] = cluster.health.recorder.recorded
    if stats["profiled"]:
        stats["windows_closed"] = len(server.profiler.store.windows)
        stats["waterfalls"] = len(client.profiler.waterfalls)
        plane = getattr(cluster.kernel, "xray_plane", None)
        if plane is not None:
            stats["xray_paths"] = len(plane.recent)
            stats["xray_windows"] = len(plane.windows)
    return stats
