"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index:
it runs the scenario (deterministic, simulated time), prints the
table/series the experiment defines, saves it as JSON under
``benchmarks/results/``, and asserts the *shape* the paper's claim
predicts (who wins, monotonicity, crossover existence).

``pytest benchmarks/ --benchmark-only`` additionally reports the
wall-clock cost of regenerating each experiment.
"""

from __future__ import annotations

import json
import os
from typing import Any

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["save_results", "print_table", "RESULTS_DIR"]


def save_results(experiment_id: str, payload: Any) -> str:
    """Persist an experiment's rows for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def print_table(title: str, rows: list[dict[str, Any]]) -> None:
    """Render rows as an aligned text table (what the paper would plot)."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
