"""mochi-health overhead on the P0 RPC hot path.

The health plane promises to stay *off the data path*: it subscribes to
callbacks that already exist (SSG membership, fault injection, SLO
alerts) and never interposes on RPC send/receive.  Adaptive sampling
promises that a *profiled* process can shed most of the decomposition
cost by stamping only every Nth request.  This suite prices both
promises with the same workload as ``bench_p0_throughput``:

* ``rpc_off``              -- observability fully disabled, no plane;
* ``rpc_health_on``        -- a HealthPlane attached and watching both
  endpoints (registry + phi detector + flight recorder live), still no
  profiling: the off-path claim;
* ``rpc_profiled_full``    -- continuous profiler on, every request
  decomposed (the mochi-profile price, for reference);
* ``rpc_profiled_sampled`` -- profiler on with
  ``profile_sample_every=64``, the documented always-on setting: the
  adaptive-sampling price.

Gates (enforced in full and ``--gate`` runs, exit 1 on failure):

* health-plane on/off ratio <= 1.02x (same-run comparison);
* sampled profiler-on overhead < 10% vs off.

Arms are measured *interleaved and paired*: every repeat round runs
each arm once, overhead is computed per round (arms of one round see
the same machine conditions), and the gates compare the median of the
per-round ratios.  Sequential best-of blocks drift with machine load
and have produced >5-point phantom overheads on shared runners;
best-of across arms still compares samples taken at different times,
so medians of paired rounds are what the gates trust.

Results land in ``benchmarks/results/HEALTH_overhead.json`` and the
repo-root ``BENCH_HEALTH.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_health_overhead.py          # full + gates
    PYTHONPATH=src python benchmarks/bench_health_overhead.py --gate   # CI-sized gate
    PYTHONPATH=src python benchmarks/bench_health_overhead.py --smoke  # CI rot check
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself; time.perf_counter here reads the host
# clock on purpose and never runs under the kernel.

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _harness import (  # noqa: E402
    OBS_OFF,
    REPO_ROOT,
    bench_rpc_echo,
    paired_ratio,
    run_rounds,
)
from common import print_table, save_results  # noqa: E402

TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_HEALTH.json")

#: Acceptance thresholds (ISSUE 6): the health plane must be free on the
#: data path, and sampling must make always-on profiling affordable.
HEALTH_ON_MAX_RATIO = 1.02
SAMPLED_MAX_OVERHEAD = 0.10

#: A realistic always-on window.  (bench_profile_overhead uses 1e-4 to
#: deliberately stress window rotation; here the windows just need to
#: close a few times so the rollup path is exercised, while the cost
#: being priced is the per-request one that sampling sheds.)
OBS_PROFILED = {
    "observability": {
        "tracing": False,
        "metrics": False,
        "profiling": True,
        "profile_window": 1e-2,
    }
}
#: The always-on setting: decompose every 64th request.  The sampled
#: arm's cost decomposes as (full decomposition cost)/N plus the fixed
#: skip-path cost (one stamp + one branch per lifecycle hook site), so
#: N=64 puts the sampling floor well under the 10% gate while weighted
#: rates stay exact and ~40 full waterfalls/s still flow at the 2.5k
#: rpc/s this workload sustains.
OBS_SAMPLED = {
    "observability": {
        "tracing": False,
        "metrics": False,
        "profiling": True,
        "profile_window": 1e-2,
        "profile_sample_every": 64,
    }
}

#: Same RPC workload shape as bench_p0_throughput / bench_profile_overhead,
#: but longer rounds: a round must be long enough for transient machine
#: noise to hit both arms of a pair rather than land between them (2.5k-rpc
#: rounds measurably skew the paired ratios high on shared runners).
FULL = dict(repeats=12, n_rpcs=5000)
GATE = dict(repeats=6, n_rpcs=5000)
SMOKE = dict(repeats=1, n_rpcs=60)


def run_suite(params: dict) -> dict:
    n = params["n_rpcs"]
    results, rounds = run_rounds(params["repeats"], {
        "rpc_off": lambda: bench_rpc_echo(n, OBS_OFF),
        "rpc_health_on": lambda: bench_rpc_echo(n, OBS_OFF, health=True),
        "rpc_profiled_full": lambda: bench_rpc_echo(n, OBS_PROFILED),
        "rpc_profiled_sampled": lambda: bench_rpc_echo(n, OBS_SAMPLED),
    })
    results["params"] = dict(params)
    results["rounds"] = rounds
    return results


def _comparison(results: dict) -> dict:
    rounds = results["rounds"]
    full_ratio = paired_ratio(rounds, "rpc_profiled_full", "rpc_off")
    sampled_ratio = paired_ratio(rounds, "rpc_profiled_sampled", "rpc_off")
    return {
        "rate_off": results["rpc_off"]["rpcs_per_sec"],
        "rate_health_on": results["rpc_health_on"]["rpcs_per_sec"],
        "rate_profiled_full": results["rpc_profiled_full"]["rpcs_per_sec"],
        "rate_profiled_sampled": results["rpc_profiled_sampled"]["rpcs_per_sec"],
        "unit": "rpcs_per_sec",
        # Median paired walltime(health) / walltime(off): 1.0 means
        # free, the gate is 1.02.
        "health_on_ratio": paired_ratio(rounds, "rpc_health_on", "rpc_off"),
        # Overhead = extra wall fraction, from the paired wall ratio.
        "profiled_full_overhead": 1.0 - 1.0 / full_ratio,
        "profiled_sampled_overhead": 1.0 - 1.0 / sampled_ratio,
    }


def _check_gates(comparison: dict) -> list[str]:
    failures = []
    if comparison["health_on_ratio"] > HEALTH_ON_MAX_RATIO:
        failures.append(
            f"health plane is not off-path: {comparison['health_on_ratio']:.4f}x"
            f" > {HEALTH_ON_MAX_RATIO}x"
        )
    if comparison["profiled_sampled_overhead"] >= SAMPLED_MAX_OVERHEAD:
        failures.append(
            "sampled profiler overhead "
            f"{comparison['profiled_sampled_overhead']:.1%}"
            f" >= {SAMPLED_MAX_OVERHEAD:.0%}"
        )
    return failures


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    gate = "--gate" in argv
    params = SMOKE if smoke else GATE if gate else FULL

    results = run_suite(params)
    comparison = _comparison(results)
    label = " (smoke)" if smoke else " (gate)" if gate else ""
    print_table("mochi-health overhead" + label, [dict(bench="rpc", **comparison)])

    if smoke:
        # CI rot check only: the harness must run end to end; no wall-clock
        # assertions on shared runners.
        print("health-overhead smoke OK")
        return 0

    failures = _check_gates(comparison)
    for failure in failures:
        print(f"GATE FAILED: {failure}")

    if not gate:
        save_results("HEALTH_overhead", {"results": results})
        trajectory = {
            "experiment": "HEALTH_overhead",
            "description": (
                "Wall-clock throughput of the Margo RPC path with the "
                "mochi-health plane attached vs detached, and with the "
                "continuous profiler decomposing every request vs every "
                "64th.  Gates: 'health_on_ratio' <= 1.02 (the plane only "
                "subscribes to existing callbacks, it never interposes on "
                "the data path) and 'profiled_sampled_overhead' < 10% "
                "(adaptive sampling makes always-on profiling affordable)."
            ),
            "results": results,
            "comparison": comparison,
            "gates": {
                "health_on_max_ratio": HEALTH_ON_MAX_RATIO,
                "sampled_max_overhead": SAMPLED_MAX_OVERHEAD,
                "passed": not failures,
                "failures": failures,
            },
        }
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
        print(f"trajectory written to {TRAJECTORY_PATH}")

    if failures:
        return 1
    print("health-overhead gates OK")
    return 0


# Pytest entry point (smoke-sized so `pytest benchmarks/` stays fast).
def test_health_overhead_smoke():
    results = run_suite(SMOKE)
    assert results["rpc_off"]["rpcs"] == SMOKE["n_rpcs"]
    # The plane really attached, and stayed silent on a healthy run.
    assert results["rpc_health_on"]["health"] is True
    assert results["rpc_health_on"]["recorder_events"] == 0
    # Sampling really sampled: the full arm decomposes every request
    # (its waterfall ring is bounded at 32 entries), the sampled arm
    # only request 1 of the 60 -> exactly 1.
    assert results["rpc_profiled_full"]["waterfalls"] == 32
    assert results["rpc_profiled_sampled"]["waterfalls"] == 1
    # Observation is modeled cost, so simulated time never goes backwards.
    assert results["rpc_profiled_full"]["sim_time"] >= results["rpc_off"]["sim_time"]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
