"""E8 -- section 7, Observation 9: checkpointing to a parallel file
system.

"When crashing, the component at worst will lose the modifications done
since its last checkpoint.  Depending on the use case, such a loss could
be acceptable."

A KV provider receives a steady write stream and is checkpointed to the
PFS on a fixed interval; the process is killed at a fixed time, a
replacement restores the latest checkpoint, and the experiment measures
(a) the number of lost updates and (b) the recovery time, across a sweep
of checkpoint intervals.  Expected shape: lost updates grow linearly
with the interval and are bounded by rate x interval; recovery cost is
roughly interval-independent (it moves one image).
"""

import pytest

from repro import Cluster
from repro.margo.ult import UltSleep
from repro.storage import LocalStore, ParallelFileSystem
from repro.yokan import YokanClient, YokanProvider

from common import print_table, save_results

WRITE_PERIOD = 0.01  # one update every 10 ms
CRASH_AT = 10.0
INTERVALS = [0.5, 1.0, 2.0, 4.0]


def run_trial(interval):
    cluster = Cluster(seed=108)
    pfs = ParallelFileSystem()
    node = cluster.node("n0")
    LocalStore(node)
    server = cluster.add_margo("server", node=node)
    provider = YokanProvider(server, "db", provider_id=1)
    client_margo = cluster.add_margo("client", node="nc")
    db = YokanClient(client_margo).make_handle(server.address, 1)

    acked = {"count": 0}

    def writer():
        sequence = 0
        while cluster.now < CRASH_AT:
            try:
                yield from db.put(f"k{sequence:06d}", f"v{sequence}", )
            except Exception:
                return
            acked["count"] = sequence + 1
            sequence += 1
            yield UltSleep(WRITE_PERIOD)

    checkpoints = {"taken": 0, "last_path": None}

    def checkpointer():
        version = 0
        while cluster.now < CRASH_AT:
            yield UltSleep(interval)
            if server.finalized:
                return
            version += 1
            path = f"ckpt/v{version}"
            yield from provider.checkpoint(pfs, path)
            checkpoints["taken"] = version
            checkpoints["last_path"] = path

    cluster.spawn(client_margo, writer())
    cluster.spawn(server, checkpointer())
    cluster.run(until=CRASH_AT)
    cluster.faults.kill_process(server.process)
    cluster.run(until=CRASH_AT + 0.5)

    # Recovery: a replacement provider on a spare node restores the
    # latest checkpoint.
    recovery_started = cluster.now
    spare = cluster.add_margo("spare", node="nspare")
    replacement = YokanProvider(spare, "db-r", provider_id=1)

    def restore():
        if checkpoints["last_path"] is not None:
            yield from replacement.restore(pfs, checkpoints["last_path"])

    cluster.run_ult(spare, restore())
    recovery_time = cluster.now - recovery_started

    recovered = replacement.backend.count()
    lost = acked["count"] - recovered
    return {
        "ckpt_interval_s": interval,
        "acked_updates": acked["count"],
        "checkpoints": checkpoints["taken"],
        "recovered_updates": recovered,
        "lost_updates": lost,
        "bound_rate_x_interval": int(interval / WRITE_PERIOD) + 1,
        "recovery_s": recovery_time,
    }


def run_experiment():
    return [run_trial(interval) for interval in INTERVALS]


def test_e8_checkpoint_loss_bound(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E8: checkpoint interval vs data loss", rows)
    save_results("E8_checkpoint", {"rows": rows})

    for row in rows:
        # The paper's bound: at worst, the delta since the last checkpoint.
        assert 0 <= row["lost_updates"] <= row["bound_rate_x_interval"], row
        assert row["checkpoints"] >= 1
    # Loss grows with the checkpoint interval (monotone, allowing ties).
    losses = [r["lost_updates"] for r in rows]
    assert losses[0] <= losses[-1]
    assert losses[-1] > losses[0]  # the sweep actually spreads
    # Recovery time is interval-independent (one image restore).
    recoveries = [r["recovery_s"] for r in rows]
    assert max(recoveries) < min(recoveries) * 3 + 1e-3
