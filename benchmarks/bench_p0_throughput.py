"""P0 -- wall-clock throughput of the two hot paths everything rides on.

Every component in this reproduction (Bedrock, Yokan, REMI, RAFT, SSG,
Pufferscale) executes on the :class:`~repro.sim.kernel.SimKernel` event
loop and the Margo RPC path, so their *wall-clock* cost taxes the whole
system.  Unlike the E*/A* experiments -- which measure *simulated* time
-- this suite measures how fast the engine itself turns over:

* ``kernel``  -- events/sec of the discrete-event core (timer fan-out,
  sleeping task swarms, ``run(until_tasks=...)`` completion detection);
* ``rpc``     -- end-to-end RPCs/sec through ``forward()`` -> progress
  loop -> handler ULT -> response, with observability disabled (the
  zero-cost-when-off fast path);
* ``rpc_traced`` -- the same workload with tracing+metrics on (the price
  of turning observability *on* stays visible);
* ``kv``      -- Yokan key-value ops/sec, singles and batched multi ops.

Results land in ``benchmarks/results/P0_throughput.json`` and the
repo-root ``BENCH_P0.json`` (the perf trajectory file: baseline numbers
recorded before the optimization, current numbers, and the ratios).

Usage::

    PYTHONPATH=src python benchmarks/bench_p0_throughput.py                   # full run
    PYTHONPATH=src python benchmarks/bench_p0_throughput.py --smoke           # CI smoke
    PYTHONPATH=src python benchmarks/bench_p0_throughput.py --record-baseline # pin baseline

``--record-baseline`` is run once, *before* an optimization lands, to
pin the numbers the next full run is compared against.
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself (events/s, RPCs/s); time.perf_counter
# here reads the host clock on purpose and never runs under the kernel.

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from _harness import (  # noqa: E402
    OBS_OFF,
    REPO_ROOT,
    bench_kernel_swarm,
    bench_rpc_echo,
    best_of,
)
from common import RESULTS_DIR, print_table, save_results  # noqa: E402

from repro import Cluster  # noqa: E402
from repro.yokan import YokanClient, YokanProvider  # noqa: E402

BASELINE_PATH = os.path.join(RESULTS_DIR, "P0_baseline.json")
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_P0.json")

OBS_ON = {"observability": {"tracing": True, "metrics": True}}

#: (repeats, kernel tasks, kernel steps, rpcs, kv singles, kv batches)
FULL = dict(repeats=5, n_tasks=300, n_steps=50, n_rpcs=2500, n_kv=800, n_batches=40)
SMOKE = dict(repeats=1, n_tasks=40, n_steps=10, n_rpcs=60, n_kv=40, n_batches=4)


# ----------------------------------------------------------------------
# KV bench: Yokan ops/sec (singles + batched multi ops)
# ----------------------------------------------------------------------
def bench_kv(n_kv: int, n_batches: int, batch_size: int = 32) -> dict:
    cluster = Cluster(seed=11)
    server = cluster.add_margo("server", node="n0", config=dict(OBS_OFF))
    client_margo = cluster.add_margo("client", node="n1", config=dict(OBS_OFF))
    YokanProvider(server, "db", provider_id=1)
    handle = YokanClient(client_margo).make_handle(server.address, 1)
    # The multi_* aliases land with the batch-API change; fall back to the
    # put_multi names so the pre-change baseline runs the same workload.
    multi_put = getattr(handle, "multi_put", None) or handle.put_multi
    multi_get = getattr(handle, "multi_get", None) or handle.get_multi

    ops = [0]

    def driver():
        for i in range(n_kv):
            yield from handle.put(b"key-%d" % i, b"value-%d" % i)
            ops[0] += 1
        for i in range(n_kv):
            yield from handle.get(b"key-%d" % i)
            ops[0] += 1
        for b in range(n_batches):
            pairs = [
                (b"batch-%d-%d" % (b, j), b"payload-%d" % j) for j in range(batch_size)
            ]
            yield from multi_put(pairs)
            ops[0] += batch_size
            keys = [k for k, _ in pairs]
            yield from multi_get(keys)
            ops[0] += batch_size
        return None

    started = time.perf_counter()
    cluster.run_ult(client_margo, driver())
    wall = time.perf_counter() - started
    return {
        "kv_ops": ops[0],
        "wall_s": wall,
        "kv_ops_per_sec": ops[0] / wall,
        "sim_time": cluster.now,
    }


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def run_suite(params: dict) -> dict:
    repeats = params["repeats"]
    results = {
        "kernel": best_of(
            repeats, lambda: bench_kernel_swarm(params["n_tasks"], params["n_steps"])
        ),
        "rpc": best_of(repeats, lambda: bench_rpc_echo(params["n_rpcs"], OBS_OFF)),
        "rpc_traced": best_of(
            repeats, lambda: bench_rpc_echo(params["n_rpcs"], OBS_ON)
        ),
        "kv": best_of(
            repeats, lambda: bench_kv(params["n_kv"], params["n_batches"])
        ),
    }
    results["params"] = dict(params)
    return results


_RATE_KEYS = {
    "kernel": "events_per_sec",
    "rpc": "rpcs_per_sec",
    "rpc_traced": "rpcs_per_sec",
    "kv": "kv_ops_per_sec",
}


def _rows(results: dict, baseline: dict | None) -> list[dict]:
    rows = []
    for bench, rate_key in _RATE_KEYS.items():
        row = {
            "bench": bench,
            "rate": results[bench][rate_key],
            "unit": rate_key,
            "wall_s": results[bench]["wall_s"],
        }
        if baseline and bench in baseline:
            base_rate = baseline[bench][rate_key]
            row["baseline_rate"] = base_rate
            row["speedup"] = results[bench][rate_key] / base_rate
        rows.append(row)
    return rows


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    record_baseline = "--record-baseline" in argv
    params = SMOKE if smoke else FULL

    results = run_suite(params)

    if record_baseline:
        with open(BASELINE_PATH, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
        print_table("P0 baseline (pinned)", _rows(results, None))
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    baseline = None
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH) as handle:
            baseline = json.load(handle)

    rows = _rows(results, baseline if not smoke else None)
    print_table("P0 throughput" + (" (smoke)" if smoke else ""), rows)

    if smoke:
        # CI rot check only: the harness must run end to end; no wall-clock
        # assertions on shared runners.
        print("P0 smoke OK")
        return 0

    save_results("P0_throughput", {"results": results, "baseline": baseline})
    trajectory = {
        "experiment": "P0_throughput",
        "description": (
            "Wall-clock throughput of the SimKernel event loop, the Margo "
            "RPC path (observability off and on), and Yokan KV ops; "
            "'baseline' was recorded before the hot-path optimization, "
            "'current' after, on the same machine and workload."
        ),
        "baseline": baseline,
        "current": results,
        "speedups": {
            row["bench"]: row["speedup"] for row in rows if "speedup" in row
        },
    }
    with open(TRAJECTORY_PATH, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
    print(f"trajectory written to {TRAJECTORY_PATH}")
    return 0


# Pytest entry point (smoke-sized so `pytest benchmarks/` stays fast).
def test_p0_throughput_smoke():
    results = run_suite(SMOKE)
    assert results["kernel"]["events"] > 0
    assert results["rpc"]["rpcs"] == SMOKE["n_rpcs"]
    assert results["kv"]["kv_ops"] > 0
    # Simulated time must be wall-clock independent (determinism).
    again = run_suite(SMOKE)
    for bench in ("kernel", "rpc", "rpc_traced", "kv"):
        assert results[bench]["sim_time"] == again[bench]["sim_time"]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
