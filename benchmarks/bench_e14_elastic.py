"""E14 -- section 6: elasticity under a bursty workload.

A KV service starts at one process.  A CPU-heavy query load arrives in a
burst; the introspection-driven elasticity manager (utilization
watermarks, Flux-style node allocation callbacks) scales the service out
during the burst and back in afterwards.  Measured: the utilization time
series, the scaling-event timeline, and -- against a static single-
process deployment -- the burst's completion time.
"""

import pytest

from repro import Cluster
from repro.core import (
    DynamicService,
    ElasticityManager,
    ElasticityPolicy,
    ProcessSpec,
    ServiceSpec,
)
from repro.margo import Compute
from repro.margo.ult import UltSleep
from repro.ssg import SwimConfig

from common import print_table, save_results

SWIM = SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0)
BURST_START = 2.0
BURST_END = 14.0
RUN_FOR = 30.0
N_WORKERS = 6
QUERY_COST = 0.004


def kv_process(name, node):
    return ProcessSpec(
        name=name,
        node=node,
        config={
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": [
                {"name": f"remi-{name}", "type": "remi", "provider_id": 0},
                {"name": f"db-{name}", "type": "yokan", "provider_id": 1,
                 "config": {"database": {"type": "persistent"}}},
            ],
        },
    )


def run_trial(elastic: bool):
    cluster = Cluster(seed=121)
    spec = ServiceSpec(
        name="svc", processes=[kv_process("svc0", "n0")], group="svc-g", swim=SWIM
    )
    service = DynamicService.deploy(cluster, spec)

    # Register the expensive-query RPC on every (current and future)
    # service process.
    def register_query(margo):
        def handler(ctx):
            yield Compute(QUERY_COST)
            return None

        margo.register("query", handler)

    register_query(service.processes["svc0"].margo)

    free_nodes = [f"spare{i}" for i in range(3)]
    manager = None
    if elastic:
        def make_spec(name, node):
            return kv_process(name, node)

        manager = ElasticityManager(
            service,
            ElasticityPolicy(
                high_watermark=0.6,
                low_watermark=0.05,
                decision_interval=1.0,
                patience=1,
                max_processes=4,
            ),
            allocate_node=lambda: free_nodes.pop(0) if free_nodes else None,
            release_node=free_nodes.append,
            make_process_spec=make_spec,
        )
        manager.start()

        # New processes must also serve the query RPC.
        original_grow = service.grow

        def grow_and_register(proc_spec):
            managed = yield from original_grow(proc_spec)
            register_query(managed.margo)
            return managed

        service.grow = grow_and_register  # type: ignore[method-assign]

    app = cluster.add_margo("app", node="napp")
    completed = {"count": 0}

    def worker():
        while cluster.now < BURST_END:
            if cluster.now < BURST_START:
                yield UltSleep(BURST_START - cluster.now)
                continue
            # Spread queries over whatever processes currently exist.
            targets = service.addresses
            target = targets[completed["count"] % len(targets)]
            try:
                yield from app.forward(target, "query", timeout=2.0)
                completed["count"] += 1
            except Exception:
                yield UltSleep(0.05)

    for _ in range(N_WORKERS):
        cluster.spawn(app, worker())
    cluster.run(until=RUN_FOR)
    if manager is not None:
        manager.stop()

    return {
        "deployment": "elastic" if elastic else "static-1",
        "completed_queries": completed["count"],
        "peak_processes": (
            1 + max((1 for e in (manager.events if manager else [])
                     if e.kind == "out"), default=0)
            if manager
            else 1
        ),
        "scale_out_events": sum(
            1 for e in (manager.events if manager else []) if e.kind == "out"
        ),
        "scale_in_events": sum(
            1 for e in (manager.events if manager else []) if e.kind == "in"
        ),
        "final_processes": len(service.processes),
        "events": [
            {"t": e.time, "kind": e.kind, "process": e.process}
            for e in (manager.events if manager else [])
        ],
        "load_history": manager.load_history if manager else [],
    }


def run_experiment():
    static = run_trial(elastic=False)
    elastic = run_trial(elastic=True)
    return [static, elastic]


def test_e14_elastic_burst(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    display = [
        {k: v for k, v in row.items() if k not in ("events", "load_history")}
        for row in rows
    ]
    print_table("E14: bursty load, static vs elastic", display)
    for event in rows[1]["events"]:
        print(f"  t={event['t']:7.2f}s  scale-{event['kind']}  {event['process']}")
    save_results("E14_elastic", {"rows": rows})

    static, elastic = rows
    # The manager scaled out during the burst and back in afterwards.
    assert elastic["scale_out_events"] >= 1
    assert elastic["scale_in_events"] >= 1
    assert elastic["final_processes"] == 1
    out_times = [e["t"] for e in elastic["events"] if e["kind"] == "out"]
    in_times = [e["t"] for e in elastic["events"] if e["kind"] == "in"]
    assert all(BURST_START <= t <= BURST_END + 2.0 for t in out_times)
    assert all(t > min(out_times) for t in in_times)
    # Elastic serviced more of the burst than the static deployment.
    assert elastic["completed_queries"] > static["completed_queries"] * 1.3
