"""Ablation A4 -- the cost of composable security (paper section 9).

Measures KV operation latency in four configurations: direct access,
through the guard with shared-secret (mesh) token validation, through
the guard with encryption, and with tokens validated remotely at the
auth provider on every call.  Expected shape: the guard adds one
indirection hop plus HMAC cost; encryption adds size-proportional cost;
per-call remote validation is the expensive design (which is why the
shared-secret path exists).
"""

import pytest

from repro import Cluster
from repro.security import AuthProvider, GuardProvider, sign_token
from repro.security.tokens import verify_token
from repro.yokan import YokanClient, YokanProvider

from common import print_table, save_results

N_OPS = 300
VALUE = "x" * 2048


def measure(cluster, app, db):
    def driver():
        started = cluster.now
        for i in range(N_OPS):
            yield from db.put(f"k{i}", VALUE)
        return (cluster.now - started) / N_OPS

    return cluster.run_ult(app, driver()) * 1e6  # us/op


def build(encrypt=False, remote_validation=False):
    cluster = Cluster(seed=134)
    backend = cluster.add_margo("backend", node="n0")
    YokanProvider(backend, "db", provider_id=1)
    edge = cluster.add_margo("edge", node="n1")
    authsrv = cluster.add_margo("authsrv", node="n2")
    auth = AuthProvider(
        authsrv, "auth0", provider_id=1,
        config={
            "secret": "mesh-secret",
            "users": {"svc": {"password": "pw", "scopes": {"yokan": ["*"]}}},
            "token_ttl": 1e9,
        },
    )
    guard = GuardProvider(
        edge, "guard0", provider_id=1,
        protected={"type": "yokan", "address": backend.address, "provider_id": 1},
        operations=["put", "get"],
        auth="mesh-secret",
        encrypt=encrypt,
    )
    if remote_validation:
        # Ablated design: the guard round-trips every token to the auth
        # provider instead of verifying locally with the shared secret.
        original_guarded = guard._guarded

        def guarded_with_remote(operation, ctx):
            envelope = ctx.args
            if isinstance(envelope, dict) and "__token__" in envelope:
                yield from guard.margo.forward(
                    authsrv.address, "auth_validate",
                    {"token": envelope["__token__"]}, provider_id=1,
                )
            result = yield from original_guarded(operation, ctx)
            return result

        guard._guarded = guarded_with_remote  # type: ignore[method-assign]
    app = cluster.add_margo("app", node="na")
    db = YokanClient(app).make_handle(edge.address, 1)
    db.auth_token = sign_token(
        "mesh-secret", "svc", {"yokan": ["*"]}, expires_at=1e9, token_id="t"
    )
    return cluster, app, db, backend


def run_experiment():
    rows = []

    # Baseline: direct access, no security.
    cluster = Cluster(seed=134)
    backend = cluster.add_margo("backend", node="n0")
    YokanProvider(backend, "db", provider_id=1)
    app = cluster.add_margo("app", node="na")
    db = YokanClient(app).make_handle(backend.address, 1)
    rows.append({"configuration": "direct (no security)", "put_us": measure(cluster, app, db)})

    cluster, app, db, _ = build(encrypt=False)
    rows.append({"configuration": "guard (mesh validation)", "put_us": measure(cluster, app, db)})

    cluster, app, db, _ = build(encrypt=True)
    rows.append({"configuration": "guard + encryption", "put_us": measure(cluster, app, db)})

    cluster, app, db, _ = build(encrypt=False, remote_validation=True)
    rows.append({"configuration": "guard + remote validation", "put_us": measure(cluster, app, db)})

    base = rows[0]["put_us"]
    for row in rows:
        row["overhead_x"] = row["put_us"] / base
    return rows


def test_a4_security_overhead(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A4: composable security overhead (2 KiB puts)", rows)
    save_results("A4_security", {"rows": rows})

    direct, mesh, encrypted, remote = rows
    # The guard adds an indirection hop + HMAC: overhead exists but
    # stays within ~3x of the direct path.
    assert 1.0 < mesh["overhead_x"] < 3.0
    # Encryption adds a payload-proportional cost on top of the guard.
    assert encrypted["put_us"] > mesh["put_us"]
    # Per-call remote validation is the most expensive design.
    assert remote["put_us"] > mesh["put_us"]
