"""Ablation A3 -- Raft timing parameters.

Sweeps the heartbeat/election-timeout pair and measures (a) the
unavailability window after a leader kill and (b) the idle protocol
message rate.  The classic tradeoff: aggressive timeouts recover faster
but cost more heartbeat traffic (and risk spurious elections);
conservative timeouts are quiet but slow to recover.
"""

import pytest

from repro import Cluster
from repro.margo.ult import UltSleep
from repro.raft import CounterStateMachine, RaftClient, RaftConfig, RaftNode, Role

from common import print_table, save_results

TIMINGS = [
    ("aggressive", 0.02, 0.06, 0.12),
    ("default", 0.05, 0.15, 0.30),
    ("conservative", 0.20, 0.60, 1.20),
]
KILL_AT = 5.0
RUN_FOR = 20.0


def run_trial(label, heartbeat, timeout_min, timeout_max):
    rc = RaftConfig(
        heartbeat_interval=heartbeat,
        election_timeout_min=timeout_min,
        election_timeout_max=timeout_max,
        rpc_timeout=heartbeat * 1.2,
    )
    cluster = Cluster(seed=133)
    margos = [cluster.add_margo(f"r{i}", node=f"n{i}") for i in range(5)]
    peers = [m.address for m in margos]
    nodes = [
        RaftNode(
            margo, f"raft{i}", provider_id=1,
            state_machine=CounterStateMachine(),
            peers=peers, rng=cluster.randomness.stream(f"raft:{i}"), config=rc,
        )
        for i, margo in enumerate(margos)
    ]
    app = cluster.add_margo("app", node="napp")
    handle = RaftClient(app).make_group_handle(peers, provider_id=1)
    handle.retry_interval = heartbeat

    # Idle message rate: let the group settle, then count for 2 seconds.
    cluster.run(until=2.0)
    base = cluster.network.messages_sent
    cluster.run(until=4.0)
    idle_rate = (cluster.network.messages_sent - base) / 2.0

    acked = []

    def submitter():
        while cluster.now < RUN_FOR:
            try:
                yield from handle.submit(1, rpc_timeout=max(0.3, heartbeat * 6))
                acked.append(cluster.now)
            except Exception:
                pass
            yield UltSleep(0.02)

    cluster.spawn(app, submitter())
    cluster.run(until=KILL_AT)
    leaders = [n for n in nodes if n.role == Role.LEADER and n._running]
    leader = leaders[0]
    cluster.faults.kill_process(leader.margo.process)
    cluster.run(until=RUN_FOR)
    before = [t for t in acked if t <= KILL_AT]
    after = [t for t in acked if t > KILL_AT]
    outage = after[0] - before[-1] if before and after else None
    elections = sum(n.elections_started for n in nodes)
    return {
        "timing": label,
        "heartbeat_s": heartbeat,
        "election_timeout_s": f"{timeout_min}-{timeout_max}",
        "idle_msgs_per_s": idle_rate,
        "unavailability_s": outage,
        "elections_started": elections,
    }


def run_experiment():
    return [run_trial(*t) for t in TIMINGS]


def test_a3_raft_timing(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A3: Raft timing ablation (5 nodes, leader killed)", rows)
    save_results("A3_raft_timing", {"rows": rows})

    by_label = {r["timing"]: r for r in rows}
    for row in rows:
        assert row["unavailability_s"] is not None, row
    # Aggressive timeouts recover faster than conservative ones...
    assert (
        by_label["aggressive"]["unavailability_s"]
        < by_label["conservative"]["unavailability_s"]
    )
    # ...at a higher idle message cost.
    assert (
        by_label["aggressive"]["idle_msgs_per_s"]
        > by_label["conservative"]["idle_msgs_per_s"]
    )
