"""E1 -- Fig. 2: providers sharing a Margo runtime through pools and
execution streams.

Rebuilds the figure's exact topology: providers A and B submit to Pool X,
provider C to Pool Y, and the network progress loop runs exclusively on
ES 1 through Pool Z.  A mixed RPC stream then verifies the routing the
figure depicts ("upon receiving an RPC, it submits a ULT to either Pool
X if the RPC targets Provider A or B, or Pool Y if it targets Provider
C") and measures the per-pool activity.
"""

import pytest

from repro import Cluster
from repro.margo import Compute

from common import print_table, save_results

FIG2_CONFIG = {
    "argobots": {
        "pools": [
            {"name": "PoolX", "type": "fifo_wait", "access": "mpmc"},
            {"name": "PoolY", "type": "fifo_wait", "access": "mpmc"},
            {"name": "PoolZ", "type": "fifo_wait", "access": "mpmc"},
        ],
        "xstreams": [
            {"name": "ES0", "scheduler": {"type": "basic", "pools": ["PoolX", "PoolY"]}},
            {"name": "ES1", "scheduler": {"type": "basic", "pools": ["PoolZ"]}},
        ],
    },
    "progress_pool": "PoolZ",
    "rpc_pool": "PoolX",
}

N_RPCS = 300


def run_experiment():
    cluster = Cluster(seed=101)
    server = cluster.add_margo("server", node="n0", config=FIG2_CONFIG)
    client = cluster.add_margo("client", node="n1")

    def handler(ctx):
        yield Compute(2e-6)
        return ctx.args

    # Providers A (id 1) and B (id 2) in Pool X; C (id 3) in Pool Y.
    server.register("svc", handler, provider_id=1, pool="PoolX")
    server.register("svc", handler, provider_id=2, pool="PoolX")
    server.register("svc", handler, provider_id=3, pool="PoolY")

    pool_x = server.find_pool("PoolX")
    pool_y = server.find_pool("PoolY")
    pool_z = server.find_pool("PoolZ")
    base_x, base_y, base_z = pool_x.total_pushed, pool_y.total_pushed, pool_z.total_pushed

    def driver():
        for i in range(N_RPCS):
            provider = (i % 3) + 1
            yield from client.forward(server.address, "svc", i, provider_id=provider)

    started = cluster.now
    cluster.run_ult(client, driver())
    elapsed = cluster.now - started

    per_provider = N_RPCS // 3
    rows = [
        {
            "pool": "PoolX (providers A+B)",
            "handler_ults": pool_x.total_pushed - base_x,
            "expected": 2 * per_provider,
            "xstream": "ES0",
        },
        {
            "pool": "PoolY (provider C)",
            "handler_ults": pool_y.total_pushed - base_y,
            "expected": per_provider,
            "xstream": "ES0",
        },
        {
            "pool": "PoolZ (progress loop)",
            "handler_ults": pool_z.total_pushed - base_z,
            "expected": "network events",
            "xstream": "ES1",
        },
    ]
    summary = {
        "rpcs": N_RPCS,
        "simulated_seconds": elapsed,
        "rpcs_per_simulated_second": N_RPCS / elapsed,
        "es0_busy": server.xstreams["ES0"].busy_time,
        "es1_busy": server.xstreams["ES1"].busy_time,
    }
    return rows, summary


def test_e1_fig2_runtime(benchmark):
    rows, summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E1: Fig. 2 runtime routing", rows)
    print_table("E1: summary", [summary])
    save_results("E1_fig2_runtime", {"rows": rows, "summary": summary})

    # Shape: RPCs for A and B landed in Pool X, C's in Pool Y, exactly.
    assert rows[0]["handler_ults"] == rows[0]["expected"]
    assert rows[1]["handler_ults"] == rows[1]["expected"]
    # The progress loop (ES1) did run -- every incoming message wakes it.
    assert rows[2]["handler_ults"] >= 1
    # Handler compute ran on ES0, not the progress ES.
    assert summary["es0_busy"] > summary["es1_busy"]
