"""Race-detector overhead on the P0 hot paths (kernel + RPC).

The mochi-race layer promises zero-cost-when-off: the kernel's
``schedule`` is method-swapped (no wrapper object, no branch) and every
margo-layer hook hides behind one module-attribute load.  This suite
measures exactly that promise, plus the price of turning detection on:

* ``kernel_off`` / ``kernel_on``  -- events/sec of the discrete-event
  core with the detector disabled / enabled;
* ``rpc_off`` / ``rpc_on``        -- end-to-end RPCs/sec through
  ``forward()`` -> progress loop -> handler ULT -> response.

Results land in ``benchmarks/results/RACE_overhead.json`` and the
repo-root ``BENCH_RACE.json``.  The acceptance gate for this PR: the
*disabled* path must stay within 2% of the BENCH_P0.json trajectory
numbers (same workloads, same machine class).

Usage::

    PYTHONPATH=src python benchmarks/bench_race_overhead.py          # full run
    PYTHONPATH=src python benchmarks/bench_race_overhead.py --smoke  # CI smoke
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself; time.perf_counter here reads the host
# clock on purpose and never runs under the kernel.

import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from common import print_table, save_results  # noqa: E402

from repro import Cluster  # noqa: E402
from repro.analysis.race import hooks  # noqa: E402
from repro.margo import Compute  # noqa: E402
from repro.sim.kernel import SimKernel, Sleep  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
P0_TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_P0.json")
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_RACE.json")

OBS_OFF = {"observability": {"tracing": False, "metrics": False}}

#: Same workload shapes as bench_p0_throughput so the off-path numbers
#: are directly comparable against the BENCH_P0.json trajectory.
FULL = dict(repeats=5, n_tasks=300, n_steps=50, n_rpcs=2500)
SMOKE = dict(repeats=1, n_tasks=40, n_steps=10, n_rpcs=60)


def _best_of(repeats: int, fn):
    best = None
    for _ in range(repeats):
        gc.collect()
        gc.disable()
        try:
            stats = fn()
        finally:
            gc.enable()
        if best is None or stats["wall_s"] < best["wall_s"]:
            best = stats
    return best


def bench_kernel(n_tasks: int, n_steps: int) -> dict:
    """Identical to the P0 kernel workload (sleep swarm + timer fan)."""
    kernel = SimKernel()

    def worker(i: int):
        for step in range(n_steps):
            yield Sleep(1e-6 * ((i + step) % 7 + 1))
        return i

    tasks = [kernel.spawn(worker(i), name=f"w{i}") for i in range(n_tasks)]
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    for burst in range(n_steps):
        for _ in range(n_tasks // 4):
            kernel.schedule(1e-6 * (burst + 1), tick)

    started = time.perf_counter()
    kernel.run(until_tasks=tasks)
    wall = time.perf_counter() - started
    events = kernel._seq
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
        "sim_time": kernel.now,
    }


def bench_rpc(n_rpcs: int) -> dict:
    """Identical to the P0 rpc workload (observability off)."""
    cluster = Cluster(seed=7)
    server = cluster.add_margo("server", node="n0", config=dict(OBS_OFF))
    client = cluster.add_margo("client", node="n1", config=dict(OBS_OFF))

    def handler(ctx):
        yield Compute(1e-6)
        return ctx.args

    server.register("echo", handler)

    def driver():
        for i in range(n_rpcs):
            yield from client.forward(server.address, "echo", i)
        return None

    started = time.perf_counter()
    cluster.run_ult(client, driver())
    wall = time.perf_counter() - started
    return {
        "rpcs": n_rpcs,
        "wall_s": wall,
        "rpcs_per_sec": n_rpcs / wall,
        "sim_time": cluster.now,
    }


def _with_detector(enabled: bool, fn):
    def run():
        hooks.disable()
        hooks.reset()
        if enabled:
            hooks.enable()
        try:
            return fn()
        finally:
            hooks.disable()
            hooks.reset()

    return run


def run_suite(params: dict) -> dict:
    repeats = params["repeats"]
    kernel_args = (params["n_tasks"], params["n_steps"])
    results = {
        "kernel_off": _best_of(
            repeats, _with_detector(False, lambda: bench_kernel(*kernel_args))
        ),
        "kernel_on": _best_of(
            repeats, _with_detector(True, lambda: bench_kernel(*kernel_args))
        ),
        "rpc_off": _best_of(
            repeats, _with_detector(False, lambda: bench_rpc(params["n_rpcs"]))
        ),
        "rpc_on": _best_of(
            repeats, _with_detector(True, lambda: bench_rpc(params["n_rpcs"]))
        ),
        "params": dict(params),
    }
    return results


_PAIRS = (
    ("kernel", "events_per_sec"),
    ("rpc", "rpcs_per_sec"),
)


def _rows(results: dict, p0: dict | None) -> list[dict]:
    rows = []
    for bench, rate_key in _PAIRS:
        off = results[f"{bench}_off"][rate_key]
        on = results[f"{bench}_on"][rate_key]
        row = {
            "bench": bench,
            "rate_off": off,
            "rate_on": on,
            "unit": rate_key,
            "detector_on_overhead": 1.0 - on / off,
        }
        if p0 is not None:
            p0_bench = p0.get("current", {}).get(bench, {})
            p0_rate = p0_bench.get(rate_key)
            if p0_rate:
                row["p0_rate"] = p0_rate
                row["off_vs_p0"] = off / p0_rate
        rows.append(row)
    return rows


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    params = SMOKE if smoke else FULL

    results = run_suite(params)

    p0 = None
    if os.path.exists(P0_TRAJECTORY_PATH):
        with open(P0_TRAJECTORY_PATH) as handle:
            p0 = json.load(handle)

    rows = _rows(results, p0 if not smoke else None)
    print_table("race-detector overhead" + (" (smoke)" if smoke else ""), rows)

    if smoke:
        # CI rot check only: the harness must run end to end; no wall-clock
        # assertions on shared runners.
        print("race-overhead smoke OK")
        return 0

    save_results("RACE_overhead", {"results": results, "p0_trajectory": p0})
    trajectory = {
        "experiment": "RACE_overhead",
        "description": (
            "Wall-clock throughput of the SimKernel event loop and the "
            "Margo RPC path with the mochi-race detector off vs on; the "
            "off numbers use the same workloads as BENCH_P0.json so "
            "'off_vs_p0' measures the disabled-path regression (the PR "
            "gate requires it within 2%), and 'detector_on_overhead' is "
            "the fractional cost of turning detection on."
        ),
        "results": results,
        "comparison": rows,
    }
    with open(TRAJECTORY_PATH, "w") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
    print(f"trajectory written to {TRAJECTORY_PATH}")
    return 0


# Pytest entry point (smoke-sized so `pytest benchmarks/` stays fast).
def test_race_overhead_smoke():
    results = run_suite(SMOKE)
    assert results["kernel_off"]["events"] > 0
    assert results["rpc_on"]["rpcs"] == SMOKE["n_rpcs"]
    # Determinism: enabling the detector must not change simulated time.
    assert results["kernel_off"]["sim_time"] == results["kernel_on"]["sim_time"]
    assert results["rpc_off"]["sim_time"] == results["rpc_on"]["sim_time"]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
