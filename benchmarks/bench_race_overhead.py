"""Race-detector overhead on the P0 hot paths (kernel + RPC).

The mochi-race layer promises zero-cost-when-off: the kernel's
``schedule``/``post`` are method-swapped (no wrapper object, no branch)
and every margo-layer hook hides behind one module-attribute load.  P1
adds the second promise: with epoch-sampled vector clocks
(``race_sample_every``, default 16) the *enabled* detector costs at most
10% on these workloads.  This suite prices both:

* ``kernel_off`` / ``kernel_on``  -- events/sec of the discrete-event
  core with the detector disabled / enabled at the default sampling;
* ``rpc_off`` / ``rpc_on``        -- end-to-end RPCs/sec through
  ``forward()`` -> progress loop -> handler ULT -> response.

Arms are measured *interleaved and paired* (palindrome rounds from
``benchmarks/_harness.py``): overhead is the median of per-round wall
ratios, so machine drift cancels within a round instead of reading as
phantom overhead.  The old sequential best-of methodology produced the
BENCH_RACE.json rpc ``off_vs_p0 = 1.10`` anomaly -- two measurements
taken minutes apart under different load.  Cross-file comparisons
against BENCH_P0.json remain in the output as ``off_vs_p0`` but are
informational; every enforced gate is same-run paired.

Gates (enforced in full and ``--gate`` runs, exit 1 on failure):

* detector-on overhead <= 10% on both workloads (paired, median);
* the disabled path within 1.02x of the plain arm (trivially true --
  they are the same code path -- but it trips if a hook ever leaks out
  of the ``ENABLED`` guard).

Results land in ``benchmarks/results/RACE_overhead.json`` and the
repo-root ``BENCH_RACE.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_race_overhead.py          # full + gates
    PYTHONPATH=src python benchmarks/bench_race_overhead.py --gate   # CI-sized gate
    PYTHONPATH=src python benchmarks/bench_race_overhead.py --smoke  # CI rot check
"""

from __future__ import annotations

# mochi-lint: disable-file=MCH001 -- this harness measures real wall-clock
# throughput of the simulator itself; time.perf_counter here reads the host
# clock on purpose and never runs under the kernel.

import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from _harness import (  # noqa: E402
    OBS_OFF,
    REPO_ROOT,
    bench_kernel_swarm,
    bench_rpc_echo,
    load_trajectory,
    paired_ratio,
    run_rounds,
)
from common import print_table, save_results  # noqa: E402

from repro.analysis.race import hooks  # noqa: E402

P0_TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_P0.json")
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_RACE.json")

#: Acceptance thresholds (ISSUE 7): epoch sampling must keep the enabled
#: detector affordable, and the disabled path must stay free.
DETECTOR_ON_MAX_OVERHEAD = 0.10
OFF_PATH_MAX_RATIO = 1.02

#: Same workload shapes as bench_p0_throughput so the off-path numbers
#: are directly comparable against the BENCH_P0.json trajectory.  Rounds
#: are long enough for transient machine noise to hit both arms of a
#: pair rather than land between them.
FULL = dict(repeats=12, n_tasks=300, n_steps=50, n_rpcs=2500)
GATE = dict(repeats=6, n_tasks=300, n_steps=50, n_rpcs=2500)
SMOKE = dict(repeats=1, n_tasks=40, n_steps=10, n_rpcs=60)


def _with_detector(enabled: bool, fn):
    def run():
        hooks.disable()
        hooks.reset()
        if enabled:
            hooks.enable()  # default race_sample_every (the always-on setting)
        try:
            return fn()
        finally:
            hooks.disable()
            hooks.reset()

    return run


def run_suite(params: dict) -> dict:
    kernel_args = (params["n_tasks"], params["n_steps"])
    n_rpcs = params["n_rpcs"]
    results, rounds = run_rounds(params["repeats"], {
        "kernel_off": _with_detector(False, lambda: bench_kernel_swarm(*kernel_args)),
        "kernel_on": _with_detector(True, lambda: bench_kernel_swarm(*kernel_args)),
        "rpc_off": _with_detector(False, lambda: bench_rpc_echo(n_rpcs, OBS_OFF)),
        "rpc_on": _with_detector(True, lambda: bench_rpc_echo(n_rpcs, OBS_OFF)),
    })
    results["params"] = dict(params)
    results["rounds"] = rounds
    return results


_PAIRS = (
    ("kernel", "events_per_sec"),
    ("rpc", "rpcs_per_sec"),
)


def _rows(results: dict, p0: dict | None) -> list[dict]:
    rounds = results["rounds"]
    rows = []
    for bench, rate_key in _PAIRS:
        on_ratio = paired_ratio(rounds, f"{bench}_on", f"{bench}_off")
        row = {
            "bench": bench,
            "rate_off": results[f"{bench}_off"][rate_key],
            "rate_on": results[f"{bench}_on"][rate_key],
            "unit": rate_key,
            # Overhead = extra wall fraction, from the paired wall ratio.
            "detector_on_overhead": 1.0 - 1.0 / on_ratio,
        }
        if p0 is not None:
            p0_rate = p0.get("current", {}).get(bench, {}).get(rate_key)
            if p0_rate:
                row["p0_rate"] = p0_rate
                # Informational only (cross-file, cross-session): the
                # enforced off-path gate lives in bench_p1_speed's
                # same-run paired arms.
                row["off_vs_p0"] = p0_rate / row["rate_off"]
        rows.append(row)
    return rows


def _check_gates(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        if row["detector_on_overhead"] >= DETECTOR_ON_MAX_OVERHEAD:
            failures.append(
                f"{row['bench']}: detector-on overhead "
                f"{row['detector_on_overhead']:.1%}"
                f" >= {DETECTOR_ON_MAX_OVERHEAD:.0%}"
            )
    return failures


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    gate = "--gate" in argv
    params = SMOKE if smoke else GATE if gate else FULL

    results = run_suite(params)

    p0 = load_trajectory(P0_TRAJECTORY_PATH)
    rows = _rows(results, p0 if not smoke else None)
    label = " (smoke)" if smoke else " (gate)" if gate else ""
    print_table("race-detector overhead" + label, rows)

    if smoke:
        # CI rot check only: the harness must run end to end; no wall-clock
        # assertions on shared runners.
        print("race-overhead smoke OK")
        return 0

    failures = _check_gates(rows)
    for failure in failures:
        print(f"GATE FAILED: {failure}")

    if not gate:
        save_results("RACE_overhead", {"results": results, "p0_trajectory": p0})
        trajectory = {
            "experiment": "RACE_overhead",
            "description": (
                "Wall-clock throughput of the SimKernel event loop and the "
                "Margo RPC path with the mochi-race detector off vs on at "
                "the default race_sample_every=16 (P1 epoch-sampled vector "
                "clocks).  'detector_on_overhead' is the median of paired "
                "per-round wall ratios (palindrome-ordered rounds, see "
                "benchmarks/_harness.py); the gate requires <= 10% on both "
                "workloads.  'off_vs_p0' compares against the pinned "
                "BENCH_P0.json and is informational only -- cross-session "
                "comparisons drift with machine load (the old 1.10 rpc "
                "anomaly); enforced off-path gates are same-run paired, in "
                "bench_p1_speed."
            ),
            "results": {k: v for k, v in results.items() if k != "rounds"},
            "comparison": rows,
            "gates": {
                "detector_on_max_overhead": DETECTOR_ON_MAX_OVERHEAD,
                "passed": not failures,
                "failures": failures,
            },
        }
        with open(TRAJECTORY_PATH, "w") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
        print(f"trajectory written to {TRAJECTORY_PATH}")

    if failures:
        return 1
    print("race-overhead gates OK")
    return 0


# Pytest entry point (smoke-sized so `pytest benchmarks/` stays fast).
def test_race_overhead_smoke():
    results = run_suite(SMOKE)
    assert results["kernel_off"]["events"] > 0
    assert results["rpc_on"]["rpcs"] == SMOKE["n_rpcs"]
    # Determinism: enabling the detector must not change simulated time.
    assert results["kernel_off"]["sim_time"] == results["kernel_on"]["sim_time"]
    assert results["rpc_off"]["sim_time"] == results["rpc_on"]["sim_time"]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
