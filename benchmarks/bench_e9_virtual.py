"""E9 -- section 7, Observation 10: virtual resources.

"A Yokan 'virtual database' could forward the data it receives to N
other actual databases living on other nodes.  The client accessing this
virtual database does not know that the provider it contacts does not
actually hold data itself or that the data is replicated."

The experiment measures put/get latency through a virtual database for
N in {1, 2, 3, 5} replicas, against a direct (non-virtual) database.
Expected shape: the client API and results are identical in every
configuration (transparency); writes pay a small, slowly growing
replication cost (they fan out concurrently); reads cost a constant
one-hop indirection regardless of N.
"""

import pytest

from repro import Cluster
from repro.yokan import VirtualYokanProvider, YokanClient, YokanProvider

from common import print_table, save_results

N_OPS = 300
REPLICA_COUNTS = [1, 2, 3, 5]


def measure(workload_cluster, client_margo, db):
    def puts():
        started = workload_cluster.now
        for i in range(N_OPS):
            yield from db.put(f"k{i}", f"value-{i}")
        return (workload_cluster.now - started) / N_OPS

    def gets():
        started = workload_cluster.now
        for i in range(N_OPS):
            yield from db.get(f"k{i}")
        return (workload_cluster.now - started) / N_OPS

    put_latency = workload_cluster.run_ult(client_margo, puts())
    get_latency = workload_cluster.run_ult(client_margo, gets())
    return put_latency, get_latency


def run_direct():
    cluster = Cluster(seed=109)
    server = cluster.add_margo("server", node="n0")
    YokanProvider(server, "db", provider_id=1)
    client_margo = cluster.add_margo("client", node="nc")
    db = YokanClient(client_margo).make_handle(server.address, 1)
    put_latency, get_latency = measure(cluster, client_margo, db)
    return {
        "configuration": "direct (no virtual layer)",
        "replicas": 1,
        "put_us": put_latency * 1e6,
        "get_us": get_latency * 1e6,
    }


def run_virtual(n_replicas):
    cluster = Cluster(seed=110 + n_replicas)
    targets = []
    backends = []
    for i in range(n_replicas):
        margo = cluster.add_margo(f"rep{i}", node=f"n{i}")
        backends.append(YokanProvider(margo, f"rdb{i}", provider_id=1))
        targets.append({"address": margo.address, "provider_id": 1})
    front = cluster.add_margo("front", node="nf")
    VirtualYokanProvider(
        front, "vdb", provider_id=9, config={"targets": targets, "rpc_timeout": 0.5}
    )
    client_margo = cluster.add_margo("client", node="nc")
    # Transparency: the client uses the ordinary handle type.
    db = YokanClient(client_margo).make_handle(front.address, 9)
    put_latency, get_latency = measure(cluster, client_margo, db)
    # Verify full replication actually happened.
    counts = [b.backend.count() for b in backends]
    return {
        "configuration": f"virtual x{n_replicas}",
        "replicas": n_replicas,
        "put_us": put_latency * 1e6,
        "get_us": get_latency * 1e6,
        "replica_counts": counts,
    }


def run_experiment():
    rows = [run_direct()]
    for n in REPLICA_COUNTS:
        rows.append(run_virtual(n))
    return rows


def test_e9_virtual_resources(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E9: virtual (replicating) database overhead", rows)
    save_results("E9_virtual", {"rows": rows})

    direct = rows[0]
    virtuals = rows[1:]
    # Replication is complete at every N.
    for row in virtuals:
        assert all(c == N_OPS for c in row["replica_counts"]), row
    # The virtual layer costs an extra hop on both paths.
    assert virtuals[0]["put_us"] > direct["put_us"]
    assert virtuals[0]["get_us"] > direct["get_us"]
    # Writes fan out concurrently: cost grows with N but sublinearly
    # (x5 replicas costs far less than 5x the single-replica write).
    assert virtuals[-1]["put_us"] > virtuals[0]["put_us"]
    assert virtuals[-1]["put_us"] < virtuals[0]["put_us"] * len(REPLICA_COUNTS)
    # Reads hit one replica: N-independent within 25%.
    gets = [r["get_us"] for r in virtuals]
    assert max(gets) < min(gets) * 1.25
