"""E2 -- section 4: monitoring "at no engineering cost", and at what
runtime cost.

An echo-RPC storm runs three ways: no monitoring, the default
StatisticsMonitor (Listing 1), and a full CallbackMonitor subscribed to
every hook.  The experiment reports simulated completion time and the
collected statistics' fidelity.  The claim being validated: monitoring
is cheap enough to be always-on (small single-digit-percent overhead),
and the Listing-1 document is produced with zero component changes.
"""

import pytest

from repro import Cluster
from repro.monitoring import CallbackMonitor, HOOK_NAMES, StatisticsMonitor

from common import print_table, save_results

N_RPCS = 1500


def run_storm(monitor_kind: str):
    cluster = Cluster(seed=102)
    monitors = ()
    monitor = None
    counter = {"events": 0}
    if monitor_kind == "statistics":
        monitor = StatisticsMonitor()
        monitors = (monitor,)
    elif monitor_kind == "callbacks-all-hooks":
        def count(**kwargs):
            counter["events"] += 1

        monitors = (CallbackMonitor({name: count for name in HOOK_NAMES}),)
    server = cluster.add_margo("server", node="n0", monitors=monitors)
    client = cluster.add_margo("client", node="n1", monitors=monitors)
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        for i in range(N_RPCS):
            yield from client.forward(server.address, "echo", i)

    cluster.run_ult(client, driver())
    return {
        "monitoring": monitor_kind,
        "rpcs": N_RPCS,
        "simulated_seconds": cluster.now,
        "hook_events": counter["events"],
    }, monitor


def run_experiment():
    rows = []
    stats_monitor = None
    for kind in ("off", "statistics", "callbacks-all-hooks"):
        row, monitor = run_storm(kind)
        if kind == "statistics":
            stats_monitor = monitor
        rows.append(row)
    base = rows[0]["simulated_seconds"]
    for row in rows:
        row["overhead_pct"] = 100.0 * (row["simulated_seconds"] / base - 1.0)
    return rows, stats_monitor


def test_e2_monitoring_overhead(benchmark):
    rows, stats_monitor = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E2: monitoring overhead (echo storm)", rows)
    save_results("E2_monitoring", {"rows": rows})

    # Shape: monitoring costs something but stays single-digit percent.
    assert rows[1]["simulated_seconds"] > rows[0]["simulated_seconds"]
    assert rows[1]["overhead_pct"] < 10.0
    assert rows[2]["overhead_pct"] < 10.0
    assert rows[2]["hook_events"] > 0

    # Fidelity: the Listing-1 document accounts for every RPC, at no
    # engineering cost to the echo "component".
    (record,) = stats_monitor.find_by_name("echo")
    origin = record["origin"][next(iter(record["origin"]))]
    target = record["target"][next(iter(record["target"]))]
    assert origin["forward"]["num"] == N_RPCS
    assert target["ult"]["duration"]["num"] == N_RPCS
    assert target["ult"]["duration"]["max"] >= target["ult"]["duration"]["avg"]
