"""E2 -- section 4: monitoring "at no engineering cost", and at what
runtime cost.

An echo-RPC storm runs four ways: no monitoring, the default
StatisticsMonitor (Listing 1), a full CallbackMonitor subscribed to
every hook, and statistics plus the distributed tracer.  The experiment
reports simulated completion time and the collected statistics' /
spans' fidelity.  The claim being validated: monitoring is cheap enough
to be always-on (small single-digit-percent overhead), the Listing-1
document is produced with zero component changes, and full per-RPC
tracing stays within the same budget.
"""

import pytest

from repro import Cluster
from repro.monitoring import CallbackMonitor, HOOK_NAMES, StatisticsMonitor

from common import print_table, save_results

N_RPCS = 1500


def run_storm(monitor_kind: str):
    config = None
    monitors = ()
    monitor = None
    counter = {"events": 0}
    if monitor_kind == "statistics":
        monitor = StatisticsMonitor()
        monitors = (monitor,)
    elif monitor_kind == "callbacks-all-hooks":
        def count(**kwargs):
            counter["events"] += 1

        monitors = (CallbackMonitor({name: count for name in HOOK_NAMES}),)
    elif monitor_kind == "statistics+tracing":
        monitor = StatisticsMonitor()
        monitors = (monitor,)
        config = {"observability": {"tracing": True}}
    cluster = Cluster(seed=102)
    server = cluster.add_margo("server", node="n0", config=config, monitors=monitors)
    client = cluster.add_margo("client", node="n1", config=config, monitors=monitors)
    server.register("echo", lambda ctx: ctx.args)

    def driver():
        for i in range(N_RPCS):
            yield from client.forward(server.address, "echo", i)

    cluster.run_ult(client, driver())
    spans = sum(len(t.spans) for t in cluster.tracers())
    return {
        "monitoring": monitor_kind,
        "rpcs": N_RPCS,
        "simulated_seconds": cluster.now,
        "hook_events": counter["events"],
        "spans": spans,
    }, monitor


def run_experiment():
    rows = []
    stats_monitor = None
    for kind in ("off", "statistics", "callbacks-all-hooks", "statistics+tracing"):
        row, monitor = run_storm(kind)
        if kind == "statistics":
            stats_monitor = monitor
        rows.append(row)
    base = rows[0]["simulated_seconds"]
    for row in rows:
        row["overhead_pct"] = 100.0 * (row["simulated_seconds"] / base - 1.0)
    return rows, stats_monitor


def test_e2_monitoring_overhead(benchmark):
    rows, stats_monitor = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E2: monitoring overhead (echo storm)", rows)
    save_results("E2_monitoring", {"rows": rows})

    # Shape: monitoring costs something but stays single-digit percent.
    assert rows[1]["simulated_seconds"] > rows[0]["simulated_seconds"]
    assert rows[1]["overhead_pct"] < 10.0
    assert rows[2]["overhead_pct"] < 10.0
    assert rows[2]["hook_events"] > 0

    # Tracing rides the same hook path: every RPC materializes its
    # client- and server-side spans, still within the overhead budget.
    traced = rows[3]
    assert traced["overhead_pct"] < 10.0
    # forward (client) + queue/handler/respond (server) per RPC.
    assert traced["spans"] == 4 * N_RPCS

    # Fidelity: the Listing-1 document accounts for every RPC, at no
    # engineering cost to the echo "component".
    (record,) = stats_monitor.find_by_name("echo")
    origin = record["origin"][next(iter(record["origin"]))]
    target = record["target"][next(iter(record["target"]))]
    assert origin["forward"]["num"] == N_RPCS
    assert target["ult"]["duration"]["num"] == N_RPCS
    assert target["ult"]["duration"]["max"] >= target["ult"]["duration"]["avg"]
