"""E3 -- section 5: online reconfiguration without taking the service
offline.

A client issues a steady RPC stream while the server undergoes a series
of runtime reconfigurations (add pool, add xstream, move handler
traffic, remove them again) and rejects a set of invalid changes.  The
experiment reports per-RPC latency before/during/after reconfiguration
and the rejected-invalid-operation count.  Claims validated: zero failed
or dropped RPCs across reconfigurations, bounded latency disturbance,
and "Margo ensures that the changes are always valid".
"""

import pytest

from repro import Cluster
from repro.margo import Compute, ConfigError, DuplicateNameError, PoolInUseError

from common import print_table, save_results

N_RPCS = 900
RECONFIG_WINDOW = (0.30, 0.60)  # fraction of the stream


def run_experiment():
    cluster = Cluster(seed=103)
    server = cluster.add_margo("server", node="n0")
    client = cluster.add_margo("client", node="n1")

    def handler(ctx):
        yield Compute(1e-6)
        return ctx.args

    server.register("work", handler, provider_id=1)

    latencies: list[tuple[int, float]] = []
    failures = {"count": 0}

    def stream():
        for i in range(N_RPCS):
            started = cluster.now
            try:
                yield from client.forward(server.address, "work", i, provider_id=1)
            except Exception:
                failures["count"] += 1
            latencies.append((i, cluster.now - started))

    # Schedule the reconfiguration mid-stream.
    invalid_rejections = {"count": 0}

    def reconfigure():
        # Valid changes: grow the runtime, then shrink it back.
        server.add_pool({"name": "burst"})
        server.add_xstream({"name": "burst-es", "scheduler": {"pools": ["burst"]}})
        # Invalid changes must all be rejected without disturbing service.
        for bad in (
            lambda: server.add_pool({"name": "burst"}),  # duplicate
            lambda: server.remove_pool("__primary__"),  # in use by xstream
            lambda: server.remove_xstream("ghost"),  # unknown
            lambda: server.add_xstream(
                {"name": "bad", "scheduler": {"pools": ["nope"]}}
            ),  # unknown pool
        ):
            try:
                bad()
            except (ConfigError, DuplicateNameError, PoolInUseError):
                invalid_rejections["count"] += 1

    def cleanup():
        server.remove_xstream("burst-es")
        server.remove_pool("burst")

    # Interleave: run the stream; fire reconfigurations at fixed times.
    cluster.kernel.schedule(0.002, reconfigure)
    cluster.kernel.schedule(0.004, cleanup)
    cluster.run_ult(client, stream())

    # Bucket latencies into thirds: before / during / after.
    lo = int(N_RPCS * RECONFIG_WINDOW[0])
    hi = int(N_RPCS * RECONFIG_WINDOW[1])
    def bucket_stats(pairs):
        values = [v for _, v in pairs]
        return {
            "rpcs": len(values),
            "mean_latency_us": 1e6 * sum(values) / len(values),
            "max_latency_us": 1e6 * max(values),
        }

    rows = [
        {"phase": "before reconfig", **bucket_stats(latencies[:lo])},
        {"phase": "during reconfig", **bucket_stats(latencies[lo:hi])},
        {"phase": "after reconfig", **bucket_stats(latencies[hi:])},
    ]
    summary = {
        "failed_rpcs": failures["count"],
        "invalid_changes_rejected": invalid_rejections["count"],
        "final_pools": sorted(server.pools),
        "final_xstreams": sorted(server.xstreams),
    }
    return rows, summary


def test_e3_online_reconfiguration(benchmark):
    rows, summary = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E3: RPC latency across online reconfiguration", rows)
    print_table("E3: summary", [summary])
    save_results("E3_reconfig", {"rows": rows, "summary": summary})

    # Zero service interruption: no RPC failed or was dropped.
    assert summary["failed_rpcs"] == 0
    # All four invalid changes were rejected.
    assert summary["invalid_changes_rejected"] == 4
    # The runtime returned to its original shape.
    assert summary["final_pools"] == ["__primary__"]
    # Latency disturbance during reconfiguration stays bounded (< 3x).
    assert rows[1]["mean_latency_us"] < rows[0]["mean_latency_us"] * 3
