"""E5 -- section 6, Observation 4: REMI's two transfer methods.

"[RDMA] is more efficient for large files.  [Chunked RPCs are] more
efficient when sending multiple small files, since they can be packed
together into larger chunks and the transfer of chunks can be
pipelined."

The experiment migrates a fixed 32 MiB dataset split into 1..4096 files
with both methods, locating the crossover, and checks that ``auto``
picks the winner on both ends of the sweep.
"""

import pytest

from repro import Cluster
from repro.remi import FileSet, RemiClient, RemiProvider
from repro.storage import LocalStore

from common import print_table, save_results

TOTAL_BYTES = 32 << 20  # 32 MiB
FILE_COUNTS = [1, 4, 16, 64, 256, 1024, 4096]


def make_rig(seed=105):
    cluster = Cluster(seed=seed)
    src_node = cluster.node("src")
    dst_node = cluster.node("dst")
    src_store = LocalStore(src_node)
    LocalStore(dst_node)
    src = cluster.add_margo("src-proc", node=src_node)
    dst = cluster.add_margo("dst-proc", node=dst_node)
    RemiProvider(dst, "remi", provider_id=0, config={"sync": True})
    handle = RemiClient(src).make_handle(dst.address, 0)
    return cluster, src, src_store, handle


def run_migration(num_files, method):
    cluster, src, src_store, handle = make_rig()
    size = TOTAL_BYTES // num_files
    for i in range(num_files):
        src_store.write(f"data/{i:05d}", b"\xab" * size)
    fileset = FileSet.from_prefix(src_store, "data/")

    def driver():
        report = yield from handle.migrate_fileset(fileset, method=method)
        return report

    report = cluster.run_ult(src, driver())
    return report


def run_experiment():
    rows = []
    for num_files in FILE_COUNTS:
        rdma = run_migration(num_files, "rdma")
        chunks = run_migration(num_files, "chunks")
        auto = run_migration(num_files, "auto")
        rows.append(
            {
                "files": num_files,
                "file_size_kib": (TOTAL_BYTES // num_files) // 1024,
                "rdma_s": rdma.duration,
                "chunks_s": chunks.duration,
                "winner": "rdma" if rdma.duration < chunks.duration else "chunks",
                "auto_chose": auto.method,
                "rdma_gbps": TOTAL_BYTES / rdma.duration / 1e9,
                "chunks_gbps": TOTAL_BYTES / chunks.duration / 1e9,
            }
        )
    return rows


def test_e5_remi_crossover(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("E5: REMI transfer methods, 32 MiB over N files", rows)
    save_results("E5_remi", {"rows": rows})

    # The paper's shape: RDMA wins for few/large files...
    assert rows[0]["winner"] == "rdma"
    # ...chunked+pipelined RPCs win for many small files...
    assert rows[-1]["winner"] == "chunks"
    # ...so a crossover exists somewhere in between.
    winners = [r["winner"] for r in rows]
    assert "rdma" in winners and "chunks" in winners
    crossover = next(i for i, w in enumerate(winners) if w == "chunks")
    assert all(w == "rdma" for w in winners[:crossover])
    # 'auto' picks the true winner at both extremes.
    assert rows[0]["auto_chose"] == "rdma"
    assert rows[-1]["auto_chose"] == "chunks"
    # The penalty for many small files over RDMA grows monotonically-ish:
    assert rows[-1]["rdma_s"] > rows[0]["rdma_s"]
