"""Ablation A5 -- Raft read paths: through-the-log vs ReadIndex.

Reads submitted as log entries are trivially linearizable but cost a
full replication round and grow the log; the ReadIndex optimization
(one heartbeat round, no log entry) serves the same linearizable reads
far cheaper.  This ablation measures both paths' latency, log growth,
and message cost on a 5-node group.
"""

import pytest

from repro import Cluster
from repro.raft import KVStateMachine, RaftClient, RaftConfig, RaftNode, Role
from repro.yokan import MapBackend

from common import print_table, save_results

RC = RaftConfig(
    heartbeat_interval=0.05,
    election_timeout_min=0.15,
    election_timeout_max=0.3,
    rpc_timeout=0.06,
)
N_READS = 200


def make_group():
    cluster = Cluster(seed=135)
    margos = [cluster.add_margo(f"r{i}", node=f"n{i}") for i in range(5)]
    peers = [m.address for m in margos]
    nodes = [
        RaftNode(
            margo, f"raft{i}", provider_id=1,
            state_machine=KVStateMachine(MapBackend()),
            peers=peers, rng=cluster.randomness.stream(f"raft:{i}"), config=RC,
        )
        for i, margo in enumerate(margos)
    ]
    app = cluster.add_margo("app", node="napp")
    handle = RaftClient(app).make_group_handle(peers, provider_id=1)

    def seed_data():
        yield from handle.submit({"op": "put", "key": b"k", "value": b"v"})
        yield from handle.find_leader()

    cluster.run_ult(app, seed_data())
    return cluster, nodes, app, handle


def run_path(path):
    cluster, nodes, app, handle = make_group()
    (leader,) = [n for n in nodes if n.role == Role.LEADER and n._running]
    log_before = leader.log.last_index + leader.log.snapshot_index
    messages_before = cluster.network.messages_sent
    started = cluster.now

    def reads():
        for _ in range(N_READS):
            if path == "through-log":
                value = yield from handle.submit({"op": "get", "key": b"k"})
            else:
                value = yield from handle.read({"op": "get", "key": b"k"})
            assert value == b"v"

    cluster.run_ult(app, reads())
    elapsed = cluster.now - started
    log_growth = (leader.log.last_index + leader.log.snapshot_index) - log_before
    messages = cluster.network.messages_sent - messages_before
    return {
        "read_path": path,
        "mean_latency_us": elapsed / N_READS * 1e6,
        "log_entries_added": log_growth,
        "messages_per_read": messages / N_READS,
    }


def run_experiment():
    return [run_path("through-log"), run_path("read-index")]


def test_a5_readindex(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table("A5: Raft read paths (5 nodes, 200 linearizable reads)", rows)
    save_results("A5_readindex", {"rows": rows})

    through_log, read_index = rows
    # ReadIndex appends nothing; through-log grows one entry per read.
    assert read_index["log_entries_added"] == 0
    assert through_log["log_entries_added"] >= N_READS
    # ReadIndex is at least as fast (typically faster: no apply wait on
    # followers, no commit round trip beyond the heartbeat).
    assert read_index["mean_latency_us"] <= through_log["mean_latency_us"] * 1.05
