"""Package metadata.

Metadata lives here (rather than a [project] table in pyproject.toml)
so that `pip install -e .` works in fully offline environments: a
[project] table forces pip onto the PEP 517 editable path, which
requires the `wheel` package and network-installed build backends.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Python reproduction of 'Extending the Mochi Methodology to Enable "
        "Dynamic HPC Data Services' (Dorier et al., 2024): a composable, "
        "dynamic HPC data-service framework on a deterministic "
        "discrete-event substrate."
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[],
    extras_require={"test": ["pytest", "hypothesis", "pytest-benchmark"]},
    entry_points={
        "console_scripts": [
            # mochi-lint: the Mochi-aware static analyzer + config
            # cross-validator (same as `python -m repro.analysis`).
            "repro-lint=repro.analysis.cli:main",
            # mochi-health: deterministic incident scenarios reporting
            # health states, incidents, detection latency, MTTR (same
            # as `python -m repro.observability.health`).
            "repro-health=repro.observability.health.cli:main",
            # mochi-xray: known-bottleneck scenarios reporting critical
            # paths, tail attribution, and what-if rankings (same as
            # `python -m repro.observability.xray`).
            "repro-xray=repro.observability.xray.cli:main",
        ]
    },
)
