"""Plan execution via dependency injection.

Pufferscale "simply works out a rebalancing plan and carries it out by
calling functions provided via dependency injection" (paper section 6,
Observation 6): the executor never learns what a shard *is* -- the
service supplies a ``migrate(shard, source, destination)`` ULT
generator (typically REMI-backed) and the executor drives it, node-pairs
in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..core.parallel import parallel
from ..margo.runtime import MargoInstance
from .planner import MigrationPlan

__all__ = ["PlanExecutor", "ExecutionReport"]


@dataclass(frozen=True)
class ExecutionReport:
    """What happened when a plan ran."""

    moves_executed: int
    bytes_moved: int
    duration: float


class PlanExecutor:
    """Carries out a :class:`MigrationPlan` with an injected migrator."""

    def __init__(
        self,
        margo: MargoInstance,
        migrate: Callable[[Any, str, str], Generator],
        max_parallel: int = 4,
    ) -> None:
        if max_parallel <= 0:
            raise ValueError("max_parallel must be positive")
        self.margo = margo
        self.migrate = migrate
        self.max_parallel = max_parallel
        self._moves = margo.metrics.counter(
            "pufferscale_moves_executed", "shard migrations carried out"
        )
        self._moved_bytes = margo.metrics.counter(
            "pufferscale_bytes_moved", "shard bytes shipped by rebalances"
        )
        self._rebalances = margo.metrics.counter(
            "pufferscale_rebalances", "plans executed to completion"
        )
        self._wave_seconds = margo.metrics.histogram(
            "pufferscale_wave_seconds", "duration of each migration wave"
        )

    def execute(self, plan: MigrationPlan) -> Generator:
        """Run every move; returns an :class:`ExecutionReport`.

        Moves are grouped into waves that never reuse a node within a
        wave (migrations between disjoint node pairs run concurrently;
        a node's NIC/disk is the serialization point).
        """
        started = self.margo.kernel.now
        remaining = list(plan.moves)
        executed = 0
        moved_bytes = 0
        while remaining:
            wave: list = []
            busy: set[str] = set()
            rest: list = []
            for move in remaining:
                if (
                    len(wave) < self.max_parallel
                    and move.source not in busy
                    and move.destination not in busy
                ):
                    wave.append(move)
                    busy.add(move.source)
                    busy.add(move.destination)
                else:
                    rest.append(move)
            remaining = rest
            wave_started = self.margo.kernel.now
            yield from parallel(
                self.margo,
                [self.migrate(m.shard, m.source, m.destination) for m in wave],
            )
            self._wave_seconds.observe(self.margo.kernel.now - wave_started)
            executed += len(wave)
            moved_bytes += sum(m.shard.size_bytes for m in wave)
        self._moves.inc(executed)
        self._moved_bytes.inc(moved_bytes)
        self._rebalances.inc()
        if self.margo.tracer is not None:
            self.margo.tracer.record_span(
                "rebalance",
                "rebalance",
                self.margo.process.name,
                started,
                self.margo.kernel.now,
                attributes={"moves": executed, "bytes": moved_bytes},
            )
        return ExecutionReport(
            moves_executed=executed,
            bytes_moved=moved_bytes,
            duration=self.margo.kernel.now - started,
        )
