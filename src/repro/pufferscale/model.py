"""Pufferscale's data model: shards, placements, balance metrics.

Pufferscale (paper section 6, Observation 6; Cheriere et al. [24])
"implements heuristics to decide which pieces of data to migrate and
where in order to achieve load balance (balance of accesses to the
data), data balance (balance of their volume on each node), rebalancing
time, or a compromise between these three objectives."

Crucially it is *composable*: it "does not require any knowledge of the
nature of the resources being migrated" -- a :class:`Shard` is just an
id with a size and a load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Shard", "Placement", "Move", "PlacementMetrics"]


@dataclass(frozen=True)
class Shard:
    """An opaque migratable resource."""

    shard_id: str
    size_bytes: int
    load: float  # access rate (e.g. requests/s)

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative shard size: {self.size_bytes}")
        if self.load < 0:
            raise ValueError(f"negative shard load: {self.load}")


@dataclass(frozen=True)
class Move:
    """One planned migration."""

    shard: Shard
    source: str
    destination: str


@dataclass(frozen=True)
class PlacementMetrics:
    """The three Pufferscale objectives, evaluated on a placement."""

    load_imbalance: float  # max node load / mean node load (1.0 = perfect)
    data_imbalance: float  # max node bytes / mean node bytes (1.0 = perfect)
    migration_bytes: int  # total bytes moved by the plan
    estimated_migration_time: float  # bottleneck-node transfer estimate


class Placement:
    """A mutable mapping node -> set of shards."""

    def __init__(self, nodes: Iterable[str]) -> None:
        self._nodes: dict[str, dict[str, Shard]] = {n: {} for n in nodes}
        if not self._nodes:
            raise ValueError("placement needs at least one node")

    @classmethod
    def from_dict(cls, mapping: dict[str, list[Shard]]) -> "Placement":
        placement = cls(mapping.keys())
        for node, shards in mapping.items():
            for shard in shards:
                placement.add(node, shard)
        return placement

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def shards_on(self, node: str) -> list[Shard]:
        return sorted(self._nodes[node].values(), key=lambda s: s.shard_id)

    def all_shards(self) -> list[Shard]:
        return sorted(
            (s for shards in self._nodes.values() for s in shards.values()),
            key=lambda s: s.shard_id,
        )

    def node_of(self, shard_id: str) -> Optional[str]:
        for node, shards in self._nodes.items():
            if shard_id in shards:
                return node
        return None

    def add(self, node: str, shard: Shard) -> None:
        existing = self.node_of(shard.shard_id)
        if existing is not None:
            raise ValueError(f"shard {shard.shard_id!r} already placed on {existing}")
        self._nodes[node][shard.shard_id] = shard

    def remove(self, node: str, shard_id: str) -> Shard:
        return self._nodes[node].pop(shard_id)

    def move(self, move: Move) -> None:
        shard = self.remove(move.source, move.shard.shard_id)
        self._nodes[move.destination][shard.shard_id] = shard

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already in placement")
        self._nodes[node] = {}

    def drop_node(self, node: str) -> None:
        if self._nodes[node]:
            raise ValueError(f"node {node!r} still holds shards")
        del self._nodes[node]

    def copy(self) -> "Placement":
        clone = Placement(self._nodes.keys())
        for node, shards in self._nodes.items():
            clone._nodes[node] = dict(shards)
        return clone

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def load_of(self, node: str) -> float:
        return sum(s.load for s in self._nodes[node].values())

    def bytes_of(self, node: str) -> int:
        return sum(s.size_bytes for s in self._nodes[node].values())

    def load_imbalance(self) -> float:
        loads = [self.load_of(n) for n in self._nodes]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def data_imbalance(self) -> float:
        sizes = [self.bytes_of(n) for n in self._nodes]
        mean = sum(sizes) / len(sizes)
        if mean == 0:
            return 1.0
        return max(sizes) / mean

    @staticmethod
    def _cv(values: list[float]) -> float:
        mean = sum(values) / len(values)
        if mean == 0:
            return 0.0
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return variance**0.5 / mean

    def load_cv(self) -> float:
        """Coefficient of variation of per-node load: zero when
        perfectly balanced, and -- unlike max/mean or (max-min)/mean --
        *strictly* decreased by any move of work from an above-mean node
        to a below-mean one, so hill climbing never stalls on plateaus
        like (3, 3, 0) or (21, 21, 14, 14, 0, 0)."""
        return self._cv([self.load_of(n) for n in self._nodes])

    def data_cv(self) -> float:
        """Coefficient of variation of per-node stored bytes."""
        return self._cv([float(self.bytes_of(n)) for n in self._nodes])

    def metrics_with_moves(
        self, moves: list[Move], bandwidth: float = 10e9
    ) -> PlacementMetrics:
        """Metrics of this placement, charging ``moves`` as the plan cost.

        The rebalancing time estimate is the bottleneck node's transfer
        volume (in + out) over ``bandwidth``: migrations run in parallel
        across nodes, so the busiest endpoint dominates (the Pufferscale
        cost model).
        """
        inout: dict[str, int] = {n: 0 for n in self._nodes}
        total = 0
        for move in moves:
            size = move.shard.size_bytes
            total += size
            inout[move.source] = inout.get(move.source, 0) + size
            inout[move.destination] = inout.get(move.destination, 0) + size
        bottleneck = max(inout.values(), default=0)
        return PlacementMetrics(
            load_imbalance=self.load_imbalance(),
            data_imbalance=self.data_imbalance(),
            migration_bytes=total,
            estimated_migration_time=bottleneck / bandwidth,
        )
