"""Pufferscale: rescaling heuristics for elastic data services."""

from .executor import ExecutionReport, PlanExecutor
from .model import Move, Placement, PlacementMetrics, Shard
from .planner import MigrationPlan, Objective, plan_rebalance

__all__ = [
    "Shard",
    "Placement",
    "PlacementMetrics",
    "Move",
    "Objective",
    "MigrationPlan",
    "plan_rebalance",
    "PlanExecutor",
    "ExecutionReport",
]
