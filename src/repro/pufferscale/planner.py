"""Rebalancing heuristics.

Given a current placement and a target node set (which may add or remove
nodes), the planner produces a :class:`MigrationPlan` optimizing a
weighted compromise of the three Pufferscale objectives:

* **load balance** (weight ``alpha``),
* **data balance** (weight ``beta``),
* **rebalancing time** (weight ``gamma`` -- penalizes bytes moved).

The heuristic is deterministic greedy + local improvement: mandatory
moves first (shards on removed nodes), then hill-climbing single-shard
moves while the objective improves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .model import Move, Placement, PlacementMetrics, Shard

__all__ = ["Objective", "MigrationPlan", "plan_rebalance"]


@dataclass(frozen=True)
class Objective:
    """Weights of the three objectives (paper: 'a compromise')."""

    alpha: float = 1.0  # load balance
    beta: float = 1.0  # data balance
    gamma: float = 1.0  # rebalancing time
    bandwidth: float = 10e9  # for the migration-time estimate

    def __post_init__(self) -> None:
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise ValueError("objective weights must be non-negative")
        if self.alpha == self.beta == self.gamma == 0:
            raise ValueError("at least one objective weight must be positive")

    def score(self, placement: Placement, moves: list[Move]) -> float:
        metrics = placement.metrics_with_moves(moves, self.bandwidth)
        return (
            self.alpha * placement.load_cv()
            + self.beta * placement.data_cv()
            + self.gamma * metrics.estimated_migration_time
        )


@dataclass
class MigrationPlan:
    """Ordered moves plus before/after metrics."""

    moves: list[Move]
    before: PlacementMetrics
    after: PlacementMetrics
    final_placement: Placement

    @property
    def total_bytes(self) -> int:
        return sum(m.shard.size_bytes for m in self.moves)

    @property
    def num_moves(self) -> int:
        return len(self.moves)


def plan_rebalance(
    current: Placement,
    target_nodes: list[str],
    objective: Optional[Objective] = None,
    max_iterations: int = 10_000,
) -> MigrationPlan:
    """Compute a migration plan from ``current`` onto ``target_nodes``."""
    objective = objective or Objective()
    if not target_nodes:
        raise ValueError("target node set must be non-empty")
    target_set = set(target_nodes)

    before = current.metrics_with_moves([], objective.bandwidth)
    working = current.copy()
    for node in target_set - set(working.nodes):
        working.add_node(node)
    moves: list[Move] = []

    # Phase 1 -- mandatory evacuation of removed nodes: biggest shards
    # first, each to the node that minimizes the objective.
    removed = [n for n in working.nodes if n not in target_set]
    for node in removed:
        for shard in sorted(
            working.shards_on(node), key=lambda s: (-s.size_bytes, s.shard_id)
        ):
            best = _best_destination(working, shard, node, target_set, objective, moves)
            move = Move(shard=shard, source=node, destination=best)
            working.move(move)
            moves.append(move)
    for node in removed:
        working.drop_node(node)

    # Phase 2 -- hill climbing over single moves *and* pairwise swaps
    # (swaps escape the local optima single moves get stuck in when
    # shard sizes are heterogeneous).
    for _ in range(max_iterations):
        best_delta = 0.0
        best_moves: Optional[list[Move]] = None
        score_now = objective.score(working, moves)

        def consider(candidate_moves: list[Move]) -> None:
            nonlocal best_delta, best_moves
            for m in candidate_moves:
                working.move(m)
            delta = objective.score(working, moves + candidate_moves) - score_now
            for m in reversed(candidate_moves):
                working.move(Move(shard=m.shard, source=m.destination, destination=m.source))
            if delta < best_delta - 1e-12:
                best_delta = delta
                best_moves = candidate_moves

        nodes = working.nodes
        for source in nodes:
            for shard in working.shards_on(source):
                for destination in nodes:
                    if destination == source:
                        continue
                    consider([Move(shard=shard, source=source, destination=destination)])
        for i, node_a in enumerate(nodes):
            for node_b in nodes[i + 1 :]:
                for shard_a in working.shards_on(node_a):
                    for shard_b in working.shards_on(node_b):
                        consider(
                            [
                                Move(shard=shard_a, source=node_a, destination=node_b),
                                Move(shard=shard_b, source=node_b, destination=node_a),
                            ]
                        )
        if best_moves is None:
            break
        for m in best_moves:
            working.move(m)
            moves.append(m)

    after = working.metrics_with_moves(moves, objective.bandwidth)
    return MigrationPlan(moves=moves, before=before, after=after, final_placement=working)


def _best_destination(
    placement: Placement,
    shard: Shard,
    source: str,
    target_set: set,
    objective: Objective,
    existing_moves: list[Move],
) -> str:
    best_node = None
    best_score = None
    for node in sorted(target_set):
        candidate = Move(shard=shard, source=source, destination=node)
        placement.move(candidate)
        score = objective.score(placement, existing_moves + [candidate])
        placement.move(Move(shard=shard, source=node, destination=source))
        if best_score is None or score < best_score:
            best_score = score
            best_node = node
    assert best_node is not None
    return best_node
