"""A unified metrics registry for Mochi components.

The paper's performance-introspection pillar (section 4) gives every
component a *statistics* view of RPC traffic, but each component in this
reproduction also grew ad-hoc live counters (``rpcs_sent`` on Margo,
``pings_sent`` on SSG, ``files_received`` on REMI, ...).  This module
replaces those with one registry per process: components register
**counters**, **gauges** and **histograms** (optionally labelled) into
``margo.metrics``, and the whole process state becomes one deterministic
JSON snapshot -- queryable at run time through Bedrock
(``bedrock_get_metrics``) and dumped alongside the Listing-1 statistics
document on finalize.

Determinism: metrics carry no wall-clock timestamps; snapshots are
keyed and rendered in sorted order so two identical runs produce
byte-identical documents.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional, Sequence

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricError",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets: latency-oriented, microseconds to tens of
#: seconds of *simulated* time (upper bounds, seconds).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class MetricError(RuntimeError):
    """Invalid metric registration or use."""


class _Metric:
    """One time series: a (family, label set) pair."""

    __slots__ = ("family", "label_values")

    def __init__(self, family: "MetricFamily", label_values: tuple[str, ...]) -> None:
        self.family = family
        self.label_values = label_values

    @property
    def name(self) -> str:
        return self.family.name

    @property
    def labels_key(self) -> str:
        return ",".join(
            f"{n}={v}" for n, v in zip(self.family.label_names, self.label_values)
        )


class Counter(_Metric):
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self, family: "MetricFamily", label_values: tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount

    def to_json(self) -> dict[str, Any]:
        return {"value": self._value}


class Gauge(_Metric):
    """A value that can go up and down (in-flight RPCs, pool sizes)."""

    __slots__ = ("_value",)

    def __init__(self, family: "MetricFamily", label_values: tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def to_json(self) -> dict[str, Any]:
        return {"value": self._value}


class Histogram(_Metric):
    """Distribution of observations over fixed buckets.

    Buckets are upper bounds; an implicit ``+inf`` bucket catches the
    tail.  ``count``/``sum``/``min``/``max`` ride along so means and
    ranges survive without the raw samples.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, family: "MetricFamily", label_values: tuple[str, ...]) -> None:
        super().__init__(family, label_values)
        self.buckets: tuple[float, ...] = family.buckets
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"count": self.count, "sum": self.sum}
        if self.count:
            doc["min"] = self.min
            doc["max"] = self.max
        doc["buckets"] = {
            **{f"le:{bound:g}": n for bound, n in zip(self.buckets, self.bucket_counts)},
            "le:+inf": self.bucket_counts[-1],
        }
        return doc


_KIND_CLS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All series sharing one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_series")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(sorted(buckets))
        self._series: dict[tuple[str, ...], _Metric] = {}

    def labels(self, **label_values: str) -> Any:
        """The series for this label set (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(label_values)}"
            )
        key = tuple(str(label_values[n]) for n in self.label_names)
        series = self._series.get(key)
        if series is None:
            series = _KIND_CLS[self.kind](self, key)
            self._series[key] = series
        return series

    @property
    def series(self) -> list[_Metric]:
        return [self._series[k] for k in sorted(self._series)]

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": {s.labels_key: s.to_json() for s in self.series},
        }


class MetricsRegistry:
    """One process's metric namespace.

    Registration is idempotent: asking twice for the same (name, kind,
    labels) returns the same family, so independent components can share
    a series without coordination; a kind or label mismatch is an error.
    For convenience, registering an *unlabelled* metric returns the
    single series directly (``registry.counter("x").inc()``).

    ``enabled=False`` (from ``ObservabilitySpec.metrics``) keeps the
    live objects working -- runtime counters back public attributes --
    but suppresses the exported snapshot.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    def _get_or_create(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Sequence[str],
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, label_names, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise MetricError(
                f"metric {name!r} already registered as a {family.kind}, not a {kind}"
            )
        if family.label_names != tuple(label_names):
            raise MetricError(
                f"metric {name!r} already registered with labels "
                f"{list(family.label_names)}, not {list(label_names)}"
            )
        return family

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Any:
        family = self._get_or_create(name, "counter", help, label_names)
        return family if label_names else family.labels()

    def gauge(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> Any:
        family = self._get_or_create(name, "gauge", help, label_names)
        return family if label_names else family.labels()

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Any:
        family = self._get_or_create(name, "histogram", help, label_names, buckets)
        return family if label_names else family.labels()

    # ------------------------------------------------------------------
    def families(self) -> list[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    def snapshot(self) -> dict[str, Any]:
        """The full registry as a deterministic JSON document."""
        if not self.enabled:
            return {}
        return {f.name: f.to_json() for f in self.families()}

    def dumps(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)
