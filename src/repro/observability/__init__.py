"""End-to-end observability for the Mochi runtime (paper section 4+).

The Listing-1 :class:`~repro.monitoring.StatisticsMonitor` answers
"how long do RPCs of this kind take, on aggregate".  This package adds
the causal, per-request view the dynamic pillars (reconfiguration,
elasticity, resilience) need to act on:

* :class:`Tracer` -- per-RPC **spans** (forward -> wire -> queue ->
  handler -> respond) with trace-context propagation across processes,
  so nested RPCs form a single causal trace tree;
* :class:`MetricsRegistry` -- labelled counters / gauges / histograms
  that margo, bedrock, raft, remi, pufferscale and ssg register into;
* exporters -- Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto) and a deterministic metrics snapshot;
* :class:`ObservabilitySpec` -- the ``"observability"`` section of the
  margo/bedrock JSON configuration that turns it all on;
* :mod:`~repro.observability.health` -- the mochi-health plane (ISSUE
  6): declarative SLOs with burn-rate alerting, phi-accrual failure
  detection over SWIM heartbeats, incident correlation (detection
  latency / MTTR), and the always-on flight recorder;
* :mod:`~repro.observability.xray` -- the mochi-xray causal plane
  (ISSUE 10): per-request critical paths from sampled blocked-on/wakeup
  edges, differential tail-latency attribution per closed profiler
  window, and a Coz-style what-if engine ranking reconfiguration
  actions by predicted p99 improvement.

Everything is deterministic (simulated clocks only): same seed, same
bytes out.
"""

from .exporters import (
    build_trace_tree,
    chrome_trace,
    chrome_trace_profile,
    collect_spans,
    dumps_chrome_trace,
    dumps_chrome_trace_profile,
    dumps_metrics,
    metrics_snapshot,
)
from .profile import (
    PHASES,
    ContinuousProfiler,
    LoadEstimator,
    PhaseAggregate,
    ProfileStore,
    WindowRollup,
    quantile_from_buckets,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from .health import (
    FlightRecorder,
    HealthPlane,
    HealthRegistry,
    Incident,
    IncidentLog,
    PhiAccrualDetector,
    SLOEngine,
    SLOSpec,
)
from .span import Span, SpanContext, child_span_id
from .spec import ObservabilitySpec
from .tracer import OpenSpan, Tracer, current_span_context
from .xray import (
    XrayPlane,
    XrayRecorder,
    attribute_paths,
    critical_chain,
    critical_span_ids,
    what_if,
)

__all__ = [
    "Tracer",
    "current_span_context",
    "Span",
    "SpanContext",
    "child_span_id",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "DEFAULT_BUCKETS",
    "ObservabilitySpec",
    "collect_spans",
    "chrome_trace",
    "chrome_trace_profile",
    "dumps_chrome_trace",
    "dumps_chrome_trace_profile",
    "metrics_snapshot",
    "dumps_metrics",
    "build_trace_tree",
    "PHASES",
    "ContinuousProfiler",
    "LoadEstimator",
    "PhaseAggregate",
    "ProfileStore",
    "WindowRollup",
    "quantile_from_buckets",
    "FlightRecorder",
    "HealthPlane",
    "HealthRegistry",
    "Incident",
    "IncidentLog",
    "PhiAccrualDetector",
    "SLOEngine",
    "SLOSpec",
    "OpenSpan",
    "XrayPlane",
    "XrayRecorder",
    "attribute_paths",
    "critical_chain",
    "critical_span_ids",
    "what_if",
]
