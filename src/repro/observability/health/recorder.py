"""The flight recorder: an always-on bounded ring of structured events.

Aviation-style post-mortem support for the health plane (ISSUE 6): the
recorder keeps the last ``capacity`` structured events -- membership
transitions, migrations, elections, faults, SLO alerts, reconfiguration
decisions -- in a ``deque(maxlen=...)`` ring (the MCH004-sanctioned
bounded pattern), so it can stay attached for the whole life of a
service at fixed memory cost.  On a crash, an SLO breach, or on demand,
:meth:`dump` freezes the ring into a post-mortem timeline document; the
same events export as Chrome-trace instant events for side-by-side
inspection with the tracer's spans.

Determinism: events carry only simulated timestamps and a monotonic
sequence number assigned at record time; the kernel's event order is a
pure function of the seed, so dumps from two identical runs are
byte-identical (tested, including under ``REPRO_SANITIZE=race``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

__all__ = ["FlightRecorder", "EVENT_CATEGORIES", "events_to_chrome"]

#: The event taxonomy.  Keeping it closed makes dumps greppable and the
#: Chrome export's category lanes stable.
EVENT_CATEGORIES = (
    "fault",          # FaultInjector injections (process/node/partition/heal/loss)
    "membership",     # SWIM suspect/alive/dead transitions
    "health",         # health-registry state changes
    "election",       # Raft role transitions
    "recovery",       # REMI/resilience recovery spans
    "migration",      # provider migrations
    "slo",            # SLO alert state transitions
    "reconfiguration",  # controller decisions
    "incident",       # incident open/close
)


class FlightRecorder:
    """A bounded, always-on structured-event ring with dump support."""

    def __init__(self, kernel: Any, capacity: int = 4096, max_dumps: int = 8) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self.events: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: total events ever recorded (``seq`` of the next event); the
        #: difference with ``len(events)`` is how many fell off the ring.
        self.recorded = 0
        #: Post-mortem dumps taken so far (bounded: a crash storm must
        #: not turn the recorder itself into a leak).
        self.dumps: deque[dict[str, Any]] = deque(maxlen=max(1, max_dumps))

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        category: str,
        name: str,
        target: str = "",
        **attrs: Any,
    ) -> dict[str, Any]:
        """Append one event.  ``attrs`` must be JSON-serializable."""
        if category not in EVENT_CATEGORIES:
            raise ValueError(f"unknown flight-recorder category {category!r}")
        event = {
            "seq": self.recorded,
            "time": self.kernel.now,
            "category": category,
            "name": name,
            "target": target,
            "attrs": dict(sorted(attrs.items())),
        }
        self.recorded += 1
        self.events.append(event)
        return event

    @property
    def dropped(self) -> int:
        """Events that have fallen off the far end of the ring."""
        return self.recorded - len(self.events)

    # ------------------------------------------------------------------
    # post-mortem dumps
    # ------------------------------------------------------------------
    def dump(self, reason: str) -> dict[str, Any]:
        """Freeze the ring into a timeline document and retain it."""
        doc = {
            "reason": reason,
            "time": self.kernel.now,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": [dict(e) for e in self.events],
        }
        self.dumps.append(doc)
        return doc

    def to_json(self) -> dict[str, Any]:
        """The live ring (without taking a dump)."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": [dict(e) for e in self.events],
        }

    # ------------------------------------------------------------------
    # Chrome-trace export (instant events on one lane per category)
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict[str, Any]:
        """The live ring as Chrome trace-event JSON."""
        return events_to_chrome(self.events)


def events_to_chrome(events: Any) -> dict[str, Any]:
    """Flight-recorder events as Chrome trace-event JSON
    (``chrome://tracing`` / Perfetto).  Works on the live ring or on the
    ``events`` list of a frozen dump.

    Each event becomes a process-scoped instant event; ``pid`` is the
    event's category lane and ``tid`` its target, so a crash reads as a
    vertical line through the membership/election/recovery lanes.
    """
    trace_events: list[dict[str, Any]] = []
    for event in events:
        trace_events.append(
            {
                "name": f"{event['name']}:{event['target']}" if event["target"]
                else event["name"],
                "cat": event["category"],
                "ph": "i",
                "s": "p",
                "ts": event["time"] * 1e6,
                "pid": event["category"],
                "tid": event["target"] or "-",
                "args": dict(event["attrs"], seq=event["seq"]),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
