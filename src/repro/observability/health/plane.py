"""The cluster health plane: detectors, registry, incidents, recorder.

One :class:`HealthPlane` per :class:`~repro.cluster.Cluster` (opt-in via
``cluster.enable_health()``) ties the pieces of ISSUE 6 together:

* the **flight recorder** receives every fault, membership transition,
  election, migration, recovery, SLO alert, and reconfiguration
  decision (the always-on black box);
* the **health registry** holds the observed per-target state ladder
  (healthy/degraded/suspect/dead) that the reconfiguration controller
  consults before placing shards;
* the **phi-accrual detector** accrues continuous suspicion from SWIM
  heartbeats (pings and acks), shading between SWIM's binary states;
* the **incident log** correlates injected faults with SWIM detection,
  Raft elections, and REMI recoveries into measured detection-latency
  and MTTR numbers.

The plane is *off the RPC path*: it subscribes to callbacks that
components already fire (or fire at most once per protocol round), never
to per-RPC monitor hooks, so enabling it costs nothing on the
request fast path (gated by ``BENCH_HEALTH.json``).

The plane installs itself as ``cluster.health`` and as
``network.health_plane`` -- the network object is reachable from every
Margo instance, which is how the Bedrock ``get_health``/``get_incidents``
introspection RPCs find it without new plumbing.
"""

from __future__ import annotations

from typing import Any, Optional

from ...sim.faults import FaultRecord
from .detector import PhiAccrualDetector
from .incidents import IncidentLog
from .recorder import FlightRecorder
from .registry import HealthRegistry

__all__ = ["HealthPlane"]


class HealthPlane:
    """Cluster-wide failure detection, incidents, and post-mortems."""

    def __init__(
        self,
        cluster: Any,
        recorder_capacity: int = 4096,
        max_incidents: int = 128,
        max_transitions: int = 256,
        phi_threshold: float = 8.0,
        phi_window: int = 32,
        auto_dump: bool = True,
    ) -> None:
        self.cluster = cluster
        self.kernel = cluster.kernel
        self.recorder = FlightRecorder(self.kernel, capacity=recorder_capacity)
        self.registry = HealthRegistry(self.kernel, max_transitions=max_transitions)
        self.incidents = IncidentLog(self.kernel, max_incidents=max_incidents)
        self.detector = PhiAccrualDetector(threshold=phi_threshold, window=phi_window)
        self.auto_dump = auto_dump
        self._sweep_running = False
        # Every registry transition is black-boxed.
        self.registry.on_transition.append(self._on_registry_transition)
        # Ground truth: the chaos controller's injections open incidents.
        cluster.faults.on_fault.append(self.on_fault)
        cluster.health = self
        cluster.network.health_plane = self

    # ------------------------------------------------------------------
    # watch_* -- subscribe to a component's existing callbacks
    # ------------------------------------------------------------------
    def watch_group(self, group: Any) -> None:
        """Subscribe to one SSG group: membership transitions feed the
        registry/incidents, ping traffic feeds the phi detector."""
        group.on_membership_event.append(
            lambda kind, address, g=group: self._on_membership(g, kind, address)
        )
        group.on_heartbeat.append(self.detector.heartbeat)

    def watch_raft(self, node: Any) -> None:
        node.on_role_change.append(
            lambda role, term, n=node: self._on_role_change(n, role, term)
        )

    def watch_resilience(self, manager: Any) -> None:
        manager.on_recovery.append(
            lambda event, m=manager: self._on_recovery(m, event)
        )

    def watch_margo(self, margo: Any) -> None:
        """Subscribe to a process's SLO engine (if it has one)."""
        engine = getattr(margo, "slo_engine", None)
        if engine is not None:
            engine.on_alert.append(
                lambda alert, m=margo: self._on_slo_alert(m, alert)
            )

    def watch_service(self, service: Any) -> None:
        """Watch a whole :class:`DynamicService`: every member's group
        and SLO engine (the common entry point for tests and demos)."""
        for name in sorted(service.processes):
            process = service.processes[name]
            if process.group is not None:
                self.watch_group(process.group)
            self.watch_margo(process.margo)

    # ------------------------------------------------------------------
    # event sinks
    # ------------------------------------------------------------------
    def on_fault(self, record: FaultRecord) -> None:
        """Ground-truth fault injection (satellite: the FaultRecord path
        ends here instead of dead-ending in ``faults.history``)."""
        self.recorder.record("fault", record.kind, record.target)
        if record.kind == "process":
            # Incidents open at injection time; SWIM detection and REMI
            # recovery stamp their latencies against this origin.  The
            # registry is *not* told: it tracks observed state only, so
            # detection latency is honestly measured.
            self.incidents.open("crash", record.target, fault_kind=record.kind)
            if self.auto_dump:
                # The black-box use case: everything up to the crash.
                self.recorder.dump(f"crash:{record.target}")
        elif record.kind in ("partition", "heal", "loss"):
            self.incidents.attach_all("network", {"event": record.kind,
                                                  "detail": record.target})

    def _on_membership(self, group: Any, kind: str, address: str) -> None:
        target = self._process_of(address)
        self.recorder.record(
            "membership", kind, target, group=group.group_name, address=address
        )
        source = f"swim:{group.group_name}"
        if kind == "suspect":
            self.registry.observe(target, "suspect", source)
            self.incidents.note_detection(target, "suspect")
        elif kind == "dead":
            self.registry.observe(target, "dead", source)
            self.incidents.note_detection(target, "dead")
            self.detector.forget(address)
        elif kind == "alive":
            self.registry.observe(target, "healthy", source)

    def _on_role_change(self, node: Any, role: str, term: int) -> None:
        target = node.margo.process.name
        self.recorder.record(
            "election", role, target, group=node.name, term=term
        )
        self.incidents.attach_all(
            "election", {"process": target, "role": role, "term": term}
        )

    def _on_recovery(self, manager: Any, event: Any) -> None:
        self.recorder.record(
            "recovery",
            "recovered",
            event.failed_process,
            replacement=event.replacement_process,
            providers_restored=event.providers_restored,
            duration=event.recovery_duration,
        )
        incident = self.incidents.close(
            event.failed_process,
            "recovered",
            replacement=event.replacement_process,
            providers_restored=event.providers_restored,
        )
        if incident is not None:
            self.recorder.record(
                "incident", "closed", incident.target,
                id=incident.incident_id, mttr=incident.mttr,
            )
        # The replacement is a new, healthy member; watch it like the
        # resilience manager does.
        service = manager.service
        replacement = service.processes.get(event.replacement_process)
        if replacement is not None:
            if replacement.group is not None:
                self.watch_group(replacement.group)
            self.watch_margo(replacement.margo)

    def _on_slo_alert(self, margo: Any, alert: dict[str, Any]) -> None:
        target = margo.process.name
        self.recorder.record(
            "slo", alert["to"], f"{target}:{alert['slo']}",
            previous=alert["from"],
            burn_short=alert["burn_short"],
            burn_long=alert["burn_long"],
        )
        state = alert["to"]
        if state in ("page", "breach"):
            self.registry.observe(target, "degraded", f"slo:{alert['slo']}")
            self.incidents.open(
                "slo", target, slo=alert["slo"], state=state
            )
            if self.auto_dump and state == "breach":
                self.recorder.dump(f"slo:{target}:{alert['slo']}")
        elif state == "ok":
            if self.registry.state_of(target) == "degraded":
                self.registry.observe(target, "healthy", f"slo:{alert['slo']}")
            self.incidents.close(target, "slo_recovered", slo=alert["slo"])

    def _on_registry_transition(self, transition: dict[str, Any]) -> None:
        self.recorder.record(
            "health",
            transition["to"],
            transition["target"],
            previous=transition["from"],
            source=transition["source"],
        )

    def note_migration(self, shard: str, source: str, destination: str,
                       duration: float) -> None:
        """Called by Bedrock after a provider migration completes."""
        self.recorder.record(
            "migration", "migrated", shard,
            source=source, destination=destination, duration=duration,
        )

    def note_decision(self, decision: dict[str, Any]) -> None:
        """Called by the reconfiguration controller after each cycle."""
        self.recorder.record(
            "reconfiguration",
            "rebalance" if decision.get("triggered") else "steady",
            "",
            cycle=decision.get("cycle", 0),
            load_imbalance=decision.get("load_imbalance", 0.0),
            moves=len(decision.get("moves", [])),
            vetoed=len(decision.get("vetoed_nodes", [])),
        )

    # ------------------------------------------------------------------
    # the phi sweep (optional periodic evaluation)
    # ------------------------------------------------------------------
    def evaluate_detector(self) -> dict[str, Any]:
        """One phi sweep: every watched address's suspicion level; the
        registry picks up ``degraded`` (phi past half the threshold) and
        ``suspect`` (past it) shades ahead of SWIM's confirmation."""
        now = self.kernel.now
        snapshot = self.detector.snapshot(now)
        for address in sorted(snapshot):
            info = snapshot[address]
            if info["samples"] < 2:
                continue
            target = self._process_of(address)
            current = self.registry.state_of(target)
            if current == "dead":
                continue
            phi = info["phi"]
            if phi >= self.detector.threshold:
                self.registry.observe(target, "suspect", "phi")
            elif phi >= self.detector.threshold / 2.0:
                if current == "healthy":
                    self.registry.observe(target, "degraded", "phi")
            elif current in ("degraded", "suspect"):
                self.registry.observe(target, "healthy", "phi")
        return snapshot

    def start_sweep(self, period: float) -> None:
        """Schedule a recurring phi sweep every ``period`` sim-seconds."""
        if period <= 0:
            raise ValueError(f"sweep period must be positive, got {period}")
        if self._sweep_running:
            return
        self._sweep_running = True

        def tick() -> None:
            if not self._sweep_running:
                return
            self.evaluate_detector()
            self.kernel.schedule(period, tick)

        self.kernel.schedule(period, tick)

    def stop_sweep(self) -> None:
        self._sweep_running = False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _process_of(self, address: str) -> str:
        try:
            return self.cluster.network.lookup(address).name
        except Exception:
            return address

    def health_doc(self) -> dict[str, Any]:
        """The cluster health snapshot served by ``get_health``."""
        now = self.kernel.now
        return {
            "time": now,
            "states": dict(sorted(self.registry.states.items())),
            "unhealthy": self.registry.unhealthy(),
            "phi": self.detector.snapshot(now),
            "open_incidents": len(self.incidents.open_incidents()),
            "recorded_events": self.recorder.recorded,
        }

    def dump(self, reason: str = "on-demand") -> dict[str, Any]:
        return self.recorder.dump(reason)

    def to_json(self) -> dict[str, Any]:
        return {
            "health": self.health_doc(),
            "registry": self.registry.to_json(),
            "incidents": self.incidents.to_json(),
            "recorder": self.recorder.to_json(),
        }
