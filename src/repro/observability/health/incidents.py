"""Incidents: faults correlated with detection and recovery.

An :class:`Incident` is the health plane's unit of post-hoc analysis:
it is opened when a fault is injected (or an SLO pages), accumulates the
correlated observations -- SWIM suspicion/confirmation, Raft role
changes, REMI recovery spans -- and closes when the service has healed.
The two latencies the paper's resilience story needs fall out directly:

* **detection latency** -- fault injection to SWIM's confirmed-dead
  transition (suspicion latency is kept separately);
* **MTTR** -- fault injection to the resilience manager's recovery
  completing (replacement provisioned and providers restored).

Incident ids are dense (``INC-1``, ``INC-2``, ...) in open order; the
kernel's event order is seed-pure, so the incident log of two identical
runs is byte-identical -- the E2E acceptance test of ISSUE 6.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

__all__ = ["Incident", "IncidentLog"]

#: Correlated events per incident are capped: a flapping cluster must
#: not grow one incident without bound.  Overflow is counted.
MAX_EVENTS_PER_INCIDENT = 64


class Incident:
    """One tracked failure, from injection (or breach) to recovery."""

    __slots__ = (
        "incident_id", "kind", "target", "opened_at", "attrs", "events",
        "events_dropped", "suspect_latency", "detection_latency",
        "closed_at", "mttr", "resolution",
    )

    def __init__(
        self,
        incident_id: str,
        kind: str,
        target: str,
        opened_at: float,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        self.incident_id = incident_id
        self.kind = kind  # "crash" | "slo"
        self.target = target
        self.opened_at = opened_at
        self.attrs = dict(sorted((attrs or {}).items()))
        self.events: list[dict[str, Any]] = []
        self.events_dropped = 0
        #: fault -> first SWIM *suspect* observation of the target.
        self.suspect_latency: Optional[float] = None
        #: fault -> SWIM *dead* confirmation of the target.
        self.detection_latency: Optional[float] = None
        self.closed_at: Optional[float] = None
        self.mttr: Optional[float] = None
        self.resolution: Optional[str] = None

    @property
    def open(self) -> bool:
        return self.closed_at is None

    def attach(self, time: float, kind: str, detail: dict[str, Any]) -> None:
        if len(self.events) >= MAX_EVENTS_PER_INCIDENT:
            self.events_dropped += 1
            return
        self.events.append({"time": time, "kind": kind, **dict(sorted(detail.items()))})

    def to_json(self) -> dict[str, Any]:
        return {
            "id": self.incident_id,
            "kind": self.kind,
            "target": self.target,
            "status": "open" if self.open else "closed",
            "opened_at": self.opened_at,
            "attrs": self.attrs,
            "suspect_latency": self.suspect_latency,
            "detection_latency": self.detection_latency,
            "closed_at": self.closed_at,
            "mttr": self.mttr,
            "resolution": self.resolution,
            "events": [dict(e) for e in self.events],
            "events_dropped": self.events_dropped,
        }


class IncidentLog:
    """Bounded store of incidents with open/close bookkeeping."""

    def __init__(self, kernel: Any, max_incidents: int = 128) -> None:
        self.kernel = kernel
        self.incidents: deque[Incident] = deque(maxlen=max(1, max_incidents))
        self._opened = 0
        #: open incidents by target (one open incident per target: a
        #: second fault on the same target folds into the first).
        self._open_by_target: dict[str, Incident] = {}
        self.on_open: list[Callable[[Incident], None]] = []
        self.on_close: list[Callable[[Incident], None]] = []

    # ------------------------------------------------------------------
    def open(
        self, kind: str, target: str, **attrs: Any
    ) -> Incident:
        existing = self._open_by_target.get(target)
        if existing is not None:
            existing.attach(self.kernel.now, "refault", {"kind": kind, **attrs})
            return existing
        self._opened += 1
        incident = Incident(
            f"INC-{self._opened}", kind, target, self.kernel.now, attrs
        )
        evicted = self.incidents[0] if len(self.incidents) == self.incidents.maxlen else None
        self.incidents.append(incident)
        if evicted is not None and evicted.open:
            self._open_by_target.pop(evicted.target, None)
        self._open_by_target[target] = incident
        for callback in list(self.on_open):
            callback(incident)
        return incident

    def open_incident_for(self, target: str) -> Optional[Incident]:
        return self._open_by_target.get(target)

    def open_incidents(self) -> list[Incident]:
        return [i for i in self.incidents if i.open]

    # ------------------------------------------------------------------
    def note_detection(self, target: str, stage: str) -> None:
        """Record a SWIM detection stage ("suspect" or "dead") for the
        target's open incident, stamping first-observation latencies."""
        incident = self._open_by_target.get(target)
        if incident is None:
            return
        now = self.kernel.now
        latency = now - incident.opened_at
        if stage == "suspect" and incident.suspect_latency is None:
            incident.suspect_latency = latency
            incident.attach(now, "detection", {"stage": "suspect", "latency": latency})
        elif stage == "dead" and incident.detection_latency is None:
            incident.detection_latency = latency
            incident.attach(now, "detection", {"stage": "dead", "latency": latency})

    def attach_all(self, kind: str, detail: dict[str, Any]) -> None:
        """Attach a cluster-scoped event (election, partition) to every
        open incident -- correlated context, not per-target evidence."""
        now = self.kernel.now
        for incident in self.open_incidents():
            incident.attach(now, kind, detail)

    def close(self, target: str, resolution: str, **attrs: Any) -> Optional[Incident]:
        incident = self._open_by_target.pop(target, None)
        if incident is None:
            return None
        now = self.kernel.now
        incident.closed_at = now
        incident.mttr = now - incident.opened_at
        incident.resolution = resolution
        if attrs:
            incident.attach(now, "resolution", attrs)
        for callback in list(self.on_close):
            callback(incident)
        return incident

    # ------------------------------------------------------------------
    def to_json(self, last: Optional[int] = None) -> dict[str, Any]:
        incidents = [i.to_json() for i in self.incidents]
        if last is not None:
            if last < 0:
                raise ValueError(f"'last' must be >= 0, got {last}")
            incidents = incidents[-last:] if last else []
        return {
            "opened": self._opened,
            "open": len(self._open_by_target),
            "incidents": incidents,
        }
