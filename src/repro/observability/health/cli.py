"""The mochi-health command line.

Installed as ``repro-health`` (see ``setup.py``), also runnable as
``python -m repro.observability.health``.  Runs one of the canned
deterministic incident scenarios and renders what the health plane
observed: health states, incidents with detection latency and MTTR, SLO
alerts, and the flight-recorder timeline.  Exit status: 0 on success,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

__all__ = ["main"]


def _render_text(doc: dict[str, Any], events: int) -> str:
    lines = [f"mochi-health scenario (seed={doc['seed']})"]
    health = doc["health"]
    lines.append(
        f"  t={health['time']:.3f}s  open incidents: {health['open_incidents']}"
        f"  recorded events: {health['recorded_events']}"
    )
    if health["states"]:
        lines.append("  health states:")
        for target in sorted(health["states"]):
            lines.append(f"    {target:<16} {health['states'][target]}")
    incidents = doc["incidents"]["incidents"]
    lines.append(f"  incidents ({len(incidents)}):")
    for incident in incidents:
        lines.append(
            f"    {incident['id']} [{incident['status']}] {incident['kind']}: "
            f"{incident['target']} opened@t={incident['opened_at']:.3f}s"
        )
        if incident["suspect_latency"] is not None:
            lines.append(f"      suspected after {incident['suspect_latency']:.3f}s")
        if incident["detection_latency"] is not None:
            lines.append(f"      detected after {incident['detection_latency']:.3f}s")
        if incident["mttr"] is not None:
            lines.append(
                f"      recovered after {incident['mttr']:.3f}s "
                f"({incident['resolution']})"
            )
    for alert in doc.get("alerts", []):
        lines.append(
            f"  slo alert [{alert['process']}] {alert['slo']}: "
            f"{alert['from']} -> {alert['to']} "
            f"(burn_short={alert['burn_short']:.1f})"
        )
    for recovery in doc.get("recoveries", []):
        lines.append(
            f"  recovery: {recovery['failed']} -> {recovery['replacement']} "
            f"in {recovery['duration']:.3f}s"
        )
    dump = doc.get("dump")
    if dump is not None and events:
        tail = dump["events"][-events:]
        lines.append(
            f"  flight recorder (last {len(tail)} of {dump['recorded']}):"
        )
        for event in tail:
            lines.append(
                f"    t={event['time']:.3f}s [{event['category']}] "
                f"{event['name']}: {event['target']}"
            )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-health",
        description=(
            "mochi-health demonstrator: runs a deterministic incident "
            "scenario (a node crash detected by SWIM and healed by the "
            "resilience manager, or an SLO budget burn to breach) and "
            "reports health states, incidents, detection latency, MTTR, "
            "and the flight-recorder timeline."
        ),
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        choices=("crash", "slo"),
        default="crash",
        help="which incident story to run (default: crash)",
    )
    parser.add_argument(
        "--seed", type=int, default=42, metavar="N",
        help="cluster seed (default: 42); identical seeds give "
             "byte-identical output",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--events", type=int, default=10, metavar="N",
        help="flight-recorder events shown in text output (default: 10)",
    )
    parser.add_argument(
        "--chrome", metavar="PATH",
        help="also write the flight-recorder timeline as Chrome "
             "trace-event JSON to PATH",
    )
    args = parser.parse_args(argv)

    # Imported lazily: the scenarios pull in the full runtime stack.
    from .scenarios import SCENARIOS

    doc = SCENARIOS[args.scenario](seed=args.seed)

    if args.chrome:
        from .recorder import events_to_chrome

        dump = doc.get("dump")
        events = dump["events"] if dump is not None else []
        try:
            with open(args.chrome, "w", encoding="utf-8") as handle:
                json.dump(events_to_chrome(events), handle,
                          indent=2, sort_keys=True)
        except OSError as err:
            print(f"repro-health: cannot write {args.chrome}: {err}",
                  file=sys.stderr)
            return 2

    if args.format == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(_render_text(doc, events=args.events))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
