"""Declarative SLOs with rolling error budgets and burn-rate alerting.

An SLO is declared in ``ObservabilitySpec`` (the ``slos`` list) and
evaluated against the continuous profiler's closed windows -- the same
measured data the reconfiguration controller consumes, so "is the
service meeting its objectives" and "should we reconfigure" share one
source of truth.  Three objective kinds::

    {"name": "kv-p99",   "objective": "latency_p99",
     "target": "yokan_put/1", "threshold": 0.002}
    {"name": "kv-avail", "objective": "availability",
     "target": "yokan:1", "threshold": 0.999}
    {"name": "kv-err",   "objective": "error_rate",
     "target": "yokan:1", "threshold": 0.01}

``target`` selects profiler series: ``"<rpc_name>/<provider_id>"``
decomposition keys for latency objectives, ``"<component>:<id>"``
provider keys for availability/error-rate; a trailing ``*`` is a prefix
wildcard.  Each closed window is reduced to a **burn rate** -- budget
consumed per window, normalized so 1.0 means exactly on budget:

* ``latency_p99``  -- a window is bad iff p99(total) > threshold; burn
  = bad / budget, with ``budget`` the tolerated bad-window fraction;
* ``error_rate``   -- burn = measured rate / threshold;
* ``availability`` -- burn = (1 - measured availability) / (1 - threshold).

Windows with no matching traffic contribute nothing (no traffic is not
an outage; SWIM owns liveness).  Alerting is the multi-window burn-rate
scheme of the Google SRE workbook, discretized to profiler windows:

* **page**   -- burn over the short window (``short_windows``) and over
  a quarter of the budget window both >= ``fast_burn``;
* **warn**   -- burn over the full budget window >= ``slow_burn``;
* **breach** -- the rolling budget is exhausted (mean burn >= 1).

State transitions are recorded in a bounded ring and pushed to
subscribers (the health plane: flight-recorder events, degraded health
states, SLO incidents).  Everything is pure arithmetic over closed
windows, so two identical seeded runs alert at identical times.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

__all__ = ["SLOSpec", "SLOEngine", "OBJECTIVES"]

OBJECTIVES = ("latency_p99", "availability", "error_rate")

#: severity order of alert states, worst-last.
ALERT_STATES = ("ok", "warn", "page", "breach")


class SLOSpec:
    """One validated objective declaration (parsed from JSON)."""

    __slots__ = (
        "name", "objective", "target", "threshold", "window",
        "budget", "short_windows", "fast_burn", "slow_burn",
    )

    _KNOWN_KEYS = {
        "name", "objective", "target", "threshold", "window",
        "budget", "short_windows", "fast_burn", "slow_burn",
    }

    def __init__(
        self,
        name: str,
        objective: str,
        target: str,
        threshold: float,
        window: int = 12,
        budget: float = 0.1,
        short_windows: int = 3,
        fast_burn: float = 6.0,
        slow_burn: float = 2.0,
    ) -> None:
        if not name:
            raise ValueError("SLO needs a non-empty 'name'")
        if objective not in OBJECTIVES:
            raise ValueError(
                f"SLO {name!r}: unknown objective {objective!r} "
                f"(expected one of {sorted(OBJECTIVES)})"
            )
        if not target:
            raise ValueError(f"SLO {name!r} needs a non-empty 'target'")
        threshold = float(threshold)
        if objective == "availability":
            if not 0.0 < threshold < 1.0:
                raise ValueError(
                    f"SLO {name!r}: availability threshold must be in (0, 1), "
                    f"got {threshold}"
                )
        elif objective == "error_rate":
            if not 0.0 < threshold <= 1.0:
                raise ValueError(
                    f"SLO {name!r}: error_rate threshold must be in (0, 1], "
                    f"got {threshold}"
                )
        elif threshold <= 0:
            raise ValueError(
                f"SLO {name!r}: latency threshold must be positive, got {threshold}"
            )
        window = int(window)
        short_windows = int(short_windows)
        if window < 1:
            raise ValueError(f"SLO {name!r}: window must be >= 1, got {window}")
        if not 1 <= short_windows <= window:
            raise ValueError(
                f"SLO {name!r}: short_windows must be in [1, window], "
                f"got {short_windows}"
            )
        budget = float(budget)
        if not 0.0 < budget <= 1.0:
            raise ValueError(
                f"SLO {name!r}: budget must be in (0, 1], got {budget}"
            )
        fast_burn = float(fast_burn)
        slow_burn = float(slow_burn)
        if fast_burn < slow_burn or slow_burn <= 0:
            raise ValueError(
                f"SLO {name!r}: need fast_burn >= slow_burn > 0, "
                f"got {fast_burn} / {slow_burn}"
            )
        self.name = name
        self.objective = objective
        self.target = target
        self.threshold = threshold
        self.window = window
        self.budget = budget
        self.short_windows = short_windows
        self.fast_burn = fast_burn
        self.slow_burn = slow_burn

    def _astuple(self) -> tuple:
        return tuple(getattr(self, slot) for slot in self.__slots__)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, SLOSpec):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"SLOSpec(name={self.name!r}, objective={self.objective!r}, "
            f"target={self.target!r}, threshold={self.threshold!r})"
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_json(cls, doc: Any) -> "SLOSpec":
        if not isinstance(doc, dict):
            raise ValueError(f"an SLO must be an object, got {type(doc).__name__}")
        unknown = set(doc) - cls._KNOWN_KEYS
        if unknown:
            raise ValueError(
                f"SLO {doc.get('name', '?')!r}: unknown keys {sorted(unknown)}"
            )
        for key in ("name", "objective", "target", "threshold"):
            if key not in doc:
                raise ValueError(f"an SLO needs {key!r} (got {sorted(doc)})")
        return cls(**doc)

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "name": self.name,
            "objective": self.objective,
            "target": self.target,
            "threshold": self.threshold,
        }
        # Tuning keys are emitted only off-default (minimal round-trips,
        # same discipline as ObservabilitySpec.to_json).
        if self.window != 12:
            doc["window"] = self.window
        if self.budget != 0.1:
            doc["budget"] = self.budget
        if self.short_windows != 3:
            doc["short_windows"] = self.short_windows
        if self.fast_burn != 6.0:
            doc["fast_burn"] = self.fast_burn
        if self.slow_burn != 2.0:
            doc["slow_burn"] = self.slow_burn
        return doc

    # ------------------------------------------------------------------
    def matches(self, key: str) -> bool:
        if self.target.endswith("*"):
            return key.startswith(self.target[:-1])
        return key == self.target

    def window_burn(self, window_doc: dict[str, Any]) -> Optional[float]:
        """Reduce one closed profiler window to a burn rate, or None if
        the window saw no matching traffic."""
        if self.objective == "latency_p99":
            worst: Optional[float] = None
            for key, phases in window_doc.get("rpc", {}).items():
                if not self.matches(key):
                    continue
                total = phases.get("total")
                if total is not None and total["count"] > 0:
                    p99 = total["p99"]
                    worst = p99 if worst is None else max(worst, p99)
            if worst is None:
                return None
            return (1.0 if worst > self.threshold else 0.0) / self.budget
        requests = 0
        errors = 0
        for key, entry in window_doc.get("providers", {}).items():
            if not self.matches(key):
                continue
            requests += int(entry.get("requests", 0))
            errors += int(entry.get("errors", 0))
        if requests == 0:
            return None
        rate = errors / requests
        if self.objective == "error_rate":
            return rate / self.threshold
        return rate / (1.0 - self.threshold)  # availability


class _SLOState:
    """Rolling evaluation state for one objective."""

    __slots__ = ("spec", "burns", "windows_seen", "state")

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        self.burns: deque[float] = deque(maxlen=spec.window)
        self.windows_seen = 0
        self.state = "ok"

    @staticmethod
    def _mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def evaluate(self) -> dict[str, Any]:
        spec = self.spec
        burns = list(self.burns)
        burn_long = self._mean(burns)
        burn_short = self._mean(burns[-spec.short_windows:])
        mid = max(spec.short_windows, spec.window // 4)
        burn_mid = self._mean(burns[-mid:])
        budget_remaining = 1.0 - burn_long
        if burns and burn_long >= 1.0:
            state = "breach"
        elif burns and burn_short >= spec.fast_burn and burn_mid >= spec.fast_burn:
            state = "page"
        elif burns and burn_long >= spec.slow_burn:
            state = "warn"
        else:
            state = "ok"
        return {
            "slo": spec.name,
            "objective": spec.objective,
            "target": spec.target,
            "threshold": spec.threshold,
            "state": state,
            "burn_short": burn_short,
            "burn_long": burn_long,
            "budget_remaining": budget_remaining,
            "windows_evaluated": len(burns),
            "windows_seen": self.windows_seen,
        }


class SLOEngine:
    """Evaluates a process's SLOs at every profiler window boundary."""

    def __init__(self, margo: Any, specs: list[SLOSpec], max_alerts: int = 64) -> None:
        self.margo = margo
        self.kernel = margo.kernel
        self.specs = list(specs)
        self._states = {spec.name: _SLOState(spec) for spec in self.specs}
        #: alert-state transition ring (bounded; see MCH004).
        self.alerts: deque[dict[str, Any]] = deque(maxlen=max(1, max_alerts))
        #: subscribers, called with each alert transition document.
        self.on_alert: list[Callable[[dict[str, Any]], None]] = []

    # ------------------------------------------------------------------
    def observe_window(self, window_doc: dict[str, Any]) -> None:
        """Fed by the profiler at every window close."""
        for spec in self.specs:
            state = self._states[spec.name]
            burn = spec.window_burn(window_doc)
            if burn is None:
                continue
            state.windows_seen += 1
            state.burns.append(burn)
            status = state.evaluate()
            if status["state"] != state.state:
                alert = {
                    "time": self.kernel.now,
                    "process": self.margo.process.name,
                    "slo": spec.name,
                    "from": state.state,
                    "to": status["state"],
                    "burn_short": status["burn_short"],
                    "burn_long": status["burn_long"],
                    "budget_remaining": status["budget_remaining"],
                }
                state.state = status["state"]
                self.alerts.append(alert)
                for callback in list(self.on_alert):
                    callback(alert)

    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        return {
            "process": self.margo.process.name,
            "time": self.kernel.now,
            "slos": [self._states[s.name].evaluate() for s in self.specs],
            "alerts": [dict(a) for a in self.alerts],
        }

    def worst_state(self) -> str:
        worst = "ok"
        for state in self._states.values():
            if ALERT_STATES.index(state.state) > ALERT_STATES.index(worst):
                worst = state.state
        return worst
