"""The health registry: one authoritative state per target.

A target is a process name (the unit SWIM watches and REMI recovers);
its state is one of the ordered ladder

    healthy < degraded < suspect < dead

``degraded`` is the SLO engine's contribution (objectives burning but
the process responsive), ``suspect``/``dead`` come from the failure
detectors.  The registry keeps the current state map plus a bounded
transition log, and notifies subscribers on every change -- this is what
the :class:`~repro.core.service.ReconfigurationController` consults
before migrating shards onto a node (never onto suspect/dead).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

__all__ = ["HealthRegistry", "HEALTH_STATES"]

#: The state ladder, worst-last.  Order matters: ``severity`` compares
#: by index, and reports sort targets by (severity, name).
HEALTH_STATES = ("healthy", "degraded", "suspect", "dead")


class HealthRegistry:
    """Current health state per target + bounded transition history."""

    def __init__(self, kernel: Any, max_transitions: int = 256) -> None:
        self.kernel = kernel
        self.states: dict[str, str] = {}
        self.transitions: deque[dict[str, Any]] = deque(maxlen=max(1, max_transitions))
        #: called with each transition document after it is recorded.
        self.on_transition: list[Callable[[dict[str, Any]], None]] = []

    # ------------------------------------------------------------------
    @staticmethod
    def severity(state: str) -> int:
        return HEALTH_STATES.index(state)

    def state_of(self, target: str) -> str:
        """Unknown targets are healthy: absence of evidence is the
        steady state, exactly as in SWIM's membership table."""
        return self.states.get(target, "healthy")

    def is_placeable(self, target: str) -> bool:
        """May the reconfiguration controller migrate shards *onto*
        this target?  Degraded is allowed (the move may be the cure);
        suspect and dead are not."""
        return self.severity(self.state_of(target)) < self.severity("suspect")

    # ------------------------------------------------------------------
    def observe(self, target: str, state: str, source: str) -> bool:
        """Record an observation; returns True if the state changed."""
        if state not in HEALTH_STATES:
            raise ValueError(f"unknown health state {state!r}")
        previous = self.state_of(target)
        if previous == state:
            return False
        self.states[target] = state
        transition = {
            "time": self.kernel.now,
            "target": target,
            "from": previous,
            "to": state,
            "source": source,
        }
        self.transitions.append(transition)
        for callback in list(self.on_transition):
            callback(transition)
        return True

    def forget(self, target: str) -> None:
        self.states.pop(target, None)

    # ------------------------------------------------------------------
    def unhealthy(self) -> dict[str, str]:
        """Targets not currently healthy (sorted for determinism)."""
        return {
            target: state
            for target, state in sorted(self.states.items())
            if state != "healthy"
        }

    def to_json(self) -> dict[str, Any]:
        return {
            "states": dict(sorted(self.states.items())),
            "transitions": [dict(t) for t in self.transitions],
        }
