"""mochi-health: SLO engine, failure-detection health plane, and the
always-on flight recorder (ISSUE 6).

Entry points:

* ``cluster.enable_health()`` -- attach a :class:`HealthPlane` to a
  cluster; then ``plane.watch_service(service)`` (or ``watch_group`` /
  ``watch_raft`` / ``watch_resilience`` individually).
* ``ObservabilitySpec.slos`` -- declarative objectives evaluated by a
  per-process :class:`SLOEngine` against profiler windows.
* Bedrock ``get_health`` / ``get_incidents`` / ``get_slo_status`` RPCs,
  ``tools.health_report`` / ``tools.fault_report``, and the
  ``repro-health`` CLI.
"""

from .detector import PhiAccrualDetector
from .incidents import Incident, IncidentLog
from .plane import HealthPlane
from .recorder import EVENT_CATEGORIES, FlightRecorder
from .registry import HEALTH_STATES, HealthRegistry
from .slo import OBJECTIVES, SLOEngine, SLOSpec

__all__ = [
    "EVENT_CATEGORIES",
    "FlightRecorder",
    "HEALTH_STATES",
    "HealthPlane",
    "HealthRegistry",
    "Incident",
    "IncidentLog",
    "OBJECTIVES",
    "PhiAccrualDetector",
    "SLOEngine",
    "SLOSpec",
]
