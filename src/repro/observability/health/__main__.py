"""``python -m repro.observability.health`` -> the repro-health CLI."""

import sys

from .cli import main

sys.exit(main())
