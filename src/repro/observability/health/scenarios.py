"""Canned incident scenarios for ``repro-health`` and the E2E tests.

Two deterministic stories, both returning a single sorted-key document
(identical seeds produce byte-identical JSON -- the ISSUE 6 acceptance
property):

* :func:`run_crash_scenario` -- a replicated KV service (SSG/SWIM
  membership, a Raft group, REMI-backed resilience) loses a node
  mid-run; SWIM detects the death, Raft fails over, the resilience
  manager provisions a spare, and the incident log measures detection
  latency and MTTR.
* :func:`run_slo_scenario` -- a service with a deliberately
  unachievable latency objective burns through its error budget; the
  SLO engine walks ok -> page/warn -> breach and the flight recorder
  dumps on breach.

Imports of the runtime stack are deferred into the functions: the
health package is imported by :mod:`repro.cluster`, so importing the
cluster here at module scope would be circular.
"""

from __future__ import annotations

from typing import Any

__all__ = ["run_crash_scenario", "run_slo_scenario", "SCENARIOS"]

#: Objectives used by both scenarios ("yokan_put/1" is the profiler's
#: decomposition key for the put RPC of provider id 1; "yokan:1" the
#: provider traffic key).
KV_SLOS: list[dict[str, Any]] = [
    {"name": "kv-p99", "objective": "latency_p99",
     "target": "yokan_put/1", "threshold": 0.05,
     "window": 8, "short_windows": 2},
    {"name": "kv-err", "objective": "error_rate",
     "target": "yokan:*", "threshold": 0.05,
     "window": 8, "short_windows": 2},
]


def _kv_process_spec(name: str, node: str, slos: list[dict[str, Any]],
                     profile_window: float, threshold: float) -> Any:
    from ...core import ProcessSpec

    slo_docs = [dict(s) for s in slos]
    for doc in slo_docs:
        if doc["objective"] == "latency_p99":
            doc["threshold"] = threshold
    return ProcessSpec(
        name=name,
        node=node,
        config={
            "libraries": {"yokan": "libyokan.so", "remi": "libremi.so"},
            "providers": [
                {"name": f"remi-{name}", "type": "remi", "provider_id": 0},
                {"name": f"db-{name}", "type": "yokan", "provider_id": 1,
                 "config": {"database": {"type": "persistent"}}},
            ],
            "margo": {
                "observability": {
                    "profiling": True,
                    "profile_window": profile_window,
                    "slos": slo_docs,
                },
            },
        },
    )


def _build_service(cluster: Any, n: int, slos: list[dict[str, Any]],
                   profile_window: float, latency_threshold: float) -> Any:
    from ...core import DynamicService, ServiceSpec
    from ...ssg import SwimConfig
    from ...storage import ParallelFileSystem

    spec = ServiceSpec(
        name="kv",
        processes=[
            _kv_process_spec(f"kv{i}", f"n{i}", slos, profile_window,
                             latency_threshold)
            for i in range(n)
        ],
        group="kv-g",
        swim=SwimConfig(period=0.5, ping_timeout=0.15, suspicion_timeout=2.0),
    )
    return DynamicService.deploy(cluster, spec, pfs=ParallelFileSystem())


def _spawn_writers(cluster: Any, service: Any, count: int,
                   interval: float) -> None:
    """Each member writes to the next member's database, so both the
    client-side latency decomposition ("total") and the server-side
    provider traffic land in profiled processes."""
    from ...margo.ult import UltSleep
    from ...yokan import YokanClient

    names = sorted(service.processes)
    for i, name in enumerate(names):
        client_margo = service.processes[name].margo
        target = service.processes[names[(i + 1) % len(names)]].address
        db = YokanClient(client_margo).make_handle(target, 1)

        def writer(db=db, prefix=name):
            for j in range(count):
                try:
                    yield from db.put(f"{prefix}-k{j}", f"v{j}")
                except Exception:
                    return
                yield UltSleep(interval)

        cluster.spawn(client_margo, writer())


def run_crash_scenario(seed: int = 42, kill_at: float = 6.0,
                       horizon: float = 45.0) -> dict[str, Any]:
    """Kill the node under ``kv1`` mid-run and let the stack react."""
    from ...cluster import Cluster
    from ...core import ResilienceManager
    from ...raft import KVStateMachine, RaftConfig, RaftNode
    from ...yokan import MapBackend

    cluster = Cluster(seed=seed)
    service = _build_service(
        cluster, n=3, slos=KV_SLOS, profile_window=0.5,
        latency_threshold=0.05,
    )
    health = cluster.enable_health()
    health.watch_service(service)
    health.start_sweep(0.5)

    # A Raft group co-hosted on the service processes, so the victim's
    # death also forces a leader election the incident log correlates.
    margos = [service.processes[f"kv{i}"].margo for i in range(3)]
    peers = [m.address for m in margos]
    raft_config = RaftConfig(
        heartbeat_interval=0.05,
        election_timeout_min=0.15,
        election_timeout_max=0.3,
        rpc_timeout=0.06,
    )
    for i, margo in enumerate(margos):
        node = RaftNode(
            margo, f"raft{i}", provider_id=5,
            state_machine=KVStateMachine(MapBackend()),
            peers=peers, rng=cluster.randomness.stream(f"raft:{i}"),
            config=raft_config,
        )
        health.watch_raft(node)

    spares = ["spare0", "spare1"]
    manager = ResilienceManager(
        service, checkpoint_interval=1.5,
        allocate_node=lambda: spares.pop(0) if spares else None,
    )
    manager.start()
    health.watch_resilience(manager)

    _spawn_writers(cluster, service, count=250, interval=0.05)
    cluster.faults.kill_node_at(kill_at, cluster.network.nodes["n1"])
    cluster.run(until=horizon)
    manager.stop()
    health.stop_sweep()

    return {
        "seed": seed,
        "health": health.health_doc(),
        "incidents": health.incidents.to_json(),
        "dump": health.dump("scenario-end"),
        "recoveries": [
            {"failed": r.failed_process, "replacement": r.replacement_process,
             "duration": r.recovery_duration}
            for r in manager.recoveries
        ],
    }


def run_slo_scenario(seed: int = 42, horizon: float = 20.0) -> dict[str, Any]:
    """An impossible latency objective: the budget burns to breach."""
    from ...cluster import Cluster

    cluster = Cluster(seed=seed)
    # A threshold of 0 seconds is unachievable: every window with put
    # traffic is a bad window, burning 1/budget per window.
    service = _build_service(
        cluster, n=2, slos=KV_SLOS, profile_window=0.5,
        latency_threshold=1e-9,
    )
    health = cluster.enable_health()
    health.watch_service(service)
    _spawn_writers(cluster, service, count=300, interval=0.05)
    cluster.run(until=horizon)

    alerts: list[dict[str, Any]] = []
    slo_status: dict[str, Any] = {}
    for name in sorted(cluster.margos):
        engine = cluster.margos[name].slo_engine
        if engine is None:
            continue
        status = engine.status()
        slo_status[name] = status["slos"]
        alerts.extend(status["alerts"])
    return {
        "seed": seed,
        "health": health.health_doc(),
        "incidents": health.incidents.to_json(),
        "slo_status": slo_status,
        "alerts": alerts,
        "dump": health.dump("scenario-end"),
        "dumps": [d["reason"] for d in health.recorder.dumps],
    }


SCENARIOS = {
    "crash": run_crash_scenario,
    "slo": run_slo_scenario,
}
