"""Phi-accrual failure detection over SWIM heartbeats.

SWIM (repro.ssg) gives a *binary* verdict -- alive, suspect, dead --
after fixed timeouts.  The phi-accrual detector (Hayashibara et al.,
"The phi accrual failure detector", SRDS'04) instead outputs a
continuous suspicion level phi that grows with the time since the last
heartbeat, scaled by the *observed* inter-arrival distribution; the
health plane turns phi into the ``degraded``/``suspect`` shades between
SWIM's all-or-nothing states.

We use the exponential-distribution variant (as popularized by Akka):
with mean observed inter-arrival ``m``, the probability that a
heartbeat is still outstanding ``t`` after the last one is
``exp(-t/m)``, so::

    phi(t) = -log10(P_later(t)) = t / (m * ln 10)

phi = 1 means a 10% chance the silence is ordinary jitter, phi = 8 a
1-in-10^8 chance.  The estimator is a bounded per-address window of
inter-arrival samples -- fixed memory, pure arithmetic over simulated
timestamps, so identical seeded runs produce byte-identical phi
snapshots.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any

__all__ = ["PhiAccrualDetector"]

_LN10 = math.log(10.0)


class PhiAccrualDetector:
    """Continuous suspicion levels from heartbeat inter-arrival times."""

    def __init__(
        self,
        threshold: float = 8.0,
        window: int = 32,
        min_mean_interval: float = 1e-3,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.threshold = threshold
        self.window = window
        self.min_mean_interval = min_mean_interval
        self._last_beat: dict[str, float] = {}
        self._intervals: dict[str, deque[float]] = {}

    # ------------------------------------------------------------------
    def heartbeat(self, address: str, now: float) -> None:
        """Record one heartbeat (a SWIM ping ack, or an incoming ping)."""
        last = self._last_beat.get(address)
        if last is not None and now > last:
            ring = self._intervals.get(address)
            if ring is None:
                ring = self._intervals[address] = deque(maxlen=self.window)
            ring.append(now - last)
        self._last_beat[address] = now

    def forget(self, address: str) -> None:
        """Drop an address (confirmed dead / left): its silence is no
        longer evidence of anything."""
        self._last_beat.pop(address, None)
        self._intervals.pop(address, None)

    # ------------------------------------------------------------------
    def mean_interval(self, address: str) -> float:
        ring = self._intervals.get(address)
        if not ring:
            return 0.0
        return sum(ring) / len(ring)

    def phi(self, address: str, now: float) -> float:
        """Current suspicion level; 0.0 until two heartbeats were seen."""
        last = self._last_beat.get(address)
        mean = self.mean_interval(address)
        if last is None or mean <= 0.0:
            return 0.0
        elapsed = max(0.0, now - last)
        return elapsed / (max(mean, self.min_mean_interval) * _LN10)

    def is_suspect(self, address: str, now: float) -> bool:
        return self.phi(address, now) >= self.threshold

    # ------------------------------------------------------------------
    def snapshot(self, now: float) -> dict[str, Any]:
        """Per-address phi values (sorted keys: deterministic JSON)."""
        return {
            address: {
                "phi": self.phi(address, now),
                "mean_interval": self.mean_interval(address),
                "last_heartbeat": self._last_beat[address],
                "samples": len(self._intervals.get(address, ())),
            }
            for address in sorted(self._last_beat)
        }
