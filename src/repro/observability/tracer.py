"""The distributed tracer: monitor hooks -> causal span trees.

:class:`Tracer` plugs into the same monitor mechanism as the Listing-1
:class:`~repro.monitoring.stats_monitor.StatisticsMonitor` (it exposes
the standard hook methods and is attached with ``margo.add_monitor`` or
via ``ObservabilitySpec.tracing``), but instead of aggregating running
statistics it materializes **per-request spans**:

======== ======================= =====================================
span     id                      bounds
======== ======================= =====================================
forward  ``<span_id>``           on_forward_start -> on_response_received
wire     ``<span_id>/w``         on_forward_sent -> on_request_received
queue    ``<span_id>/q``         on_ult_enqueued -> on_ult_start
handler  ``<span_id>/h``         on_ult_start -> on_ult_complete
respond  ``<span_id>/r``         on_respond (instant)
======== ======================= =====================================

``span_id`` is the request's call id, stamped by
:meth:`MargoInstance.forward <repro.margo.runtime.MargoInstance.forward>`;
a nested RPC's ``parent_span_id`` is its parent handler's span id, so a
HEPnOS store that fans out into Yokan puts -- or a Raft AppendEntries
fan-out -- yields one tree per root request.

A wire span needs both endpoints' clocks; when client and server are
observed by *different* tracer instances, each records its half as an
"edge" and :func:`~repro.observability.exporters.collect_spans` pairs
them at export time.
"""

from __future__ import annotations

import zlib
from typing import Any, Optional

from .span import (
    HANDLER_SUFFIX,
    QUEUE_SUFFIX,
    RESPOND_SUFFIX,
    WIRE_SUFFIX,
    Span,
    SpanContext,
    child_span_id,
)

__all__ = ["OpenSpan", "Tracer", "current_span_context"]


def current_span_context() -> Optional[SpanContext]:
    """The span context of the RPC handler the calling ULT services.

    Manual instrumentation (Pufferscale rebalances, Bedrock migrations)
    uses this to attach its spans to the enclosing trace; ``None`` when
    the current ULT is not an RPC handler.
    """
    # Imported lazily: repro.margo imports this module at start-up (the
    # runtime owns a Tracer), so a top-level import would be circular.
    from ..margo.ult import current_ult

    ult = current_ult()
    request = getattr(ult, "rpc_context", None) if ult is not None else None
    if request is None or not getattr(request, "trace_id", ""):
        return None
    return SpanContext(
        trace_id=request.trace_id,
        span_id=child_span_id(request.span_id, HANDLER_SUFFIX),
    )


class Tracer:
    """Collects spans from monitor hooks on one or more Margo instances.

    Like every monitor, hook methods must not raise and must not issue
    RPCs; the tracer only appends to in-memory structures.  ``max_spans``
    bounds memory for long runs (oldest spans are retained; once the cap
    is hit new spans are dropped and counted in :attr:`dropped_spans`).
    """

    def __init__(
        self, max_spans: Optional[int] = None, sample_rate: float = 1.0
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.max_spans = max_spans
        #: Probabilistic trace sampling (ISSUE 6, adaptive observer
        #: sampling): the keep/drop decision hashes the *trace id*, so
        #: every span of one trace -- across all processes and tracer
        #: instances -- samples together and trees never come out
        #: partial.  CRC32 is seed-free and platform-stable, so the
        #: decision is deterministic across identical runs.
        self.sample_rate = sample_rate
        self._sample_cutoff = int(sample_rate * (1 << 32))
        self.spans: list[Span] = []
        self.dropped_spans = 0
        #: hook observations skipped by the sampling decision (distinct
        #: from ``dropped_spans``, the max_spans overflow count).
        self.sampled_out = 0
        #: (trace_id, span_id) -> client-side in-progress forward span.
        self._forward_open: dict[tuple[str, str], dict[str, Any]] = {}
        #: (trace_id, span_id) -> {"sent": t, "received": t, ...} halves
        #: of the wire span (paired at export time).
        self.edges: dict[tuple[str, str], dict[str, Any]] = {}
        #: (trace_id, span_id) -> queue/handler start bookkeeping.
        self._server_open: dict[tuple[str, str], dict[str, Any]] = {}
        self._manual_seq = 0
        #: spans begun via :meth:`start_span` and not yet ended.
        self._manual_open = 0

    # ------------------------------------------------------------------
    def _add(self, span: Span) -> None:
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(span)

    def _sampled(self, trace_id: str) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return zlib.crc32(trace_id.encode("utf-8")) < self._sample_cutoff

    def _key(self, request: Any) -> Optional[tuple[str, str]]:
        trace_id = getattr(request, "trace_id", "")
        if not trace_id:
            return None
        if not self._sampled(trace_id):
            self.sampled_out += 1
            return None
        return (trace_id, request.span_id)

    # ------------------------------------------------------------------
    # client-side hooks
    # ------------------------------------------------------------------
    def on_forward_start(self, time: float, margo: Any, request: Any) -> None:
        key = self._key(request)
        if key is None:
            return
        self._forward_open[key] = {
            "start": time,
            "process": margo.process.name,
        }

    def on_forward_sent(self, time: float, margo: Any, request: Any) -> None:
        key = self._key(request)
        if key is None:
            return
        edge = self.edges.setdefault(key, {"name": request.rpc_name})
        edge["sent"] = time
        edge["src"] = margo.process.name

    def on_response_received(
        self, time: float, margo: Any, request: Any, response: Any, elapsed: float
    ) -> None:
        key = self._key(request)
        if key is None:
            return
        open_span = self._forward_open.pop(key, None)
        if open_span is None:
            return
        self._add(
            Span(
                name=request.rpc_name,
                category="forward",
                trace_id=request.trace_id,
                span_id=request.span_id,
                parent_span_id=request.parent_span_id,
                process=open_span["process"],
                start=open_span["start"],
                end=time,
                attributes={
                    "dst": request.dst_address,
                    "provider_id": request.provider_id,
                    "status": response.status,
                    "payload_size": request.payload_size,
                },
            )
        )

    # ------------------------------------------------------------------
    # server-side hooks
    # ------------------------------------------------------------------
    def on_request_received(self, time: float, margo: Any, request: Any) -> None:
        key = self._key(request)
        if key is None:
            return
        edge = self.edges.setdefault(key, {"name": request.rpc_name})
        edge["received"] = time
        edge["dst"] = margo.process.name

    def on_ult_enqueued(self, time: float, margo: Any, request: Any, pool: Any) -> None:
        key = self._key(request)
        if key is None:
            return
        self._server_open[key] = {
            "enqueued": time,
            "pool": pool.name,
            "process": margo.process.name,
        }

    def on_ult_start(
        self, time: float, margo: Any, request: Any, queued_for: float
    ) -> None:
        key = self._key(request)
        if key is None:
            return
        state = self._server_open.setdefault(key, {"process": margo.process.name})
        enqueued = state.get("enqueued")
        if enqueued is not None:
            self._add(
                Span(
                    name=request.rpc_name,
                    category="queue",
                    trace_id=request.trace_id,
                    span_id=child_span_id(request.span_id, QUEUE_SUFFIX),
                    parent_span_id=request.span_id,
                    process=state["process"],
                    start=enqueued,
                    end=time,
                    attributes={"pool": state.get("pool", "")},
                )
            )
        state["handler_start"] = time

    def on_ult_complete(
        self, time: float, margo: Any, request: Any, duration: float, queued_for: float
    ) -> None:
        key = self._key(request)
        if key is None:
            return
        state = self._server_open.pop(key, None)
        if state is None or "handler_start" not in state:
            return
        self._add(
            Span(
                name=request.rpc_name,
                category="handler",
                trace_id=request.trace_id,
                span_id=child_span_id(request.span_id, HANDLER_SUFFIX),
                parent_span_id=request.span_id,
                process=state["process"],
                start=state["handler_start"],
                end=time,
                attributes={"src": request.src_address},
            )
        )

    def on_respond(self, time: float, margo: Any, request: Any, response: Any) -> None:
        key = self._key(request)
        if key is None:
            return
        self._add(
            Span(
                name=request.rpc_name,
                category="respond",
                trace_id=request.trace_id,
                span_id=child_span_id(request.span_id, RESPOND_SUFFIX),
                parent_span_id=child_span_id(request.span_id, HANDLER_SUFFIX),
                process=margo.process.name,
                start=time,
                end=time,
                attributes={"status": response.status},
            )
        )

    # ------------------------------------------------------------------
    # either-side hooks
    # ------------------------------------------------------------------
    def on_bulk_transfer(
        self, time: float, margo: Any, remote: str, size: int, op: str, duration: float
    ) -> None:
        context = current_span_context()
        self._manual_seq += 1
        span_id = f"bulk:{margo.process.name}:{self._manual_seq}"
        self._add(
            Span(
                name=f"bulk_{op}",
                category="bulk",
                trace_id=context.trace_id if context else span_id,
                span_id=span_id,
                parent_span_id=context.span_id if context else "",
                process=margo.process.name,
                start=time - duration,
                end=time,
                attributes={"remote": remote, "size": size, "op": op},
            )
        )

    # ------------------------------------------------------------------
    # manual instrumentation (Pufferscale rebalances, migrations, ...)
    # ------------------------------------------------------------------
    def record_span(
        self,
        name: str,
        category: str,
        process: str,
        start: float,
        end: float,
        attributes: Optional[dict[str, Any]] = None,
        context: Optional[SpanContext] = None,
    ) -> Span:
        """Record an explicitly-timed span.

        When ``context`` is None the current ULT's RPC context is used if
        there is one; otherwise the span roots a trace of its own.
        """
        if context is None:
            context = current_span_context()
        self._manual_seq += 1
        span_id = f"op:{process}:{self._manual_seq}"
        span = Span(
            name=name,
            category=category,
            trace_id=context.trace_id if context else span_id,
            span_id=span_id,
            parent_span_id=context.span_id if context else "",
            process=process,
            start=start,
            end=end,
            attributes=dict(attributes or {}),
        )
        self._add(span)
        return span

    def start_span(
        self,
        name: str,
        category: str,
        process: str,
        start: float,
        attributes: Optional[dict[str, Any]] = None,
        context: Optional[SpanContext] = None,
    ) -> "OpenSpan":
        """Begin a manually-timed span; close it with ``.end(t)``.

        The begin/end form exists for operations whose duration is not
        known up front (a migration that can fail halfway, a rebalance
        spanning nested RPCs).  The protocol is *end exactly once, on
        every path*: a started span that escapes on an exception path
        without ``end()`` never reaches the span buffer and counts in
        :attr:`open_span_count` forever -- wrap the risky region in
        ``try/finally`` (mochi-flow reports violations as MCH074).
        """
        if context is None:
            context = current_span_context()
        self._manual_open += 1
        return OpenSpan(self, name, category, process, start, attributes, context)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def open_span_count(self) -> int:
        """Spans begun but not completed: client forwards awaiting a
        response, server handlers in flight, and manual
        :meth:`start_span` spans not yet ended (a steady growth here is
        the run-time signature of the MCH074 leak)."""
        return len(self._forward_open) + len(self._server_open) + self._manual_open

    def trace_ids(self) -> list[str]:
        return sorted({s.trace_id for s in self.spans})

    def spans_of(self, trace_id: str) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.trace_id == trace_id),
            key=lambda s: (s.start, s.span_id),
        )

    def to_json(self) -> dict[str, Any]:
        spans = sorted(self.spans, key=lambda s: (s.trace_id, s.start, s.span_id))
        return {
            "spans": [s.to_json() for s in spans],
            "dropped_spans": self.dropped_spans,
        }


class OpenSpan:
    """A span begun with :meth:`Tracer.start_span`, awaiting ``end()``.

    ``end`` is idempotent (the first call records, later calls no-op),
    but it must be *reached* on every path, exception paths included --
    otherwise the span is silently lost and the tracer's
    ``open_span_count`` never drains.
    """

    __slots__ = (
        "tracer",
        "name",
        "category",
        "process",
        "start",
        "attributes",
        "context",
        "ended",
    )

    def __init__(
        self,
        tracer: Tracer,
        name: str,
        category: str,
        process: str,
        start: float,
        attributes: Optional[dict[str, Any]],
        context: Optional[SpanContext],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.process = process
        self.start = start
        self.attributes = dict(attributes or {})
        self.context = context
        self.ended = False

    def end(
        self, end: float, attributes: Optional[dict[str, Any]] = None
    ) -> Optional[Span]:
        """Close the span at simulated time ``end`` and record it."""
        if self.ended:
            return None
        self.ended = True
        self.tracer._manual_open -= 1
        merged = dict(self.attributes)
        if attributes:
            merged.update(attributes)
        return self.tracer.record_span(
            self.name,
            self.category,
            self.process,
            self.start,
            end,
            attributes=merged,
            context=self.context,
        )
