"""Trace and metrics exporters.

Two formats:

* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`dumps_chrome_trace`): loadable in ``chrome://tracing`` or
  Perfetto.  Each span becomes a complete ("ph": "X") event; the
  process name maps to ``pid`` and the trace id to ``tid``, so one row
  per causal tree per process.
* **Metrics snapshot** (:func:`metrics_snapshot` /
  :func:`dumps_metrics`): the per-process registries as one JSON
  document, dumped on finalize alongside the Listing-1 statistics.

Both are deterministic: timestamps are simulated seconds (never wall
clocks), events are sorted by explicit keys, and JSON is rendered with
sorted keys -- two runs with the same seed produce byte-identical
output (tested).
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .span import Span, WIRE_SUFFIX, child_span_id
from .tracer import Tracer

__all__ = [
    "collect_spans",
    "chrome_trace",
    "chrome_trace_profile",
    "dumps_chrome_trace",
    "dumps_chrome_trace_profile",
    "metrics_snapshot",
    "dumps_metrics",
    "build_trace_tree",
]


def collect_spans(*tracers: Tracer) -> list[Span]:
    """All completed spans across ``tracers``, plus wire spans.

    A wire span is assembled from its two halves (client "sent", server
    "received"); when the endpoints are observed by different tracers
    the halves live in different ``edges`` maps, so pairing happens
    here, over the union.
    """
    spans: list[Span] = []
    for tracer in tracers:
        spans.extend(tracer.spans)
    merged: dict[tuple[str, str], dict[str, Any]] = {}
    for tracer in tracers:
        for key, half in tracer.edges.items():
            merged.setdefault(key, {}).update(half)
    for (trace_id, span_id), edge in merged.items():
        if "sent" not in edge or "received" not in edge:
            continue  # one-sided observation (peer not traced): skip
        spans.append(
            Span(
                name=edge.get("name", ""),
                category="wire",
                trace_id=trace_id,
                span_id=child_span_id(span_id, WIRE_SUFFIX),
                parent_span_id=span_id,
                process=edge.get("dst", edge.get("src", "")),
                start=edge["sent"],
                end=edge["received"],
                attributes={"src": edge.get("src", ""), "dst": edge.get("dst", "")},
            )
        )
    spans.sort(key=lambda s: (s.trace_id, s.start, s.span_id))
    return spans


def chrome_trace(
    *tracers: Tracer, highlight_critical: bool = False
) -> dict[str, Any]:
    """Render all spans as a Chrome trace-event document.

    With ``highlight_critical`` the per-trace critical path (longest
    blocking chain, see :mod:`repro.observability.xray.critical_path`)
    is marked: those events carry ``args.critical_path: true`` and the
    reserved ``cname`` color so the chain stands out in the viewer.
    """
    spans = collect_spans(*tracers)
    critical: set[tuple[str, str]] = set()
    if highlight_critical:
        from .xray.critical_path import critical_span_ids

        for trace_id in sorted({s.trace_id for s in spans}):
            critical.update(
                (trace_id, span_id)
                for span_id in critical_span_ids(spans, trace_id)
            )
    events: list[dict[str, Any]] = []
    for span in spans:
        args = {
            "span_id": span.span_id,
            "parent_span_id": span.parent_span_id,
            **span.attributes,
        }
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": round(span.start * 1e6, 3),  # microseconds
            "dur": round(span.duration * 1e6, 3),
            "pid": span.process,
            "tid": span.trace_id,
            "args": args,
        }
        if (span.trace_id, span.span_id) in critical:
            args["critical_path"] = True
            event["cname"] = "terrible"  # Chrome's reserved red
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dumps_chrome_trace(
    *tracers: Tracer, indent: int = 2, highlight_critical: bool = False
) -> str:
    return json.dumps(
        chrome_trace(*tracers, highlight_critical=highlight_critical),
        indent=indent,
        sort_keys=True,
    )


def chrome_trace_profile(*profilers: Any) -> dict[str, Any]:
    """Render continuous-profiler output as a Chrome trace document.

    Per-RPC waterfalls become nested complete events (one ``tid`` per
    waterfall, each phase an "X" slice), so ``chrome://tracing`` shows
    them as flamegraph-style stacks; closed-window xstream utilization
    becomes counter ("C") events on the same timeline.
    """
    events: list[dict[str, Any]] = []
    for profiler in profilers:
        process = profiler.margo.process.name
        for waterfall in profiler.waterfalls:
            tid = f"{waterfall['trace_id']}:{waterfall['span_id']}"
            events.append(
                {
                    "name": f"{waterfall['rpc']}/{waterfall['provider']}",
                    "cat": "rpc",
                    "ph": "X",
                    "ts": round(waterfall["start"] * 1e6, 3),
                    "dur": round((waterfall["end"] - waterfall["start"]) * 1e6, 3),
                    "pid": process,
                    "tid": tid,
                    "args": {
                        "trace_id": waterfall["trace_id"],
                        "provider": waterfall["provider"],
                        "weight": waterfall.get("weight", 1),
                    },
                }
            )
            for slice_ in waterfall["phases"]:
                events.append(
                    {
                        "name": slice_["phase"],
                        "cat": "rpc_phase",
                        "ph": "X",
                        "ts": round(slice_["start"] * 1e6, 3),
                        "dur": round((slice_["end"] - slice_["start"]) * 1e6, 3),
                        "pid": process,
                        "tid": tid,
                        "args": {
                            "phase": slice_["phase"],
                            "provider": waterfall["provider"],
                            "weight": waterfall.get("weight", 1),
                        },
                    }
                )
        for window in profiler.store.closed_windows():
            for xstream_name, sample in sorted(window["xstreams"].items()):
                events.append(
                    {
                        "name": f"utilization:{xstream_name}",
                        "cat": "profile",
                        "ph": "C",
                        "ts": round(window["end"] * 1e6, 3),
                        "pid": process,
                        "tid": f"utilization:{xstream_name}",
                        "args": {"utilization": sample["utilization"]},
                    }
                )
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"], e["name"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dumps_chrome_trace_profile(*profilers: Any, indent: int = 2) -> str:
    return json.dumps(chrome_trace_profile(*profilers), indent=indent, sort_keys=True)


def metrics_snapshot(registries: Mapping[str, Any]) -> dict[str, Any]:
    """``{process_name: registry}`` -> one deterministic document."""
    return {name: registries[name].snapshot() for name in sorted(registries)}


def dumps_metrics(registries: Mapping[str, Any], indent: int = 2) -> str:
    return json.dumps(metrics_snapshot(registries), indent=indent, sort_keys=True)


def build_trace_tree(spans: list[Span], trace_id: str) -> list[dict[str, Any]]:
    """The parent/child tree of one trace.

    Returns the list of root nodes (normally one), each
    ``{"span": <span doc>, "children": [...]}``, children sorted by
    start time.  Spans whose parent was not captured (e.g. the peer ran
    untraced) surface as extra roots rather than disappearing.
    """
    nodes = {
        s.span_id: {"span": s.to_json(), "children": []}
        for s in spans
        if s.trace_id == trace_id
    }
    roots = []
    for span_id, node in sorted(
        nodes.items(), key=lambda item: (item[1]["span"]["start"], item[0])
    ):
        parent = nodes.get(node["span"]["parent_span_id"])
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots
