"""ObservabilitySpec: the JSON surface of the observability plane.

Margo (and therefore Bedrock, whose ``margo`` section is consumed by
the Margo instance) accepts an ``observability`` object::

    {
      "observability": {
        "tracing": true,        # materialize per-RPC spans (default off)
        "metrics": true,        # export the metrics registry (default on)
        "max_spans": 100000,    # span-buffer cap (default unbounded)

        "profiling": true,      # continuous profiler (default off)
        "profile_window": 1.0,  # rollup window, simulated seconds
        "profile_history": 64,  # ring of closed windows kept in memory
        "profile_waterfalls": 32,  # recent per-RPC waterfalls kept

        "profile_sample_every": 16,  # decompose every Nth RPC (default 1)
        "trace_sample_rate": 0.1,    # fraction of traces kept (default 1.0)

        "load_imbalance_threshold": 1.5,  # reconfiguration trigger
        "busy_threshold": 0.9,            # per-xstream overload trigger

        "slos": [                 # declarative objectives (needs profiling)
          {"name": "kv-p99", "objective": "latency_p99",
           "target": "yokan_put/1", "threshold": 0.002}
        ]
      }
    }

The ``profile_*`` keys configure :mod:`repro.observability.profile`;
the two thresholds are the declarative knobs the autonomic
:class:`~repro.core.service.ReconfigurationController` compares measured
windows against.  Like every other part of the Listing-2/Listing-3
configuration it is validated on parse and reflected back by
``get_config`` so a shared configuration document reproduces the
observability setup too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .health.slo import SLOSpec

__all__ = ["ObservabilitySpec"]

_KNOWN_KEYS = {
    "tracing",
    "trace_sample_rate",
    "metrics",
    "max_spans",
    "profiling",
    "profile_window",
    "profile_history",
    "profile_waterfalls",
    "profile_sample_every",
    "load_imbalance_threshold",
    "busy_threshold",
    "slos",
    "xray",
    "xray_paths",
}


@dataclass(frozen=True)
class ObservabilitySpec:
    """Per-process observability configuration."""

    tracing: bool = False
    #: Probabilistic span sampling: the fraction of traces materialized
    #: (1.0 = every span; the decision is per trace id, so a sampled
    #: trace keeps *all* its spans and trees never come out partial).
    trace_sample_rate: float = 1.0
    metrics: bool = True
    max_spans: Optional[int] = None
    #: Continuous profiling (sampling + RPC latency decomposition).
    profiling: bool = False
    #: Rollup window length in simulated seconds (windows are aligned to
    #: multiples of this value, so boundaries are deterministic).
    profile_window: float = 1.0
    #: Number of closed windows retained (fixed-memory ring).
    profile_history: int = 64
    #: Number of recent per-RPC waterfalls retained (fixed-memory ring).
    profile_waterfalls: int = 32
    #: Adaptive observer sampling: decompose every Nth RPC only (1 =
    #: every RPC).  Sampled requests are weighted by N in the
    #: load-estimator counts, so measured rates stay unbiased.
    profile_sample_every: int = 1
    #: Measured max/mean node load above which the reconfiguration
    #: controller plans a rebalance.
    load_imbalance_threshold: float = 1.5
    #: Measured per-xstream busy fraction above which a process counts
    #: as overloaded (second reconfiguration trigger).
    busy_threshold: float = 0.9
    #: Declarative service-level objectives (ISSUE 6): evaluated by the
    #: per-process SLO engine against closed profiler windows, so
    #: ``slos`` requires ``profiling``.
    slos: tuple[SLOSpec, ...] = ()
    #: mochi-xray (ISSUE 10): record per-request causal edges and run
    #: tail-latency attribution + what-if analysis per closed profiler
    #: window.  Rides the profiler's sampling decision and cross-process
    #: stamps, so ``xray`` requires ``profiling``.
    xray: bool = False
    #: Path-record budget: at most this many records per window (and
    #: this many recent records kept for ``get_critical_path``).
    xray_paths: int = 256

    @classmethod
    def from_json(cls, doc: Any) -> "ObservabilitySpec":
        if doc is None:
            return cls()
        if not isinstance(doc, dict):
            raise ValueError(
                f"'observability' must be an object, got {type(doc).__name__}"
            )
        unknown = set(doc) - _KNOWN_KEYS
        if unknown:
            raise ValueError(f"unknown observability keys: {sorted(unknown)}")
        max_spans = doc.get("max_spans")
        if max_spans is not None:
            max_spans = int(max_spans)
            if max_spans <= 0:
                raise ValueError(f"max_spans must be positive, got {max_spans}")
        profile_window = float(doc.get("profile_window", cls.profile_window))
        if profile_window <= 0:
            raise ValueError(
                f"profile_window must be positive, got {profile_window}"
            )
        profile_history = int(doc.get("profile_history", cls.profile_history))
        if profile_history <= 0:
            raise ValueError(
                f"profile_history must be positive, got {profile_history}"
            )
        profile_waterfalls = int(
            doc.get("profile_waterfalls", cls.profile_waterfalls)
        )
        if profile_waterfalls < 0:
            raise ValueError(
                f"profile_waterfalls must be >= 0, got {profile_waterfalls}"
            )
        load_imbalance_threshold = float(
            doc.get("load_imbalance_threshold", cls.load_imbalance_threshold)
        )
        if load_imbalance_threshold < 1.0:
            raise ValueError(
                "load_imbalance_threshold must be >= 1.0 (1.0 = perfect "
                f"balance), got {load_imbalance_threshold}"
            )
        busy_threshold = float(doc.get("busy_threshold", cls.busy_threshold))
        if not 0.0 < busy_threshold <= 1.0:
            raise ValueError(
                f"busy_threshold must be in (0, 1], got {busy_threshold}"
            )
        trace_sample_rate = float(
            doc.get("trace_sample_rate", cls.trace_sample_rate)
        )
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], got {trace_sample_rate}"
            )
        profile_sample_every = int(
            doc.get("profile_sample_every", cls.profile_sample_every)
        )
        if profile_sample_every < 1:
            raise ValueError(
                f"profile_sample_every must be >= 1, got {profile_sample_every}"
            )
        profiling = bool(doc.get("profiling", False))
        slos_doc = doc.get("slos", [])
        if not isinstance(slos_doc, list):
            raise ValueError(
                f"'slos' must be a list, got {type(slos_doc).__name__}"
            )
        slos = tuple(SLOSpec.from_json(entry) for entry in slos_doc)
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        if slos and not profiling:
            raise ValueError(
                "'slos' are evaluated against profiler windows: set "
                "'profiling': true"
            )
        xray = bool(doc.get("xray", False))
        if xray and not profiling:
            raise ValueError(
                "'xray' rides the profiler's sampling and phase stamps: "
                "set 'profiling': true"
            )
        xray_paths = int(doc.get("xray_paths", cls.xray_paths))
        if xray_paths < 1:
            raise ValueError(f"xray_paths must be >= 1, got {xray_paths}")
        return cls(
            tracing=bool(doc.get("tracing", False)),
            trace_sample_rate=trace_sample_rate,
            metrics=bool(doc.get("metrics", True)),
            max_spans=max_spans,
            profiling=profiling,
            profile_window=profile_window,
            profile_history=profile_history,
            profile_waterfalls=profile_waterfalls,
            profile_sample_every=profile_sample_every,
            load_imbalance_threshold=load_imbalance_threshold,
            busy_threshold=busy_threshold,
            slos=slos,
            xray=xray,
            xray_paths=xray_paths,
        )

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"tracing": self.tracing, "metrics": self.metrics}
        if self.max_spans is not None:
            doc["max_spans"] = self.max_spans
        # Profiling keys are emitted only when they deviate from the
        # defaults, keeping configuration round-trips minimal (and the
        # reflected documents of non-profiled processes unchanged).
        if self.profiling:
            doc["profiling"] = True
        if self.profile_window != ObservabilitySpec.profile_window:
            doc["profile_window"] = self.profile_window
        if self.profile_history != ObservabilitySpec.profile_history:
            doc["profile_history"] = self.profile_history
        if self.profile_waterfalls != ObservabilitySpec.profile_waterfalls:
            doc["profile_waterfalls"] = self.profile_waterfalls
        if self.profile_sample_every != ObservabilitySpec.profile_sample_every:
            doc["profile_sample_every"] = self.profile_sample_every
        if self.trace_sample_rate != ObservabilitySpec.trace_sample_rate:
            doc["trace_sample_rate"] = self.trace_sample_rate
        if self.load_imbalance_threshold != ObservabilitySpec.load_imbalance_threshold:
            doc["load_imbalance_threshold"] = self.load_imbalance_threshold
        if self.busy_threshold != ObservabilitySpec.busy_threshold:
            doc["busy_threshold"] = self.busy_threshold
        if self.slos:
            doc["slos"] = [slo.to_json() for slo in self.slos]
        if self.xray:
            doc["xray"] = True
        if self.xray_paths != ObservabilitySpec.xray_paths:
            doc["xray_paths"] = self.xray_paths
        return doc
