"""ObservabilitySpec: the JSON surface of the observability plane.

Margo (and therefore Bedrock, whose ``margo`` section is consumed by
the Margo instance) accepts an ``observability`` object::

    {
      "observability": {
        "tracing": true,        # materialize per-RPC spans (default off)
        "metrics": true,        # export the metrics registry (default on)
        "max_spans": 100000,    # span-buffer cap (default unbounded)

        "profiling": true,      # continuous profiler (default off)
        "profile_window": 1.0,  # rollup window, simulated seconds
        "profile_history": 64,  # ring of closed windows kept in memory
        "profile_waterfalls": 32,  # recent per-RPC waterfalls kept

        "load_imbalance_threshold": 1.5,  # reconfiguration trigger
        "busy_threshold": 0.9             # per-xstream overload trigger
      }
    }

The ``profile_*`` keys configure :mod:`repro.observability.profile`;
the two thresholds are the declarative knobs the autonomic
:class:`~repro.core.service.ReconfigurationController` compares measured
windows against.  Like every other part of the Listing-2/Listing-3
configuration it is validated on parse and reflected back by
``get_config`` so a shared configuration document reproduces the
observability setup too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ObservabilitySpec"]

_KNOWN_KEYS = {
    "tracing",
    "metrics",
    "max_spans",
    "profiling",
    "profile_window",
    "profile_history",
    "profile_waterfalls",
    "load_imbalance_threshold",
    "busy_threshold",
}


@dataclass(frozen=True)
class ObservabilitySpec:
    """Per-process observability configuration."""

    tracing: bool = False
    metrics: bool = True
    max_spans: Optional[int] = None
    #: Continuous profiling (sampling + RPC latency decomposition).
    profiling: bool = False
    #: Rollup window length in simulated seconds (windows are aligned to
    #: multiples of this value, so boundaries are deterministic).
    profile_window: float = 1.0
    #: Number of closed windows retained (fixed-memory ring).
    profile_history: int = 64
    #: Number of recent per-RPC waterfalls retained (fixed-memory ring).
    profile_waterfalls: int = 32
    #: Measured max/mean node load above which the reconfiguration
    #: controller plans a rebalance.
    load_imbalance_threshold: float = 1.5
    #: Measured per-xstream busy fraction above which a process counts
    #: as overloaded (second reconfiguration trigger).
    busy_threshold: float = 0.9

    @classmethod
    def from_json(cls, doc: Any) -> "ObservabilitySpec":
        if doc is None:
            return cls()
        if not isinstance(doc, dict):
            raise ValueError(
                f"'observability' must be an object, got {type(doc).__name__}"
            )
        unknown = set(doc) - _KNOWN_KEYS
        if unknown:
            raise ValueError(f"unknown observability keys: {sorted(unknown)}")
        max_spans = doc.get("max_spans")
        if max_spans is not None:
            max_spans = int(max_spans)
            if max_spans <= 0:
                raise ValueError(f"max_spans must be positive, got {max_spans}")
        profile_window = float(doc.get("profile_window", cls.profile_window))
        if profile_window <= 0:
            raise ValueError(
                f"profile_window must be positive, got {profile_window}"
            )
        profile_history = int(doc.get("profile_history", cls.profile_history))
        if profile_history <= 0:
            raise ValueError(
                f"profile_history must be positive, got {profile_history}"
            )
        profile_waterfalls = int(
            doc.get("profile_waterfalls", cls.profile_waterfalls)
        )
        if profile_waterfalls < 0:
            raise ValueError(
                f"profile_waterfalls must be >= 0, got {profile_waterfalls}"
            )
        load_imbalance_threshold = float(
            doc.get("load_imbalance_threshold", cls.load_imbalance_threshold)
        )
        if load_imbalance_threshold < 1.0:
            raise ValueError(
                "load_imbalance_threshold must be >= 1.0 (1.0 = perfect "
                f"balance), got {load_imbalance_threshold}"
            )
        busy_threshold = float(doc.get("busy_threshold", cls.busy_threshold))
        if not 0.0 < busy_threshold <= 1.0:
            raise ValueError(
                f"busy_threshold must be in (0, 1], got {busy_threshold}"
            )
        return cls(
            tracing=bool(doc.get("tracing", False)),
            metrics=bool(doc.get("metrics", True)),
            max_spans=max_spans,
            profiling=bool(doc.get("profiling", False)),
            profile_window=profile_window,
            profile_history=profile_history,
            profile_waterfalls=profile_waterfalls,
            load_imbalance_threshold=load_imbalance_threshold,
            busy_threshold=busy_threshold,
        )

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"tracing": self.tracing, "metrics": self.metrics}
        if self.max_spans is not None:
            doc["max_spans"] = self.max_spans
        # Profiling keys are emitted only when they deviate from the
        # defaults, keeping configuration round-trips minimal (and the
        # reflected documents of non-profiled processes unchanged).
        if self.profiling:
            doc["profiling"] = True
        if self.profile_window != ObservabilitySpec.profile_window:
            doc["profile_window"] = self.profile_window
        if self.profile_history != ObservabilitySpec.profile_history:
            doc["profile_history"] = self.profile_history
        if self.profile_waterfalls != ObservabilitySpec.profile_waterfalls:
            doc["profile_waterfalls"] = self.profile_waterfalls
        if self.load_imbalance_threshold != ObservabilitySpec.load_imbalance_threshold:
            doc["load_imbalance_threshold"] = self.load_imbalance_threshold
        if self.busy_threshold != ObservabilitySpec.busy_threshold:
            doc["busy_threshold"] = self.busy_threshold
        return doc
