"""ObservabilitySpec: the JSON surface of the observability plane.

Margo (and therefore Bedrock, whose ``margo`` section is consumed by
the Margo instance) accepts an ``observability`` object::

    {
      "observability": {
        "tracing": true,        # materialize per-RPC spans (default off)
        "metrics": true,        # export the metrics registry (default on)
        "max_spans": 100000     # span-buffer cap (default unbounded)
      }
    }

Like every other part of the Listing-2/Listing-3 configuration it is
validated on parse and reflected back by ``get_config`` so a shared
configuration document reproduces the observability setup too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["ObservabilitySpec"]


@dataclass(frozen=True)
class ObservabilitySpec:
    """Per-process observability configuration."""

    tracing: bool = False
    metrics: bool = True
    max_spans: Optional[int] = None

    @classmethod
    def from_json(cls, doc: Any) -> "ObservabilitySpec":
        if doc is None:
            return cls()
        if not isinstance(doc, dict):
            raise ValueError(
                f"'observability' must be an object, got {type(doc).__name__}"
            )
        unknown = set(doc) - {"tracing", "metrics", "max_spans"}
        if unknown:
            raise ValueError(f"unknown observability keys: {sorted(unknown)}")
        max_spans = doc.get("max_spans")
        if max_spans is not None:
            max_spans = int(max_spans)
            if max_spans <= 0:
                raise ValueError(f"max_spans must be positive, got {max_spans}")
        return cls(
            tracing=bool(doc.get("tracing", False)),
            metrics=bool(doc.get("metrics", True)),
            max_spans=max_spans,
        )

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"tracing": self.tracing, "metrics": self.metrics}
        if self.max_spans is not None:
            doc["max_spans"] = self.max_spans
        return doc
