"""Fixed-memory rolling store of windowed profile rollups.

The continuous profiler accumulates observations into the *current*
window; at every window boundary (``k * window`` simulated seconds,
aligned to the simulation origin so boundaries are deterministic) the
window is closed, reduced to a compact rollup -- counts, sums, min/max,
and bucket-interpolated p50/p95/p99 -- and pushed into a bounded ring.
Memory is therefore fixed regardless of run length: ``history`` windows
of per-key aggregates, nothing per-request.

Everything here is plain arithmetic over simulated-time observations;
two runs with the same seed produce byte-identical ``to_json()``
documents (keys are strings, rendering sorts them).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..metrics import DEFAULT_BUCKETS

__all__ = ["PhaseAggregate", "WindowRollup", "ProfileStore", "quantile_from_buckets"]

#: The RPC phases recorded by the latency decomposition, in causal order.
PHASES = ("client_queue", "network", "server_queue", "handler", "respond", "total")


def quantile_from_buckets(
    q: float,
    buckets: tuple[float, ...],
    counts: list[int],
    lo: float,
    hi: float,
) -> float:
    """Estimate the ``q``-quantile from histogram bucket counts.

    Linear interpolation within the bucket that crosses the target rank,
    clamped to the observed ``[lo, hi]`` range so estimates never leave
    the data.  Deterministic: pure float arithmetic over fixed bounds.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    prev_bound = lo
    for bound, n in zip(buckets, counts[:-1]):
        upper = min(bound, hi)
        if n:
            cumulative += n
            if cumulative >= target:
                # Position of the target rank inside this bucket.
                fraction = 1.0 - (cumulative - target) / n
                value = prev_bound + fraction * max(0.0, upper - prev_bound)
                return min(max(value, lo), hi)
            prev_bound = max(prev_bound, upper)
    return hi  # target rank falls in the +inf bucket: report the max


class PhaseAggregate:
    """One window's distribution summary for one (key, phase) series."""

    __slots__ = ("count", "sum", "min", "max", "bucket_counts")

    BUCKETS: tuple[float, ...] = DEFAULT_BUCKETS

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bucket_counts = [0] * (len(self.BUCKETS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.BUCKETS):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def to_json(self) -> dict[str, Any]:
        lo = self.min or 0.0
        hi = self.max or 0.0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": lo,
            "max": hi,
            "p50": quantile_from_buckets(0.50, self.BUCKETS, self.bucket_counts, lo, hi),
            "p95": quantile_from_buckets(0.95, self.BUCKETS, self.bucket_counts, lo, hi),
            "p99": quantile_from_buckets(0.99, self.BUCKETS, self.bucket_counts, lo, hi),
        }


class WindowRollup:
    """Accumulator for one rollup window, reducible to a JSON document.

    Keys:

    * ``phases[(rpc_key, phase)]`` -- :class:`PhaseAggregate` of one
      decomposition phase for one ``"<rpc_name>/<provider_id>"`` series;
    * ``providers[provider_key]`` -- request count and payload bytes for
      one ``"<component>:<provider_id>"`` series (the load-estimator
      input);
    * ``pools`` / ``xstreams`` -- utilization samples taken at the
      closing boundary.
    """

    __slots__ = ("index", "start", "end", "phases", "providers", "pools", "xstreams")

    def __init__(self, index: int, start: float, end: float) -> None:
        self.index = index
        self.start = start
        self.end = end
        self.phases: dict[tuple[str, str], PhaseAggregate] = {}
        self.providers: dict[str, dict[str, float]] = {}
        self.pools: dict[str, dict[str, float]] = {}
        self.xstreams: dict[str, dict[str, float]] = {}

    # -- accumulation --------------------------------------------------
    def observe_phase(self, rpc_key: str, phase: str, value: float) -> None:
        agg = self.phases.get((rpc_key, phase))
        if agg is None:
            agg = self.phases[(rpc_key, phase)] = PhaseAggregate()
        agg.observe(value)

    def _provider_entry(self, provider_key: str) -> dict[str, float]:
        entry = self.providers.get(provider_key)
        if entry is None:
            entry = self.providers[provider_key] = {
                "requests": 0.0, "bytes_in": 0.0, "bytes_out": 0.0,
                "errors": 0.0,
            }
        return entry

    def note_request(
        self, provider_key: str, bytes_in: int, weight: int = 1
    ) -> None:
        """``weight`` > 1 when the profiler samples every Nth request:
        each observed request stands for N, keeping rates unbiased."""
        entry = self._provider_entry(provider_key)
        entry["requests"] += weight
        entry["bytes_in"] += bytes_in * weight

    def note_response(
        self, provider_key: str, bytes_out: int, error: bool = False,
        weight: int = 1,
    ) -> None:
        entry = self._provider_entry(provider_key)
        entry["bytes_out"] += bytes_out * weight
        if error:
            entry["errors"] += weight

    # -- reduction -----------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        width = self.end - self.start
        rpc: dict[str, dict[str, Any]] = {}
        for (rpc_key, phase), agg in self.phases.items():
            rpc.setdefault(rpc_key, {})[phase] = agg.to_json()
        providers = {
            key: {
                "requests": int(entry["requests"]),
                "rate": entry["requests"] / width if width > 0 else 0.0,
                "bytes_in": int(entry["bytes_in"]),
                "bytes_out": int(entry["bytes_out"]),
                "errors": int(entry.get("errors", 0)),
            }
            for key, entry in self.providers.items()
        }
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "rpc": rpc,
            "providers": providers,
            "pools": self.pools,
            "xstreams": self.xstreams,
        }


class ProfileStore:
    """A bounded ring of closed :class:`WindowRollup` documents.

    ``current`` is the open window; :meth:`roll` closes it at a boundary
    and opens the next.  The ring (``deque(maxlen=history)``) is the
    sanctioned bounded-state pattern for monitoring callbacks (see lint
    rule MCH004): old windows fall off the far end, so a profiler left
    running for the whole life of a service never grows.
    """

    def __init__(self, window: float, history: int) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if history <= 0:
            raise ValueError(f"history must be positive, got {history}")
        self.window = window
        self.history = history
        self.windows: deque[dict[str, Any]] = deque(maxlen=history)
        self.current: Optional[WindowRollup] = None

    def window_index(self, now: float) -> int:
        """The index of the window containing simulated time ``now``."""
        return int(now // self.window)

    def open_window(self, index: int) -> WindowRollup:
        start = index * self.window
        self.current = WindowRollup(index, start, start + self.window)
        return self.current

    def close_current(
        self,
        pools: dict[str, dict[str, float]],
        xstreams: dict[str, dict[str, float]],
    ) -> dict[str, Any]:
        """Close the open window: attach the boundary utilization
        samples, reduce it into the ring, and open the next window.

        The profiler calls this from its boundary tick; observations
        that race the tick inside the same simulated instant stay with
        the closing window, which is deterministic (kernel event order
        is a pure function of the seed)."""
        current = self.current
        if current is None:
            raise RuntimeError("no open window (store not started)")
        current.pools = pools
        current.xstreams = xstreams
        doc = current.to_json()
        self.windows.append(doc)
        self.open_window(current.index + 1)
        return doc

    # -- queries -------------------------------------------------------
    def closed_windows(self, last: Optional[int] = None) -> list[dict[str, Any]]:
        windows = list(self.windows)
        if last is not None:
            if last < 0:
                raise ValueError(f"'last' must be >= 0, got {last}")
            windows = windows[-last:] if last else []
        return windows

    def latest(self) -> Optional[dict[str, Any]]:
        return self.windows[-1] if self.windows else None

    def to_json(self, last: Optional[int] = None) -> dict[str, Any]:
        return {
            "window": self.window,
            "history": self.history,
            "windows": self.closed_windows(last),
        }
