"""mochi-profile: continuous profiling, RPC latency decomposition, and
the measured-load inputs that feed reconfiguration decisions.

Layered on the PR 1 tracer/metrics plane:

* :class:`ProfileStore` / :class:`WindowRollup` -- fixed-memory ring of
  windowed rollups (p50/p95/p99, rates, utilization) with deterministic
  window boundaries;
* :class:`ContinuousProfiler` -- the per-Margo sampler + monitor that
  fills the store and answers ``get_profile`` / ``get_utilization``;
* :class:`LoadEstimator` -- measured windows reduced to Pufferscale
  ``Shard.load`` / ``size`` inputs, closing the monitor -> decide ->
  reconfigure loop.
"""

from .estimator import LoadEstimator
from .profiler import SAMPLE_STAMP, ContinuousProfiler
from .store import (
    PHASES,
    PhaseAggregate,
    ProfileStore,
    WindowRollup,
    quantile_from_buckets,
)

__all__ = [
    "PHASES",
    "SAMPLE_STAMP",
    "ContinuousProfiler",
    "LoadEstimator",
    "PhaseAggregate",
    "ProfileStore",
    "WindowRollup",
    "quantile_from_buckets",
]
