"""LoadEstimator: measured windows -> Pufferscale ``Shard`` inputs.

Pufferscale's planner (:func:`repro.pufferscale.plan_rebalance`) works on
``Shard(load=..., size_bytes=...)`` values.  Until now those were fed by
hand (synthetic loads); this estimator derives them from what the
continuous profiler actually measured -- per-provider request rates and
payload bytes over the last ``smoothing`` closed windows -- so the
rebalancing loop runs on observations instead of assumptions.

The estimator is pure arithmetic over ``get_utilization``/``get_profile``
documents: no I/O, no clocks, fully deterministic.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

__all__ = ["LoadEstimator"]


class LoadEstimator:
    """Reduce per-provider window measurements to load/size estimates.

    ``smoothing`` is the number of most-recent closed windows averaged
    per process; more windows smooth bursts at the cost of reaction
    time.  Loads are request rates (requests / simulated second), sizes
    are the bytes observed in the averaged span -- both deterministic
    functions of the input documents.
    """

    def __init__(self, smoothing: int = 3) -> None:
        if smoothing <= 0:
            raise ValueError(f"smoothing must be positive, got {smoothing}")
        self.smoothing = smoothing

    def estimate(self, profile_doc: dict[str, Any]) -> dict[str, dict[str, float]]:
        """Per-provider-key estimates from one process's ``get_profile``
        document: ``{provider_key: {load, bytes_in, bytes_out}}``."""
        windows = profile_doc.get("windows", [])[-self.smoothing:]
        if not windows:
            return {}
        totals: dict[str, dict[str, float]] = {}
        span = 0.0
        for window in windows:
            span += window["end"] - window["start"]
            for key, entry in window.get("providers", {}).items():
                acc = totals.get(key)
                if acc is None:
                    acc = totals[key] = {
                        "requests": 0.0, "bytes_in": 0.0, "bytes_out": 0.0,
                    }
                acc["requests"] += entry["requests"]
                acc["bytes_in"] += entry["bytes_in"]
                acc["bytes_out"] += entry["bytes_out"]
        return {
            key: {
                "load": acc["requests"] / span if span > 0 else 0.0,
                "bytes_in": acc["bytes_in"],
                "bytes_out": acc["bytes_out"],
            }
            for key, acc in sorted(totals.items())
        }

    def shard_load(
        self,
        estimates: dict[str, dict[str, float]],
        provider_key: str,
        default: float = 0.0,
    ) -> float:
        entry = estimates.get(provider_key)
        return entry["load"] if entry is not None else default

    @staticmethod
    def merge(
        per_process: Iterable[dict[str, dict[str, float]]],
    ) -> dict[str, dict[str, float]]:
        """Merge per-process estimate maps (provider keys are unique per
        process in a well-formed deployment; on collision, rates add)."""
        merged: dict[str, dict[str, float]] = {}
        for estimates in per_process:
            for key, entry in estimates.items():
                acc = merged.get(key)
                if acc is None:
                    merged[key] = dict(entry)
                else:
                    for field, value in entry.items():
                        acc[field] = acc.get(field, 0.0) + value
        return dict(sorted(merged.items()))
