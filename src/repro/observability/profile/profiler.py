"""ContinuousProfiler: sampling + RPC latency decomposition for one
Margo instance.

Two data paths feed one :class:`~.store.ProfileStore`:

* **Sampling** -- a kernel timer aligned to window boundaries
  (``k * profile_window`` simulated seconds, via ``kernel.schedule_at``)
  samples every pool (queue depth, push/pop deltas, ULT scheduling
  latency) and every xstream (busy vs idle time, slices, completed
  ULTs), then closes the window into the bounded ring.  Pools report
  scheduling latency through a one-``None``-check hook
  (``pool._profiler``), mirroring the race layer's zero-cost-when-off
  discipline; with profiling disabled nothing here exists at all.

* **Decomposition** -- the profiler doubles as a monitor (same hook
  contract as :class:`~repro.observability.tracer.Tracer`): every
  forwarded RPC is broken into *client queue -> network ->
  server queue -> handler -> respond* phases.  The halves of a phase
  observed on different processes meet through timestamp stamps on the
  in-flight request/response objects (one simulated clock, so cross-
  process subtraction is exact).  Phases are recorded as histogram
  metrics in ``margo.metrics`` and as per-window aggregates; completed
  five-phase waterfalls land in a bounded ring for
  ``tools.profile_report`` and the Chrome-trace exporter.

Determinism: all timestamps are simulated; windows, rings, and JSON
reductions are seed-pure, so ``get_profile`` documents are byte-
identical across identical runs (tested, including under
``REPRO_SANITIZE=race`` record mode).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .store import PHASES, ProfileStore

__all__ = ["ContinuousProfiler", "PHASES"]

#: Attribute names stamped on in-flight RPCRequest/RPCResponse objects
#: (plain dataclasses, shared across the simulated wire) so the two
#: endpoint profilers can close cross-process phases exactly.
_SENT_STAMP = "_profile_sent_at"
_ULT_END_STAMP = "_profile_ult_end_at"
_RESPONDED_STAMP = "_profile_responded_at"


def _provider_key(rpc_name: str, provider_id: int) -> str:
    """``"<component>:<provider_id>"`` -- RPC names follow the
    ``<component_type>_<operation>`` convention, so the text before the
    first underscore identifies the component type."""
    return f"{rpc_name.split('_', 1)[0]}:{provider_id}"


class ContinuousProfiler:
    """Continuous profiling for one :class:`MargoInstance`.

    Created by the Margo runtime when ``observability.profiling`` is on;
    attach it to the instance's monitor list for the decomposition hooks
    and call :meth:`start` to begin window sampling.
    """

    def __init__(
        self,
        margo: Any,
        window: float = 1.0,
        history: int = 64,
        waterfalls: int = 32,
    ) -> None:
        self.margo = margo
        self.kernel = margo.kernel
        self.store = ProfileStore(window=window, history=history)
        self.store.open_window(self.store.window_index(self.kernel.now))
        #: Recent complete per-RPC waterfalls (bounded ring; the MCH004
        #: sanctioned pattern -- a profiler must never grow unboundedly).
        self.waterfalls: deque[dict[str, Any]] = deque(maxlen=max(1, waterfalls))
        self._keep_waterfalls = waterfalls > 0
        self._timer: Optional[Any] = None
        self._running = False
        # Last cumulative counters per pool/xstream, for window deltas.
        self._pool_marks: dict[str, tuple[int, int]] = {}
        self._xstream_marks: dict[str, dict[str, float]] = {}
        # Phase histograms (labelled) in the process registry, so phase
        # distributions export alongside every other metric.
        self._phase_hist = margo.metrics.histogram(
            "margo_rpc_phase_seconds",
            "per-RPC latency decomposition (client_queue/network/"
            "server_queue/handler/respond/total)",
            label_names=("rpc", "provider", "phase"),
        )
        self._sched_hist = margo.metrics.histogram(
            "margo_pool_sched_latency_seconds",
            "pool push-to-pop latency of ULTs (scheduling delay)",
            label_names=("pool",),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Hook every pool and begin boundary ticking."""
        if self._running:
            return
        self._running = True
        for pool in self.margo.pools.values():
            pool._profiler = self
        self._schedule_next_tick()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for pool in self.margo.pools.values():
            if pool._profiler is self:
                pool._profiler = None
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_next_tick(self) -> None:
        boundary = (self.store.current.index + 1) * self.store.window
        self._timer = self.kernel.schedule_at(boundary, self._tick, boundary)

    def _tick(self, boundary: float) -> None:
        if not self._running or self.margo.finalized:
            self._running = False
            return
        self.store.close_current(self._sample_pools(), self._sample_xstreams())
        self._schedule_next_tick()

    # ------------------------------------------------------------------
    # sampling (window boundaries)
    # ------------------------------------------------------------------
    def _sample_pools(self) -> dict[str, dict[str, float]]:
        samples: dict[str, dict[str, float]] = {}
        for name in sorted(self.margo.pools):
            pool = self.margo.pools[name]
            # New pools (runtime reconfiguration) get hooked lazily.
            if pool._profiler is None and self._running:
                pool._profiler = self
            last_pushed, last_popped = self._pool_marks.get(name, (0, 0))
            samples[name] = {
                "depth": float(pool.size),
                "pushed": float(pool.total_pushed - last_pushed),
                "popped": float(pool.total_popped - last_popped),
            }
            self._pool_marks[name] = (pool.total_pushed, pool.total_popped)
        return samples

    def _sample_xstreams(self) -> dict[str, dict[str, float]]:
        window = self.store.window
        samples: dict[str, dict[str, float]] = {}
        for name in sorted(self.margo.xstreams):
            xstream = self.margo.xstreams[name]
            sample = xstream.sample()
            mark = self._xstream_marks.get(name, {})
            busy = sample["busy_time"] - mark.get("busy_time", 0.0)
            utilization = min(1.0, busy / window) if window > 0 else 0.0
            samples[name] = {
                "busy": busy,
                "idle": max(0.0, window - busy),
                "utilization": utilization,
                "slices": sample["slices_run"] - mark.get("slices_run", 0.0),
                "ults_finished": sample["ults_finished"]
                - mark.get("ults_finished", 0.0),
            }
            self._xstream_marks[name] = sample
        return samples

    # ------------------------------------------------------------------
    # pool hooks (ULT scheduling latency; one None-check when disabled)
    # ------------------------------------------------------------------
    def _note_pool_push(self, pool: Any, ult: Any) -> None:
        ult.profile_enqueued_at = self.kernel.now

    def _note_pool_pop(self, pool: Any, ult: Any) -> None:
        enqueued = ult.profile_enqueued_at
        if enqueued is None:
            return  # pushed before profiling started
        latency = self.kernel.now - enqueued
        ult.profile_enqueued_at = None
        self._sched_hist.labels(pool=pool.name).observe(latency)
        self.store.current.observe_phase(f"pool/{pool.name}", "sched", latency)

    # ------------------------------------------------------------------
    # monitor hooks (RPC latency decomposition)
    # ------------------------------------------------------------------
    def _phase(self, request: Any, phase: str, value: float) -> None:
        rpc_key = f"{request.rpc_name}/{request.provider_id}"
        self._phase_hist.labels(
            rpc=request.rpc_name, provider=str(request.provider_id), phase=phase
        ).observe(value)
        self.store.current.observe_phase(rpc_key, phase, value)

    # client side ------------------------------------------------------
    def on_forward_start(self, time: float, margo: Any, request: Any) -> None:
        request._profile_fwd_start = time

    def on_forward_sent(self, time: float, margo: Any, request: Any) -> None:
        started = getattr(request, "_profile_fwd_start", None)
        if started is not None:
            self._phase(request, "client_queue", time - started)
        setattr(request, _SENT_STAMP, time)

    def on_response_received(
        self, time: float, margo: Any, request: Any, response: Any, elapsed: float
    ) -> None:
        responded = getattr(response, _RESPONDED_STAMP, None)
        if responded is not None:
            self._phase(request, "respond", time - responded)
        self._phase(request, "total", elapsed)
        if self._keep_waterfalls:
            self._maybe_record_waterfall(time, request, response)

    # server side ------------------------------------------------------
    def on_request_received(self, time: float, margo: Any, request: Any) -> None:
        sent = getattr(request, _SENT_STAMP, None)
        if sent is not None:
            self._phase(request, "network", time - sent)
        request._profile_received_at = time

    def on_ult_start(
        self, time: float, margo: Any, request: Any, queued_for: float
    ) -> None:
        self._phase(request, "server_queue", queued_for)
        self.store.current.note_request(
            _provider_key(request.rpc_name, request.provider_id),
            request.payload_size,
        )
        request._profile_ult_start_at = time

    def on_ult_complete(
        self, time: float, margo: Any, request: Any, duration: float, queued_for: float
    ) -> None:
        self._phase(request, "handler", duration)
        setattr(request, _ULT_END_STAMP, time)

    def on_respond(self, time: float, margo: Any, request: Any, response: Any) -> None:
        self.store.current.note_response(
            _provider_key(request.rpc_name, request.provider_id),
            response.payload_size,
        )
        setattr(response, _RESPONDED_STAMP, time)

    # waterfall assembly (client side, all stamps present) -------------
    def _maybe_record_waterfall(self, now: float, request: Any, response: Any) -> None:
        fwd_start = getattr(request, "_profile_fwd_start", None)
        sent = getattr(request, _SENT_STAMP, None)
        received = getattr(request, "_profile_received_at", None)
        ult_start = getattr(request, "_profile_ult_start_at", None)
        ult_end = getattr(request, _ULT_END_STAMP, None)
        if None in (fwd_start, sent, received, ult_start, ult_end):
            return  # peer not profiled: no cross-process stamps
        self.waterfalls.append(
            {
                "trace_id": request.trace_id,
                "span_id": request.span_id,
                "rpc": request.rpc_name,
                "provider": request.provider_id,
                "process": self.margo.process.name,
                "start": fwd_start,
                "end": now,
                "phases": [
                    {"phase": "client_queue", "start": fwd_start, "end": sent},
                    {"phase": "network", "start": sent, "end": received},
                    {"phase": "server_queue", "start": received, "end": ult_start},
                    {"phase": "handler", "start": ult_start, "end": ult_end},
                    {"phase": "respond", "start": ult_end, "end": now},
                ],
            }
        )

    # ------------------------------------------------------------------
    # queries (served by the Bedrock introspection RPCs)
    # ------------------------------------------------------------------
    def profile(self, last: Optional[int] = None) -> dict[str, Any]:
        """The closed-window rollups as one deterministic document."""
        doc = self.store.to_json(last)
        doc["process"] = self.margo.process.name
        return doc

    def utilization(self) -> dict[str, Any]:
        """The latest closed window's utilization + provider rates (the
        reconfiguration controller's per-process input)."""
        latest = self.store.latest()
        return {
            "process": self.margo.process.name,
            "time": self.kernel.now,
            "window_index": latest["index"] if latest else None,
            "window": self.store.window,
            "providers": dict(latest["providers"]) if latest else {},
            "pools": dict(latest["pools"]) if latest else {},
            "xstreams": dict(latest["xstreams"]) if latest else {},
        }
