"""ContinuousProfiler: sampling + RPC latency decomposition for one
Margo instance.

Two data paths feed one :class:`~.store.ProfileStore`:

* **Sampling** -- a kernel timer aligned to window boundaries
  (``k * profile_window`` simulated seconds, via ``kernel.schedule_at``)
  samples every pool (queue depth, push/pop deltas, ULT scheduling
  latency) and every xstream (busy vs idle time, slices, completed
  ULTs), then closes the window into the bounded ring.  Pools report
  scheduling latency through a one-``None``-check hook
  (``pool._profiler``), mirroring the race layer's zero-cost-when-off
  discipline; with profiling disabled nothing here exists at all.

* **Decomposition** -- the profiler doubles as a monitor (same hook
  contract as :class:`~repro.observability.tracer.Tracer`): every
  forwarded RPC is broken into *client queue -> network ->
  server queue -> handler -> respond* phases.  The halves of a phase
  observed on different processes meet through timestamp stamps on the
  in-flight request/response objects (one simulated clock, so cross-
  process subtraction is exact).  Phases are recorded as histogram
  metrics in ``margo.metrics`` and as per-window aggregates; completed
  five-phase waterfalls land in a bounded ring for
  ``tools.profile_report`` and the Chrome-trace exporter.

Determinism: all timestamps are simulated; windows, rings, and JSON
reductions are seed-pure, so ``get_profile`` documents are byte-
identical across identical runs (tested, including under
``REPRO_SANITIZE=race`` record mode).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ...mercury.hg import STATUS_OK
from .store import PHASES, ProfileStore

__all__ = ["ContinuousProfiler", "PHASES"]

#: Attribute names stamped on in-flight RPCRequest/RPCResponse objects
#: (plain dataclasses, shared across the simulated wire) so the two
#: endpoint profilers can close cross-process phases exactly.
_SENT_STAMP = "_profile_sent_at"
_ULT_END_STAMP = "_profile_ult_end_at"
_RESPONDED_STAMP = "_profile_responded_at"
#: Sampling decision stamp: 0 = not sampled (skip all decomposition),
#: N >= 1 = sampled with weight N.  Whichever endpoint profiler sees the
#: request first decides, so both halves agree and cross-process phases
#: stay complete; the weight travels with the request so a peer with a
#: different ``profile_sample_every`` still counts it correctly.  Public
#: because the Margo emit layer reads it to skip dispatching request
#: hooks for sampled-out requests (the per-request ``observed``
#: decision in ``MargoInstance.forward`` / ``_dispatch_request``).
SAMPLE_STAMP = "_profile_sample_weight"
_SAMPLE_STAMP = SAMPLE_STAMP


def _provider_key(rpc_name: str, provider_id: int) -> str:
    """``"<component>:<provider_id>"`` -- RPC names follow the
    ``<component_type>_<operation>`` convention, so the text before the
    first underscore identifies the component type."""
    return f"{rpc_name.split('_', 1)[0]}:{provider_id}"


class ContinuousProfiler:
    """Continuous profiling for one :class:`MargoInstance`.

    Created by the Margo runtime when ``observability.profiling`` is on;
    attach it to the instance's monitor list for the decomposition hooks
    and call :meth:`start` to begin window sampling.
    """

    #: Every request-scoped hook of this monitor is a no-op for a
    #: request stamped ``SAMPLE_STAMP == 0``, so the emit layer may skip
    #: dispatch (and the modeled monitoring charge) entirely for
    #: sampled-out requests when all attached monitors declare this.
    respects_profile_sampling = True

    def __init__(
        self,
        margo: Any,
        window: float = 1.0,
        history: int = 64,
        waterfalls: int = 32,
        sample_every: int = 1,
    ) -> None:
        self.margo = margo
        self.kernel = margo.kernel
        self.store = ProfileStore(window=window, history=history)
        self.store.open_window(self.store.window_index(self.kernel.now))
        #: Adaptive observer sampling (ISSUE 6 / ROADMAP item 3):
        #: decompose every Nth RPC only.  The decision counter is a
        #: plain modulo sequence -- deterministic, no RNG draw.
        self.sample_every = max(1, int(sample_every))
        self._sample_seq = 0
        #: Sched-latency duty cycle: pools stamp push times only while
        #: this is True.  With ``sample_every == 1`` it is always True;
        #: otherwise :meth:`_tick` opens a burst of ``window /
        #: sample_every`` simulated seconds at each window boundary
        #: (same 1/N budget as RPC decomposition, deterministic because
        #: burst edges are kernel-scheduled at fixed simulated times).
        #: A flag instead of a per-push modulo keeps ``Pool.push`` --
        #: the hottest call site in the system -- at two attribute
        #: loads when profiling is on but the push is sampled out.
        self._sched_on = self.sample_every == 1
        #: Subscribers called with each closed window document (the
        #: per-process SLO engine evaluates burn rates here).
        self.on_window_close: list[Callable[[dict[str, Any]], None]] = []
        #: The attached mochi-xray recorder, if any (set by
        #: :class:`~repro.observability.xray.XrayRecorder`): pool pops
        #: report causal sched edges through one extra None-check.
        self._xray: Optional[Any] = None
        #: Recent complete per-RPC waterfalls (bounded ring; the MCH004
        #: sanctioned pattern -- a profiler must never grow unboundedly).
        self.waterfalls: deque[dict[str, Any]] = deque(maxlen=max(1, waterfalls))
        self._keep_waterfalls = waterfalls > 0
        self._timer: Optional[Any] = None
        self._running = False
        # Last cumulative counters per pool/xstream, for window deltas.
        self._pool_marks: dict[str, tuple[int, int]] = {}
        self._xstream_marks: dict[str, dict[str, float]] = {}
        # Phase histograms (labelled) in the process registry, so phase
        # distributions export alongside every other metric.
        self._phase_hist = margo.metrics.histogram(
            "margo_rpc_phase_seconds",
            "per-RPC latency decomposition (client_queue/network/"
            "server_queue/handler/respond/total)",
            label_names=("rpc", "provider", "phase"),
        )
        self._sched_hist = margo.metrics.histogram(
            "margo_pool_sched_latency_seconds",
            "pool push-to-pop latency of ULTs (scheduling delay)",
            label_names=("pool",),
        )
        # Bounded label-handle caches (keys: registered rpc x phase and
        # pool names): labels() re-derives its series key per call, too
        # hot for the per-phase decomposition path.
        self._phase_series: dict[tuple[str, int, str], Any] = {}
        self._sched_series: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Hook every pool and begin boundary ticking."""
        if self._running:
            return
        self._running = True
        for pool in self.margo.pools.values():
            pool._profiler = self
        if self.sample_every > 1:
            self._begin_sched_burst()
        self._schedule_next_tick()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for pool in self.margo.pools.values():
            if pool._profiler is self:
                pool._profiler = None
                # Sampled-out pushes never touch the stamp (see
                # Pool.push), so the no-stale-stamp invariant relies on
                # every stamped ULT being popped under a live profiler;
                # detaching mid-queue would break it without this sweep.
                for ult in pool._queue:
                    ult.profile_enqueued_at = None
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _begin_sched_burst(self) -> None:
        self._sched_on = True
        self.kernel.schedule(
            self.store.window / self.sample_every, self._end_sched_burst
        )

    def _end_sched_burst(self) -> None:
        if self.sample_every > 1:
            self._sched_on = False

    def _schedule_next_tick(self) -> None:
        boundary = (self.store.current.index + 1) * self.store.window
        self._timer = self.kernel.schedule_at(boundary, self._tick, boundary)

    def _tick(self, boundary: float) -> None:
        if not self._running or self.margo.finalized:
            self._running = False
            return
        doc = self.store.close_current(
            self._sample_pools(), self._sample_xstreams()
        )
        for callback in list(self.on_window_close):
            callback(doc)
        if self.sample_every > 1:
            self._begin_sched_burst()
        self._schedule_next_tick()

    # ------------------------------------------------------------------
    # sampling (window boundaries)
    # ------------------------------------------------------------------
    def _sample_pools(self) -> dict[str, dict[str, float]]:
        samples: dict[str, dict[str, float]] = {}
        for name in sorted(self.margo.pools):
            pool = self.margo.pools[name]
            # New pools (runtime reconfiguration) get hooked lazily.
            if pool._profiler is None and self._running:
                pool._profiler = self
            last_pushed, last_popped = self._pool_marks.get(name, (0, 0))
            samples[name] = {
                "depth": float(pool.size),
                "pushed": float(pool.total_pushed - last_pushed),
                "popped": float(pool.total_popped - last_popped),
            }
            self._pool_marks[name] = (pool.total_pushed, pool.total_popped)
        return samples

    def _sample_xstreams(self) -> dict[str, dict[str, float]]:
        window = self.store.window
        samples: dict[str, dict[str, float]] = {}
        for name in sorted(self.margo.xstreams):
            xstream = self.margo.xstreams[name]
            sample = xstream.sample()
            mark = self._xstream_marks.get(name, {})
            busy = sample["busy_time"] - mark.get("busy_time", 0.0)
            utilization = min(1.0, busy / window) if window > 0 else 0.0
            samples[name] = {
                "busy": busy,
                "idle": max(0.0, window - busy),
                "utilization": utilization,
                "slices": sample["slices_run"] - mark.get("slices_run", 0.0),
                "ults_finished": sample["ults_finished"]
                - mark.get("ults_finished", 0.0),
            }
            self._xstream_marks[name] = sample
        return samples

    # ------------------------------------------------------------------
    # pool hooks (ULT scheduling latency; one None-check when disabled)
    # ------------------------------------------------------------------
    # The push-side decision (stamp ``ult.profile_enqueued_at`` while a
    # sched burst is open, leave it untouched otherwise) lives inline in
    # ``Pool.push``: it runs for every ULT in the system, so even a
    # single helper call per push was measurably hot.  Push/pop always
    # agree on a given ULT because the stamp itself carries the
    # decision; ``_sched_on`` only gates who gets stamped.

    def _note_pool_pop(self, pool: Any, ult: Any) -> None:
        enqueued = ult.profile_enqueued_at
        if enqueued is None:
            return  # sampled out, or pushed before profiling started
        latency = self.kernel.now - enqueued
        ult.profile_enqueued_at = None
        cached = self._sched_series.get(pool.name)
        if cached is None:
            cached = self._sched_series[pool.name] = (
                self._sched_hist.labels(pool=pool.name),
                f"pool/{pool.name}",
            )
        series, pool_key = cached
        series.observe(latency)
        self.store.current.observe_phase(pool_key, "sched", latency)
        if self._xray is not None:
            # Causal sched edge for a sampled request: the edge list's
            # existence (stamped at forward time) is the gate.
            context = ult.rpc_context
            if context is not None:
                edges = getattr(context, "_xray_edges", None)
                if edges is not None:
                    edges.append(("sched", pool.name, latency))

    # ------------------------------------------------------------------
    # monitor hooks (RPC latency decomposition)
    # ------------------------------------------------------------------
    def _phase(self, request: Any, phase: str, value: float) -> None:
        cached = self._phase_series.get((request.rpc_name, request.provider_id, phase))
        if cached is None:
            cached = self._phase_series[
                (request.rpc_name, request.provider_id, phase)
            ] = (
                self._phase_hist.labels(
                    rpc=request.rpc_name,
                    provider=str(request.provider_id),
                    phase=phase,
                ),
                f"{request.rpc_name}/{request.provider_id}",
            )
        series, rpc_key = cached
        series.observe(value)
        self.store.current.observe_phase(rpc_key, phase, value)

    def _sample_weight(self, request: Any) -> int:
        """The request's sampling weight: 0 to skip decomposition, N >=
        1 to record it standing for N requests.  First profiler to see
        the request decides and stamps; later hooks (either endpoint)
        reuse the stamp.  The Margo RPC paths call this before the first
        lifecycle hook so that a sampled-out request never pays a single
        monitor dispatch; the hooks below read the stamp directly and
        only fall back here for a request stamped by neither endpoint
        (profiler attached mid-flight)."""
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            if self.sample_every == 1:
                weight = 1
            else:
                self._sample_seq += 1
                weight = (
                    self.sample_every
                    if self._sample_seq % self.sample_every == 1
                    else 0
                )
            setattr(request, _SAMPLE_STAMP, weight)
        return weight

    # client side ------------------------------------------------------
    def on_forward_start(self, time: float, margo: Any, request: Any) -> None:
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            weight = self._sample_weight(request)
        if not weight:
            return
        request._profile_fwd_start = time

    def on_forward_sent(self, time: float, margo: Any, request: Any) -> None:
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            weight = self._sample_weight(request)
        if not weight:
            return
        started = getattr(request, "_profile_fwd_start", None)
        if started is not None:
            self._phase(request, "client_queue", time - started)
        setattr(request, _SENT_STAMP, time)

    def on_response_received(
        self, time: float, margo: Any, request: Any, response: Any, elapsed: float
    ) -> None:
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            weight = self._sample_weight(request)
        if not weight:
            return
        responded = getattr(response, _RESPONDED_STAMP, None)
        if responded is not None:
            self._phase(request, "respond", time - responded)
        self._phase(request, "total", elapsed)
        if self._keep_waterfalls:
            self._maybe_record_waterfall(time, request, response)

    # server side ------------------------------------------------------
    def on_request_received(self, time: float, margo: Any, request: Any) -> None:
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            weight = self._sample_weight(request)
        if not weight:
            return
        sent = getattr(request, _SENT_STAMP, None)
        if sent is not None:
            self._phase(request, "network", time - sent)
        request._profile_received_at = time

    def on_ult_start(
        self, time: float, margo: Any, request: Any, queued_for: float
    ) -> None:
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            weight = self._sample_weight(request)
        if not weight:
            return
        self._phase(request, "server_queue", queued_for)
        self.store.current.note_request(
            _provider_key(request.rpc_name, request.provider_id),
            request.payload_size,
            weight=weight,
        )
        request._profile_ult_start_at = time

    def on_ult_complete(
        self, time: float, margo: Any, request: Any, duration: float, queued_for: float
    ) -> None:
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            weight = self._sample_weight(request)
        if not weight:
            return
        self._phase(request, "handler", duration)
        setattr(request, _ULT_END_STAMP, time)

    def on_respond(self, time: float, margo: Any, request: Any, response: Any) -> None:
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            weight = self._sample_weight(request)
        if not weight:
            return
        self.store.current.note_response(
            _provider_key(request.rpc_name, request.provider_id),
            response.payload_size,
            error=response.status != STATUS_OK,
            weight=weight,
        )
        setattr(response, _RESPONDED_STAMP, time)

    # waterfall assembly (client side, all stamps present) -------------
    def _maybe_record_waterfall(self, now: float, request: Any, response: Any) -> None:
        fwd_start = getattr(request, "_profile_fwd_start", None)
        sent = getattr(request, _SENT_STAMP, None)
        received = getattr(request, "_profile_received_at", None)
        ult_start = getattr(request, "_profile_ult_start_at", None)
        ult_end = getattr(request, _ULT_END_STAMP, None)
        if None in (fwd_start, sent, received, ult_start, ult_end):
            return  # peer not profiled: no cross-process stamps
        self.waterfalls.append(
            {
                "trace_id": request.trace_id,
                "span_id": request.span_id,
                "rpc": request.rpc_name,
                "provider": request.provider_id,
                "process": self.margo.process.name,
                "weight": getattr(request, _SAMPLE_STAMP, 1),
                "start": fwd_start,
                "end": now,
                "phases": [
                    {"phase": "client_queue", "start": fwd_start, "end": sent},
                    {"phase": "network", "start": sent, "end": received},
                    {"phase": "server_queue", "start": received, "end": ult_start},
                    {"phase": "handler", "start": ult_start, "end": ult_end},
                    {"phase": "respond", "start": ult_end, "end": now},
                ],
            }
        )

    # ------------------------------------------------------------------
    # queries (served by the Bedrock introspection RPCs)
    # ------------------------------------------------------------------
    def profile(self, last: Optional[int] = None) -> dict[str, Any]:
        """The closed-window rollups as one deterministic document."""
        doc = self.store.to_json(last)
        doc["process"] = self.margo.process.name
        return doc

    def utilization(self) -> dict[str, Any]:
        """The latest closed window's utilization + provider rates (the
        reconfiguration controller's per-process input)."""
        latest = self.store.latest()
        return {
            "process": self.margo.process.name,
            "time": self.kernel.now,
            "window_index": latest["index"] if latest else None,
            "window": self.store.window,
            "providers": dict(latest["providers"]) if latest else {},
            "pools": dict(latest["pools"]) if latest else {},
            "xstreams": dict(latest["xstreams"]) if latest else {},
        }
