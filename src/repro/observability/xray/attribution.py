"""Tail-latency attribution: differential p99-vs-p50 profiles.

Given a set of recorded critical-path records (see
:mod:`repro.observability.xray.plane`), attribute *why the tail is the
tail*: for every ``(process, pool, phase)`` segment that appears on any
recorded path, compare its mean duration inside the p99 cohort (the
slowest ~1% of requests) against its mean inside the p50 cohort (the
fast half).  The difference -- the segment's **excess** -- is simulated
seconds of latency that tail requests spend in that segment *beyond*
what a median request spends there.  A cost every request pays equally
(baseline network latency, the handler's intrinsic compute) cancels
out; only the costs that separate the tail from the body survive, which
is exactly the set of costs a reconfiguration can hope to remove.

Everything here is pure and deterministic: nearest-rank quantiles over
ascending sorts, lexicographic tie-breaks, no RNG, no wall clock.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["attribute_paths", "nearest_rank", "segment_key"]


def nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted list (0.0 if empty).

    ``rank = ceil(q * n)`` with a small epsilon so exact products (e.g.
    ``0.5 * 10``) do not round up through float noise.
    """
    n = len(sorted_values)
    if n == 0:
        return 0.0
    rank = min(n, max(1, math.ceil(q * n - 1e-9)))
    return sorted_values[rank - 1]


def segment_key(segment: dict[str, Any]) -> tuple[str, str, str]:
    return (segment["process"], segment["pool"], segment["phase"])


def _cohort_means(cohort: list[dict[str, Any]]) -> dict[tuple[str, str, str], float]:
    """Mean per-(process, pool, phase) duration over a cohort of path
    records.  A path without the segment contributes 0 to the mean (the
    segment's cost is averaged over the *cohort*, not over the paths
    that happened to contain it -- otherwise a segment seen on a single
    slow path would dwarf one seen on every slow path)."""
    sums: dict[tuple[str, str, str], float] = {}
    for record in cohort:
        for segment in record["segments"]:
            key = segment_key(segment)
            sums[key] = sums.get(key, 0.0) + segment["duration"]
    count = len(cohort)
    return {key: total / count for key, total in sums.items()}


def attribute_paths(paths: list[dict[str, Any]]) -> dict[str, Any]:
    """The differential tail profile of a set of path records.

    Returns a deterministic document::

        {"requests": n, "requests_weighted": N, "p50": ..., "p99": ...,
         "segments": [{"process", "pool", "phase",
                       "p99_mean", "p50_mean", "excess"}, ...]}

    with segments ranked by descending excess (ties broken
    lexicographically by key), so ``segments[0]`` names the bottleneck.
    """
    if not paths:
        return {
            "requests": 0,
            "requests_weighted": 0,
            "p50": 0.0,
            "p99": 0.0,
            "segments": [],
        }
    totals = sorted(record["total"] for record in paths)
    p50 = nearest_rank(totals, 0.50)
    p99 = nearest_rank(totals, 0.99)
    n = len(paths)
    # Tail cohort: the slowest max(1, n // 100) records, ties broken by
    # (trace_id, span_id) so the cohort is a deterministic set.
    tail_count = max(1, n // 100)
    by_slowest = sorted(
        paths, key=lambda r: (-r["total"], r["trace_id"], r["span_id"])
    )
    tail = by_slowest[:tail_count]
    body = [record for record in paths if record["total"] <= p50] or list(paths)
    tail_means = _cohort_means(tail)
    body_means = _cohort_means(body)
    segments = []
    for key in sorted(set(tail_means) | set(body_means)):
        tail_mean = tail_means.get(key, 0.0)
        body_mean = body_means.get(key, 0.0)
        segments.append(
            {
                "process": key[0],
                "pool": key[1],
                "phase": key[2],
                "p99_mean": tail_mean,
                "p50_mean": body_mean,
                "excess": tail_mean - body_mean,
            }
        )
    segments.sort(key=lambda s: (-s["excess"], s["process"], s["pool"], s["phase"]))
    return {
        "requests": n,
        "requests_weighted": sum(record.get("weight", 1) for record in paths),
        "p50": p50,
        "p99": p99,
        "segments": segments,
    }
