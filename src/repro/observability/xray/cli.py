"""``repro-xray``: run a known-bottleneck scenario and print the
tail-latency attribution plus the what-if ranking.

Examples::

    repro-xray pool
    repro-xray lock --seed 11 --format json
    python -m repro.observability.xray network
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

__all__ = ["main"]


def _render_text(doc: dict) -> None:
    attribution = doc["attribution"]
    print(
        f"scenario {doc['scenario']} (seed {doc['seed']}): "
        f"{doc['requests']} recorded paths, {doc['windows']} windows"
    )
    print(
        f"p50 {attribution['p50'] * 1e3:.3f} ms   "
        f"p99 {attribution['p99'] * 1e3:.3f} ms"
    )
    print("tail attribution (p99 cohort mean - p50 cohort mean):")
    for segment in attribution["segments"][:6]:
        where = segment["pool"] or "-"
        print(
            f"  {segment['excess'] * 1e3:>9.3f} ms  {segment['phase']:<12} "
            f"{segment['process']} [{where}]"
        )
    print("what-if ranking (virtual speedup, shrink "
          f"{doc['whatif']['shrink']:.0%}):")
    for action in doc["whatif"]["actions"]:
        print(
            f"  {action['predicted_improvement']:>6.1%} p99  "
            f"{action['action']} {action['target']} on {action['process']}"
        )
    top = doc["top_action"]
    if top is not None:
        print(
            f"recommendation: {top['action']} {top['target']} "
            f"(predicted p99 {top['predicted_p99'] * 1e3:.3f} ms)"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .scenarios import SCENARIOS

    names = [name for name, _fn in SCENARIOS]
    parser = argparse.ArgumentParser(
        prog="repro-xray",
        description="mochi-xray: critical-path tracing, tail-latency "
        "attribution, and what-if analysis on a synthetic bottleneck.",
    )
    parser.add_argument(
        "scenario", choices=names, help="which injected bottleneck to run"
    )
    parser.add_argument("--seed", type=int, default=7, help="simulation seed")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    args = parser.parse_args(argv)
    doc = dict(SCENARIOS)[args.scenario](seed=args.seed)
    if args.fmt == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        _render_text(doc)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
