"""Critical-path extraction over the span tree and recorded edges.

Two complementary views of "what gated this request":

* :func:`critical_span_ids` / :func:`critical_chain` walk the PR-1 span
  tree (client op -> wire -> queue -> handler -> respond) and follow,
  at every node, the child whose *end* time is latest -- the child that
  gated the parent's completion.  The walk marks the longest blocking
  chain from the client ``forward`` span down to the leaf that finished
  last, which is the per-trace critical path at span granularity.

* The per-request **path records** assembled by
  :class:`~repro.observability.xray.plane.XrayRecorder` refine the
  handler span with the causal edges sampled inside the server (pool
  scheduling waits, ``UltMutex`` convoys, ``UltEvent`` parks); their
  ``segments`` lists are already in causal order, so a record *is* its
  own critical path.  :func:`format_path_record` renders one.

Ties in the walk break toward the smallest span id, so the chain is
deterministic even when children end at the same simulated instant.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "critical_chain",
    "critical_span_ids",
    "format_path_record",
]


def _pick(nodes: list[dict[str, Any]]) -> Optional[dict[str, Any]]:
    """The node that finished last (ties to the smallest span id)."""
    best = None
    for node in nodes:
        span = node["span"]
        key = (-span["end"], span["span_id"])
        if best is None or key < best[0]:
            best = (key, node)
    return best[1] if best else None


def critical_chain(spans: list[Any], trace_id: str) -> list[dict[str, Any]]:
    """The critical path of one trace as an ordered list of span JSON
    documents, root first.  Empty when the trace has no spans."""
    from ..exporters import build_trace_tree  # late: exporters imports us lazily

    roots = build_trace_tree(spans, trace_id)
    chain: list[dict[str, Any]] = []
    node = _pick(roots)
    while node is not None:
        chain.append(node["span"])
        node = _pick(node["children"])
    return chain


def critical_span_ids(spans: list[Any], trace_id: str) -> set[str]:
    """Span ids on the trace's critical path (for exporter highlighting)."""
    return {span["span_id"] for span in critical_chain(spans, trace_id)}


def format_path_record(record: dict[str, Any]) -> list[str]:
    """Render one recorded path as indented report lines."""
    lines = [
        "trace {trace_id} {rpc}/{provider} {client} -> {server}  "
        "total {total:.6f}s (weight {weight})".format(**record)
    ]
    for segment in record["segments"]:
        where = segment["pool"] or "-"
        lines.append(
            f"  {segment['phase']:<12} {segment['duration']:>10.6f}s"
            f"  {segment['process']} [{where}]"
        )
    return lines
