"""The xray recording plane: causal edges -> path records -> windows.

Architecture mirrors the health plane (PR 6): one kernel-shared
:class:`XrayPlane` per simulation (attached as ``kernel.xray_plane``)
aggregates what every endpoint records, and one per-Margo
:class:`XrayRecorder` -- an ordinary monitor -- assembles path records
on the client side when a sampled request completes.

Recording rides the profiler's every-Nth ``SAMPLE_STAMP`` decision
end to end:

* ``on_forward_start`` (client): if the request is sampled, attach an
  empty ``_xray_edges`` list to it.  The list's *existence* is the only
  gate every downstream hook checks, so sampled-out requests cost the
  hot paths nothing beyond the checks they already paid for profiling.
* server-side hot paths append ``(kind, name, duration)`` edge tuples:
  ``("sched", pool, wait)`` from the profiler's pool-pop hook,
  ``("lock", mutex, wait)`` from a contended ``UltMutex.acquire``,
  ``("park", event, wait)`` from ``UltEvent.wait``.  The request object
  crosses the simulated wire by reference, so the client sees them.
* ``on_response_received`` (client): combine the profiler's cross-
  process phase stamps with the collected edges into one **path
  record** -- the request's critical path, segments in causal order --
  and hand it to the plane.

At every closed profiler window the plane runs tail-latency
attribution (:func:`~.attribution.attribute_paths`) and the what-if
engine (:func:`~.whatif.what_if`) over the window's records and
appends the resulting document to a bounded ring, which Bedrock's
``get_attribution`` / ``get_critical_path`` RPCs serve.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..profile.profiler import _SAMPLE_STAMP, _SENT_STAMP, _ULT_END_STAMP
from .attribution import attribute_paths
from .whatif import what_if

__all__ = ["EDGES_ATTR", "XrayPlane", "XrayRecorder"]

#: Attribute holding the per-request causal-edge list.  Present on a
#: request if and only if the request is sampled *and* some xray
#: recorder saw it leave a client -- the single gate every edge source
#: checks before paying any recording cost.
EDGES_ATTR = "_xray_edges"


class XrayPlane:
    """Kernel-shared sink for path records + per-window analyses.

    Bounded everywhere: at most ``max_paths`` records per window (the
    overflow is counted, never silently dropped), ``max_paths`` recent
    records for ``get_critical_path``, and ``history`` closed windows.
    """

    def __init__(self, kernel: Any, max_paths: int = 256, history: int = 64) -> None:
        self.kernel = kernel
        self.max_paths = max(1, int(max_paths))
        self.history = max(1, int(history))
        #: Most recent complete path records (survives window closes).
        self.recent: deque[dict[str, Any]] = deque(maxlen=self.max_paths)
        #: Closed-window analysis documents.
        self.windows: deque[dict[str, Any]] = deque(maxlen=self.history)
        self._window_paths: list[dict[str, Any]] = []
        self._window_drops = 0
        self._closed_through = -1

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add_path(self, record: dict[str, Any]) -> None:
        self.recent.append(record)
        if len(self._window_paths) < self.max_paths:
            self._window_paths.append(record)
        else:
            self._window_drops += 1

    def close_window(self, index: int, start: float, end: float) -> Optional[dict]:
        """Analyze and close one profiler window.  Every endpoint's
        profiler ticks the same aligned boundaries, so this is
        idempotent per index: the first caller closes, the rest no-op."""
        if index <= self._closed_through:
            return None
        self._closed_through = index
        paths, self._window_paths = self._window_paths, []
        drops, self._window_drops = self._window_drops, 0
        attribution = attribute_paths(paths)
        doc = {
            "index": index,
            "start": start,
            "end": end,
            "requests": len(paths),
            "dropped_paths": drops,
            "attribution": attribution,
            "whatif": what_if(paths, attribution),
        }
        self.windows.append(doc)
        return doc

    # ------------------------------------------------------------------
    # queries (served by Bedrock)
    # ------------------------------------------------------------------
    def attribution(self, last: Optional[int] = None) -> list[dict[str, Any]]:
        """The last ``last`` closed-window analysis documents (all
        retained windows when ``last`` is None)."""
        windows = list(self.windows)
        if last is not None:
            last = int(last)
            windows = windows[-last:] if last > 0 else []
        return windows

    def critical_paths(
        self, last: Optional[int] = None, trace_id: Optional[str] = None
    ) -> list[dict[str, Any]]:
        """Recent path records, optionally filtered to one trace."""
        records = list(self.recent)
        if trace_id is not None:
            records = [r for r in records if r["trace_id"] == trace_id]
        if last is not None:
            last = int(last)
            records = records[-last:] if last > 0 else []
        return records


class XrayRecorder:
    """Per-Margo monitor assembling path records on the client side.

    Requires an attached :class:`ContinuousProfiler` (the spec enforces
    ``xray`` implies ``profiling``): the recorder shares its sampling
    decision, its cross-process phase stamps, and its window boundaries.
    """

    #: Same contract as the profiler: every request-scoped hook no-ops
    #: for ``SAMPLE_STAMP == 0`` requests, so the emit layer may skip
    #: dispatching hooks for sampled-out requests entirely.
    respects_profile_sampling = True

    def __init__(self, margo: Any, max_paths: int = 256) -> None:
        self.margo = margo
        self.kernel = margo.kernel
        profiler = margo.profiler
        plane = getattr(self.kernel, "xray_plane", None)
        if plane is None:
            # First xray-enabled process creates the shared plane; its
            # sizing wins (documented in DESIGN.md section 12).
            plane = XrayPlane(
                self.kernel,
                max_paths=max_paths,
                history=profiler.store.windows.maxlen or 64,
            )
            self.kernel.xray_plane = plane
        self.plane = plane
        profiler._xray = self
        profiler.on_window_close.append(self._observe_window)

    def _observe_window(self, doc: dict[str, Any]) -> None:
        self.plane.close_window(doc["index"], doc["start"], doc["end"])

    # ------------------------------------------------------------------
    # monitor hooks (client side)
    # ------------------------------------------------------------------
    def on_forward_start(self, time: float, margo: Any, request: Any) -> None:
        weight = getattr(request, _SAMPLE_STAMP, None)
        if weight is None:
            weight = self.margo.profiler._sample_weight(request)
        if not weight:
            return
        setattr(request, EDGES_ATTR, [])

    def on_response_received(
        self, time: float, margo: Any, request: Any, response: Any, elapsed: float
    ) -> None:
        edges = getattr(request, EDGES_ATTR, None)
        if edges is None:
            return
        fwd_start = getattr(request, "_profile_fwd_start", None)
        sent = getattr(request, _SENT_STAMP, None)
        received = getattr(request, "_profile_received_at", None)
        ult_start = getattr(request, "_profile_ult_start_at", None)
        ult_end = getattr(request, _ULT_END_STAMP, None)
        if None in (fwd_start, sent, received, ult_start, ult_end):
            return  # peer not profiled: cross-process stamps missing
        client = self.margo.process.name
        server = request.dst_address.rsplit("/", 1)[-1]
        segments = [
            {
                "process": client,
                "pool": "",
                "phase": "client_queue",
                "duration": sent - fwd_start,
            },
            {
                "process": f"{client}->{server}",
                "pool": "wire",
                "phase": "network",
                "duration": received - sent,
            },
        ]
        sched_pool = ""
        blocked = 0.0
        waits = []
        for kind, name, duration in edges:
            if kind == "sched":
                # Only the dispatch wait is the "sched" segment; a
                # requeue after a lock/park wakeup is already inside
                # that edge's duration (waiters measure to re-run).
                if not sched_pool:
                    sched_pool = name
                continue
            blocked += duration
            prefix = "mutex" if kind == "lock" else "event"
            waits.append(
                {
                    "process": server,
                    "pool": f"{prefix}:{name}",
                    "phase": kind,
                    "duration": duration,
                }
            )
        segments.append(
            {
                "process": server,
                "pool": sched_pool,
                "phase": "sched",
                "duration": ult_start - received,
            }
        )
        segments.extend(waits)
        segments.append(
            {
                "process": server,
                "pool": sched_pool,
                "phase": "handler",
                "duration": max(0.0, (ult_end - ult_start) - blocked),
            }
        )
        segments.append(
            {
                "process": f"{server}->{client}",
                "pool": "wire",
                "phase": "respond",
                "duration": time - ult_end,
            }
        )
        self.plane.add_path(
            {
                "trace_id": request.trace_id,
                "span_id": request.span_id,
                "rpc": request.rpc_name,
                "provider": request.provider_id,
                "weight": getattr(request, _SAMPLE_STAMP, 1),
                "client": client,
                "server": server,
                "start": fwd_start,
                "end": time,
                "total": time - fwd_start,
                "segments": segments,
            }
        )
