"""mochi-xray: per-request critical paths, tail attribution, what-if.

The fourth observer plane (after tracing, profiling, and health): it
turns the other three's measurements into *decisions* by answering, per
closed profiler window, (1) where each sampled request actually blocked
-- :class:`XrayRecorder` / :class:`XrayPlane`; (2) which
``(process, pool, phase)`` segments make the p99 cohort slower than the
p50 cohort -- :func:`attribute_paths`; and (3) which reconfiguration
action would shrink the tail the most -- :func:`what_if`, a Coz-style
virtual-speedup estimate the :class:`~repro.core.service.\
ReconfigurationController` ranks and (optionally) applies.
"""

from .attribution import attribute_paths, nearest_rank, segment_key
from .critical_path import critical_chain, critical_span_ids, format_path_record
from .plane import EDGES_ATTR, XrayPlane, XrayRecorder
from .whatif import SHRINK, candidate_for, what_if

__all__ = [
    "EDGES_ATTR",
    "SHRINK",
    "XrayPlane",
    "XrayRecorder",
    "attribute_paths",
    "candidate_for",
    "critical_chain",
    "critical_span_ids",
    "format_path_record",
    "nearest_rank",
    "segment_key",
    "what_if",
]
