"""Coz-style what-if engine: virtual speedup of candidate actions.

For each high-excess segment of the differential profile, map it to the
reconfiguration action that would plausibly shrink it, then *replay the
recorded paths* with that segment's durations scaled by ``1 - SHRINK``
and re-read the p99 off the virtual totals.  This is causal profiling
in miniature (Curtsinger & Berger's Coz, inverted): instead of slowing
everything else down at run time, we shrink the candidate segment on
paths we already recorded -- valid because one recorded path is a
causal chain, so removing wait time from a segment removes it from that
request's end-to-end latency one-for-one.

The model deliberately ignores second-order effects (shrinking a queue
wait also drains the queue faster for *other* requests), which makes
predictions conservative for queueing bottlenecks: the realized
improvement of adding an xstream is typically *larger* than predicted.
The controller records predicted-vs-realized so the error is visible.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional

from .attribution import nearest_rank, segment_key

__all__ = ["SHRINK", "what_if", "candidate_for"]

#: Fraction of the attributed segment assumed removable by the action.
#: 0.5 is deliberately conservative: adding one xstream to a one-xstream
#: pool at most halves queue waits; a migration relocates roughly half
#: of a convoy's contention.  Documented in DESIGN.md section 12.
SHRINK = 0.5

#: Which reconfiguration verb plausibly shrinks which phase.
_ACTION_FOR_PHASE = {
    "sched": "add_xstream",  # queue wait: more executors on that pool
    "lock": "migrate_provider",  # convoy: split the contenders apart
    "park": "migrate_provider",
    "handler": "migrate_provider",  # compute-bound: offload the provider
    "network": "add_node",  # wire time: spread traffic over more links
    "respond": "add_node",
    "client_queue": "add_node",
}


def candidate_for(
    segment: dict[str, Any], paths: Optional[list[dict[str, Any]]] = None
) -> Optional[dict[str, Any]]:
    """The candidate action for one attributed segment, or None for a
    phase no reconfiguration verb addresses."""
    action = _ACTION_FOR_PHASE.get(segment["phase"])
    if action is None:
        return None
    process = segment["process"]
    if action == "add_xstream":
        return {"action": action, "process": process, "target": segment["pool"]}
    if action == "migrate_provider":
        # Name the provider that dominates this segment: the most common
        # provider id among recorded paths containing the segment (ties
        # to the smallest id, so the choice is deterministic).
        key = segment_key(segment)
        counts: Counter[int] = Counter()
        for record in paths or ():
            if any(segment_key(s) == key for s in record["segments"]):
                counts[record["provider"]] += 1
        provider = min(
            (p for p, c in counts.items() if c == max(counts.values())),
            default=None,
        ) if counts else None
        return {
            "action": action,
            "process": process,
            "target": segment["pool"] or process,
            "provider": provider,
        }
    return {"action": action, "process": process, "target": process}


def what_if(
    paths: list[dict[str, Any]],
    attribution: dict[str, Any],
    shrink: float = SHRINK,
    top: int = 5,
) -> dict[str, Any]:
    """Rank candidate actions by predicted p99 improvement.

    Returns::

        {"p99": ..., "shrink": ...,
         "actions": [{"action", "process", "target", ...,
                      "segment": {...}, "predicted_p99",
                      "predicted_improvement"}, ...]}

    sorted by descending predicted improvement (ties lexicographic by
    action/target), so ``actions[0]`` is the recommendation.
    """
    totals = sorted(record["total"] for record in paths)
    p99 = nearest_rank(totals, 0.99)
    actions: list[dict[str, Any]] = []
    seen: set[tuple[str, str]] = set()
    for segment in attribution.get("segments", [])[:top]:
        if segment["excess"] <= 0.0:
            continue
        candidate = candidate_for(segment, paths)
        if candidate is None:
            continue
        dedup = (candidate["action"], str(candidate["target"]))
        if dedup in seen:
            continue
        seen.add(dedup)
        key = segment_key(segment)
        virtual = []
        for record in paths:
            cut = sum(
                s["duration"]
                for s in record["segments"]
                if segment_key(s) == key
            )
            virtual.append(record["total"] - shrink * cut)
        predicted_p99 = nearest_rank(sorted(virtual), 0.99)
        improvement = (p99 - predicted_p99) / p99 if p99 > 0 else 0.0
        actions.append(
            {
                **candidate,
                "segment": {
                    "process": segment["process"],
                    "pool": segment["pool"],
                    "phase": segment["phase"],
                    "excess": segment["excess"],
                },
                "predicted_p99": predicted_p99,
                "predicted_improvement": improvement,
            }
        )
    actions.sort(
        key=lambda a: (-a["predicted_improvement"], a["action"], str(a["target"]))
    )
    return {"p99": p99, "shrink": shrink, "actions": actions}
