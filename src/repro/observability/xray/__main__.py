"""``python -m repro.observability.xray`` -> the repro-xray CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
