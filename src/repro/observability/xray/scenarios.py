"""Synthetic known-bottleneck scenarios for mochi-xray.

Three deployments, each with one deliberately injected bottleneck, used
by the acceptance tests, the ``repro-xray`` CLI, and the docs:

* ``pool`` -- a one-xstream handler pool fed bursts of concurrent RPCs:
  tail requests queue behind the burst, so the top attributed segment
  is the pool's ``sched`` wait and the top what-if action is
  ``add_xstream`` on that pool.
* ``lock`` -- four xstreams but every handler serializes on one shared
  ``UltMutex``: the convoy's ``lock`` wait dominates the tail and the
  top action is ``migrate_provider`` (split the contenders apart).
* ``network`` -- a deliberately slow cross-node fabric link with
  occasional large payloads: the big transfers *are* the tail, the
  ``network`` wire segment dominates, and the top action is
  ``add_node``.

Every scenario is seed-pure: same seed in, byte-identical JSON out
(asserted in tests, including under ``REPRO_SANITIZE=race``).
"""

from __future__ import annotations

from typing import Any

from ...cluster import Cluster
from ...margo.ult import Compute, UltMutex, UltSleep
from ...sim.network import LinkModel, NetworkConfig
from .attribution import attribute_paths
from .whatif import what_if

__all__ = ["SCENARIOS", "scenario_lock", "scenario_network", "scenario_pool"]

#: Observability mix every scenario endpoint runs with: short windows so
#: a run of a few hundred simulated milliseconds closes several.
_OBS = {
    "tracing": True,
    "profiling": True,
    "profile_window": 0.02,
    "xray": True,
}


def _doc(
    name: str, seed: int, plane: Any, bottleneck: dict[str, Any]
) -> dict[str, Any]:
    """The scenario result: whole-run attribution + ranking (windowed
    analyses stay available on the plane; the aggregate makes the
    acceptance assertions independent of window phasing)."""
    paths = plane.critical_paths()
    attribution = attribute_paths(paths)
    ranking = what_if(paths, attribution)
    return {
        "scenario": name,
        "seed": seed,
        "injected_bottleneck": bottleneck,
        "requests": len(paths),
        "windows": len(plane.windows),
        "attribution": attribution,
        "whatif": ranking,
        "top_segment": attribution["segments"][0] if attribution["segments"] else None,
        "top_action": ranking["actions"][0] if ranking["actions"] else None,
    }


def scenario_pool(seed: int = 7) -> dict[str, Any]:
    """Slow pool: one xstream serving the handler pool, bursty arrivals."""
    cluster = Cluster(seed=seed)
    server = cluster.add_margo(
        "srv",
        node="n0",
        config={
            "argobots": {
                "pools": [{"name": "__primary__"}, {"name": "hot"}],
                "xstreams": [
                    {
                        "name": "__primary__",
                        "scheduler": {"pools": ["__primary__"]},
                    },
                    {"name": "hot_es", "scheduler": {"pools": ["hot"]}},
                ],
            },
            "observability": dict(_OBS),
        },
    )
    client = cluster.add_margo("cli", node="n0", config={"observability": dict(_OBS)})

    def handler(ctx):
        yield Compute(30e-6)
        return ctx.args

    server.register("work", handler, pool="hot")

    def request(delay: float, tag: int):
        yield UltSleep(delay)
        yield from client.forward(server.address, "work", tag)

    # 24 bursts of 10 concurrent requests, 1 ms apart: within a burst
    # the single hot_es xstream serializes the 30 us handlers, so later
    # arrivals queue -- the injected sched bottleneck.
    ults = [
        cluster.spawn(client, request(burst * 1e-3, i))
        for burst in range(24)
        for i in range(10)
    ]
    cluster.wait_ults(ults)
    cluster.run(until=0.1)
    return _doc(
        "pool",
        seed,
        cluster.xray_plane(),
        {"process": "srv", "pool": "hot", "phase": "sched"},
    )


def scenario_lock(seed: int = 7) -> dict[str, Any]:
    """Lock convoy: plenty of xstreams, one shared mutex."""
    cluster = Cluster(seed=seed)
    server = cluster.add_margo(
        "srv",
        node="n0",
        config={
            "argobots": {
                "pools": [{"name": "__primary__"}, {"name": "rpc"}],
                "xstreams": [
                    {
                        "name": "__primary__",
                        "scheduler": {"pools": ["__primary__"]},
                    }
                ]
                + [
                    {"name": f"rpc_es{i}", "scheduler": {"pools": ["rpc"]}}
                    for i in range(4)
                ],
            },
            "observability": dict(_OBS),
        },
    )
    client = cluster.add_margo("cli", node="n0", config={"observability": dict(_OBS)})
    mutex = UltMutex(cluster.kernel, name="convoy")

    def handler(ctx):
        yield from mutex.acquire()
        try:
            yield Compute(40e-6)
        finally:
            mutex.release()
        return ctx.args

    server.register("work", handler, pool="rpc")

    def request(delay: float, tag: int):
        yield UltSleep(delay)
        yield from client.forward(server.address, "work", tag)

    ults = [
        cluster.spawn(client, request(burst * 1e-3, i))
        for burst in range(24)
        for i in range(10)
    ]
    cluster.wait_ults(ults)
    cluster.run(until=0.1)
    return _doc(
        "lock",
        seed,
        cluster.xray_plane(),
        {"process": "srv", "pool": "mutex:convoy", "phase": "lock"},
    )


def scenario_network(seed: int = 7) -> dict[str, Any]:
    """Slow link: cross-node fabric with low bandwidth, occasional large
    payloads (every 8th request ships 40 KB) -- the transfers of the big
    ones are the tail."""
    cluster = Cluster(
        seed=seed,
        network_config=NetworkConfig(
            fabric=LinkModel(latency=5e-6, bandwidth=5e7)
        ),
    )
    server = cluster.add_margo("srv", node="n0", config={"observability": dict(_OBS)})
    client = cluster.add_margo("cli", node="n1", config={"observability": dict(_OBS)})

    def handler(ctx):
        yield Compute(10e-6)
        return None  # keep the respond wire out of the way

    server.register("ship", handler)

    def driver():
        for i in range(240):
            payload = "x" * 40000 if i % 8 == 0 else "x"
            yield from client.forward(server.address, "ship", payload)
        return None

    cluster.run_ult(client, driver())
    cluster.run(until=cluster.now + 0.05)
    return _doc(
        "network",
        seed,
        cluster.xray_plane(),
        {"process": "cli->srv", "pool": "wire", "phase": "network"},
    )


SCENARIOS: tuple[tuple[str, Any], ...] = (
    ("pool", scenario_pool),
    ("lock", scenario_lock),
    ("network", scenario_network),
)
