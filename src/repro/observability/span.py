"""Span model for distributed traces.

A **span** is one timed phase of one RPC (or a manually instrumented
operation like a Pufferscale rebalance), identified by a
``(trace_id, span_id)`` pair and linked to its parent by
``parent_span_id``.  A **trace** is the tree of spans sharing one
``trace_id``: the paper's ``parent_rpc_id``/``parent_provider_id``
chain (Listing 1) gives each request a causal parent, and the runtime
extends it with per-call span identifiers so nested RPCs (HEPnOS ->
Yokan, Raft AppendEntries fan-out) form a single causal tree rather
than aggregate buckets.

Span ids are derived from deterministic simulation state (process name
plus the per-instance RPC sequence number), never from wall clocks or
PRNGs outside the seeded simulation, so two runs with the same seed
produce byte-identical trace exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Span", "SpanContext", "child_span_id", "HANDLER_SUFFIX"]

#: Suffixes deriving the per-phase span ids from the request's call id.
WIRE_SUFFIX = "/w"
QUEUE_SUFFIX = "/q"
HANDLER_SUFFIX = "/h"
RESPOND_SUFFIX = "/r"


def child_span_id(span_id: str, suffix: str) -> str:
    """The derived id of a request's wire/queue/handler/respond span."""
    return span_id + suffix


@dataclass(frozen=True)
class SpanContext:
    """What propagates across processes: which trace, which parent."""

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One completed, timed phase of a trace."""

    name: str
    category: str  # "forward" | "wire" | "queue" | "handler" | "respond" | "bulk" | ...
    trace_id: str
    span_id: str
    parent_span_id: str
    process: str
    start: float
    end: float
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "process": self.process,
            "start": self.start,
            "end": self.end,
            "attributes": dict(sorted(self.attributes.items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span {self.category}:{self.name} {self.span_id} "
            f"[{self.start:.6f}..{self.end:.6f}]>"
        )
