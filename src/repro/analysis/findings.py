"""Findings: what every mochi-lint pass (static, config, runtime) emits.

A :class:`Finding` is one violation of one rule at one location.  The
same structure is shared by the AST linter, the configuration
cross-validator, and the runtime sanitizer, so tooling (CLI, CI,
diagnostics reports) renders all three uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["Finding", "Severity", "format_findings"]


class Severity:
    """Finding severities, ordered from least to most severe."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    ORDER = (INFO, WARNING, ERROR)

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls.ORDER.index(severity)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule_id: str
    severity: str
    path: str
    line: int
    message: str
    #: Which pass produced it: "static", "config", or "runtime".
    source: str = "static"
    #: Optional structured context (e.g. the offending config key).
    context: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.rule_id} [{self.severity}] {self.message}"

    def with_path(self, path: str) -> "Finding":
        return replace(self, path=path)

    def to_json(self) -> dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "source": self.source,
        }


def format_findings(findings: list[Finding]) -> str:
    """Render findings one per line, sorted by (path, line, rule)."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule_id))
    return "\n".join(f.format() for f in ordered)
