"""Finding baselines: adopt a new rule without a big-bang cleanup.

``repro-lint --baseline lint-baseline.json`` filters out findings that
were already known when the baseline was recorded and fails only on
*new* ones; ``--update-baseline`` rewrites the file deterministically
from the current findings.

A baseline entry is ``(rule_id, path, message)`` -- deliberately *no
line number*, so unrelated edits that shift a known finding up or down
a file do not resurrect it.  The message is part of the key because it
names the offending symbol (attribute, RPC op, call chain): the same
rule firing on a different symbol in the same file is a genuinely new
finding and must not hide behind an old one.

Meta findings (MCH090 parse errors, MCH091 bare suppressions) can never
be baselined, for the same reason they cannot be suppressed: one
recorded parse error must not grandfather a file out of the gate.
"""

from __future__ import annotations

import json

from .findings import Finding
from .suppress import UNSUPPRESSABLE

__all__ = [
    "BaselineError",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "filter_new",
]

_VERSION = 1


class BaselineError(ValueError):
    """Raised when a baseline file cannot be read or parsed."""


def baseline_key(finding: Finding) -> tuple[str, str, str]:
    return (finding.rule_id, finding.path, finding.message)


def load_baseline(path: str) -> set[tuple[str, str, str]]:
    """Read a baseline file into a set of keys."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as err:
        raise BaselineError(f"cannot read baseline {path!r}: {err}") from err
    except ValueError as err:
        raise BaselineError(f"baseline {path!r} is not valid JSON: {err}") from err
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise BaselineError(
            f"baseline {path!r} has an unsupported format; regenerate it "
            "with --update-baseline"
        )
    keys: set[tuple[str, str, str]] = set()
    for item in data.get("findings", []):
        keys.add((item["rule_id"], item["path"], item["message"]))
    return keys


def write_baseline(path: str, findings: list[Finding]) -> int:
    """Record current findings, sorted and de-duplicated.

    Returns the number of entries written.
    """
    keys = sorted(
        {
            baseline_key(f)
            for f in findings
            if f.rule_id not in UNSUPPRESSABLE
        }
    )
    payload = {
        "version": _VERSION,
        "findings": [
            {"rule_id": rule_id, "path": fpath, "message": message}
            for rule_id, fpath, message in keys
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(keys)


def filter_new(
    findings: list[Finding], baseline: set[tuple[str, str, str]]
) -> list[Finding]:
    """Findings not covered by the baseline (meta rules never are)."""
    return [
        f
        for f in findings
        if f.rule_id in UNSUPPRESSABLE or baseline_key(f) not in baseline
    ]
