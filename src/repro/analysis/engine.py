"""The mochi-lint engine: file discovery, rule execution, suppression.

``lint_paths`` is the historical one-shot entry point; :func:`run_lint`
is the full orchestration the CLI uses -- per-file rules (optionally
served from the incremental cache, optionally restricted to git-changed
files) plus the whole-program ``--interproc`` layer, which reuses the
parse this engine already paid for on every Python file.

Directories are walked in sorted order and rules run in id order, so
the finding list is deterministic -- the linter holds itself to the
invariant it enforces.
"""

from __future__ import annotations

import ast
import os
import subprocess
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from .cache import LintCache
from .findings import Finding, Severity
from .registry import PARSE_ERROR, FileContext, all_rules
from .suppress import parse_suppressions

__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_target_files",
    "run_lint",
    "LintResult",
]

#: Directory names never descended into.  ``fixtures`` holds lint-test
#: inputs that are deliberately broken; ``.repro-lint-cache`` is ours.
_SKIP_DIRS = frozenset(
    {
        ".git",
        "__pycache__",
        ".pytest_cache",
        "node_modules",
        ".venv",
        "results",
        "fixtures",
        ".repro-lint-cache",
    }
)

#: Top-level JSON keys that mark a document as a Margo/Bedrock config
#: (other JSON files -- benchmark results, datasets -- are skipped).
CONFIG_MARKERS = frozenset(
    {"margo", "argobots", "libraries", "providers", "progress_pool", "rpc_pool"}
)


def _selected_rules(select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]):
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.info.id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [r for r in rules if r.info.id not in dropped]
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    tree: Optional[ast.Module] = None,
) -> list[Finding]:
    """Lint Python source text; returns unsuppressed findings.

    ``tree`` may carry a pre-parsed module for the same ``source`` so
    callers that already parsed (the interproc layer) don't pay twice.
    """
    suppressions = parse_suppressions(source, path)
    findings: list[Finding] = list(suppressions.findings)
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as err:
            findings.append(
                Finding(
                    rule_id=PARSE_ERROR.id,
                    severity=Severity.ERROR,
                    path=path,
                    line=err.lineno or 0,
                    message=f"syntax error: {err.msg}",
                )
            )
            return findings
    ctx = FileContext(path=path, source=source, tree=tree)
    for rule in _selected_rules(select, ignore):
        findings.extend(rule.check(ctx))
    kept = [f for f in findings if not suppressions.is_suppressed(f)]
    kept.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return kept


def lint_file(
    path: str,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint one file: ``.py`` via the AST rules, ``.json`` via the
    configuration cross-validator (non-config JSON is skipped)."""
    if path.endswith(".json"):
        # Imported lazily: config_check pulls in the margo package, which
        # itself imports the sanitizer from this package at startup.
        from .config_check import validate_config_file

        return validate_config_file(path, only_configs=True)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, select=select, ignore=ignore)


def iter_target_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of lintable files."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith((".py", ".json")):
                    yield os.path.join(root, name)


def lint_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint every Python file and config document under ``paths``."""
    findings: list[Finding] = []
    for path in iter_target_files(paths):
        findings.extend(lint_file(path, select=select, ignore=ignore))
    return findings


@dataclass
class LintResult:
    """Everything one orchestrated lint run produced."""

    findings: list[Finding]
    #: interproc coverage + cache counters (empty without --interproc).
    stats: dict = field(default_factory=dict)


def _git_changed_files() -> Optional[set[str]]:
    """Paths git considers changed (tracked modifications + untracked).

    Returns ``None`` when git is unavailable or this is not a work tree,
    so callers can fall back to linting everything rather than silently
    linting nothing.
    """
    changed: set[str] = set()
    for args in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, capture_output=True, text=True, timeout=30, check=True
            )
        except (OSError, subprocess.SubprocessError):
            return None
        changed.update(
            os.path.normpath(line)
            for line in proc.stdout.splitlines()
            if line.strip()
        )
    return changed


def run_lint(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    *,
    cache: Optional[LintCache] = None,
    changed_only: bool = False,
    interproc: bool = False,
    flow: bool = False,
    allowlist_path: str = "partition-allowlist.txt",
) -> LintResult:
    """Orchestrated lint: per-file rules + optional whole-program layers.

    * ``cache`` serves per-file findings for unchanged Python sources;
    * ``changed_only`` restricts *per-file* linting to git-changed
      files (whole-program passes still see the full tree -- a contract
      has two ends, and only one of them changed);
    * ``interproc`` runs the mochi-deps passes over every Python file,
      reusing the per-file parses, and suppresses MCH010's one-hop
      helper findings wherever MCH014 reports the same site with the
      full call chain;
    * ``flow`` runs the mochi-flow CFG/typestate passes (MCH070-073)
      and retires the flow-insensitive MCH012 heuristic at every site
      the path-sensitive MCH070 analysis covered.  Both whole-program
      layers share one project index and one effect fixpoint.
    """
    changed: Optional[set[str]] = None
    if changed_only:
        changed = _git_changed_files()
    whole_program = interproc or flow

    findings: list[Finding] = []
    parsed: list[tuple[str, ast.Module, str]] = []
    for path in iter_target_files(paths):
        lint_this = changed is None or os.path.normpath(path) in changed
        if path.endswith(".json"):
            if lint_this:
                findings.extend(lint_file(path, select=select, ignore=ignore))
            continue
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        cached: Optional[list[Finding]] = None
        if cache is not None and lint_this:
            cached = cache.get(cache.key(path, source))
        tree: Optional[ast.Module] = None
        if whole_program or cached is None:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                tree = None
        if whole_program and tree is not None:
            parsed.append((path, tree, source))
        if not lint_this:
            continue
        if cached is not None:
            findings.extend(cached)
            continue
        file_findings = lint_source(
            source, path=path, select=select, ignore=ignore, tree=tree
        )
        if cache is not None:
            cache.put(cache.key(path, source), file_findings)
        findings.extend(file_findings)

    stats: dict = {}
    index = analysis = None
    if whole_program:
        # Imported lazily: the whole-program packages import rule
        # modules that themselves import from this engine's siblings.
        from .interproc.callgraph import build_project
        from .interproc.effects import EffectAnalysis

        index = build_project([(p, tree) for p, tree, _ in parsed])
        analysis = EffectAnalysis(index)
    if interproc:
        from .interproc import run_interproc

        allowlist_text: Optional[str] = None
        if allowlist_path and os.path.isfile(allowlist_path):
            with open(allowlist_path, "r", encoding="utf-8") as handle:
                allowlist_text = handle.read()
        inter_findings, stats = run_interproc(
            parsed,
            select=select,
            ignore=ignore,
            allowlist_text=allowlist_text,
            allowlist_path=allowlist_path,
            index=index,
            analysis=analysis,
        )
        # MCH014 supersedes MCH010's one-hop helper heuristic: both
        # report at the call site, so a site MCH014 covers (with its
        # full chain) must not be double-reported.
        deep_sites = {
            (f.path, f.line) for f in inter_findings if f.rule_id == "MCH014"
        }
        findings = [
            f
            for f in findings
            if not (f.rule_id == "MCH010" and (f.path, f.line) in deep_sites)
        ]
        findings.extend(inter_findings)
    if flow:
        from .flow import run_flow

        flow_findings, flow_stats, covered = run_flow(
            parsed,
            select=select,
            ignore=ignore,
            index=index,
            analysis=analysis,
        )
        # MCH070 proved (or refuted) the respond protocol path by path
        # at these sites; the one-file MCH012 heuristic stands down
        # there, same precedent as MCH010 -> MCH014.
        findings = [
            f
            for f in findings
            if not (f.rule_id == "MCH012" and (f.path, f.line) in covered)
        ]
        findings.extend(flow_findings)
        stats.update(flow_stats)

    if cache is not None:
        cache.save()
        stats["cache_hits"] = cache.hits
        stats["cache_misses"] = cache.misses
        stats["cache_hit_rate"] = round(cache.hit_rate, 4)

    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return LintResult(findings=findings, stats=stats)
