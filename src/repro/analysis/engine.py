"""The mochi-lint engine: file discovery, rule execution, suppression.

``lint_paths`` is the one entry point the CLI, the CI gate, and the
diagnostics report all use.  Directories are walked in sorted order and
rules run in id order, so the finding list is deterministic -- the
linter holds itself to the invariant it enforces.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Iterator, Optional

from .findings import Finding, Severity
from .registry import PARSE_ERROR, FileContext, all_rules
from .suppress import parse_suppressions

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_target_files"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv", "results"}
)

#: Top-level JSON keys that mark a document as a Margo/Bedrock config
#: (other JSON files -- benchmark results, datasets -- are skipped).
CONFIG_MARKERS = frozenset(
    {"margo", "argobots", "libraries", "providers", "progress_pool", "rpc_pool"}
)


def _selected_rules(select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]):
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.info.id in wanted]
    if ignore:
        dropped = set(ignore)
        rules = [r for r in rules if r.info.id not in dropped]
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint Python source text; returns unsuppressed findings."""
    suppressions = parse_suppressions(source, path)
    findings: list[Finding] = list(suppressions.findings)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        findings.append(
            Finding(
                rule_id=PARSE_ERROR.id,
                severity=Severity.ERROR,
                path=path,
                line=err.lineno or 0,
                message=f"syntax error: {err.msg}",
            )
        )
        return findings
    ctx = FileContext(path=path, source=source, tree=tree)
    for rule in _selected_rules(select, ignore):
        findings.extend(rule.check(ctx))
    kept = [f for f in findings if not suppressions.is_suppressed(f)]
    kept.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return kept


def lint_file(
    path: str,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint one file: ``.py`` via the AST rules, ``.json`` via the
    configuration cross-validator (non-config JSON is skipped)."""
    if path.endswith(".json"):
        # Imported lazily: config_check pulls in the margo package, which
        # itself imports the sanitizer from this package at startup.
        from .config_check import validate_config_file

        return validate_config_file(path, only_configs=True)
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, select=select, ignore=ignore)


def iter_target_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of lintable files."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith((".py", ".json")):
                    yield os.path.join(root, name)


def lint_paths(
    paths: Iterable[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint every Python file and config document under ``paths``."""
    findings: list[Finding] = []
    for path in iter_target_files(paths):
        findings.extend(lint_file(path, select=select, ignore=ignore))
    return findings
