"""Inline suppression comments.

Two forms, both requiring a justification after ``--``:

* line-scoped::

      t0 = time.perf_counter()  # mochi-lint: disable=MCH001 -- wall-clock harness

* file-scoped (anywhere in the file, conventionally at the top)::

      # mochi-lint: disable-file=MCH001 -- this benchmark measures real time

A suppression with no justification is itself a finding (``MCH091``),
and the meta rules ``MCH090``/``MCH091`` can never be suppressed --
otherwise one bare comment could turn the whole gate off.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .findings import Finding
from .registry import BARE_SUPPRESSION

__all__ = ["Suppressions", "parse_suppressions"]

_PATTERN = re.compile(
    r"#\s*mochi-lint:\s*(?P<scope>disable-file|disable)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)

#: Rules that govern the suppression machinery itself.
UNSUPPRESSABLE = frozenset({"MCH090", "MCH091"})


@dataclass
class Suppressions:
    """Parsed suppressions for one file."""

    #: rule ids disabled for the whole file.
    file_ids: set[str] = field(default_factory=set)
    #: line number -> rule ids disabled on that line.
    line_ids: dict[int, set[str]] = field(default_factory=dict)
    #: findings produced by the suppression comments themselves.
    findings: list[Finding] = field(default_factory=list)

    def is_suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in UNSUPPRESSABLE:
            return False
        if finding.rule_id in self.file_ids:
            return True
        return finding.rule_id in self.line_ids.get(finding.line, ())


def parse_suppressions(source: str, path: str) -> Suppressions:
    """Extract every suppression comment from ``source``."""
    result = Suppressions()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PATTERN.search(line)
        if match is None:
            continue
        ids = {part.strip() for part in match.group("ids").split(",")}
        if not match.group("why"):
            result.findings.append(
                Finding(
                    rule_id=BARE_SUPPRESSION.id,
                    severity=BARE_SUPPRESSION.severity,
                    path=path,
                    line=lineno,
                    message=(
                        f"suppression of {sorted(ids)} has no justification; "
                        "write `# mochi-lint: disable=... -- <why this is safe>`"
                    ),
                )
            )
            continue
        if match.group("scope") == "disable-file":
            result.file_ids |= ids
        else:
            result.line_ids.setdefault(lineno, set()).update(ids)
    return result
