"""RPC contract checking (MCH050-MCH053).

The component contract in this tree is syntactic and total: a provider
registers ``self.register_rpc("op", self._on_op)`` under its class's
``component_type`` namespace, and a client reaches it through
``self._forward("op", args)`` on a handle (or a raw
``margo.forward(addr, "<type>_<op>", ...)``).  Because both ends are
spelled in the source, a whole-program pass can diff them:

* **MCH050** -- a client forwards an operation no provider registers
  (typo'd name, or a handler that was deleted but not its callers);
* **MCH051** -- a registration whose handler is missing, not a
  generator, or has the wrong arity (handlers take ``(self, ctx)``);
* **MCH052** -- a client binds the result of an RPC whose handlers
  never ``return`` a value: the caller always receives ``None``;
* **MCH053** -- a registered handler no client ever forwards to
  (dead wire surface).

Dynamic names -- f-strings (SSG's per-group RPCs), loop variables fed
from runtime data (the security guard) -- are resolved where a constant
can be proven (loops over literal tuples, single-constant locals,
``getattr(self, f"_on_{op}")``) and otherwise *conservatively counted*:

* a dynamic registration attributed to a component marks that component
  **open** -- its orphan check is skipped;
* a dynamic forward attributed to a component disables only that
  component's dead-handler check;
* an *unattributable* dynamic forward (no constant prefix) disables the
  dead-handler check globally -- any handler might be its target.

Every skip is tallied in :class:`ContractStats` for ``--stats``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from ..findings import Finding, Severity
from ..rules import dotted_name, last_attr, own_body_walk
from .callgraph import ClassInfo, FunctionInfo, ProjectIndex

__all__ = ["ContractIndex", "ContractStats", "build_contracts", "check_contracts"]


@dataclass
class Registration:
    """One provably-named ``register_rpc`` site."""

    component: str
    op: str
    path: str
    line: int
    cls: ClassInfo
    handler: Optional[FunctionInfo]
    handler_resolved: bool


@dataclass
class ForwardSite:
    """One provably-named client call site."""

    component: str
    op: str
    path: str
    line: int
    #: True / False when the call is a direct ``yield from``; None when
    #: the generator travels elsewhere (e.g. into ``parallel``).
    uses_result: Optional[bool]


@dataclass
class ContractStats:
    registrations: int = 0
    forwards: int = 0
    dynamic_registrations: int = 0
    dynamic_registrations_unattributed: int = 0
    dynamic_forwards: int = 0
    dynamic_forwards_unattributed: int = 0
    dead_handler_checked: bool = True


@dataclass
class ContractIndex:
    """Both ends of every RPC contract found in the tree."""

    registrations: list[Registration] = field(default_factory=list)
    forwards: list[ForwardSite] = field(default_factory=list)
    #: raw ``server.register("name", ...)`` wire names (no namespace).
    wire_registrations: set[str] = field(default_factory=set)
    component_types: set[str] = field(default_factory=set)
    #: components with a dynamic registration: orphan check skipped.
    open_components: set[str] = field(default_factory=set)
    #: components with a dynamic forward: dead-handler check skipped.
    dynamic_forward_components: set[str] = field(default_factory=set)
    stats: ContractStats = field(default_factory=ContractStats)

    def registered_ops(self, component: str) -> set[str]:
        return {r.op for r in self.registrations if r.component == component}

    def forwarded_ops(self, component: str) -> set[str]:
        return {f.op for f in self.forwards if f.component == component}


def _constant_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _local_constants(func: ast.AST) -> dict[str, list[str]]:
    """Name -> provable constant string values inside ``func``.

    Covers ``for op in ("a", "b"):`` loops over literal tuples/lists and
    plain ``name = "const"`` assignments (all of them: a name assigned
    two constants on two branches yields both candidates).
    """
    values: dict[str, list[str]] = {}
    for node in own_body_walk(func):
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            if isinstance(node.iter, (ast.Tuple, ast.List)):
                consts = [_constant_str(e) for e in node.iter.elts]
                if consts and all(c is not None for c in consts):
                    values.setdefault(node.target.id, []).extend(consts)  # type: ignore[arg-type]
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            const = _constant_str(node.value)
            if isinstance(target, ast.Name) and const is not None:
                values.setdefault(target.id, []).append(const)
    return values


def _name_candidates(
    node: ast.expr, local_constants: dict[str, list[str]]
) -> Optional[list[str]]:
    """All constant values ``node`` can take, or None when dynamic."""
    const = _constant_str(node)
    if const is not None:
        return [const]
    if isinstance(node, ast.Name) and node.id in local_constants:
        return list(dict.fromkeys(local_constants[node.id]))
    return None


def _fstring_prefix(node: ast.expr) -> Optional[str]:
    """Leading constant text of an f-string, or None."""
    if not isinstance(node, ast.JoinedStr) or not node.values:
        return None
    head = node.values[0]
    if isinstance(head, ast.Constant) and isinstance(head.value, str):
        return head.value
    return ""


def _getattr_handler_pattern(node: ast.expr) -> Optional[str]:
    """``getattr(self, f"_on_{op}")`` -> the ``"_on_"`` prefix."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "getattr"
        and len(node.args) >= 2
    ):
        return None
    spec = node.args[1]
    if (
        isinstance(spec, ast.JoinedStr)
        and len(spec.values) == 2
        and isinstance(spec.values[0], ast.Constant)
        and isinstance(spec.values[1], ast.FormattedValue)
    ):
        return spec.values[0].value
    return None


def _component_type_of(index: ProjectIndex, cls: ClassInfo) -> Optional[str]:
    value = index.find_class_attr(cls, "component_type")
    if value is None:
        return None
    return _constant_str(value)


def _handle_backlinks(index: ProjectIndex) -> dict[str, str]:
    """handle class qualname -> component type, via ``handle_cls = X``."""
    links: dict[str, str] = {}
    for qualname in sorted(index.classes):
        cls = index.classes[qualname]
        spec = cls.class_attrs.get("handle_cls")
        if spec is None:
            continue
        component = _component_type_of(index, cls)
        if component is None:
            continue
        mod = index.modules[cls.module]
        dotted = None
        if isinstance(spec, ast.Name):
            dotted = spec.id
        elif isinstance(spec, ast.Attribute):
            dotted = dotted_name(spec)
        if dotted is None:
            continue
        resolved = index.resolve_name(mod, dotted)
        if isinstance(resolved, ClassInfo):
            links.setdefault(resolved.qualname, component)
    return links


def _parent_map(func: ast.AST) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    stack: list[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            stack.append(child)
    return parents


def _result_usage(call: ast.Call, parents: dict[int, ast.AST]) -> Optional[bool]:
    """Whether the RPC result is consumed, if statically decidable."""
    wrapper = parents.get(id(call))
    if not isinstance(wrapper, ast.YieldFrom):
        return None  # generator handed elsewhere (parallel, a list, ...)
    statement = parents.get(id(wrapper))
    if isinstance(statement, ast.Expr):
        return False
    return True


def _wire_to_pair(
    index_types: set[str], wire: str
) -> Optional[tuple[str, str]]:
    """``"yokan_put_multi"`` -> ``("yokan", "put_multi")`` by longest
    known component-type prefix."""
    best: Optional[tuple[str, str]] = None
    for ctype in index_types:
        prefix = ctype + "_"
        if wire.startswith(prefix):
            if best is None or len(ctype) > len(best[0]):
                best = (ctype, wire[len(prefix):])
    return best


def build_contracts(index: ProjectIndex) -> ContractIndex:
    """Collect both ends of every RPC contract in the project."""
    contracts = ContractIndex()
    for qualname in sorted(index.classes):
        ctype = _component_type_of(index, index.classes[qualname])
        if ctype is not None:
            contracts.component_types.add(ctype)
    backlinks = _handle_backlinks(index)

    for qualname in sorted(index.functions):
        func = index.functions[qualname]
        local_constants = _local_constants(func.node)
        parents = _parent_map(func.node)
        for node in own_body_walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            attr = last_attr(node.func)
            if attr == "register_rpc":
                _collect_registration(
                    index, contracts, func, node, local_constants
                )
            elif attr == "register":
                _collect_wire_registration(contracts, node)
            elif attr == "_forward":
                _collect_forward(
                    index, contracts, backlinks, func, node,
                    local_constants, parents,
                )
            elif attr == "forward":
                _collect_wire_forward(
                    contracts, func, node, local_constants, parents
                )
    contracts.registrations.sort(key=lambda r: (r.path, r.line, r.op))
    contracts.forwards.sort(key=lambda f: (f.path, f.line, f.op))
    return contracts


def _collect_registration(
    index: ProjectIndex,
    contracts: ContractIndex,
    func: FunctionInfo,
    node: ast.Call,
    local_constants: dict[str, list[str]],
) -> None:
    if func.cls is None or not node.args:
        return
    component = _component_type_of(index, func.cls)
    if component is None:
        # e.g. the security guard: component_type assigned per instance.
        contracts.stats.dynamic_registrations += 1
        contracts.stats.dynamic_registrations_unattributed += 1
        return
    ops = _name_candidates(node.args[0], local_constants)
    if ops is None:
        contracts.stats.dynamic_registrations += 1
        contracts.open_components.add(component)
        return
    handler_prefix = None
    handler_attr = None
    handler_expr = node.args[1] if len(node.args) > 1 else None
    if isinstance(handler_expr, ast.Attribute) and isinstance(
        handler_expr.value, ast.Name
    ) and handler_expr.value.id == "self":
        handler_attr = handler_expr.attr
    elif isinstance(handler_expr, ast.Name):
        # ``handler = getattr(self, f"_on_{op}")`` somewhere in this
        # function; later re-wraps (decorating the same method) keep
        # the underlying contract, so the getattr binding wins.
        for inner in own_body_walk(func.node):
            if (
                isinstance(inner, ast.Assign)
                and len(inner.targets) == 1
                and isinstance(inner.targets[0], ast.Name)
                and inner.targets[0].id == handler_expr.id
            ):
                prefix = _getattr_handler_pattern(inner.value)
                if prefix is not None:
                    handler_prefix = prefix
    for op in ops:
        handler: Optional[FunctionInfo] = None
        resolved = False
        if handler_attr is not None:
            handler = index.find_method(func.cls, handler_attr)
            resolved = True
        elif handler_prefix is not None:
            handler = index.find_method(func.cls, handler_prefix + op)
            resolved = True
        contracts.registrations.append(
            Registration(
                component=component,
                op=op,
                path=func.path,
                line=node.lineno,
                cls=func.cls,
                handler=handler,
                handler_resolved=resolved,
            )
        )
        contracts.stats.registrations += 1


def _collect_wire_registration(contracts: ContractIndex, node: ast.Call) -> None:
    if node.args:
        wire = _constant_str(node.args[0])
        if wire is not None:
            contracts.wire_registrations.add(wire)


def _collect_forward(
    index: ProjectIndex,
    contracts: ContractIndex,
    backlinks: dict[str, str],
    func: FunctionInfo,
    node: ast.Call,
    local_constants: dict[str, list[str]],
    parents: dict[int, ast.AST],
) -> None:
    if func.cls is None or not node.args:
        return
    component = _component_type_of(index, func.cls)
    if component is None:
        component = backlinks.get(func.cls.qualname)
    if component is None:
        contracts.stats.dynamic_forwards += 1
        contracts.stats.dynamic_forwards_unattributed += 1
        return
    ops = _name_candidates(node.args[0], local_constants)
    if ops is None:
        contracts.stats.dynamic_forwards += 1
        contracts.dynamic_forward_components.add(component)
        return
    usage = _result_usage(node, parents)
    for op in ops:
        contracts.forwards.append(
            ForwardSite(
                component=component,
                op=op,
                path=func.path,
                line=node.lineno,
                uses_result=usage,
            )
        )
        contracts.stats.forwards += 1


def _collect_wire_forward(
    contracts: ContractIndex,
    func: FunctionInfo,
    node: ast.Call,
    local_constants: dict[str, list[str]],
    parents: dict[int, ast.AST],
) -> None:
    # margo.forward(address, rpc_name, args, ...) -- name is args[1].
    if len(node.args) < 2:
        return
    wires = _name_candidates(node.args[1], local_constants)
    if wires is None:
        prefix = _fstring_prefix(node.args[1])
        pair = _wire_to_pair(contracts.component_types, prefix or "")
        contracts.stats.dynamic_forwards += 1
        if pair is not None:
            contracts.dynamic_forward_components.add(pair[0])
        elif prefix is not None:
            contracts.stats.dynamic_forwards_unattributed += 1
        else:
            contracts.stats.dynamic_forwards_unattributed += 1
        return
    usage = _result_usage(node, parents)
    for wire in wires:
        pair = _wire_to_pair(contracts.component_types, wire)
        if pair is None:
            if wire not in contracts.wire_registrations:
                # Reported as an orphan only in a closed world (see
                # check_contracts); remember it via a sentinel component.
                contracts.forwards.append(
                    ForwardSite("", wire, func.path, node.lineno, usage)
                )
                contracts.stats.forwards += 1
            continue
        contracts.forwards.append(
            ForwardSite(pair[0], pair[1], func.path, node.lineno, usage)
        )
        contracts.stats.forwards += 1


def check_contracts(index: ProjectIndex, contracts: ContractIndex) -> list[Finding]:
    findings: list[Finding] = []
    components_with_registrations = {r.component for r in contracts.registrations}
    open_world = contracts.stats.dynamic_registrations_unattributed > 0

    # MCH050: orphaned client calls.
    for site in contracts.forwards:
        if site.component == "":
            # A wire name matching no component type at all: an orphan
            # unless some dynamic registration could plausibly serve it.
            if not open_world and not contracts.open_components:
                findings.append(
                    Finding(
                        "MCH050", Severity.ERROR, site.path, site.line,
                        f"client forwards {site.op!r} but no provider "
                        "registers that RPC (unknown component namespace)",
                    )
                )
            continue
        if site.component not in components_with_registrations:
            continue  # provider side may live outside the linted tree
        if site.component in contracts.open_components:
            continue
        if site.op not in contracts.registered_ops(site.component):
            wire = f"{site.component}_{site.op}"
            if wire in contracts.wire_registrations:
                continue
            findings.append(
                Finding(
                    "MCH050", Severity.ERROR, site.path, site.line,
                    f"client forwards {site.component}.{site.op!r} but no "
                    f"{site.component!r} provider registers it; the RPC "
                    "can never be served",
                )
            )

    # MCH051: handler existence / shape.
    for reg in contracts.registrations:
        if not reg.handler_resolved:
            continue
        if reg.handler is None:
            findings.append(
                Finding(
                    "MCH051", Severity.ERROR, reg.path, reg.line,
                    f"registration of {reg.component}.{reg.op!r} names a "
                    f"handler method {reg.cls.name} does not define",
                )
            )
            continue
        problems = _handler_shape_problems(reg.handler)
        for problem in problems:
            findings.append(
                Finding(
                    "MCH051", Severity.ERROR, reg.path, reg.line,
                    f"handler {reg.handler.name!r} for "
                    f"{reg.component}.{reg.op!r} {problem}",
                )
            )

    # MCH052: client consumes a result no handler ever returns.
    returns_value: dict[tuple[str, str], bool] = {}
    has_handler: dict[tuple[str, str], bool] = {}
    for reg in contracts.registrations:
        key = (reg.component, reg.op)
        if reg.handler is not None:
            has_handler[key] = True
            if _returns_a_value(reg.handler):
                returns_value[key] = True
    for site in contracts.forwards:
        key = (site.component, site.op)
        if site.uses_result and has_handler.get(key) and not returns_value.get(key):
            findings.append(
                Finding(
                    "MCH052", Severity.ERROR, site.path, site.line,
                    f"client binds the result of {site.component}."
                    f"{site.op!r} but its handler(s) never return a "
                    "value; the caller always receives None",
                )
            )

    # MCH053: dead handlers (closed world only).
    if contracts.stats.dynamic_forwards_unattributed > 0:
        contracts.stats.dead_handler_checked = False
    else:
        seen_ops: dict[str, set[str]] = {}
        for site in contracts.forwards:
            seen_ops.setdefault(site.component, set()).add(site.op)
        reported: set[tuple[str, str]] = set()
        for reg in contracts.registrations:
            if reg.component in contracts.dynamic_forward_components:
                continue
            if reg.op in seen_ops.get(reg.component, set()):
                continue
            if (reg.component, reg.op) in reported:
                continue
            reported.add((reg.component, reg.op))
            findings.append(
                Finding(
                    "MCH053", Severity.WARNING, reg.path, reg.line,
                    f"handler for {reg.component}.{reg.op!r} is "
                    "registered but no client in the tree forwards to "
                    "it; dead wire surface",
                )
            )
    return findings


def _handler_shape_problems(handler: FunctionInfo) -> list[str]:
    problems: list[str] = []
    if not handler.is_generator:
        problems.append(
            "is not a generator; handlers must yield kernel commands"
        )
    args = handler.node.args
    positional = len(args.args) + len(args.posonlyargs)
    required = positional - len(args.defaults)
    if required > 2 or (positional < 2 and args.vararg is None):
        problems.append(
            f"takes {positional} positional parameter(s); handlers are "
            "called as (self, ctx)"
        )
    return problems


def _returns_a_value(handler: FunctionInfo) -> bool:
    for node in own_body_walk(handler.node):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Constant) and node.value.value is None:
                continue
            return True
    return False
