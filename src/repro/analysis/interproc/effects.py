"""Effect inference over the whole-program call graph.

Each function gets a small effect record -- *blocks*, *suspends*
(yields the stream), *acquires-lock*, *mutates-shared*, *is-ULT* --
seeded from its own body and propagated to fixpoint over the call
graph.  Propagation respects execution semantics:

* ``blocks`` travels over ``call`` edges (the callee body runs in the
  caller's frame) and ``delegate`` edges (``yield from`` runs the
  generator inline), but **stops at ULT boundaries**: a callee that is
  itself ULT code gets its own MCH010/MCH014 report, so every blocking
  site is reported exactly once, in its nearest enclosing ULT;
* ``suspends`` and ``is-ULT`` travel only over ``delegate`` edges -- a
  plain call to a generator never runs it;
* ``mutates-shared`` travels over both edge kinds.

Every inherited effect carries a witness edge, so findings can print
the full call chain down to the offending primitive.  Witnesses are
chosen deterministically (smallest ``(line, callee)``), making the
fixpoint -- and therefore the finding text -- byte-stable.

Rules emitted here:

* **MCH014** -- a ULT body reaches a real blocking call through any
  call depth (the interprocedural upgrade of MCH010's one-hop helper
  heuristic);
* **MCH015** -- a mutex is held across a suspension that happens
  *inside a callee* (the interprocedural upgrade of MCH011, which only
  sees suspensions spelled in the holder's own body).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from ..findings import Finding, Severity
from ..rules import last_attr, own_body_walk, call_name, is_ult_generator
from ..rules.scheduling import (
    BLOCKING_CALLS,
    _SUSPENDING_COMMANDS,
    _SUSPENDING_DELEGATES,
    _lock_events,
    _unbounded_wait,
)
from .callgraph import FunctionInfo, ProjectIndex

__all__ = [
    "Effects",
    "EffectAnalysis",
    "check_deep_blocking",
    "check_lock_across_callee_yield",
    "callee_suspend_lines",
    "callee_park_lines",
]

#: Cap on rendered call-chain length (cycles cannot loop forever).
_MAX_CHAIN = 12


@dataclass
class Witness:
    """Why a function has an effect: its own primitive, or a callee."""

    kind: str  #: ``primitive`` or ``edge``
    detail: str  #: primitive call name, or callee qualname
    line: int


@dataclass
class Effects:
    """The inferred effect record for one function."""

    blocks: Optional[Witness] = None
    suspends: Optional[Witness] = None
    is_ult: bool = False
    acquires_lock: bool = False
    mutates_shared: Optional[Witness] = None
    #: The function (or a delegate chain below it) waits with no
    #: timeout: a caller that hasn't responded yet may stall forever.
    parks_unbounded: Optional[Witness] = None


class EffectAnalysis:
    """Computes and stores the per-function effect fixpoint."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.effects: dict[str, Effects] = {}
        self._seed()
        self._fixpoint()

    # -- seeding -------------------------------------------------------
    def _seed(self) -> None:
        for qualname in sorted(self.index.functions):
            func = self.index.functions[qualname]
            self.effects[qualname] = self._base_effects(func)

    @staticmethod
    def _base_effects(func: FunctionInfo) -> Effects:
        eff = Effects(is_ult=is_ult_generator(func.node))
        for node in own_body_walk(func.node):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in BLOCKING_CALLS and eff.blocks is None:
                    eff.blocks = Witness("primitive", f"{name}()", node.lineno)
            elif isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
                attr = last_attr(node.value.func)
                if attr in _SUSPENDING_COMMANDS and eff.suspends is None:
                    eff.suspends = Witness("primitive", attr, node.lineno)
            elif isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call):
                attr = last_attr(node.value.func)
                if attr in _SUSPENDING_DELEGATES and eff.suspends is None:
                    eff.suspends = Witness("primitive", f"{attr}()", node.lineno)
                if attr == "acquire":
                    eff.acquires_lock = True
            if isinstance(node, ast.Call) and eff.parks_unbounded is None:
                why = _unbounded_wait(node)
                if why is not None and not _is_ult_join(node):
                    eff.parks_unbounded = Witness("primitive", why, node.lineno)
        eff.mutates_shared = _shared_mutation_witness(func)
        return eff

    # -- propagation ---------------------------------------------------
    def _fixpoint(self) -> None:
        ordered = sorted(self.index.functions)
        changed = True
        while changed:
            changed = False
            for qualname in ordered:
                if self._update(self.index.functions[qualname]):
                    changed = True

    def _update(self, func: FunctionInfo) -> bool:
        eff = self.effects[func.qualname]
        changed = False
        block_candidates: list[tuple[int, str]] = []
        suspend_candidates: list[tuple[int, str]] = []
        mutate_candidates: list[tuple[int, str]] = []
        park_candidates: list[tuple[int, str]] = []
        inherited_ult = False
        for edge in func.edges:
            callee = self.effects.get(edge.callee)
            if callee is None:
                continue
            if callee.blocks is not None and not callee.is_ult:
                block_candidates.append((edge.line, edge.callee))
            if edge.kind == "delegate":
                if callee.suspends is not None:
                    suspend_candidates.append((edge.line, edge.callee))
                if callee.parks_unbounded is not None:
                    park_candidates.append((edge.line, edge.callee))
                if callee.is_ult:
                    inherited_ult = True
            if callee.mutates_shared is not None:
                mutate_candidates.append((edge.line, edge.callee))
        if eff.blocks is None and block_candidates:
            line, callee = min(block_candidates)
            eff.blocks = Witness("edge", callee, line)
            changed = True
        if eff.suspends is None and suspend_candidates:
            line, callee = min(suspend_candidates)
            eff.suspends = Witness("edge", callee, line)
            changed = True
        if eff.parks_unbounded is None and park_candidates:
            line, callee = min(park_candidates)
            eff.parks_unbounded = Witness("edge", callee, line)
            changed = True
        if eff.mutates_shared is None and mutate_candidates:
            line, callee = min(mutate_candidates)
            eff.mutates_shared = Witness("edge", callee, line)
            changed = True
        if inherited_ult and not eff.is_ult:
            eff.is_ult = True
            changed = True
        return changed

    # -- chain rendering -----------------------------------------------
    def blocking_chain(self, qualname: str) -> list[str]:
        """Follow blocks-witnesses down to the primitive, as text."""
        chain: list[str] = []
        current: Optional[str] = qualname
        for _ in range(_MAX_CHAIN):
            if current is None:
                break
            eff = self.effects.get(current)
            if eff is None or eff.blocks is None:
                break
            chain.append(_short(current))
            if eff.blocks.kind == "primitive":
                chain.append(eff.blocks.detail)
                return chain
            current = eff.blocks.detail
        chain.append("...")
        return chain

    def suspend_primitive(self, qualname: str) -> str:
        """The suspension primitive a delegate chain bottoms out in."""
        current: Optional[str] = qualname
        for _ in range(_MAX_CHAIN):
            eff = self.effects.get(current) if current else None
            if eff is None or eff.suspends is None:
                break
            if eff.suspends.kind == "primitive":
                return eff.suspends.detail
            current = eff.suspends.detail
        return "a kernel command"

    def park_primitive(self, qualname: str) -> str:
        """The unbounded wait a delegate chain bottoms out in."""
        current: Optional[str] = qualname
        for _ in range(_MAX_CHAIN):
            eff = self.effects.get(current) if current else None
            if eff is None or eff.parks_unbounded is None:
                break
            if eff.parks_unbounded.kind == "primitive":
                return eff.parks_unbounded.detail
            current = eff.parks_unbounded.detail
        return "an unbounded wait"


def callee_suspend_lines(
    analysis: "EffectAnalysis", func: FunctionInfo
) -> dict[int, str]:
    """Per-callee suspend summary for one function: line of each
    ``delegate`` edge whose callee suspends -> human description.

    This is the interface the flow layer (mochi-flow) consumes to mark
    "callee may suspend" statements as CFG suspension points without
    re-deriving the effect fixpoint.
    """
    lines: dict[int, str] = {}
    for edge in func.edges:
        if edge.kind != "delegate":
            continue
        eff = analysis.effects.get(edge.callee)
        if eff is None or eff.suspends is None:
            continue
        lines.setdefault(
            edge.line,
            f"{edge.display}() via {analysis.suspend_primitive(edge.callee)}",
        )
    return lines


def callee_park_lines(
    analysis: "EffectAnalysis", func: FunctionInfo
) -> dict[int, str]:
    """Delegate edges whose callee chain bottoms out in an *unbounded*
    wait: line -> description.  MCH070 treats these as divergence points
    the one-file MCH012 heuristic cannot see."""
    lines: dict[int, str] = {}
    for edge in func.edges:
        if edge.kind != "delegate":
            continue
        eff = analysis.effects.get(edge.callee)
        if eff is None or eff.parks_unbounded is None:
            continue
        lines.setdefault(
            edge.line,
            f"delegates to {edge.display}() which waits unboundedly "
            f"({analysis.park_primitive(edge.callee)})",
        )
    return lines


def _is_ult_join(call: ast.Call) -> bool:
    """A ``Park(x.done_event, ...)`` is a join on spawned work, not an
    open-ended wait: the child ULT's termination (and with it the
    wakeup) is the runtime's responsibility -- forwards time out, the
    scheduler drains.  ``parallel()`` is the canonical case.  Parks on
    arbitrary application events stay unbounded."""
    for arg in call.args[:1]:
        if isinstance(arg, ast.Attribute) and arg.attr == "done_event":
            return True
    return False


def _shared_mutation_witness(func: FunctionInfo) -> Optional[Witness]:
    """A write to module-global or class-level state in ``func``'s body."""
    declared_global: set[str] = set()
    for node in own_body_walk(func.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in own_body_walk(func.node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared_global:
                return Witness("primitive", f"global {target.id}", node.lineno)
    return None


def _short(qualname: str) -> str:
    """``repro.yokan.provider.YokanProvider._on_put`` -> ``YokanProvider._on_put``."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def check_deep_blocking(index: ProjectIndex, analysis: EffectAnalysis) -> list[Finding]:
    """MCH014: ULT reaches a blocking call through the call graph."""
    findings: list[Finding] = []
    for qualname in sorted(index.functions):
        func = index.functions[qualname]
        eff = analysis.effects[qualname]
        if not eff.is_ult:
            continue
        for edge in func.edges:
            callee_eff = analysis.effects.get(edge.callee)
            if callee_eff is None or callee_eff.blocks is None or callee_eff.is_ult:
                continue
            chain = [_short(qualname)] + analysis.blocking_chain(edge.callee)
            findings.append(
                Finding(
                    "MCH014",
                    Severity.ERROR,
                    func.path,
                    edge.line,
                    f"ULT body {func.name!r} reaches blocking "
                    f"{chain[-1]} through {' -> '.join(chain)}; "
                    "yield a kernel command instead",
                )
            )
    return findings


def check_lock_across_callee_yield(
    index: ProjectIndex, analysis: EffectAnalysis
) -> list[Finding]:
    """MCH015: mutex held across a suspension hidden inside a callee."""
    findings: list[Finding] = []
    for qualname in sorted(index.functions):
        func = index.functions[qualname]
        callee_suspends = _delegate_suspend_events(func, analysis)
        if not callee_suspends:
            continue
        events = [
            (line, col, kind, detail)
            for line, col, kind, detail in _lock_events(func.node)
            if kind in ("acquire", "release")
        ]
        events.extend(callee_suspends)
        events.sort()
        held = 0
        for line, _col, kind, detail in events:
            if kind == "acquire":
                held += 1
            elif kind == "release":
                held = max(0, held - 1)
            elif held > 0:
                findings.append(
                    Finding(
                        "MCH015",
                        Severity.ERROR,
                        func.path,
                        line,
                        f"{func.name!r} holds a mutex across {detail}; "
                        "release before delegating to suspending code",
                    )
                )
    return findings


def _delegate_suspend_events(
    func: FunctionInfo, analysis: EffectAnalysis
) -> list[tuple[int, int, str, str]]:
    """Delegate edges whose callee suspends, as lock-scan events.

    Direct suspensions (``yield Sleep(...)``, ``yield from forward(...)``)
    are MCH011's to report; this lists only suspensions that MCH011
    cannot see because they happen inside a project callee.
    """
    delegate_lines = {}
    for edge in func.edges:
        if edge.kind != "delegate":
            continue
        callee_eff = analysis.effects.get(edge.callee)
        if callee_eff is None or callee_eff.suspends is None:
            continue
        primitive = analysis.suspend_primitive(edge.callee)
        delegate_lines.setdefault(
            edge.line,
            f"{edge.display}() (suspends via {primitive})",
        )
    events: list[tuple[int, int, str, str]] = []
    for node in own_body_walk(func.node):
        if not (isinstance(node, ast.YieldFrom) and isinstance(node.value, ast.Call)):
            continue
        attr = last_attr(node.value.func)
        if attr in _SUSPENDING_DELEGATES or attr == "acquire":
            continue  # MCH011's direct-suspend territory
        detail = delegate_lines.get(node.lineno)
        if detail is not None:
            events.append((node.lineno, node.col_offset, "callee-suspend", detail))
    return events
