"""Migration-coverage analysis (MCH061).

REMI migration moves a provider between processes by serializing its
state files and re-creating the provider on the destination.  Any
instance attribute the provider mutates at runtime but never feeds into
its ``migrate()`` path is silently dropped by a migration -- the classic
"works until the first live migration" bug, and exactly the gap that
de-risks ROADMAP item 4's persistent-backend migration.

For every class that *overrides* ``migrate`` (the base ``Provider``
raises ``NotImplementedError``, so an override is the opt-in marker for
REMI migratability) this pass computes:

* **runtime-mutable attributes** -- ``self.X`` assigned, augmented,
  subscript-assigned, deleted, or mutated via a container method in any
  method of the class *other than* ``__init__`` / ``migrate`` /
  ``checkpoint`` / ``restore`` (construction and the snapshot path
  itself are not runtime mutation);
* **covered attributes** -- ``self.X`` *read* anywhere in ``migrate``'s
  transitive same-class call closure (helpers like ``_flush_backend``
  count; calls leaving the class are the RPC layer's business).

Runtime-mutable attributes outside the covered set are MCH061 findings.
Only the class's own methods are scanned: inherited machinery (e.g. the
base class's ``destroy`` bookkeeping) is the base class's contract, not
this provider's snapshot.
"""

from __future__ import annotations

import ast

from ..findings import Finding, Severity
from ..rules import own_body_walk
from .callgraph import ClassInfo, ProjectIndex
from .partition import _MUTATOR_METHODS

__all__ = ["check_migration_coverage"]

#: methods whose writes are not "runtime mutation".
_NON_RUNTIME_METHODS = frozenset({"__init__", "migrate", "checkpoint", "restore"})


def _overrides_migrate(cls: ClassInfo) -> bool:
    return "migrate" in cls.methods and bool(cls.base_names)


def _self_attr(node: ast.expr) -> str | None:
    """``self.X`` -> ``X`` (one level only)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_attrs(func_node: ast.AST) -> dict[str, int]:
    """self attributes written in a body -> first write line."""
    writes: dict[str, int] = {}

    def record(attr: str | None, line: int) -> None:
        if attr is not None and attr not in writes:
            writes[attr] = line

    for node in own_body_walk(func_node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call):
            # self.X.append(...) and friends mutate the contents of X.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                record(_self_attr(node.func.value), node.lineno)
            continue
        for target in targets:
            record(_self_attr(target), node.lineno)
            # self.X[key] = ... / del self.X[key] mutate X's contents.
            if isinstance(target, ast.Subscript):
                record(_self_attr(target.value), node.lineno)
    return writes


def _read_attrs(func_node: ast.AST) -> set[str]:
    """self attributes read (Load context) anywhere in a body.

    Includes the receiver of ``self.X[...]`` and ``self.X.method()`` --
    feeding ``self.X`` to anything inside the snapshot path counts as
    covering it.
    """
    reads: set[str] = set()
    for node in own_body_walk(func_node):
        attr = _self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):  # type: ignore[attr-defined]
            reads.add(attr)
    return reads


def _migrate_closure(index: ProjectIndex, cls: ClassInfo) -> list[str]:
    """``migrate`` plus transitively-called same-class-family methods."""
    family = {ancestor.qualname for ancestor in index.mro(cls)}
    start = cls.methods["migrate"].qualname
    seen = [start]
    queue = [start]
    while queue:
        current = queue.pop(0)
        func = index.functions.get(current)
        if func is None:
            continue
        for edge in func.edges:
            callee = index.functions.get(edge.callee)
            if callee is None or callee.cls is None:
                continue
            if callee.cls.qualname not in family:
                continue
            if edge.callee not in seen:
                seen.append(edge.callee)
                queue.append(edge.callee)
    return seen


def check_migration_coverage(index: ProjectIndex) -> list[Finding]:
    """MCH061: runtime state a provider's migrate() path never touches."""
    findings: list[Finding] = []
    for qualname in sorted(index.classes):
        cls = index.classes[qualname]
        if not _overrides_migrate(cls):
            continue
        covered: set[str] = set()
        for member in _migrate_closure(index, cls):
            func = index.functions.get(member)
            if func is not None:
                covered |= _read_attrs(func.node)
        runtime_writes: dict[str, int] = {}
        for name in sorted(cls.methods):
            if name in _NON_RUNTIME_METHODS:
                continue
            for attr, line in sorted(_written_attrs(cls.methods[name].node).items()):
                if attr not in runtime_writes or line < runtime_writes[attr]:
                    runtime_writes[attr] = line
        for attr in sorted(runtime_writes):
            if attr in covered or attr.startswith("__"):
                continue
            findings.append(
                Finding(
                    "MCH061", Severity.WARNING, cls.path,
                    runtime_writes[attr],
                    f"migratable provider {cls.name!r} mutates "
                    f"'self.{attr}' at runtime but its migrate() path "
                    "never reads it; this state is dropped by a REMI "
                    "migration",
                )
            )
    return findings
