"""Partition-safety analysis (MCH060).

ROADMAP item 1 shards the simulation across OS processes, one partition
per component.  That refactor is only safe if no component reaches into
another component's mutable state except through the RPC layer -- the
same process-isolation discipline MPI malleability systems enforce when
ranks are reshaped at runtime.

This pass finds the violations today, while everything still shares one
address space and such writes merely *happen to work*:

* attribute writes on an imported module (``kernel.TICK = 5`` from a
  different component);
* attribute writes on a class imported from another component
  (``Provider.pool = ...``);
* mutations of an imported module-level container (``REGISTRY[x] = y``,
  ``REGISTRY.append(...)``) owned by another component.

A *component* is the first package level below ``repro`` (so
``repro.yokan.provider`` and ``repro.yokan.client`` are one component
and may share state -- they will land in the same partition).  Outside
the ``repro`` namespace (fixtures), the top-level package is the
component.

Some global infrastructure is intentionally shared (and will need an
explicit replication story when partitioning lands).  Those targets live
in an allowlist file -- one ``module:attr -- justification`` per line --
and the pass enforces the file itself: entries without a justification,
or matching no mutation site, are findings too.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from ..findings import Finding, Severity
from ..rules import dotted_name, own_body_walk
from .callgraph import ClassInfo, FunctionInfo, ModuleInfo, ProjectIndex

__all__ = ["check_partition_safety", "component_of", "parse_allowlist"]

#: container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear",
        "add", "discard", "update", "setdefault", "popitem",
    }
)


def component_of(module: str) -> str:
    """Partition unit a module belongs to.

    ``repro.yokan.provider`` -> ``repro.yokan``; ``repro`` itself (the
    package root) stays ``repro``; a fixture package ``app.client`` ->
    ``app``.
    """
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return ".".join(parts[:2])
    return parts[0]


@dataclass
class MutationSite:
    """One cross-visible write to module- or class-level state."""

    target: str  #: ``owner_module:attr`` or ``owner_module.Class:attr``
    owner_module: str
    path: str
    line: int
    component: str  #: component performing the write
    detail: str  #: human-readable description of the write


@dataclass
class AllowlistEntry:
    target: str
    justification: str
    line: int


class AllowlistError(ValueError):
    """Raised for an allowlist line without a justification."""

    def __init__(self, line: int, text: str) -> None:
        super().__init__(text)
        self.line = line
        self.text = text


def parse_allowlist(text: str) -> list[AllowlistEntry]:
    """Parse ``module:attr -- justification`` lines.

    Blank lines and ``#`` comments are skipped.  A line without the
    `` -- justification`` tail raises :class:`AllowlistError` -- the
    allowlist is only acceptable when every entry says *why*.
    """
    entries: list[AllowlistEntry] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        target, sep, justification = line.partition(" -- ")
        target = target.strip()
        justification = justification.strip()
        if not sep or not justification or ":" not in target:
            raise AllowlistError(lineno, raw.rstrip())
        entries.append(AllowlistEntry(target, justification, lineno))
    return entries


def _collect_mutations(index: ProjectIndex) -> list[MutationSite]:
    sites: list[MutationSite] = []
    for qualname in sorted(index.functions):
        func = index.functions[qualname]
        mod = index.modules[func.module]
        component = component_of(func.module)
        for node in own_body_walk(func.node):
            sites.extend(_sites_for_node(index, mod, func, component, node))
    sites.sort(key=lambda s: (s.target, s.path, s.line))
    return sites


def _sites_for_node(
    index: ProjectIndex,
    mod: ModuleInfo,
    func: FunctionInfo,
    component: str,
    node: ast.AST,
) -> list[MutationSite]:
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif isinstance(node, ast.Call):
        site = _mutator_call_site(index, mod, func, component, node)
        return [site] if site else []

    sites: list[MutationSite] = []
    for target in targets:
        # NAME.attr = ... / del NAME.attr -- write through an import.
        if isinstance(target, ast.Attribute):
            site = _attribute_write_site(
                index, mod, func, component, target, node.lineno
            )
            if site:
                sites.append(site)
        # NAME[key] = ... / del NAME[key] -- container owned elsewhere.
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            site = _container_site(
                index, mod, func, component, target.value.id,
                node.lineno, f"{target.value.id}[...] assignment",
            )
            if site:
                sites.append(site)
    return sites


def _attribute_write_site(
    index: ProjectIndex,
    mod: ModuleInfo,
    func: FunctionInfo,
    component: str,
    target: ast.Attribute,
    line: int,
) -> Optional[MutationSite]:
    receiver = dotted_name(target.value)
    if receiver is None or receiver.split(".")[0] == "self":
        return None
    resolved = index.resolve_name(mod, receiver)
    if isinstance(resolved, ModuleInfo):
        return MutationSite(
            target=f"{resolved.name}:{target.attr}",
            owner_module=resolved.name,
            path=func.path,
            line=line,
            component=component,
            detail=f"sets module attribute {resolved.name}.{target.attr}",
        )
    if isinstance(resolved, ClassInfo):
        return MutationSite(
            target=f"{resolved.qualname}:{target.attr}",
            owner_module=resolved.module,
            path=func.path,
            line=line,
            component=component,
            detail=f"sets class attribute {resolved.qualname}.{target.attr}",
        )
    return None


def _container_site(
    index: ProjectIndex,
    mod: ModuleInfo,
    func: FunctionInfo,
    component: str,
    name: str,
    line: int,
    detail: str,
) -> Optional[MutationSite]:
    """A mutation of ``name`` when it is an imported module-level global."""
    imported = mod.import_froms.get(name)
    if imported is None:
        return None
    owner_name, _, attr = imported.rpartition(".")
    owner = index.modules.get(owner_name)
    if owner is None or attr not in owner.module_globals:
        return None
    return MutationSite(
        target=f"{owner.name}:{attr}",
        owner_module=owner.name,
        path=func.path,
        line=line,
        component=component,
        detail=detail,
    )


def _mutator_call_site(
    index: ProjectIndex,
    mod: ModuleInfo,
    func: FunctionInfo,
    component: str,
    node: ast.Call,
) -> Optional[MutationSite]:
    if not (
        isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.attr in _MUTATOR_METHODS
    ):
        return None
    return _container_site(
        index, mod, func, component, node.func.value.id, node.lineno,
        f"{node.func.value.id}.{node.func.attr}(...) mutates an "
        "imported container",
    )


def check_partition_safety(
    index: ProjectIndex,
    allowlist_text: Optional[str] = None,
    allowlist_path: str = "partition-allowlist.txt",
) -> list[Finding]:
    """MCH060: state mutated across the future partition boundary."""
    findings: list[Finding] = []
    allowed: dict[str, AllowlistEntry] = {}
    if allowlist_text is not None:
        try:
            for entry in parse_allowlist(allowlist_text):
                allowed[entry.target] = entry
        except AllowlistError as exc:
            findings.append(
                Finding(
                    "MCH060", Severity.ERROR, allowlist_path, exc.line,
                    "allowlist entry has no ' -- justification' tail: "
                    f"{exc.text!r}; every shared-state exemption must "
                    "say why it is safe",
                )
            )
            return findings

    sites = _collect_mutations(index)
    matched_targets: set[str] = set()
    for site in sites:
        owner_component = component_of(site.owner_module)
        if site.component == owner_component:
            continue
        matched_targets.add(site.target)
        if site.target in allowed:
            continue
        findings.append(
            Finding(
                "MCH060", Severity.ERROR, site.path, site.line,
                f"component {site.component!r} {site.detail} owned by "
                f"component {owner_component!r} without an RPC edge; "
                "this state silently diverges once partitions run in "
                "separate processes (allowlist key: "
                f"{site.target!r})",
            )
        )
    for target in sorted(allowed):
        if target not in matched_targets:
            entry = allowed[target]
            findings.append(
                Finding(
                    "MCH060", Severity.WARNING, allowlist_path, entry.line,
                    f"allowlist entry {target!r} matches no cross-"
                    "component mutation; delete the stale exemption",
                )
            )
    return findings
